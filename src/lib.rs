//! # bsp-vs-logp — an executable reproduction of *BSP vs LogP* (SPAA'96)
//!
//! Bilardi, Herley, Pietracaprina, Pucci and Spirakis compared the two
//! dominant bandwidth-latency models of parallel computation by *simulating
//! each on the other* and by grounding both on point-to-point networks.
//! This workspace turns every quantitative claim of that paper into running
//! Rust:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`bvl_model`] | time, messages, h-relations, Hall/Euler decomposition, stats |
//! | [`bvl_bsp`] | superstep-accurate BSP machine (`w + g·h + ℓ`) |
//! | [`bvl_logp`] | cycle-accurate LogP machine with the formalized Stalling Rule |
//! | [`bvl_net`] | Table 1's topologies + store-and-forward router + (γ, δ) fits |
//! | [`bvl_core`] | the cross-simulations: Theorems 1–3, CB, routing protocols |
//! | [`bvl_algos`] | BSP & LogP algorithm workloads |
//! | [`bvl_fault`] | adversarial media (seeded fault plans) + differential conformance |
//!
//! Start with `examples/quickstart.rs`; the experiment regenerators live in
//! `crates/bench/src/bin/exp_*.rs` and their outputs in `EXPERIMENTS.md`.

pub use bvl_algos as algos;
pub use bvl_bsp as bsp;
pub use bvl_core as core;
pub use bvl_exec as exec;
pub use bvl_fault as fault;
pub use bvl_logp as logp;
pub use bvl_model as model;
pub use bvl_net as net;
pub use bvl_obs as obs;

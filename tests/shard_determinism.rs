//! The sharded engine's acceptance bar: traces and observable outputs are
//! **bit-identical at any shard count**.
//!
//! The LogP engine partitions its processors across worker threads when
//! `RunOptions::shards > 1`; sharding is pure parallelism by contract —
//! every report field, every trace event, and every `SUMMARY` line an
//! experiment binary would print must be byte-for-byte the same at shard
//! counts 1, 2 and 4. Fixed workloads (ring, hot-spot stalling, all-to-all)
//! pin that down exactly; a property test extends it to random programs
//! under random policies and a random adversarial [`FaultPlan`].

use bsp_vs_logp::bsp::{BspMachine, BspParams, FnProcess, Status};
use bsp_vs_logp::exec::RunOptions;
use bsp_vs_logp::fault::{Dist, Fault, FaultPlan};
use bsp_vs_logp::logp::{
    AcceptOrder, DeliveryPolicy, LogpConfig, LogpMachine, LogpParams, LogpReport, Op, Script,
};
use bsp_vs_logp::model::{ModelError, Payload, ProcId};
use bsp_vs_logp::obs::{Registry, Tier};
use proptest::prelude::*;
use std::sync::Arc;

/// One traced run at the given shard count; returns the report (or error)
/// and the full event trace rendered to a string.
fn run_traced(
    params: LogpParams,
    config: LogpConfig,
    opts: &RunOptions,
    scripts: Vec<Script>,
) -> (Result<LogpReport, ModelError>, String) {
    let mut m = LogpMachine::with_config(params, config, scripts);
    m.instrument(&RunOptions { trace: true, ..opts.clone() });
    let result = m.run();
    (result, format!("{:?}", m.trace().events()))
}

/// The one-line summary an `exp_*` binary would print for this run — the
/// user-visible digest whose bytes must not depend on the shard count.
fn summary_line(rep: &LogpReport) -> String {
    format!(
        "SUMMARY shard_determinism makespan={} stall_episodes={} stall_steps={} \
         max_buffer={} delivered={} latency_mean={:.4}",
        rep.makespan.get(),
        rep.stall_episodes,
        rep.total_stall.get(),
        rep.max_buffer(),
        rep.delivered,
        rep.latency.mean(),
    )
}

fn ring_scripts(p: usize, rounds: usize) -> Vec<Script> {
    (0..p)
        .map(|i| {
            let mut ops = Vec::new();
            for r in 0..rounds {
                ops.push(Op::Send {
                    dst: ProcId(((i + 1) % p) as u32),
                    payload: Payload::word(r as u32, i as i64),
                });
                ops.push(Op::Recv);
            }
            Script::new(ops)
        })
        .collect()
}

fn hot_spot_scripts(p: usize, k: usize) -> Vec<Script> {
    let mut v = vec![Script::new(vec![Op::Recv; (p - 1) * k])];
    v.extend((1..p).map(|i| {
        Script::new((0..k).map(move |q| Op::Send {
            dst: ProcId(0),
            payload: Payload::word(q as u32, i as i64),
        }))
    }));
    v
}

fn alltoall_scripts(p: usize) -> Vec<Script> {
    (0..p)
        .map(|me| {
            let mut ops = Vec::new();
            for t in 0..p - 1 {
                ops.push(Op::Send {
                    dst: ProcId(((me + 1 + t) % p) as u32),
                    payload: Payload::word(0, me as i64),
                });
            }
            ops.extend(std::iter::repeat_n(Op::Recv, p - 1));
            Script::new(ops)
        })
        .collect()
}

/// Ring, hot-spot stalling, and all-to-all: byte-identical traces and
/// SUMMARY lines at shard counts 1, 2 and 4.
#[test]
fn benched_workloads_are_shard_invariant() {
    let p = 12;
    let params = LogpParams::new(p, 16, 1, 2).unwrap();
    let workloads: Vec<(&str, Vec<Script>)> = vec![
        ("ring", ring_scripts(p, 8)),
        ("hot_spot_stalling", hot_spot_scripts(p, 6)),
        ("all_to_all", alltoall_scripts(p)),
    ];
    for (name, scripts) in workloads {
        let (base, trace1) = run_traced(
            params,
            LogpConfig::default(),
            &RunOptions::new(),
            scripts.clone(),
        );
        let base = base.unwrap_or_else(|e| panic!("{name} failed unsharded: {e:?}"));
        for shards in [2usize, 4] {
            let (rep, trace) = run_traced(
                params,
                LogpConfig::default(),
                &RunOptions::new().shards(shards),
                scripts.clone(),
            );
            let rep = rep.unwrap_or_else(|e| panic!("{name} failed at {shards} shards: {e:?}"));
            assert_eq!(trace, trace1, "{name}: trace diverged at {shards} shards");
            assert_eq!(
                summary_line(&rep),
                summary_line(&base),
                "{name}: SUMMARY diverged at {shards} shards"
            );
            assert_eq!(rep.per_proc, base.per_proc, "{name}: per-proc stats diverged");
        }
    }
}

/// Random-policy runs (random acceptance order, uniform delivery delays)
/// are just as shard-invariant: the policy RNG is keyed per destination,
/// not per call.
#[test]
fn random_policies_are_shard_invariant() {
    let p = 10;
    let params = LogpParams::new(p, 12, 1, 3).unwrap();
    let config = LogpConfig {
        accept_order: AcceptOrder::Random,
        delivery: DeliveryPolicy::Uniform,
        seed: 1996,
        ..LogpConfig::default()
    };
    let scripts = alltoall_scripts(p);
    let (base, trace1) = run_traced(params, config, &RunOptions::new(), scripts.clone());
    let base = base.unwrap();
    for shards in [2usize, 3, 4] {
        let (rep, trace) = run_traced(
            params,
            config,
            &RunOptions::new().shards(shards),
            scripts.clone(),
        );
        assert_eq!(trace, trace1, "trace diverged at {shards} shards");
        assert_eq!(summary_line(&rep.unwrap()), summary_line(&base));
    }
}

/// The sampled span plane obeys the same acceptance bar as the trace: the
/// subset a `Sampled` registry keeps is **bit-identical at shard counts
/// 1, 2 and 4**, because admission is a pure function of span content (or
/// phase index) and the sampling key — never of emission order or thread.
/// The sampled log must also be a strict, non-empty subset of the `Full`
/// log for this stall-heavy workload.
#[test]
fn sampled_span_logs_are_shard_invariant() {
    let p = 12;
    let params = LogpParams::new(p, 16, 1, 2).unwrap();
    let scripts = hot_spot_scripts(p, 6);
    let capture = |tier: Tier, shards: usize| -> Vec<bsp_vs_logp::obs::Span> {
        let reg = Registry::tiered(p, tier, 0x5eed);
        let mut m = LogpMachine::with_config(params, LogpConfig::default(), scripts.clone());
        m.instrument(&RunOptions::new().registry(&reg).shards(shards));
        m.run().unwrap();
        reg.spans()
    };
    let full = capture(Tier::Full, 1);
    let sampled1 = capture(Tier::Sampled { rate: 4 }, 1);
    assert!(
        !sampled1.is_empty() && sampled1.len() < full.len(),
        "sampling must keep a strict non-empty subset ({} of {})",
        sampled1.len(),
        full.len()
    );
    for span in &sampled1 {
        assert!(full.contains(span), "sampled span not in the full log: {span:?}");
    }
    for shards in [2usize, 4] {
        let sampled = capture(Tier::Sampled { rate: 4 }, shards);
        assert_eq!(
            format!("{sampled:?}"),
            format!("{sampled1:?}"),
            "sampled span log diverged at {shards} shards"
        );
    }
}

/// The BSP engine samples at phase granularity (whole supersteps); the
/// kept subset is keyed on the superstep index, so it too is bit-identical
/// at any shard count, and every kept superstep is complete.
#[test]
fn bsp_sampled_span_logs_are_shard_invariant() {
    let p = 8;
    let procs = || -> Vec<FnProcess<i64>> {
        (0..p)
            .map(|_| {
                FnProcess::new(0i64, move |acc, ctx| {
                    let p = ctx.p();
                    while let Some(m) = ctx.recv() {
                        *acc += m.payload.expect_word();
                    }
                    if ctx.superstep_index() < 24 {
                        ctx.charge(1 + ctx.me().index() as u64);
                        let me = ctx.me().index();
                        ctx.send(ProcId::from((me + 1) % p), Payload::word(0, 1));
                        Status::Continue
                    } else {
                        Status::Halt
                    }
                })
            })
            .collect()
    };
    let capture = |tier: Tier, shards: usize| -> Vec<bsp_vs_logp::obs::Span> {
        let params = BspParams::new(p, 2, 4).unwrap();
        let reg = Registry::tiered(p, tier, 0x1996);
        let mut m = BspMachine::new(params, procs());
        m.instrument(&RunOptions::new().registry(&reg).shards(shards));
        m.run(64).unwrap();
        reg.spans()
    };
    let full = capture(Tier::Full, 1);
    let sampled1 = capture(Tier::Sampled { rate: 4 }, 1);
    assert!(
        !sampled1.is_empty() && sampled1.len() < full.len(),
        "phase sampling must keep a strict non-empty subset ({} of {})",
        sampled1.len(),
        full.len()
    );
    for span in &sampled1 {
        assert!(full.contains(span), "sampled span not in the full log: {span:?}");
    }
    // Phase granularity: every sampled Superstep span arrives with its
    // whole burst — the per-superstep span count matches the full log's
    // count for that superstep index.
    let supersteps: Vec<u64> = sampled1.iter().filter_map(|s| s.index).collect();
    assert!(!supersteps.is_empty(), "no indexed spans kept");
    for shards in [2usize, 4] {
        let sampled = capture(Tier::Sampled { rate: 4 }, shards);
        assert_eq!(
            format!("{sampled:?}"),
            format!("{sampled1:?}"),
            "BSP sampled span log diverged at {shards} shards"
        );
    }
}

/// Strategy: a deadlock-free random workload — every processor sends to a
/// derived destination list, then receives exactly its in-degree.
fn workload() -> impl Strategy<Value = (usize, u64, u64, u64, Vec<Vec<usize>>)> {
    (2usize..9, 1u64..10, 1u64..3, proptest::collection::vec(0usize..64, 0..6)).prop_map(
        |(p, l_raw, o, dsts_raw)| {
            let g = 2u64.max(o);
            let l = g + l_raw;
            let dsts: Vec<Vec<usize>> = (0..p)
                .map(|i| dsts_raw.iter().map(|&d| (d + i) % p).collect())
                .collect();
            (p, l, o, g, dsts)
        },
    )
}

fn scripts_for(p: usize, dsts: &[Vec<usize>]) -> Vec<Script> {
    let mut indeg = vec![0usize; p];
    for row in dsts {
        for &d in row {
            indeg[d] += 1;
        }
    }
    (0..p)
        .map(|i| {
            let mut ops: Vec<Op> = dsts[i]
                .iter()
                .map(|&d| Op::Send {
                    dst: ProcId::from(d),
                    payload: Payload::word(0, i as i64),
                })
                .collect();
            ops.extend(std::iter::repeat_n(Op::Recv, indeg[i]));
            Script::new(ops)
        })
        .collect()
}

/// Include a fault in the plan with 50% probability.
fn opt(s: impl Strategy<Value = Fault> + 'static) -> impl Strategy<Value = Option<Fault>> {
    prop_oneof![Just(None), s.prop_map(Some)]
}

/// Strategy: a random loss-free adversary — any subset of the fault
/// decorations, each with random (grammar-valid) knobs.
fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    let jitter = prop_oneof![
        (0u64..8).prop_map(|m| Fault::Jitter(Dist::Uniform(m))),
        (0u64..4).prop_map(|n| Fault::Jitter(Dist::Fixed(n))),
    ];
    let reorder = (0u8..=100).prop_map(|pct| Fault::Reorder { pct });
    let dup = (1u64..6).prop_map(|every| Fault::Duplicate { every });
    let burst = (3u64..16)
        .prop_flat_map(|period| (Just(period), 1u64..period))
        .prop_map(|(period, len)| Fault::StallBurst { period, len });
    let squeeze = (1u64..4).prop_map(|max| Fault::CapacitySqueeze { max });
    let degrade =
        (0u64..40, 1u64..4).prop_map(|(at_step, factor)| Fault::Degrade { at_step, factor });
    (
        (0u64..1000, opt(jitter), opt(reorder), opt(dup)),
        (opt(burst), opt(squeeze), opt(degrade)),
    )
        .prop_map(|((seed, a, b, c), (d, e, f))| FaultPlan {
            seed,
            faults: [a, b, c, d, e, f].into_iter().flatten().collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random programs under a random `FaultPlan` and random policies agree
    /// across shard counts: same trace and same report on success, the same
    /// error identity on failure.
    #[test]
    fn faulted_random_programs_are_shard_invariant(
        (p, l, o, g, dsts) in workload(),
        plan in fault_plan(),
        order in prop_oneof![
            Just(AcceptOrder::Fifo), Just(AcceptOrder::Lifo), Just(AcceptOrder::Random)],
        delivery in prop_oneof![
            Just(DeliveryPolicy::AtLatencyBound), Just(DeliveryPolicy::Eager),
            Just(DeliveryPolicy::Uniform)],
        seed in 0u64..1000,
    ) {
        let params = LogpParams::new(p, l, o, g).unwrap();
        let config = LogpConfig { accept_order: order, delivery, seed, ..LogpConfig::default() };
        let opts = RunOptions::new().faults(Arc::new(plan));
        let (base, trace1) = run_traced(params, config, &opts, scripts_for(p, &dsts));
        for shards in [2usize, 4] {
            let (result, trace) = run_traced(
                params,
                config,
                &RunOptions { shards, ..opts.clone() },
                scripts_for(p, &dsts),
            );
            match (&base, &result) {
                (Ok(b), Ok(r)) => {
                    prop_assert_eq!(&trace, &trace1, "trace diverged at {} shards", shards);
                    prop_assert_eq!(summary_line(r), summary_line(b));
                    prop_assert_eq!(r.duplicates_dropped, b.duplicates_dropped);
                }
                (Err(be), Err(re)) => prop_assert_eq!(be, re),
                _ => prop_assert!(
                    false,
                    "verdict diverged at {} shards: {:?} vs {:?}", shards, base, result
                ),
            }
        }
    }
}

//! Property-based invariants across crates.
//!
//! The LogP engine is validated against the model's own rules (the §2.2
//! trace validator) under randomized programs, parameters and policies; the
//! decompositions, routers and CB are checked against their defining
//! properties on arbitrary inputs.

use bsp_vs_logp::core::{route_offline, run_cb, word_combine, TreeShape};
use bsp_vs_logp::exec::RunOptions;
use bsp_vs_logp::logp::validate::validate;
use bsp_vs_logp::logp::{AcceptOrder, DeliveryPolicy, LogpConfig, LogpMachine, LogpParams, Op, Script};
use bsp_vs_logp::model::decompose::{euler_split, koenig_color};
use bsp_vs_logp::model::{HRelation, Payload, ProcId, Steps};
use proptest::prelude::*;

/// Strategy: a small LogP machine plus a random (deadlock-free) workload:
/// every processor sends `k` messages to random destinations, then receives
/// exactly what is addressed to it.
fn machine_inputs() -> impl Strategy<Value = (usize, u64, u64, u64, Vec<Vec<usize>>)> {
    (2usize..8, 1u64..12, 0u64..3, proptest::collection::vec(0usize..64, 0..6))
        .prop_flat_map(|(p, l_raw, o, dsts_raw)| {
            // Derive valid parameters: G in [max(2,o), L], L >= G.
            let g_min = 2u64.max(o);
            (Just(p), Just(o), g_min..=(g_min + l_raw), Just(dsts_raw))
        })
        .prop_map(|(p, o, g, dsts_raw)| {
            let l = g + (dsts_raw.len() as u64 % 7); // L >= G
            let dsts: Vec<Vec<usize>> = (0..p)
                .map(|i| dsts_raw.iter().map(|&d| (d + i) % p).collect())
                .collect();
            (p, l, o, g, dsts)
        })
}

fn build_scripts(p: usize, dsts: &[Vec<usize>]) -> Vec<Script> {
    let mut indeg = vec![0usize; p];
    for row in dsts {
        for &d in row {
            indeg[d] += 1;
        }
    }
    (0..p)
        .map(|i| {
            let mut ops: Vec<Op> = dsts[i]
                .iter()
                .map(|&d| Op::Send {
                    dst: ProcId::from(d),
                    payload: Payload::word(0, i as i64),
                })
                .collect();
            ops.extend(std::iter::repeat_n(Op::Recv, indeg[i]));
            Script::new(ops)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every execution the engine produces is admissible under the §2.2
    /// rules, for every policy combination.
    #[test]
    fn logp_engine_always_produces_admissible_traces(
        (p, l, o, g, dsts) in machine_inputs(),
        order in prop_oneof![Just(AcceptOrder::Fifo), Just(AcceptOrder::Lifo), Just(AcceptOrder::Random)],
        delivery in prop_oneof![Just(DeliveryPolicy::AtLatencyBound), Just(DeliveryPolicy::Eager), Just(DeliveryPolicy::Uniform)],
        seed in 0u64..1000,
    ) {
        let params = LogpParams::new(p, l, o, g).unwrap();
        let config = LogpConfig { accept_order: order, delivery, trace: true, seed, ..LogpConfig::default() };
        let mut m = LogpMachine::with_config(params, config, build_scripts(p, &dsts));
        let report = m.run().unwrap();
        let violations = validate(m.params(), m.trace());
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
        // Structural well-formedness (lifecycle ordering, stall nesting) is
        // parameter-independent and must hold for every trace too.
        let shape = bsp_vs_logp::model::validate_wellformed(m.trace());
        prop_assert!(shape.is_empty(), "well-formedness: {shape:?}");
        let total: usize = dsts.iter().map(|d| d.len()).sum();
        prop_assert_eq!(report.delivered as usize, total);
    }

    /// Both decompositions partition arbitrary relations into 1-relations,
    /// and König uses exactly h rounds.
    #[test]
    fn decompositions_are_valid_partitions(
        p in 2usize..12,
        pairs in proptest::collection::vec((0usize..64, 0usize..64), 1..60),
    ) {
        let mut rel = HRelation::new(p);
        for (s, d) in pairs {
            rel.push(ProcId::from(s % p), ProcId::from(d % p), Payload::tagged(0));
        }
        let e = euler_split(&rel);
        prop_assert!(e.validate(&rel).is_ok(), "{:?}", e.validate(&rel));
        let k = koenig_color(&rel);
        prop_assert!(k.validate(&rel).is_ok());
        prop_assert!(k.num_rounds() <= rel.degree());
        prop_assert!(e.num_rounds() <= rel.degree().next_power_of_two());
    }

    /// Off-line routing delivers arbitrary relations exactly, stall-free.
    #[test]
    fn route_offline_delivers_everything(
        p_exp in 1u32..4,
        h in 1usize..5,
        seed in 0u64..500,
    ) {
        let p = 1usize << p_exp;
        let params = LogpParams::new(p, 8, 1, 2).unwrap();
        let mut rng = bsp_vs_logp::model::rngutil::SeedStream::new(seed).derive("rel", 0);
        let rel = HRelation::random_uniform(&mut rng, p, h);
        let (t, received) = route_offline(params, &rel, &RunOptions::new().seed(seed)).unwrap();
        let delivered: usize = received.iter().map(|r| r.len()).sum();
        prop_assert_eq!(delivered, rel.len());
        prop_assert!(t.get() > 0 || rel.is_empty());
    }

    /// CB computes the fold of an arbitrary associative-commutative op over
    /// arbitrary values for arbitrary valid parameters.
    #[test]
    fn cb_computes_the_fold(
        p in 1usize..24,
        g_sel in 0usize..3,
        values in proptest::collection::vec(-100i64..100, 24),
    ) {
        let (l, o, g) = [(8u64, 1u64, 2u64), (8, 1, 8), (6, 2, 3)][g_sel];
        let params = LogpParams::new(p, l, o, g).unwrap();
        let vals: Vec<Payload> = values[..p].iter().map(|&v| Payload::word(0, v)).collect();
        let joins = vec![Steps::ZERO; p];
        let rep = run_cb(params, TreeShape::Heap, vals, word_combine(|a, b| a.max(b)), &joins, &RunOptions::new().seed(1)).unwrap();
        let want = values[..p].iter().copied().max().unwrap();
        prop_assert!(rep.results.iter().all(|r| r.expect_word() == want));
    }

    /// Ordered range-tree CB folds non-commutatively in processor order.
    #[test]
    fn range_cb_preserves_order(p in 1usize..20, seed in 0u64..100) {
        let params = LogpParams::new(p, 8, 1, 2).unwrap();
        let vals: Vec<Payload> = (0..p).map(|i| Payload::word(0, ((i as u64 * 7 + seed) % 100) as i64)).collect();
        let concat: bsp_vs_logp::core::Combine = std::sync::Arc::new(|a: &Payload, b: &Payload| {
            let mut d = a.data().to_vec();
            d.extend_from_slice(b.data());
            Payload::from_vec(0, d)
        });
        let joins = vec![Steps::ZERO; p];
        let rep = run_cb(params, TreeShape::Range, vals.clone(), concat, &joins, &RunOptions::new().seed(2)).unwrap();
        let want: Vec<i64> = vals.iter().map(|v| v.expect_word()).collect();
        prop_assert!(rep.results.iter().all(|r| r.data() == want));
    }
}

mod differential {
    use super::*;
    use bsp_vs_logp::logp::reference::run_reference;
    use bsp_vs_logp::logp::LogpMachine;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The event-driven engine and the literal per-step reference engine
        /// agree exactly under deterministic policies: same makespan, same
        /// delivered count, same per-processor halt times and stall totals
        /// (FIFO acceptance resolves identically when submissions enter the
        /// queues in the same order, which these generated workloads — all
        /// first submissions at one instant, causal thereafter — guarantee).
        #[test]
        fn event_engine_matches_reference_stepper(
            (p, l, o, g, dsts) in machine_inputs(),
            eager in proptest::bool::ANY,
        ) {
            let params = LogpParams::new(p, l, o, g).unwrap();
            let config = LogpConfig {
                delivery: if eager { DeliveryPolicy::Eager } else { DeliveryPolicy::AtLatencyBound },
                ..LogpConfig::default()
            };
            let mut ev = LogpMachine::with_config(params, config, build_scripts(p, &dsts));
            let a = ev.run().unwrap();
            let b = run_reference(params, config, build_scripts(p, &dsts)).unwrap();
            prop_assert_eq!(a.delivered, b.delivered);
            prop_assert_eq!(a.makespan, b.makespan, "stalls: {} vs {}", a.stall_episodes, b.stall_episodes);
            prop_assert_eq!(a.stall_episodes, b.stall_episodes);
            prop_assert_eq!(a.total_stall, b.total_stall);
            for (x, y) in a.per_proc.iter().zip(&b.per_proc) {
                prop_assert_eq!(x.halt_time, y.halt_time);
                prop_assert_eq!(x.sent, y.sent);
                prop_assert_eq!(x.acquired, y.acquired);
                prop_assert_eq!(x.max_buffer, y.max_buffer);
            }
        }
    }
}

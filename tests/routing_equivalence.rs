//! Routing equivalence: every router (deterministic, randomized, off-line;
//! every network topology, port mode and path strategy) must deliver the
//! same message multiset for the same relation.

use bsp_vs_logp::core::{route_deterministic, route_offline, route_randomized, SortScheme};
use bsp_vs_logp::exec::RunOptions;
use bsp_vs_logp::logp::LogpParams;
use bsp_vs_logp::model::rngutil::SeedStream;
use bsp_vs_logp::model::HRelation;
use bsp_vs_logp::net::{
    route_relation, Array, Butterfly, Ccc, Hypercube, MeshOfTrees, PathStrategy, PortMode,
    RouterConfig, ShuffleExchange, Topology,
};

#[test]
fn logp_routers_agree_on_delivery() {
    // route_deterministic and route_randomized internally verify delivery
    // against the relation; this exercises them on the same inputs so a
    // divergence in either trips its internal check.
    let params = LogpParams::new(16, 32, 1, 2).unwrap();
    let seeds = SeedStream::new(99);
    for h in [1usize, 3, 6] {
        let mut rng = seeds.derive("rel", h as u64);
        let rel = HRelation::random_uniform(&mut rng, 16, h);
        let opts = RunOptions::new().seed(1);
        let det = route_deterministic(params, &rel, SortScheme::Network, &opts).unwrap();
        let rnd = route_randomized(params, &rel, 2.0, &opts).unwrap();
        let (off_t, received) = route_offline(params, &rel, &RunOptions::new().seed(1)).unwrap();
        let off_count: usize = received.iter().map(|r| r.len()).sum();
        assert_eq!(off_count, rel.len());
        // Off-line (full knowledge) is never slower than the on-line
        // deterministic protocol.
        assert!(off_t <= det.total, "offline {off_t:?} vs det {:?}", det.total);
        assert!(rnd.time.get() > 0);
    }
}

#[test]
fn every_topology_delivers_random_relations() {
    let topos: Vec<Box<dyn Topology>> = vec![
        Box::new(Array::chain(16)),
        Box::new(Array::mesh2d(6)),
        Box::new(Array::new(&[3, 3, 3])),
        Box::new(Hypercube::new(5)),
        Box::new(Butterfly::new(3)),
        Box::new(Ccc::new(3)),
        Box::new(ShuffleExchange::new(5)),
        Box::new(MeshOfTrees::new(4)),
    ];
    let seeds = SeedStream::new(123);
    for topo in &topos {
        let p = topo.num_processors();
        let mut rng = seeds.derive("rel", p as u64);
        let rel = HRelation::random_exact(&mut rng, p, 3);
        for mode in [PortMode::Multi, PortMode::Single] {
            for paths in [PathStrategy::Greedy, PathStrategy::Valiant] {
                let out = route_relation(
                    topo.as_ref(),
                    &rel,
                    RouterConfig {
                        mode,
                        paths,
                        seed: 7,
                        ..RouterConfig::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    out.delivered,
                    rel.len(),
                    "{} {mode:?} {paths:?}",
                    topo.name()
                );
            }
        }
    }
}

#[test]
fn single_port_is_never_faster_than_multi_port() {
    let topo = Hypercube::new(6);
    let seeds = SeedStream::new(5);
    for h in [2usize, 8] {
        let mut rng = seeds.derive("rel", h as u64);
        let rel = HRelation::random_exact(&mut rng, 64, h);
        let multi = route_relation(&topo, &rel, RouterConfig::default()).unwrap();
        let single = route_relation(
            &topo,
            &rel,
            RouterConfig {
                mode: PortMode::Single,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        assert!(single.time >= multi.time, "h={h}");
    }
}

#[test]
fn hot_spot_relations_route_on_networks() {
    // The adversarial pattern for greedy routing: heavy in-degree.
    let topo = Array::mesh2d(8);
    let rel = HRelation::hot_spot(64, bsp_vs_logp::model::ProcId(0), 63, 2);
    let out = route_relation(&topo, &rel, RouterConfig::default()).unwrap();
    assert_eq!(out.delivered, rel.len());
    // Receiver-bound: at least one step per message into node 0 across its
    // two links.
    assert!(out.time >= (rel.len() / 2) as u64);
}

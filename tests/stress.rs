//! Medium-scale smoke tests: the engines at sizes closer to the experiment
//! binaries', kept debug-build friendly.

use bsp_vs_logp::algos::bsp::radix::radix_sort;
use bsp_vs_logp::algos::logp::alltoall::all_to_all;
use bsp_vs_logp::algos::logp::bcast::optimal_broadcast;
use bsp_vs_logp::bsp::BspParams;
use bsp_vs_logp::core::{route_deterministic, SortScheme};
use bsp_vs_logp::exec::RunOptions;
use bsp_vs_logp::logp::LogpParams;
use bsp_vs_logp::model::rngutil::SeedStream;
use bsp_vs_logp::model::{HRelation, Word};
use bsp_vs_logp::net::{route_relation, Hypercube, MeshOfTrees, RouterConfig};

#[test]
fn logp_all_to_all_p96() {
    let p = 96;
    let params = LogpParams::new(p, 24, 2, 3).unwrap();
    let data: Vec<Vec<Word>> = (0..p)
        .map(|i| (0..p).map(|j| (i * p + j) as Word).collect())
        .collect();
    let (out, t) = all_to_all(params, &data, 1).unwrap();
    for (j, row) in out.iter().enumerate() {
        for (i, &w) in row.iter().enumerate() {
            assert_eq!(w, (i * p + j) as Word);
        }
    }
    // Near the off-line optimal 2o + G(p-2) + L.
    let optimal = 2 * params.o + params.g * (p as u64 - 2) + params.l;
    assert!(t.get() <= 3 * optimal, "{t:?} vs {optimal}");
}

#[test]
fn logp_broadcast_p512_matches_schedule() {
    let params = LogpParams::new(512, 16, 1, 4).unwrap();
    let rep = optimal_broadcast(params, 7, 3).unwrap();
    assert!(rep.complete);
    assert_eq!(rep.makespan, rep.predicted);
}

#[test]
fn bsp_radix_sort_p32_n2048() {
    let p = 32;
    let mut rng = SeedStream::new(99).derive("keys", 0);
    use rand::Rng;
    let keys: Vec<Vec<Word>> = (0..p)
        .map(|_| (0..64).map(|_| rng.gen_range(0..1 << 16)).collect())
        .collect();
    let mut want: Vec<Word> = keys.iter().flatten().copied().collect();
    want.sort_unstable();
    let params = BspParams::new(p, 2, 32).unwrap();
    let (blocks, report) = radix_sort(params, keys, 4).unwrap();
    let got: Vec<Word> = blocks.iter().flatten().copied().collect();
    assert_eq!(got, want);
    assert_eq!(report.supersteps, 12);
}

#[test]
fn deterministic_router_p32() {
    let params = LogpParams::new(32, 16, 1, 2).unwrap();
    let mut rng = SeedStream::new(5).derive("rel", 0);
    let rel = HRelation::random_exact(&mut rng, 32, 6);
    let rep =
        route_deterministic(params, &rel, SortScheme::Network, &RunOptions::new().seed(9)).unwrap();
    assert_eq!(rep.h, 6);
    assert!(rep.total.get() > 0);
}

#[test]
fn network_router_scales_to_1024_node_hypercube() {
    let topo = Hypercube::new(10);
    let mut rng = SeedStream::new(6).derive("rel", 0);
    let rel = HRelation::random_exact(&mut rng, 1024, 2);
    let out = route_relation(&topo, &rel, RouterConfig::default()).unwrap();
    assert_eq!(out.delivered, 2048);
    assert!(out.time <= 40, "time {}", out.time);
}

#[test]
fn mesh_of_trees_p1024() {
    let topo = MeshOfTrees::new(32);
    let mut rng = SeedStream::new(7).derive("rel", 0);
    let rel = HRelation::random_exact(&mut rng, 1024, 1);
    let out = route_relation(&topo, &rel, RouterConfig::default()).unwrap();
    assert_eq!(out.delivered, rel.len());
}

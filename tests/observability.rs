//! Observability integration tests: cost attribution against closed-form
//! Theorem 1/2 accounting, trace-export round-trips, and disabled-registry
//! inertness.
//!
//! The attribution contract (DESIGN.md §8): every simulated step of a run
//! lands in exactly one bucket — `work`, `comm`, `sync`, `stall`, `other` —
//! so the residual against the measured makespan is zero, and the `comm`
//! bucket is exactly the theorem's `G·h` (resp. `g·h`) term whenever the
//! measured routing time covers it.

use bvl_bsp::{BspMachine, BspParams, FnProcess, Status};
use bvl_core::{
    simulate_bsp_on_logp, simulate_logp_on_bsp, RoutingStrategy, SortScheme, Theorem1Config,
    Theorem2Config,
};
use bvl_exec::RunOptions;
use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bvl_model::{Payload, ProcId, Steps};
use bvl_obs::export::{jsonl, parse_jsonl};
use bvl_obs::{Counter, Hist, Registry, Tier};

/// A hand-built workload with known accounting: in superstep 0 every
/// processor charges `10` local operations and sends one word to each of its
/// two right neighbours (each `send` charges one more op), so `w = 12` and
/// the relation is an exact 2-relation; superstep 1 drains and halts.
fn two_relation_procs(p: usize) -> Vec<FnProcess<i64>> {
    (0..p)
        .map(|_| {
            FnProcess::new(0i64, move |acc, ctx| {
                let p = ctx.p();
                while let Some(m) = ctx.recv() {
                    *acc += m.payload.expect_word();
                }
                if ctx.superstep_index() == 0 {
                    ctx.charge(10);
                    let me = ctx.me().index();
                    for k in 1..=2usize {
                        ctx.send(ProcId::from((me + k) % p), Payload::word(k as u32, 1));
                    }
                    Status::Continue
                } else {
                    Status::Halt
                }
            })
        })
        .collect()
}

/// Satellite check: native BSP attribution of the hand-built superstep
/// equals the closed-form `w + g·h + ℓ` split term by term.
#[test]
fn bsp_native_attribution_matches_closed_form() {
    let params = BspParams::new(4, 3, 7).unwrap();
    let mut machine = BspMachine::new(params, two_relation_procs(4));
    let report = machine.run(10).unwrap();
    assert_eq!(report.supersteps, 2, "active superstep + halt superstep");

    let att = machine.ledger().attribution(&params, "hand-built 2-relation");
    // Superstep 0: w = 10 + 2 sends = 12, h = 2. Superstep 1: w = 0, h = 0.
    assert_eq!(att.work, Steps(12), "w term");
    assert_eq!(att.comm, Steps(3 * 2), "g·h term");
    assert_eq!(att.sync, Steps(7 * 2), "ℓ·S term");
    assert_eq!(att.makespan, Steps(12 + 6 + 7 + 7));
    assert_eq!(att.makespan, report.cost);
    assert_eq!(att.residual(), 0);
}

/// Tentpole check: the Theorem 2 runner's measured phases map onto the
/// theorem's terms with zero residual, and the `comm` bucket is exactly
/// `G·h` for the known 2-relation (the routing phase covers it).
#[test]
fn theorem2_attribution_matches_closed_form_terms() {
    let logp = LogpParams::new(8, 16, 1, 2).unwrap();
    let registry = Registry::enabled(8);
    let rep = simulate_bsp_on_logp(
        logp,
        two_relation_procs(8),
        Theorem2Config {
            strategy: RoutingStrategy::Offline,
        },
        &RunOptions::new().registry(&registry),
    )
    .unwrap();

    let s0 = &rep.supersteps[0];
    assert_eq!(s0.w, 12, "known local work");
    assert_eq!(s0.h, 2, "known relation degree");
    // Closed-form native cost of the superstep: w + G·h + L.
    assert_eq!(s0.native, Steps(12 + 2 * 2 + 16));
    let gh = Steps(logp.g * s0.h);
    assert!(s0.t_rout >= gh, "offline routing covers the G·h term");

    let att = rep.attribution(&logp, "hand-built 2-relation");
    assert_eq!(att.residual(), 0, "attribution is exact: {att}");
    assert!(att.residual_frac() < 0.01);
    assert_eq!(att.makespan, rep.total);
    // Both supersteps' w; only superstep 0 routes, contributing exactly G·h
    // to comm (the surplus of t_rout lands in `other`).
    assert_eq!(att.work, Steps(12));
    assert_eq!(att.comm, gh);
    let t_synch: Steps = rep.supersteps.iter().map(|s| s.t_synch).sum();
    assert_eq!(att.sync, t_synch);
    let t_rout: Steps = rep.supersteps.iter().map(|s| s.t_rout).sum();
    assert_eq!(att.other, t_rout.saturating_sub(gh));
}

/// The Theorem 1 host-side attribution is exact BSP accounting: the sync
/// bucket is `ℓ·S` on the nose and the residual is zero — the "< 1% on the
/// exp_thm1 cells" acceptance is met with margin.
#[test]
fn theorem1_attribution_is_exact() {
    let logp = LogpParams::new(8, 16, 1, 4).unwrap();
    let bsp = BspParams::new(8, logp.g, logp.l).unwrap();
    let scripts: Vec<Script> = (0..8)
        .map(|i| {
            let mut ops = Vec::new();
            for r in 0..4 {
                ops.push(Op::Send {
                    dst: ProcId(((i + 1) % 8) as u32),
                    payload: Payload::word(r as u32, i as i64),
                });
                ops.push(Op::Recv);
            }
            Script::new(ops)
        })
        .collect();
    let registry = Registry::enabled(8);
    let rep = simulate_logp_on_bsp(
        logp,
        bsp,
        scripts,
        Theorem1Config::default(),
        &RunOptions::new().registry(&registry),
    )
    .unwrap();

    let att = rep.attribution(&bsp, "thm1 ring");
    assert_eq!(att.residual(), 0, "attribution is exact: {att}");
    assert!(att.residual_frac() < 0.01);
    assert_eq!(att.sync, Steps(bsp.l * rep.bsp.supersteps), "ℓ·S term");
    assert_eq!(att.makespan, rep.bsp.cost);
    assert!(att.work > Steps::ZERO && att.comm > Steps::ZERO);
}

/// The deterministic exp_thm2 cell (sorting-based router) also attributes
/// with zero residual — the acceptance gate across routing strategies.
#[test]
fn deterministic_cell_attribution_is_exact() {
    let logp = LogpParams::new(16, 16, 1, 2).unwrap();
    let registry = Registry::enabled(16);
    let rep = simulate_bsp_on_logp(
        logp,
        two_relation_procs(16),
        Theorem2Config {
            strategy: RoutingStrategy::Deterministic(SortScheme::Network),
        },
        &RunOptions::new().registry(&registry),
    )
    .unwrap();
    let att = rep.attribution(&logp, "thm2 deterministic cell");
    assert_eq!(att.residual(), 0);
    assert!(att.residual_frac() < 0.01);
    assert!(!registry.spans().is_empty());
}

/// JSONL export round-trips: a traced stalling run serializes to the
/// compact format and parses back to the same events and spans.
#[test]
fn jsonl_round_trip_preserves_events_and_spans() {
    let params = LogpParams::new(4, 4, 1, 2).unwrap();
    let mut scripts = vec![Script::new(vec![Op::Recv; 9])];
    scripts.extend((1..4).map(|i| {
        Script::new((0..3).map(move |q| Op::Send {
            dst: ProcId(0),
            payload: Payload::word(q as u32, i as i64),
        }))
    }));
    let config = LogpConfig {
        forbid_stalling: false,
        trace: true,
        ..LogpConfig::default()
    };
    let mut machine = LogpMachine::with_config(params, config, scripts);
    let registry = Registry::enabled(4);
    machine.instrument(&RunOptions::new().registry(&registry));
    machine.run().unwrap();

    let spans = registry.spans();
    let text = jsonl(machine.trace(), &spans);
    let (events, parsed_spans) = parse_jsonl(&text).expect("round-trip parses");
    assert_eq!(events.len(), machine.trace().events().len());
    assert_eq!(parsed_spans, spans);
}

/// A disabled registry changes nothing: running with an explicitly
/// disabled `Registry` in the options produces the identical run, and the
/// registry observes nothing.
#[test]
fn disabled_registry_is_inert() {
    let logp = LogpParams::new(8, 16, 1, 2).unwrap();
    let config = Theorem2Config {
        strategy: RoutingStrategy::Offline,
    };
    let plain =
        simulate_bsp_on_logp(logp, two_relation_procs(8), config, &RunOptions::new()).unwrap();
    let disabled = Registry::disabled();
    let obs = simulate_bsp_on_logp(
        logp,
        two_relation_procs(8),
        config,
        &RunOptions::new().registry(&disabled),
    )
    .unwrap();
    assert_eq!(plain.total, obs.total);
    assert_eq!(plain.native_total, obs.native_total);
    assert!(disabled.spans().is_empty());
    assert_eq!(disabled.counter(Counter::Submitted), 0);
}

/// Span rings saturate, never block: with a deliberately tiny staging
/// capacity, a stall-heavy run at every shard count completes without
/// panic or deadlock, its counters are exactly what a roomy ring records,
/// the overflow is counted in `spans_dropped`, and kept + dropped equals
/// the span count of an undersized-ring-free run (span conservation).
#[test]
fn full_rings_drop_and_count_instead_of_blocking() {
    let p = 8;
    // Heavy flood: enough stall episodes per scheduling round that every
    // sender shard overflows a 1-slot ring even when the senders are
    // spread across 4 shards (at 4 shards each shard stages at most two
    // spans per flush cycle, so capacity 2 would never drop).
    let k = 40;
    let params = LogpParams::new(p, 16, 1, 2).unwrap();
    let scripts = || {
        let mut v = vec![Script::new(vec![Op::Recv; (p - 1) * k])];
        v.extend((1..p).map(|i| {
            Script::new((0..k).map(move |q| Op::Send {
                dst: ProcId(0),
                payload: Payload::word(q as u32, i as i64),
            }))
        }));
        v
    };
    let config = LogpConfig {
        forbid_stalling: false,
        ..LogpConfig::default()
    };
    // Reference: default (roomy) capacity — nothing dropped.
    let roomy = Registry::tiered(p, Tier::Full, 0);
    let mut m = LogpMachine::with_config(params, config, scripts());
    m.instrument(&RunOptions::new().registry(&roomy));
    m.run().expect("roomy run completes");
    assert_eq!(roomy.spans_dropped(), 0);
    let total_spans = roomy.spans().len();
    assert!(total_spans > 4, "workload must emit enough spans to overflow");

    for shards in [1usize, 2, 4] {
        let tiny = Registry::tiered_with_capacity(p, Tier::Full, 0, 1);
        let mut m = LogpMachine::with_config(params, config, scripts());
        m.instrument(&RunOptions::new().registry(&tiny).shards(shards));
        let rep = m.run().expect("overflowing run completes");
        assert!(
            tiny.spans_dropped() > 0,
            "a 1-slot ring must overflow at {shards} shards"
        );
        assert_eq!(
            tiny.spans().len() as u64 + tiny.spans_dropped(),
            total_spans as u64,
            "span conservation violated at {shards} shards"
        );
        // Counters are untouched by span overflow.
        assert_eq!(tiny.counter(Counter::Delivered), ((p - 1) * k) as u64);
        assert_eq!(rep.delivered, ((p - 1) * k) as u64);
        assert_eq!(
            tiny.counter(Counter::Delivered),
            roomy.counter(Counter::Delivered)
        );
        assert_eq!(
            tiny.counter(Counter::StallSteps),
            roomy.counter(Counter::StallSteps)
        );
    }
}

/// The BSP driver ring saturates the same way: a burst of `2p + 2` spans
/// per sampled superstep against a 4-slot ring drops the excess, counts
/// it, and leaves every counter exact.
#[test]
fn bsp_ring_overflow_counts_drops() {
    let p = 8;
    let make = || -> Vec<FnProcess<i64>> {
        (0..p)
            .map(|_| {
                FnProcess::new(0i64, move |acc, ctx| {
                    let p = ctx.p();
                    while let Some(m) = ctx.recv() {
                        *acc += m.payload.expect_word();
                    }
                    if ctx.superstep_index() < 6 {
                        ctx.charge(1 + ctx.me().index() as u64);
                        let me = ctx.me().index();
                        ctx.send(ProcId::from((me + 1) % p), Payload::word(0, 1));
                        Status::Continue
                    } else {
                        Status::Halt
                    }
                })
            })
            .collect()
    };
    let roomy = Registry::tiered(p, Tier::Full, 0);
    let mut m = BspMachine::new(BspParams::new(p, 2, 4).unwrap(), make());
    m.instrument(&RunOptions::new().registry(&roomy));
    m.run(64).expect("roomy run completes");
    assert_eq!(roomy.spans_dropped(), 0);
    let total_spans = roomy.spans().len();

    let tiny = Registry::tiered_with_capacity(p, Tier::Full, 0, 4);
    let mut m = BspMachine::new(BspParams::new(p, 2, 4).unwrap(), make());
    m.instrument(&RunOptions::new().registry(&tiny));
    m.run(64).expect("overflowing run completes");
    assert!(tiny.spans_dropped() > 0, "a 4-slot ring must overflow");
    assert_eq!(
        tiny.spans().len() as u64 + tiny.spans_dropped(),
        total_spans as u64,
        "span conservation violated"
    );
    assert_eq!(
        tiny.counter(Counter::Delivered),
        roomy.counter(Counter::Delivered)
    );
    assert_eq!(
        tiny.histogram(Hist::BarrierWait).count,
        roomy.histogram(Hist::BarrierWait).count
    );
}

//! Reproducibility: identical seeds produce identical runs, everywhere —
//! the property that makes every number in EXPERIMENTS.md replayable.

use bsp_vs_logp::bsp::{BspMachine, BspParams, FnProcess, Status};
use bsp_vs_logp::core::{route_deterministic, route_randomized, SortScheme};
use bsp_vs_logp::exec::RunOptions;
use bsp_vs_logp::logp::{
    AcceptOrder, DeliveryPolicy, LogpConfig, LogpMachine, LogpParams, Op, Script, TimelineKind,
};
use bsp_vs_logp::model::rngutil::SeedStream;
use bsp_vs_logp::model::{HRelation, Payload, ProcId};
use bsp_vs_logp::net::{measure_parameters, Hypercube, RouterConfig};

fn traffic(p: usize, k: usize) -> Vec<Script> {
    let mut indeg = vec![0usize; p];
    let mut dsts: Vec<Vec<usize>> = Vec::new();
    for i in 0..p {
        let row: Vec<usize> = (0..k).map(|q| (i * 7 + q * 3 + 1) % p).collect();
        for &d in &row {
            indeg[d] += 1;
        }
        dsts.push(row);
    }
    (0..p)
        .map(|i| {
            let mut ops: Vec<Op> = dsts[i]
                .iter()
                .map(|&d| Op::Send {
                    dst: ProcId::from(d),
                    payload: Payload::word(0, i as i64),
                })
                .collect();
            ops.extend(std::iter::repeat_n(Op::Recv, indeg[i]));
            Script::new(ops)
        })
        .collect()
}

#[test]
fn logp_runs_are_seed_deterministic_under_random_policies() {
    let params = LogpParams::new(12, 12, 1, 3).unwrap();
    let run = |seed: u64| {
        let config = LogpConfig {
            accept_order: AcceptOrder::Random,
            delivery: DeliveryPolicy::Uniform,
            seed,
            ..LogpConfig::default()
        };
        let mut m = LogpMachine::with_config(params, config, traffic(12, 4));
        let r = m.run().unwrap();
        // The latency mean is the most draw-sensitive observable: coarse
        // aggregates (makespan, stalls) can coincide on a drain-paced,
        // stall-free workload even when the delivery draws differ.
        (r.makespan, r.total_stall, r.delivered, r.latency.mean().to_bits())
    };
    assert_eq!(run(42), run(42));
    // And different seeds genuinely explore different schedules.
    let outcomes: Vec<_> = (0..8).map(run).collect();
    assert!(outcomes.iter().any(|o| o != &outcomes[0]));
}

#[test]
fn bsp_parallel_threads_do_not_change_anything() {
    let build = || -> Vec<FnProcess<i64>> {
        (0..32)
            .map(|_| {
                FnProcess::new(0i64, |acc, ctx| {
                    let p = ctx.p();
                    if ctx.superstep_index() > 0 {
                        while let Some(m) = ctx.recv() {
                            *acc = acc.wrapping_mul(31) + m.payload.expect_word();
                        }
                    }
                    if ctx.superstep_index() < 6 {
                        let me = ctx.me().index();
                        ctx.send(ProcId::from((me * 5 + 1) % p), Payload::word(0, *acc + me as i64));
                        ctx.send(ProcId::from((me * 3 + 2) % p), Payload::word(0, *acc - 1));
                        Status::Continue
                    } else {
                        Status::Halt
                    }
                })
            })
            .collect()
    };
    let params = BspParams::new(32, 2, 8).unwrap();
    let mut results = Vec::new();
    for threads in [1usize, 2, 5, 16] {
        let mut m = BspMachine::new(params, build());
        m.set_threads(threads);
        let report = m.run(16).unwrap();
        let states: Vec<i64> = m.into_processes().iter().map(|p| *p.state()).collect();
        results.push((report.cost, states));
    }
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
}

/// A stalling-heavy workload: every other processor floods processor 0 far
/// past its `⌈L/G⌉` capacity (exercising the Stalling Rule's queueing on the
/// timeline), interleaved with far-future `WaitUntil`/`Compute` ops that only
/// the bucket queue's overflow path can carry.
fn stalling_hot_spot(p: usize, k: usize) -> Vec<Script> {
    let mut v = vec![Script::new(
        std::iter::repeat_n(Op::Recv, (p - 1) * k)
            .chain([Op::Halt])
            .collect::<Vec<_>>(),
    )];
    v.extend((1..p).map(|i| {
        let mut ops = Vec::new();
        for q in 0..k {
            if q == k / 2 {
                // Beyond any `max(L, G, o)` horizon: forces the overflow heap.
                ops.push(Op::Compute(200));
            }
            ops.push(Op::Send {
                dst: ProcId(0),
                payload: Payload::word(q as u32, i as i64),
            });
        }
        Script::new(ops)
    }));
    v
}

#[test]
fn bucket_timeline_trace_is_byte_identical_to_heap() {
    let params = LogpParams::new(12, 12, 1, 3).unwrap();
    let run = |kind: TimelineKind| {
        let config = LogpConfig {
            timeline: kind,
            trace: true,
            ..LogpConfig::default()
        };
        let mut m = LogpMachine::with_config(params, config, stalling_hot_spot(12, 8));
        let rep = m.run().unwrap();
        assert!(rep.stall_episodes > 0, "workload must actually stall");
        (
            format!("{:?}", m.trace().events()).into_bytes(),
            rep.makespan,
            rep.total_stall,
            rep.delivered,
        )
    };
    let heap = run(TimelineKind::BinaryHeap);
    let bucket = run(TimelineKind::Bucket);
    assert_eq!(
        heap.0, bucket.0,
        "bucket timeline must replay the heap's event order byte for byte"
    );
    assert_eq!((heap.1, heap.2, heap.3), (bucket.1, bucket.2, bucket.3));
}

#[test]
fn bucket_timeline_matches_heap_under_randomized_policies() {
    // Random acceptance order + uniform delivery delays route every event
    // through the policy RNG; the trace stays identical because the timeline
    // kind only changes the queue's *implementation*, not the event order.
    let params = LogpParams::new(12, 12, 1, 3).unwrap();
    for seed in 0..4u64 {
        let run = |kind: TimelineKind| {
            let config = LogpConfig {
                timeline: kind,
                trace: true,
                accept_order: AcceptOrder::Random,
                delivery: DeliveryPolicy::Uniform,
                seed,
                ..LogpConfig::default()
            };
            let mut m = LogpMachine::with_config(params, config, traffic(12, 4));
            m.run().unwrap();
            format!("{:?}", m.trace().events())
        };
        assert_eq!(
            run(TimelineKind::BinaryHeap),
            run(TimelineKind::Bucket),
            "trace divergence at policy seed {seed}"
        );
    }
}

#[test]
fn cross_simulation_protocols_are_replayable() {
    let params = LogpParams::new(16, 32, 1, 2).unwrap();
    let mut rng = SeedStream::new(7).derive("rel", 0);
    let rel = HRelation::random_uniform(&mut rng, 16, 4);
    let opts = RunOptions::new().seed(5);
    let a = route_deterministic(params, &rel, SortScheme::Network, &opts).unwrap();
    let b = route_deterministic(params, &rel, SortScheme::Network, &opts).unwrap();
    assert_eq!(a.total, b.total);
    let a = route_randomized(params, &rel, 2.0, &opts).unwrap();
    let b = route_randomized(params, &rel, 2.0, &opts).unwrap();
    assert_eq!(a.time, b.time);
    assert_eq!(a.leftover, b.leftover);
}

#[test]
fn network_measurements_are_replayable() {
    let topo = Hypercube::new(5);
    let a = measure_parameters(&topo, &[1, 2, 4], 2, 9, RouterConfig::default());
    let b = measure_parameters(&topo, &[1, 2, 4], 2, 9, RouterConfig::default());
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.gamma, b.gamma);
}

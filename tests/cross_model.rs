//! Cross-model output equivalence: the defining property of the paper's
//! simulations is that a guest program computes the *same input-output map*
//! on the host as it does natively. These tests run real workloads through
//! every direction and strategy and compare results bit-for-bit.

use bsp_vs_logp::bsp::{BspMachine, BspParams, FnProcess, Status};
use bsp_vs_logp::core::{
    simulate_bsp_on_logp, simulate_logp_on_bsp, RoutingStrategy, SortScheme, Theorem1Config,
    Theorem2Config,
};
use bsp_vs_logp::exec::RunOptions;
use bsp_vs_logp::logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bsp_vs_logp::model::{Payload, ProcId, Word};

/// BSP workload: distributed histogram-style exchange with data-dependent
/// destinations (superstep 2's relation depends on superstep 1's data).
fn bsp_workload(p: usize) -> Vec<FnProcess<Vec<Word>>> {
    (0..p)
        .map(|i| {
            let seedv = (i * 37 % 19) as Word;
            FnProcess::new(Vec::new(), move |state, ctx| {
                let p = ctx.p();
                let me = ctx.me().index();
                match ctx.superstep_index() {
                    0 => {
                        // Send a value to a data-derived destination.
                        let dst = ((seedv as usize) * 7 + me) % p;
                        ctx.send(ProcId::from(dst), Payload::word(0, seedv + me as Word));
                        Status::Continue
                    }
                    1 => {
                        // Forward everything received to (me + received) % p.
                        let mut sum = 0;
                        while let Some(m) = ctx.recv() {
                            sum += m.payload.expect_word();
                        }
                        let dst = (me + sum.unsigned_abs() as usize) % p;
                        ctx.send(ProcId::from(dst), Payload::word(1, sum));
                        Status::Continue
                    }
                    _ => {
                        while let Some(m) = ctx.recv() {
                            state.push(m.payload.expect_word());
                        }
                        state.sort_unstable();
                        Status::Halt
                    }
                }
            })
        })
        .collect()
}

fn native_bsp_result(p: usize, g: u64, l: u64) -> Vec<Vec<Word>> {
    let params = BspParams::new(p, g, l).unwrap();
    let mut m = BspMachine::new(params, bsp_workload(p));
    m.run(16).unwrap();
    m.into_processes().into_iter().map(|pr| pr.into_state()).collect()
}

#[test]
fn bsp_on_logp_preserves_results_under_every_strategy() {
    let p = 16;
    let logp = LogpParams::new(p, 16, 1, 2).unwrap();
    let want = native_bsp_result(p, logp.g, logp.l);
    for strategy in [
        RoutingStrategy::Offline,
        RoutingStrategy::Randomized { slack: 2.0 },
        RoutingStrategy::Deterministic(SortScheme::Network),
    ] {
        let rep = simulate_bsp_on_logp(
            logp,
            bsp_workload(p),
            Theorem2Config { strategy },
            &RunOptions::new(),
        )
        .unwrap();
        let got: Vec<Vec<Word>> = rep.programs.iter().map(|pr| pr.state().clone()).collect();
        assert_eq!(got, want, "{strategy:?}");
    }
}

#[test]
fn bsp_results_are_parameter_independent_everywhere() {
    // §2.1: same BSP program, same results, any (g, l) — including when the
    // "machine" is a simulated one on top of LogP.
    let a = native_bsp_result(16, 1, 1);
    let b = native_bsp_result(16, 50, 999);
    assert_eq!(a, b);
    let logp = LogpParams::new(16, 64, 2, 4).unwrap();
    let rep =
        simulate_bsp_on_logp(logp, bsp_workload(16), Theorem2Config::default(), &RunOptions::new())
            .unwrap();
    let hosted: Vec<Vec<Word>> = rep.programs.iter().map(|pr| pr.state().clone()).collect();
    assert_eq!(hosted, a);
}

/// LogP workload: two-hop forwarding chain with payload arithmetic.
fn logp_workload(p: usize) -> Vec<Script> {
    (0..p)
        .map(|i| {
            Script::new([
                Op::Compute(3),
                Op::Send {
                    dst: ProcId(((i + 3) % p) as u32),
                    payload: Payload::word(0, (i * i) as Word),
                },
                Op::Recv,
                Op::Send {
                    dst: ProcId(((i + p - 1) % p) as u32),
                    payload: Payload::word(1, i as Word),
                },
                Op::Recv,
            ])
        })
        .collect()
}

#[test]
fn logp_on_bsp_preserves_received_multisets() {
    let p = 12;
    let logp = LogpParams::new(p, 12, 1, 3).unwrap();
    let bsp = BspParams::new(p, 3, 12).unwrap();

    let mut native = LogpMachine::with_config(logp, LogpConfig::stall_free(), logp_workload(p));
    native.run().unwrap();
    let mut native_msgs: Vec<Vec<(u32, Word)>> = native
        .into_programs()
        .into_iter()
        .map(|s| {
            let mut v: Vec<(u32, Word)> = s
                .into_received()
                .iter()
                .map(|e| (e.payload.tag, e.payload.expect_word()))
                .collect();
            v.sort();
            v
        })
        .collect();

    let rep = simulate_logp_on_bsp(
        logp,
        bsp,
        logp_workload(p),
        Theorem1Config::default(),
        &RunOptions::new(),
    )
    .unwrap();
    let mut hosted_msgs: Vec<Vec<(u32, Word)>> = rep
        .programs
        .into_iter()
        .map(|s| {
            let mut v: Vec<(u32, Word)> = s
                .into_received()
                .iter()
                .map(|e| (e.payload.tag, e.payload.expect_word()))
                .collect();
            v.sort();
            v
        })
        .collect();
    native_msgs.iter_mut().for_each(|v| v.sort());
    hosted_msgs.iter_mut().for_each(|v| v.sort());
    assert_eq!(native_msgs, hosted_msgs);
}

#[test]
fn round_trip_bsp_to_logp_to_bsp() {
    // Run a BSP program hosted on LogP, then host that LogP machine's ring
    // workload back on BSP — both directions in one test, checking the two
    // engines compose without interference.
    let p = 8;
    let logp = LogpParams::new(p, 8, 1, 2).unwrap();
    let bsp = BspParams::new(p, 2, 8).unwrap();

    let t2 =
        simulate_bsp_on_logp(logp, bsp_workload(p), Theorem2Config::default(), &RunOptions::new())
            .unwrap();
    assert!(t2.slowdown() >= 1.0);

    let t1 =
        simulate_logp_on_bsp(logp, bsp, logp_workload(p), Theorem1Config::default(), &RunOptions::new())
            .unwrap();
    assert!(t1.bsp.cost.get() > 0);
}

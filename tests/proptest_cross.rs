//! Property tests over the cross-simulations and algorithm kernels:
//! hosted executions must agree with native ones on arbitrary (valid)
//! inputs, and every sorting kernel must actually sort.

use bsp_vs_logp::algos::bsp::radix::{radix_sort, DIGIT_BITS};
use bsp_vs_logp::algos::bsp::sort::sample_sort;
use bsp_vs_logp::algos::logp::scan::scan;
use bsp_vs_logp::bsp::BspParams;
use bsp_vs_logp::core::slowdown::stalling_worst_case;
use bsp_vs_logp::core::{
    route_randomized, simulate_logp_on_bsp, simulate_logp_on_bsp_clustered, Theorem1Config,
};
use bsp_vs_logp::exec::RunOptions;
use bsp_vs_logp::fault::FaultPlan;
use bsp_vs_logp::logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bsp_vs_logp::model::rngutil::SeedStream;
use bsp_vs_logp::model::{HRelation, Payload, ProcId, Word};
use proptest::prelude::*;
use std::sync::Arc;

/// Random multi-round permutation workload: in round `r`, every processor
/// sends one message along a permutation and receives one. Stall-free for
/// capacity ≥ 2 (at most two rounds' messages can overlap at a receiver).
fn permutation_workload(p: usize, perms: &[Vec<usize>]) -> Vec<Script> {
    (0..p)
        .map(|i| {
            let mut ops = Vec::new();
            for (r, perm) in perms.iter().enumerate() {
                ops.push(Op::Send {
                    dst: ProcId(perm[i] as u32),
                    payload: Payload::word(r as u32, (i * 1000 + r) as Word),
                });
                ops.push(Op::Recv);
            }
            Script::new(ops)
        })
        .collect()
}

fn received_words(scripts: Vec<Script>) -> Vec<Vec<(u32, Word)>> {
    scripts
        .into_iter()
        .map(|s| {
            let mut v: Vec<(u32, Word)> = s
                .into_received()
                .iter()
                .map(|e| (e.payload.tag, e.payload.expect_word()))
                .collect();
            v.sort();
            v
        })
        .collect()
}

fn perm_strategy(p: usize, rounds: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(Just(()).prop_perturb(move |_, mut rng| {
        let mut v: Vec<usize> = (0..p).collect();
        for i in (1..p).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
        v
    }), rounds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1 hosting preserves the received-message multiset for
    /// arbitrary permutation workloads, for both the 1:1 and the clustered
    /// (work-preserving) hosts.
    #[test]
    fn hosted_logp_matches_native(
        perms in perm_strategy(8, 3),
        l in 4u64..20,
        g in 2u64..5,
    ) {
        prop_assume!(g <= l && l.div_ceil(g) >= 2);
        let p = 8;
        let logp = LogpParams::new(p, l, 1, g).unwrap();
        let mut native = LogpMachine::with_config(
            logp,
            LogpConfig::stall_free(),
            permutation_workload(p, &perms),
        );
        prop_assume!(native.run().is_ok()); // skip (rare) stalling schedules
        let want = received_words(native.into_programs());

        let bsp = BspParams::new(p, g, l).unwrap();
        let rep = simulate_logp_on_bsp(
            logp,
            bsp,
            permutation_workload(p, &perms),
            Theorem1Config::default(),
            &RunOptions::new(),
        )
        .unwrap();
        prop_assert_eq!(&received_words(rep.programs), &want);

        let bsp2 = BspParams::new(p / 2, g, l).unwrap();
        let rep = simulate_logp_on_bsp_clustered(
            logp,
            bsp2,
            2,
            permutation_workload(p, &perms),
            &RunOptions::new().budget(100_000),
        )
        .unwrap();
        prop_assert_eq!(&received_words(rep.programs), &want);
    }

    /// Sample sort sorts arbitrary key distributions.
    #[test]
    fn sample_sort_sorts(
        keys in proptest::collection::vec(
            proptest::collection::vec(-1000i64..1000, 0..30), 4),
    ) {
        let p = keys.len();
        let params = BspParams::new(p, 2, 16).unwrap();
        let mut want: Vec<Word> = keys.iter().flatten().copied().collect();
        want.sort_unstable();
        let (blocks, _) = sample_sort(params, keys).unwrap();
        let got: Vec<Word> = blocks.iter().flatten().copied().collect();
        prop_assert_eq!(got, want);
    }

    /// Radix sort sorts arbitrary bounded non-negative keys.
    #[test]
    fn radix_sort_sorts(
        keys in proptest::collection::vec(
            proptest::collection::vec(0i64..4096, 0..25), 8),
        g in 1u64..4,
    ) {
        let p = keys.len();
        let passes = 12u32.div_ceil(DIGIT_BITS);
        let params = BspParams::new(p, g, 8).unwrap();
        let mut want: Vec<Word> = keys.iter().flatten().copied().collect();
        want.sort_unstable();
        let (blocks, _) = radix_sort(params, keys, passes).unwrap();
        let got: Vec<Word> = blocks.iter().flatten().copied().collect();
        prop_assert_eq!(got, want);
    }

    /// The stalling regime (`h > ⌈L/G⌉`): Theorem 3's high-probability
    /// case cannot apply — capacity is below the relation degree, so the
    /// Stalling Rule *will* fire — but the §4.3 backstop must hold:
    /// routing completes (exact delivery is verified inside
    /// `route_randomized`), in one attempt, within a constant of `O(Gh²)`.
    #[test]
    fn randomized_routing_survives_stalling_regime(
        p_exp in 2u32..4,
        h_mult in 2u64..5,
        hot in proptest::bool::ANY,
        seed in 0u64..300,
    ) {
        let p = 1usize << p_exp;
        let params = LogpParams::new(p, 8, 1, 4).unwrap(); // capacity 2
        let cap = params.capacity();
        let rel = if hot {
            // Everyone hammers P0: the §2.2 stalling pattern.
            HRelation::hot_spot(p, ProcId(0), p - 1, h_mult as usize)
        } else {
            let mut rng = SeedStream::new(seed).derive("stall-rel", 0);
            HRelation::random_exact(&mut rng, p, (cap * h_mult) as usize)
        };
        let h = rel.degree() as u64;
        prop_assume!(h > cap); // the defining property of the regime
        let rep = route_randomized(params, &rel, 2.0, &RunOptions::new().seed(seed)).unwrap();
        prop_assert_eq!(rep.attempts, 1, "clean media never need retries");
        // Explicit slack 4 on the O(Gh²) backstop (covers round framing
        // and per-message overheads the asymptotic bound absorbs).
        let backstop = 4 * stalling_worst_case(&params, h);
        prop_assert!(
            rep.time.get() <= backstop,
            "h={} time={} exceeds 4x backstop {}", h, rep.time.get(), backstop
        );
    }

    /// The stalling regime under injected faults: delivery stays exact
    /// (verified inside the router), and the faulted run is never faster
    /// than its clean twin.
    #[test]
    fn stalling_regime_survives_fault_plans(
        h_mult in 2u64..4,
        seed in 0u64..150,
        jitter in 1u64..8,
        squeeze in 1u64..3,
    ) {
        let p = 8;
        let params = LogpParams::new(p, 8, 1, 4).unwrap(); // capacity 2
        let mut rng = SeedStream::new(seed).derive("stall-rel", 1);
        let rel = HRelation::random_exact(&mut rng, p, (params.capacity() * h_mult) as usize);
        prop_assume!(rel.degree() as u64 > params.capacity());
        let clean = route_randomized(params, &rel, 2.0, &RunOptions::new().seed(seed)).unwrap();
        let plan = FaultPlan::new(seed ^ 0xFA17).jitter_uniform(jitter).capacity_squeeze(squeeze);
        let opts = RunOptions::new().seed(seed).faults(Arc::new(plan));
        let faulted = route_randomized(params, &rel, 2.0, &opts).unwrap();
        prop_assert!(faulted.time >= clean.time, "faults sped routing up");
        prop_assert!(faulted.attempts >= 1);
    }

    /// LogP scan equals the sequential prefix for arbitrary inputs and
    /// machine shapes.
    #[test]
    fn logp_scan_matches_prefix(
        values in proptest::collection::vec(-50i64..50, 1..20),
        g in 2u64..6,
        extra_l in 0u64..12,
    ) {
        let p = values.len();
        let l = g + extra_l;
        let params = LogpParams::new(p, l, 1, g).unwrap();
        let (got, _) = scan(params, &values, |a, b| a + b, 7).unwrap();
        let mut acc = 0;
        let want: Vec<Word> = values.iter().map(|&v| { acc += v; acc }).collect();
        prop_assert_eq!(got, want);
    }
}

//! Offline stand-in for `rayon`: data-parallel `map`/`collect` over owned
//! vectors, built on `std::thread::scope`.
//!
//! The build environment has no crates.io access, so the sweep harness in
//! `bvl-bench` links this shim instead of the real crate. The API mirrors
//! rayon's parallel-iterator vocabulary (`into_par_iter().map(f).collect()`)
//! so that swapping the real rayon back in is a workspace-manifest change,
//! not a code change. Scheduling is a shared work queue drained by
//! `current_num_threads()` workers; results are written back by index, so
//! collection order always equals input order regardless of interleaving.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::Mutex;

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
}

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert self into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A parallel iterator: a finite ordered sequence whose per-item work may
/// execute on any worker thread.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Execute the pipeline, returning items in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Map each element through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Collect the results, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Apply `f` to every element in parallel (for side effects).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _ = self.map(f).run();
    }
}

/// Collection from a parallel iterator (order-preserving).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the collection by draining the iterator.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        iter.run()
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// The result of [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        par_map(self.base.run(), &self.f)
    }
}

fn par_map<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").pop_front();
                match next {
                    Some((i, item)) => {
                        *slots[i].lock().expect("slot poisoned") = Some(f(item));
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("worker completed every dequeued item")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(ys, xs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let e: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(e.is_empty());
        let s: Vec<u32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(s, vec![8]);
    }

    #[test]
    fn chained_maps() {
        let ys: Vec<String> = (0..64)
            .collect::<Vec<i32>>()
            .into_par_iter()
            .map(|x| x * x)
            .map(|x| format!("{x}"))
            .collect();
        assert_eq!(ys[8], "64");
        assert_eq!(ys.len(), 64);
    }

    #[test]
    fn threads_at_least_one() {
        assert!(super::current_num_threads() >= 1);
    }
}

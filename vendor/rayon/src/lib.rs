//! Offline stand-in for `rayon`: data-parallel `map`/`collect` over owned
//! vectors, built on `std::thread::scope`.
//!
//! The build environment has no crates.io access, so the sweep harness in
//! `bvl-bench` links this shim instead of the real crate. The API mirrors
//! rayon's parallel-iterator vocabulary (`into_par_iter().map(f).collect()`)
//! so that swapping the real rayon back in is a workspace-manifest change,
//! not a code change. Scheduling is a shared work queue drained by
//! `current_num_threads()` workers; results are written back by index, so
//! collection order always equals input order regardless of interleaving.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
}

thread_local! {
    /// Thread count installed by [`ThreadPool::install`], if any. The shim
    /// has no persistent worker threads, so a "pool" reduces to the number
    /// of scoped workers `par_map` spawns on the installing thread.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_THREADS.with(Cell::get) {
        return n;
    }
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

/// A fixed-size thread pool, mirroring `rayon::ThreadPool`. The shim keeps
/// no resident workers; the pool only pins the worker count that parallel
/// operations inside [`install`](ThreadPool::install) will use.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count governing any parallel
    /// operations it performs, restoring the previous setting afterwards.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(Some(self.threads)));
        let out = f();
        INSTALLED_THREADS.with(|c| c.set(prev));
        out
    }

    /// The number of worker threads this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Builder for [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    threads: Option<usize>,
}

/// Error from [`ThreadPoolBuilder::build`] — never produced by the shim,
/// kept so call sites match the real crate's fallible signature.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with default settings (host-parallelism worker count).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Set the worker count; `0` means the host default, as in rayon.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.threads = Some(n);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: match self.threads {
                Some(n) if n > 0 => n,
                _ => default_threads(),
            },
        })
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert self into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A parallel iterator: a finite ordered sequence whose per-item work may
/// execute on any worker thread.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Execute the pipeline, returning items in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Map each element through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Collect the results, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Apply `f` to every element in parallel (for side effects).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _ = self.map(f).run();
    }
}

/// Collection from a parallel iterator (order-preserving).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the collection by draining the iterator.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        iter.run()
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// The result of [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        par_map(self.base.run(), &self.f)
    }
}

fn par_map<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").pop_front();
                match next {
                    Some((i, item)) => {
                        *slots[i].lock().expect("slot poisoned") = Some(f(item));
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("worker completed every dequeued item")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(ys, xs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let e: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(e.is_empty());
        let s: Vec<u32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(s, vec![8]);
    }

    #[test]
    fn chained_maps() {
        let ys: Vec<String> = (0..64)
            .collect::<Vec<i32>>()
            .into_par_iter()
            .map(|x| x * x)
            .map(|x| format!("{x}"))
            .collect();
        assert_eq!(ys[8], "64");
        assert_eq!(ys.len(), 64);
    }

    #[test]
    fn threads_at_least_one() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn pool_install_pins_thread_count() {
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let (inside, result) = pool.install(|| {
            let ys: Vec<u32> = (0..16u32).collect::<Vec<_>>().into_par_iter().map(|x| x + 1).collect();
            (super::current_num_threads(), ys)
        });
        assert_eq!(inside, 3);
        assert_eq!(result, (1..=16).collect::<Vec<u32>>());
        // The override does not leak past install().
        assert_ne!(super::current_num_threads(), 0);
        let pool1 = super::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool1.install(|| assert_eq!(super::current_num_threads(), 1));
    }

    #[test]
    fn builder_zero_means_host_default() {
        let pool = super::ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}

//! Case execution: config, RNG, and the pass/reject/fail protocol.

/// Configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's preconditions did not hold (`prop_assume!`); try another.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-case deterministic RNG (SplitMix64 core).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Construct from a seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// An independent child RNG (for `prop_perturb`).
    pub fn fork(&mut self) -> TestRng {
        TestRng::from_seed(self.next_u64())
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drive one `proptest!` test function: run cases until `config.cases`
/// succeed, rejecting per `prop_assume!`, panicking on the first failure.
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    let mut passed: u32 = 0;
    let max_attempts = (config.cases as u64) * 16 + 1024;
    let mut attempt: u64 = 0;
    while passed < config.cases {
        if attempt >= max_attempts {
            assert!(
                passed > 0,
                "proptest '{name}': every case was rejected ({attempt} attempts)"
            );
            // Too sparse a precondition; accept what we have, like a
            // -very lenient- global reject budget.
            return;
        }
        let mut rng = TestRng::from_seed(base.wrapping_add(attempt.wrapping_mul(0xA076_1D64_78BD_642F)));
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case attempt {attempt}: {msg}");
            }
        }
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut n = 0;
        run_cases("t", &ProptestConfig::with_cases(10), |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn rejects_do_not_count() {
        let mut attempts = 0;
        let mut passes = 0;
        run_cases("t2", &ProptestConfig::with_cases(5), |rng| {
            attempts += 1;
            if rng.next_u64() % 2 == 0 {
                return Err(TestCaseError::Reject);
            }
            passes += 1;
            Ok(())
        });
        assert_eq!(passes, 5);
        assert!(attempts >= 5);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_panics() {
        run_cases("t3", &ProptestConfig::with_cases(5), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::from_seed(9);
        let mut b = TestRng::from_seed(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

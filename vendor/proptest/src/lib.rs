//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro (with `#![proptest_config(...)]`), integer-range and tuple
//! strategies, `Just`, `prop_map` / `prop_flat_map` / `prop_perturb`,
//! `proptest::collection::vec`, `proptest::bool::ANY`, `prop_oneof!`, and
//! the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design: generation is plain
//! uniform sampling (no size-biased distributions), failing cases are
//! reported with the case's seed but **not shrunk**, and regression files
//! are ignored. Each test function's case stream is deterministic — seeded
//! from the test name — so failures reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: a fixed size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over booleans.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly random boolean.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?} ({})", a, b, format!($($fmt)*));
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Choose uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_arm($strat)),+
        ])
    };
}

/// Define property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run_cases(stringify!($name), &config, |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    (($config:expr);) => {};
}

//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy it
    /// selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Transform generated values with access to a private RNG.
    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { base: self, f }
    }

    /// Box this strategy (e.g. for heterogeneous [`Union`] arms).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_perturb`].
#[derive(Clone, Debug)]
pub struct Perturb<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Perturb<S, F>
where
    S: Strategy,
    F: Fn(S::Value, TestRng) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        let v = self.base.generate(rng);
        (self.f)(v, rng.fork())
    }
}

/// Uniform choice among strategies with a common value type — the engine
/// behind `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from boxed arms (at least one).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

}

/// Box one arm (helper for `prop_oneof!`).
pub fn boxed_arm<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy over empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let (a, b) = (0usize..10, -4i64..=4).generate(&mut rng);
            assert!(a < 10);
            assert!((-4..=4).contains(&b));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let s = (1usize..5).prop_flat_map(|n| (Just(n), 0usize..n)).prop_map(|(n, k)| (n, k));
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let (n, k) = s.generate(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let u = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::from_seed(3);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn collection_vec_sizes() {
        let s = crate::collection::vec(0u32..100, 2..5);
        let mut rng = TestRng::from_seed(4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn perturb_gets_independent_rng() {
        let s = Just(()).prop_perturb(|_, mut rng| rng.next_u64());
        let mut rng = TestRng::from_seed(5);
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
    }
}

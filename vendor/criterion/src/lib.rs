//! Offline stand-in for `criterion`: wall-clock micro-benchmark harness with
//! the same authoring API (`criterion_group!`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`).
//!
//! Measurements are real (monotonic-clock samples after a warm-up phase) but
//! the statistics are plain min/mean/max over samples — no bootstrapping,
//! no HTML reports. Each benchmark prints one line:
//!
//! ```text
//! logp_engine/ring_x8/64   time: [412.31 µs 418.02 µs 431.77 µs]  (20 samples)
//! ```
//!
//! When `CRITERION_MINI_JSON` is set, every measurement is also appended to
//! that file as a JSON line `{"id": ..., "mean_ns": ..., ...}` so scripts can
//! consume results without parsing the text output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a parameter component, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// An id from a parameter only.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (accepted and ignored by this shim).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The measurement driver handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_count: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, called in batches sized to fill the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up window elapses, timing one call to
        // estimate a batch size.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < self.warm_up || calls == 0 {
            black_box(f());
            calls += 1;
            if calls >= 1_000_000 {
                break;
            }
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls as f64;
        let budget = self.measurement.as_secs_f64() / self.sample_count as f64;
        let batch = ((budget / per_call.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t0.elapsed().as_secs_f64() * 1e9 / batch as f64;
            self.samples_ns.push(ns);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(id: &str, samples: &[f64]) {
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
    println!(
        "{id:<48} time: [{} {} {}]  ({} samples)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        samples.len()
    );
    if let Ok(path) = std::env::var("CRITERION_MINI_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                f,
                "{{\"id\": \"{id}\", \"min_ns\": {min:.1}, \"mean_ns\": {mean:.1}, \"max_ns\": {max:.1}, \"samples\": {}}}",
                samples.len()
            );
        }
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement window (split across samples).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Throughput annotation (ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_count: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        report(&full, &b.samples_ns);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` plus optional filter strings; keep the
        // first free-standing argument as a substring filter like criterion.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg.starts_with('-') {
                continue;
            }
            filter = Some(arg);
            break;
        }
        Criterion { filter }
    }
}

impl Criterion {
    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }

    /// Run a stand-alone benchmark with default settings.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id);
        group.bench_function(BenchmarkId { id: String::new() }, |b| f(b));
        group.finish();
        self
    }

    /// Match the real crate's builder API (no-op).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Define a group function that runs the given benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.bench_function("skipped", |_b| ran = true);
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.0), "12.00 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.00 ms");
    }
}

//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! This workspace pins all randomness to `rand_chacha`'s `ChaCha8Rng`
//! through `bvl_model::rngutil::SeedStream`, so only a small slice of the
//! real crate's surface is ever exercised: the three core traits and
//! integer `gen_range`. The build environment has no network access to
//! crates.io, so that slice is vendored here as a path dependency. The
//! trait shapes match rand 0.8 closely enough that swapping the real crate
//! back in is a one-line workspace change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64 like rand 0.8 does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A range from which a uniform value can be drawn (integer ranges only).
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Convenience extensions over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value in the given (non-empty) range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool({p})");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Multiply-shift reduction of a random word onto `[0, span)` (`span > 0`).
#[inline]
fn mul_shift(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range over empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(mul_shift(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..2000 {
            let a = rng.gen_range(0usize..17);
            assert!(a < 17);
            let b = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(3u64..4);
            assert_eq!(c, 3);
        }
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = Counter(1);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(1);
        let _ = rng.gen_range(5u32..5);
    }
}

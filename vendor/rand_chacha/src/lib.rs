//! Offline stand-in for `rand_chacha`: a faithful ChaCha8 keystream RNG.
//!
//! The block function is the original DJB ChaCha construction (constants
//! `"expand 32-byte k"`, 64-bit block counter, 64-bit zero nonce) reduced to
//! 8 rounds. Output is a bit-exact function of the 256-bit seed on every
//! platform, which is the property `bvl_model::rngutil::SeedStream` relies
//! on for replayable experiments. The word-emission order (sequential `u32`
//! words of each 64-byte block) differs from the upstream crate's SIMD
//! buffering, so streams are internally consistent but not interchangeable
//! with upstream `rand_chacha` streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

impl core::fmt::Debug for ChaCha8Rng {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        f.debug_struct("ChaCha8Rng")
            .field("counter", &self.counter)
            .field("idx", &self.idx)
            .finish_non_exhaustive()
    }
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s: [u32; 16] = [0; 16];
        s[..4].copy_from_slice(&SIGMA);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        // s[14], s[15]: zero nonce.
        let input = s;
        for _ in 0..4 {
            // One double round: 4 column rounds + 4 diagonal rounds.
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for (out, inp) in s.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = s;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// The current 64-byte block index.
    pub fn get_word_pos(&self) -> u128 {
        u128::from(self.counter.wrapping_sub(1)) * 16 + self.idx as u128
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut rng = ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::from_seed([7; 32]);
        let mut b = ChaCha8Rng::from_seed([7; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::from_seed([8; 32]);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn blocks_differ_and_stream_continues() {
        let mut rng = ChaCha8Rng::from_seed([1; 32]);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn seed_from_u64_is_stable() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::from_seed([3; 32]);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.get_word_pos(), b.get_word_pos());
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = ChaCha8Rng::from_seed([9; 32]);
        let mut b = ChaCha8Rng::from_seed([9; 32]);
        let mut bytes = [0u8; 8];
        a.fill_bytes(&mut bytes);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        assert_eq!(&bytes[..4], &w0);
        assert_eq!(&bytes[4..], &w1);
    }
}

//! Minimal JSON encode/parse for the store's closed record schema.
//!
//! The repo's policy (see `bvl-obs::export`) is hand-written JSON for the
//! few fixed shapes we emit rather than a dependency: here that is one
//! record object per line (flat string/number fields plus one
//! array-of-array-of-strings `payload`), with full string escaping —
//! payload cells are experiment rows and may contain quotes or non-ASCII.

use std::fmt::Write as _;

/// Escape `s` into a JSON string literal body (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Encode a list of table rows as a JSON array of arrays of strings.
pub fn encode_rows(rows: &[Vec<String>]) -> String {
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, cell) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape(cell));
            out.push('"');
        }
        out.push(']');
    }
    out.push(']');
    out
}

/// A single-pass cursor over a JSON text slice.
pub struct Cursor<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Start parsing `text`.
    pub fn new(text: &'a str) -> Cursor<'a> {
        Cursor { text, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self
            .text
            .as_bytes()
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.text.as_bytes().get(self.pos).copied()
    }

    /// Consume the literal byte `b` (after whitespace) or error.
    pub fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} of: {}",
                b as char, self.pos, self.text
            ))
        }
    }

    /// Consume the literal byte `b` if present (after whitespace).
    pub fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Parse a quoted, escaped JSON string.
    pub fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let bytes = self.text.as_bytes();
        let mut out = String::new();
        loop {
            match bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .text
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(
                                char::from_u32(code).ok_or("\\u escape is not a scalar value")?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape: {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 scalar (multi-byte safe).
                    let rest = &self.text[self.pos..];
                    let c = rest.chars().next().expect("non-empty rest");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse an unsigned integer.
    pub fn u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .text
            .as_bytes()
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit())
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected number at byte {start}"));
        }
        self.text[start..self.pos]
            .parse::<u64>()
            .map_err(|e| format!("bad number: {e}"))
    }

    /// Parse a JSON boolean literal.
    pub fn boolean(&mut self) -> Result<bool, String> {
        self.skip_ws();
        for (lit, val) in [("true", true), ("false", false)] {
            if self.text[self.pos..].starts_with(lit) {
                self.pos += lit.len();
                return Ok(val);
            }
        }
        Err(format!("expected boolean at byte {} of: {}", self.pos, self.text))
    }

    /// Parse a JSON array of arrays of strings (the payload shape).
    pub fn rows(&mut self) -> Result<Vec<Vec<String>>, String> {
        self.expect(b'[')?;
        let mut rows = Vec::new();
        if self.eat(b']') {
            return Ok(rows);
        }
        loop {
            self.expect(b'[')?;
            let mut row = Vec::new();
            if !self.eat(b']') {
                loop {
                    row.push(self.string()?);
                    if !self.eat(b',') {
                        break;
                    }
                }
                self.expect(b']')?;
            }
            rows.push(row);
            if !self.eat(b',') {
                break;
            }
        }
        self.expect(b']')?;
        Ok(rows)
    }

    /// True when only whitespace remains.
    pub fn at_end(&mut self) -> bool {
        self.peek().is_none()
    }
}

/// Round-trip convenience: parse a payload produced by [`encode_rows`].
pub fn decode_rows(text: &str) -> Result<Vec<Vec<String>>, String> {
    let mut cur = Cursor::new(text);
    let rows = cur.rows()?;
    if !cur.at_end() {
        return Err(format!("trailing bytes after payload: {text}"));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_round_trip_with_hostile_cells() {
        let rows = vec![
            vec!["plain".to_string(), "with \"quotes\"".to_string()],
            vec!["back\\slash\nnewline\ttab".to_string()],
            vec!["γ̂=1.23 δ̂=4.56".to_string(), String::new()],
            vec![],
            vec!["ctrl\u{1}char".to_string()],
        ];
        let enc = encode_rows(&rows);
        assert_eq!(decode_rows(&enc).unwrap(), rows);
    }

    #[test]
    fn empty_payload_round_trips() {
        assert_eq!(decode_rows(&encode_rows(&[])).unwrap(), Vec::<Vec<String>>::new());
    }

    #[test]
    fn torn_and_malformed_payloads_are_errors() {
        assert!(decode_rows("[[\"a\"").is_err());
        assert!(decode_rows("[[\"a\"]]x").is_err());
        assert!(decode_rows("{\"not\":\"rows\"}").is_err());
        assert!(decode_rows("[[\"bad \\u escape\\uZZZZ\"]]").is_err());
    }
}

//! Minimal epoll + eventfd bindings for the nonblocking front end.
//!
//! The workspace vendors no `libc`, so the handful of syscalls the event
//! loop needs are declared here directly against the C ABI. This is the one
//! module in the crate allowed to contain `unsafe`; everything it exports
//! is a safe wrapper owning its file descriptor ([`Epoll`], [`EventFd`])
//! plus the handful of `EPOLL*` interest bits the loop uses.
//!
//! Level-triggered only: the HTTP loop re-arms interest explicitly on
//! state transitions (read → run → write), and level-triggered wakeups
//! make "forgot to re-arm" a performance bug instead of a hang.
#![allow(unsafe_code)]

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint};

/// Readable interest (connection has bytes, or listener has an accept).
pub const EPOLLIN: u32 = 0x001;
/// Writable interest (send buffer has room again).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported; no need to request).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported; no need to request).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// The kernel's `struct epoll_event`. Packed on x86_64 (the kernel ABI
/// packs it there so 32- and 64-bit layouts agree); naturally aligned on
/// other architectures.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// `EPOLL*` bit set.
    pub events: u32,
    /// Caller token, echoed back verbatim on readiness.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn listen(sockfd: c_int, backlog: c_int) -> c_int;
}

/// Re-issue `listen(2)` on an already-listening socket to widen its
/// accept backlog. `std`'s `TcpListener::bind` hardcodes 128, which a
/// storm of simultaneous connects overflows — overflowed handshakes
/// complete client-side but park in `SYN_RECV` server-side until a
/// SYN-ACK retransmit timer fires, adding seconds of latency the event
/// loop never sees. Linux applies the new backlog to an already-listening
/// socket; the kernel caps it at `net.core.somaxconn`.
pub fn widen_backlog(fd: RawFd, backlog: i32) -> io::Result<()> {
    // SAFETY: `fd` is a live socket owned by the caller; `listen` only
    // inspects it.
    cvt(unsafe { listen(fd, backlog as c_int) }).map(drop)
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Create a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: epoll_create1 returned a fresh fd we now uniquely own.
        Ok(Epoll { fd: unsafe { OwnedFd::from_raw_fd(fd) } })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        // SAFETY: `ev` is a live, correctly-laid-out epoll_event; the fds
        // are open (callers register fds they own).
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` with interest `events`, tagged `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Change the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregister `fd`.
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: as in `ctl`; pre-2.6.9 kernels demand a non-null event
        // pointer for DEL, so pass one unconditionally.
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Wait up to `timeout_ms` (−1 = forever) and fill `events`. Returns
    /// the number of ready entries; retries transparently on `EINTR`.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the buffer outlives the call and maxevents matches
            // its length; the kernel writes at most that many entries.
            let n = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as c_int,
                    timeout_ms as c_int,
                )
            };
            match cvt(n) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// A nonblocking eventfd: the loop's cross-thread wakeup doorbell.
///
/// Worker threads [`EventFd::ring`] it when a response is ready (or the
/// server is stopping); the event loop registers it `EPOLLIN` and
/// [`EventFd::drain`]s it on wakeup.
#[derive(Debug)]
pub struct EventFd {
    file: File,
}

impl EventFd {
    /// Create a nonblocking, close-on-exec eventfd with counter 0.
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        // SAFETY: eventfd returned a fresh fd we now uniquely own; File
        // gives us read/write/close without further unsafe.
        Ok(EventFd { file: unsafe { File::from_raw_fd(fd) } })
    }

    /// The raw descriptor, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Add 1 to the counter, waking any epoll_wait watching it.
    pub fn ring(&self) -> io::Result<()> {
        match (&self.file).write_all(&1u64.to_ne_bytes()) {
            Ok(()) => Ok(()),
            // Counter saturated: the loop is already guaranteed a wakeup.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Reset the counter so the next [`EventFd::ring`] wakes the loop
    /// again. Returns the count drained (0 if it was already clear).
    pub fn drain(&self) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        match (&self.file).read_exact(&mut buf) {
            Ok(()) => Ok(u64::from_ne_bytes(buf)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(0),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn eventfd_rings_and_drains_through_epoll() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw(), EPOLLIN, 7).unwrap();
        let mut buf = [EpollEvent { events: 0, data: 0 }; 8];
        // Nothing rung yet: a zero-timeout wait reports nothing.
        assert_eq!(ep.wait(&mut buf, 0).unwrap(), 0);
        ev.ring().unwrap();
        ev.ring().unwrap();
        let n = ep.wait(&mut buf, 1000).unwrap();
        assert_eq!(n, 1);
        let token = buf[0].data; // copy out: packed fields can't be borrowed
        assert_eq!(token, 7);
        assert_eq!(ev.drain().unwrap(), 2);
        assert_eq!(ep.wait(&mut buf, 0).unwrap(), 0, "drained ⇒ level clears");
    }

    #[test]
    fn socket_readiness_reports_the_registered_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(listener.as_raw_fd(), EPOLLIN, 42).unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let mut buf = [EpollEvent { events: 0, data: 0 }; 8];
        let n = ep.wait(&mut buf, 2000).unwrap();
        assert_eq!(n, 1);
        let token = buf[0].data;
        assert_eq!(token, 42, "accept readiness carries the token");
        let (server_side, _) = listener.accept().unwrap();
        // A connected peer with pending bytes is EPOLLIN-ready too.
        server_side.set_nonblocking(true).unwrap();
        ep.add(server_side.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 43).unwrap();
        client.write_all(b"ping").unwrap();
        let n = ep.wait(&mut buf, 2000).unwrap();
        assert!(n >= 1);
        assert!(buf[..n].iter().any(|e| e.data == 43));
        ep.del(server_side.as_raw_fd()).unwrap();
        drop(client);
    }
}

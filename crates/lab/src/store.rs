//! The persistent, content-addressed result store.
//!
//! On disk a store is a directory:
//!
//! ```text
//! <dir>/MANIFEST.json          {"format":1,"code":"<hex>"}
//! <dir>/segment-00000.jsonl    one cell record per line, append-only
//! <dir>/segment-00001.jsonl    …
//! <dir>/stale-<code8>/…        archived segments from older code
//! ```
//!
//! Crash safety is by construction rather than by locking:
//!
//! * **Appends** are one `writeln!` + flush per cell. A crash can tear at
//!   most the final line of the newest segment; loading skips unparsable
//!   lines (counted in [`Store::torn`]) instead of refusing the store.
//! * **Rotation** closes the current segment and opens the next numbered
//!   one — no file is ever rewritten in place.
//! * **Compaction** ([`Store::gc`]) writes all live cells into a fresh
//!   segment via `.tmp` + atomic rename, *then* unlinks the old segments.
//!   A crash between those steps leaves duplicate records, which loading
//!   resolves last-writer-wins (by segment order).
//! * **Invalidation**: when the manifest's code fingerprint disagrees with
//!   the running binary's, the store is *stale* — depending on
//!   [`OnStale`], opening archives the old generation into a `stale-*/`
//!   subdirectory, fails, or loads it read-only for inspection
//!   (`lab diff` uses the latter to report what would be invalidated).

use crate::fingerprint::CodeFingerprint;
use crate::jsonio::{escape, Cursor};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// On-disk format version; bump when record or manifest shapes change.
pub const FORMAT: u32 = 1;

/// Lines per segment before the writer rotates to the next file.
const SEGMENT_ROTATE_LINES: usize = 512;

/// One cached grid cell: identity components plus the result rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Content address (see [`crate::fingerprint::cell_key`]).
    pub key: String,
    /// Experiment name (`table1`, `faults`, …).
    pub exp: String,
    /// Sweep domain within the experiment (also the RNG salt).
    pub domain: String,
    /// Index within the domain (also the RNG lane).
    pub index: usize,
    /// Human-readable parameter string for this cell.
    pub params: String,
    /// Fault-plan line for adversarial cells.
    pub plan: Option<String>,
    /// Result payload: the cell's table rows, exactly as printed.
    pub rows: Vec<Vec<String>>,
}

impl Cell {
    pub(crate) fn encode(&self) -> String {
        let mut line = format!(
            "{{\"key\":\"{}\",\"exp\":\"{}\",\"domain\":\"{}\",\"index\":{},\"params\":\"{}\"",
            escape(&self.key),
            escape(&self.exp),
            escape(&self.domain),
            self.index,
            escape(&self.params),
        );
        if let Some(plan) = &self.plan {
            line.push_str(&format!(",\"plan\":\"{}\"", escape(plan)));
        }
        line.push_str(",\"payload\":");
        line.push_str(&crate::jsonio::encode_rows(&self.rows));
        line.push('}');
        line
    }

    pub(crate) fn decode(line: &str) -> Result<Cell, String> {
        let mut cur = Cursor::new(line);
        cur.expect(b'{')?;
        let mut cell = Cell {
            key: String::new(),
            exp: String::new(),
            domain: String::new(),
            index: 0,
            params: String::new(),
            plan: None,
            rows: Vec::new(),
        };
        let mut saw_key = false;
        let mut saw_payload = false;
        loop {
            let field = cur.string()?;
            cur.expect(b':')?;
            match field.as_str() {
                "key" => {
                    cell.key = cur.string()?;
                    saw_key = true;
                }
                "exp" => cell.exp = cur.string()?,
                "domain" => cell.domain = cur.string()?,
                "index" => cell.index = cur.u64()? as usize,
                "params" => cell.params = cur.string()?,
                "plan" => cell.plan = Some(cur.string()?),
                "payload" => {
                    cell.rows = cur.rows()?;
                    saw_payload = true;
                }
                other => return Err(format!("unknown record field '{other}'")),
            }
            if !cur.eat(b',') {
                break;
            }
        }
        cur.expect(b'}')?;
        if !cur.at_end() {
            return Err("trailing bytes after record".into());
        }
        if !saw_key || !saw_payload {
            return Err("record missing key or payload".into());
        }
        Ok(cell)
    }
}

/// What to do when the store on disk was written by different code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OnStale {
    /// Archive the stale generation into `stale-<code8>/` and start fresh.
    Invalidate,
    /// Refuse to open (`io::ErrorKind::InvalidData`).
    Error,
    /// Load it anyway, read-only in spirit: `stale()` reports the writing
    /// generation so tools can warn. `put` still appends (the caller is
    /// expected not to).
    Keep,
}

/// Summary of a [`Store::gc`] compaction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Live cells rewritten into the fresh segment.
    pub live: usize,
    /// Old segment files removed.
    pub removed_segments: usize,
    /// Stale-generation archive directories removed.
    pub removed_archives: usize,
}

/// The open store: an in-memory index over append-only JSONL segments.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    code: CodeFingerprint,
    index: HashMap<String, Cell>,
    stale_code: Option<String>,
    writer: Option<BufWriter<File>>,
    next_segment: u32,
    segment_lines: usize,
    torn: usize,
}

pub(crate) fn segment_path(dir: &Path, id: u32) -> PathBuf {
    dir.join(format!("segment-{id:05}.jsonl"))
}

pub(crate) fn segment_id(name: &str) -> Option<u32> {
    name.strip_prefix("segment-")?
        .strip_suffix(".jsonl")?
        .parse()
        .ok()
}

fn manifest_text(code: &CodeFingerprint) -> String {
    format!("{{\"format\":{FORMAT},\"code\":\"{}\"}}\n", escape(code.as_str()))
}

fn parse_manifest(text: &str) -> Result<(u32, String), String> {
    let mut cur = Cursor::new(text);
    cur.expect(b'{')?;
    let mut format = None;
    let mut code = None;
    loop {
        let field = cur.string()?;
        cur.expect(b':')?;
        match field.as_str() {
            "format" => format = Some(cur.u64()? as u32),
            "code" => code = Some(cur.string()?),
            other => return Err(format!("unknown manifest field '{other}'")),
        }
        if !cur.eat(b',') {
            break;
        }
    }
    cur.expect(b'}')?;
    Ok((
        format.ok_or("manifest missing format")?,
        code.ok_or("manifest missing code")?,
    ))
}

/// Write `text` to `path` atomically (`.tmp` + rename).
pub(crate) fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

impl Store {
    /// Open (creating if needed) the store at `dir` for code generation
    /// `code`, resolving a stale store per `on_stale`.
    pub fn open(dir: &Path, code: CodeFingerprint, on_stale: OnStale) -> io::Result<Store> {
        fs::create_dir_all(dir)?;
        let manifest_path = dir.join("MANIFEST.json");
        let mut stale_code = None;
        if manifest_path.exists() {
            let text = fs::read_to_string(&manifest_path)?;
            let (format, disk_code) = parse_manifest(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            if format != FORMAT {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("store format {format} != supported {FORMAT}"),
                ));
            }
            if disk_code != code.as_str() {
                match on_stale {
                    OnStale::Error => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "store written by code {disk_code}, running code is {code}"
                            ),
                        ));
                    }
                    OnStale::Invalidate => {
                        archive_generation(dir, &disk_code)?;
                    }
                    OnStale::Keep => stale_code = Some(disk_code),
                }
            }
        }
        if stale_code.is_none() {
            write_atomic(&manifest_path, &manifest_text(&code))?;
        }

        let mut segments: Vec<u32> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| segment_id(&e.file_name().to_string_lossy()))
            .collect();
        segments.sort_unstable();
        let mut index = HashMap::new();
        let mut torn = 0;
        for &id in &segments {
            let text = fs::read_to_string(segment_path(dir, id))?;
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match Cell::decode(line) {
                    Ok(cell) => {
                        index.insert(cell.key.clone(), cell);
                    }
                    Err(_) => torn += 1,
                }
            }
        }
        Ok(Store {
            dir: dir.to_path_buf(),
            code,
            index,
            stale_code,
            writer: None,
            next_segment: segments.last().map_or(0, |&m| m + 1),
            segment_lines: 0,
            torn,
        })
    }

    /// The code fingerprint this store handle writes under.
    pub fn code(&self) -> &CodeFingerprint {
        &self.code
    }

    /// When opened with [`OnStale::Keep`] over a stale store: the code
    /// fingerprint that wrote it.
    pub fn stale(&self) -> Option<&str> {
        self.stale_code.as_deref()
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Unparsable lines skipped during load (0 on a healthy store; >0
    /// after a crash tore an append, or on corruption).
    pub fn torn(&self) -> usize {
        self.torn
    }

    /// Number of live cells.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no cells.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Look up a cell by content address.
    pub fn get(&self, key: &str) -> Option<&Cell> {
        self.index.get(key)
    }

    /// Append a cell (journal + index). Duplicate keys overwrite.
    pub fn put(&mut self, cell: Cell) -> io::Result<()> {
        if self.writer.is_none() || self.segment_lines >= SEGMENT_ROTATE_LINES {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(segment_path(&self.dir, self.next_segment))?;
            self.writer = Some(BufWriter::new(file));
            self.next_segment += 1;
            self.segment_lines = 0;
        }
        let w = self.writer.as_mut().expect("writer just ensured");
        writeln!(w, "{}", cell.encode())?;
        w.flush()?;
        self.segment_lines += 1;
        self.index.insert(cell.key.clone(), cell);
        Ok(())
    }

    /// All live cells, sorted by `(exp, domain, index)`.
    pub fn cells(&self) -> Vec<&Cell> {
        let mut cells: Vec<&Cell> = self.index.values().collect();
        cells.sort_by(|a, b| {
            (&a.exp, &a.domain, a.index, &a.key).cmp(&(&b.exp, &b.domain, b.index, &b.key))
        });
        cells
    }

    /// Live cells of one experiment, sorted by `(domain, index)`.
    pub fn cells_for(&self, exp: &str) -> Vec<&Cell> {
        self.cells().into_iter().filter(|c| c.exp == exp).collect()
    }

    /// `(experiment, live-cell count)` pairs, sorted by name.
    pub fn experiments(&self) -> Vec<(String, usize)> {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for c in self.index.values() {
            *counts.entry(c.exp.as_str()).or_default() += 1;
        }
        let mut out: Vec<(String, usize)> =
            counts.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        out.sort();
        out
    }

    /// Segment files currently on disk, `(name, bytes)`, in id order.
    pub fn segments(&self) -> io::Result<Vec<(String, u64)>> {
        let mut segs: Vec<(u32, String, u64)> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                let id = segment_id(&name)?;
                let bytes = e.metadata().ok()?.len();
                Some((id, name, bytes))
            })
            .collect();
        segs.sort();
        Ok(segs.into_iter().map(|(_, n, b)| (n, b)).collect())
    }

    /// Compact: rewrite every live cell into one fresh segment, then drop
    /// the superseded segment files and any stale-generation archives.
    pub fn gc(&mut self) -> io::Result<GcReport> {
        self.writer = None; // close the append stream before compacting
        let old: Vec<(String, u64)> = self.segments()?;
        let fresh_id = self.next_segment;
        let fresh = segment_path(&self.dir, fresh_id);
        let tmp = fresh.with_extension("jsonl.tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            for cell in self.cells() {
                writeln!(w, "{}", cell.encode())?;
            }
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        fs::rename(&tmp, &fresh)?;
        let mut removed = 0;
        for (name, _) in &old {
            fs::remove_file(self.dir.join(name))?;
            removed += 1;
        }
        let mut removed_archives = 0;
        for entry in fs::read_dir(&self.dir)?.filter_map(|e| e.ok()) {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("stale-") && entry.path().is_dir() {
                fs::remove_dir_all(entry.path())?;
                removed_archives += 1;
            }
        }
        self.next_segment = fresh_id + 1;
        self.segment_lines = 0;
        self.torn = 0;
        Ok(GcReport {
            live: self.index.len(),
            removed_segments: removed,
            removed_archives,
        })
    }
}

/// Move the current generation's files into `stale-<code8>/`.
fn archive_generation(dir: &Path, old_code: &str) -> io::Result<()> {
    let tag: String = old_code.chars().take(8).collect();
    let mut archive = dir.join(format!("stale-{tag}"));
    let mut n = 1;
    while archive.exists() {
        archive = dir.join(format!("stale-{tag}-{n}"));
        n += 1;
    }
    fs::create_dir_all(&archive)?;
    for entry in fs::read_dir(dir)?.filter_map(|e| e.ok()) {
        let name = entry.file_name().to_string_lossy().into_owned();
        if segment_id(&name).is_some() || name == "MANIFEST.json" {
            fs::rename(entry.path(), archive.join(&name))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bvl-lab-store-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cell(key: &str, exp: &str, index: usize) -> Cell {
        Cell {
            key: key.into(),
            exp: exp.into(),
            domain: format!("{exp}-dom"),
            index,
            params: format!("p={index}"),
            plan: (index % 2 == 1).then(|| "seed=9,jitter=uniform:6".into()),
            rows: vec![vec![format!("r{index}"), "x \"quoted\"".into()]],
        }
    }

    fn code() -> CodeFingerprint {
        CodeFingerprint::from_parts("test api", "0.0.0")
    }

    #[test]
    fn record_encoding_round_trips() {
        for c in [cell("k0", "e", 0), cell("k1", "e", 1)] {
            assert_eq!(Cell::decode(&c.encode()).unwrap(), c);
        }
        assert!(Cell::decode("{\"key\":\"k\"}").is_err(), "payload required");
        assert!(Cell::decode("{\"pay").is_err());
    }

    #[test]
    fn put_get_persists_across_reopen() {
        let dir = tmpdir("persist");
        {
            let mut s = Store::open(&dir, code(), OnStale::Error).unwrap();
            for i in 0..20 {
                s.put(cell(&format!("k{i}"), "exp", i)).unwrap();
            }
            assert_eq!(s.len(), 20);
        }
        let s = Store::open(&dir, code(), OnStale::Error).unwrap();
        assert_eq!(s.len(), 20);
        assert_eq!(s.torn(), 0);
        assert_eq!(s.get("k7"), Some(&cell("k7", "exp", 7)));
        assert_eq!(s.cells_for("exp").len(), 20);
        assert_eq!(s.experiments(), vec![("exp".to_string(), 20)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_line_is_skipped_not_fatal() {
        let dir = tmpdir("torn");
        {
            let mut s = Store::open(&dir, code(), OnStale::Error).unwrap();
            s.put(cell("k0", "e", 0)).unwrap();
            s.put(cell("k1", "e", 1)).unwrap();
        }
        // Simulate a crash mid-append: truncate the last line of the
        // newest segment.
        let seg = segment_path(&dir, 0);
        let text = fs::read_to_string(&seg).unwrap();
        let keep = text.len() - 10;
        fs::write(&seg, &text[..keep]).unwrap();
        let s = Store::open(&dir, code(), OnStale::Error).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.torn(), 1);
        assert!(s.get("k0").is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_code_archives_or_errors_or_keeps() {
        let dir = tmpdir("stale");
        {
            let mut s = Store::open(&dir, code(), OnStale::Error).unwrap();
            s.put(cell("k0", "e", 0)).unwrap();
        }
        let newer = CodeFingerprint::from_parts("test api CHANGED", "0.0.0");
        // Error: refuses.
        let err = Store::open(&dir, newer.clone(), OnStale::Error).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Keep: loads, reports the writing generation.
        let kept = Store::open(&dir, newer.clone(), OnStale::Keep).unwrap();
        assert_eq!(kept.stale(), Some(code().as_str()));
        assert_eq!(kept.len(), 1);
        // Invalidate: archives and starts empty.
        let s = Store::open(&dir, newer.clone(), OnStale::Invalidate).unwrap();
        assert_eq!(s.len(), 0);
        assert!(s.stale().is_none());
        let archives: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("stale-"))
            .collect();
        assert_eq!(archives.len(), 1);
        // The fresh generation reopens clean under the new code.
        let s = Store::open(&dir, newer, OnStale::Error).unwrap();
        assert_eq!(s.len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_compacts_to_one_segment_and_drops_archives() {
        let dir = tmpdir("gc");
        let mut s = Store::open(&dir, code(), OnStale::Error).unwrap();
        for i in 0..700 {
            // > SEGMENT_ROTATE_LINES forces at least one rotation
            s.put(cell(&format!("k{i}"), "e", i)).unwrap();
        }
        // Overwrite some keys so gc has duplicates to fold.
        for i in 0..50 {
            s.put(cell(&format!("k{i}"), "e", i)).unwrap();
        }
        assert!(s.segments().unwrap().len() >= 2);
        let rep = s.gc().unwrap();
        assert_eq!(rep.live, 700);
        assert!(rep.removed_segments >= 2);
        assert_eq!(s.segments().unwrap().len(), 1);
        // Everything still reachable, and a reopen agrees.
        assert_eq!(s.len(), 700);
        drop(s);
        let s = Store::open(&dir, code(), OnStale::Error).unwrap();
        assert_eq!(s.len(), 700);
        assert_eq!(s.torn(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_after_reopen_land_in_a_new_segment() {
        let dir = tmpdir("rotate");
        {
            let mut s = Store::open(&dir, code(), OnStale::Error).unwrap();
            s.put(cell("a", "e", 0)).unwrap();
        }
        {
            let mut s = Store::open(&dir, code(), OnStale::Error).unwrap();
            s.put(cell("b", "e", 1)).unwrap();
            assert_eq!(s.segments().unwrap().len(), 2);
        }
        let s = Store::open(&dir, code(), OnStale::Error).unwrap();
        assert_eq!(s.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}

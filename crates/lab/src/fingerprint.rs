//! Stable fingerprints: the content addresses of the result store.
//!
//! A grid cell's identity is everything that can change its payload:
//!
//! * the **canonical run options** ([`bvl_exec::RunOptions::canonical`]) —
//!   seed, trace flag, clock base, budget, fault label;
//! * the **domain point** — experiment name, sweep domain, index within
//!   the domain, and the cell's parameter string;
//! * the **fault-plan repro line** when the cell runs under an adversary
//!   (the same one-line serialization `bvl_fault::Case::repro` prints);
//! * the **code fingerprint** — a digest of the public-API inventory
//!   (`docs/public-api.txt`, embedded at compile time) and the workspace
//!   crate version, so a store written by older code is detectably stale.
//!
//! Hashes are FNV-1a over the canonical byte strings, two independent
//! 64-bit lanes concatenated to 128 bits. The algorithm is spelled out
//! here (not delegated to `DefaultHasher`) because keys must be stable
//! across processes, architectures and Rust releases: a key is an on-disk
//! address, not an in-memory optimization.

use std::fmt;

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142; // FNV-1a 128 offset, low lane
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// A 128-bit content fingerprint, displayed as 32 lowercase hex digits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub u64, pub u64);

impl Digest {
    /// Digest a sequence of labelled components. Each component is framed
    /// (`label` `=` payload `\n`) so that component boundaries cannot be
    /// confused: `("a", "bc")` and `("ab", "c")` hash differently.
    pub fn of(components: &[(&str, &str)]) -> Digest {
        let mut a = FNV_OFFSET_A;
        let mut b = FNV_OFFSET_B;
        for (label, payload) in components {
            for part in [label.as_bytes(), b"=", payload.as_bytes(), b"\n"] {
                a = fnv1a(a, part);
                b = fnv1a(b.rotate_left(29), part);
            }
        }
        Digest(a, b)
    }

    /// The 32-hex-digit string form (the on-disk key).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.hex())
    }
}

/// The public-API inventory this binary was compiled against, embedded so
/// the code fingerprint is a compile-time constant: every process built
/// from the same tree reports the same fingerprint, with no dependence on
/// the working directory at run time.
pub const API_INVENTORY: &str = include_str!("../../../docs/public-api.txt");

/// Digest of the code generation that wrote (or is reading) a store.
///
/// Two builds agree on their `CodeFingerprint` exactly when they agree on
/// the public-API inventory and the workspace crate version — the signal
/// the store uses to decide whether cached cells are still trustworthy.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CodeFingerprint(pub String);

impl CodeFingerprint {
    /// The fingerprint of the running binary.
    pub fn current() -> CodeFingerprint {
        CodeFingerprint::from_parts(API_INVENTORY, env!("CARGO_PKG_VERSION"))
    }

    /// Build a fingerprint from explicit parts (tests inject counterfactual
    /// inventories to prove the fingerprint moves when the API does).
    pub fn from_parts(api_inventory: &str, versions: &str) -> CodeFingerprint {
        CodeFingerprint(
            Digest::of(&[("api", api_inventory), ("versions", versions)]).hex(),
        )
    }

    /// The hex digest.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for CodeFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The content address of one grid cell.
///
/// `opts_canonical` is [`bvl_exec::RunOptions::canonical`]; `plan` is the
/// fault-plan line for adversarial cells (`None` hashes distinctly from
/// `Some("")`).
pub fn cell_key(
    code: &CodeFingerprint,
    exp: &str,
    domain: &str,
    index: usize,
    params: &str,
    opts_canonical: &str,
    plan: Option<&str>,
) -> String {
    let index = index.to_string();
    Digest::of(&[
        ("code", code.as_str()),
        ("exp", exp),
        ("domain", domain),
        ("index", &index),
        ("params", params),
        ("opts", opts_canonical),
        ("plan", plan.unwrap_or("\u{1}none")),
    ])
    .hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_across_processes() {
        // Golden value: the algorithm is an on-disk contract. If this test
        // breaks, every existing store is invalidated — change the store
        // FORMAT version alongside, don't just update the literal.
        assert_eq!(
            Digest::of(&[("k", "v")]).hex(),
            "709230d647e7d8c920c8d4af10cdaca9"
        );
    }

    #[test]
    fn digest_frames_component_boundaries() {
        assert_ne!(Digest::of(&[("a", "bc")]), Digest::of(&[("ab", "c")]));
        assert_ne!(
            Digest::of(&[("a", "b"), ("c", "d")]),
            Digest::of(&[("a", "b=c\nd")])
        );
    }

    #[test]
    fn cell_key_depends_on_every_component() {
        let code = CodeFingerprint::from_parts("api", "0.1.0");
        let base = cell_key(&code, "e", "d", 0, "p", "o", None);
        assert_eq!(base, cell_key(&code, "e", "d", 0, "p", "o", None));
        assert_ne!(base, cell_key(&code, "e2", "d", 0, "p", "o", None));
        assert_ne!(base, cell_key(&code, "e", "d2", 0, "p", "o", None));
        assert_ne!(base, cell_key(&code, "e", "d", 1, "p", "o", None));
        assert_ne!(base, cell_key(&code, "e", "d", 0, "p2", "o", None));
        assert_ne!(base, cell_key(&code, "e", "d", 0, "p", "o2", None));
        assert_ne!(base, cell_key(&code, "e", "d", 0, "p", "o", Some("")));
        let other = CodeFingerprint::from_parts("api CHANGED", "0.1.0");
        assert_ne!(base, cell_key(&other, "e", "d", 0, "p", "o", None));
    }

    #[test]
    fn code_fingerprint_moves_with_the_inventory_and_version() {
        let a = CodeFingerprint::from_parts("pub fn f", "0.1.0");
        assert_eq!(a, CodeFingerprint::from_parts("pub fn f", "0.1.0"));
        assert_ne!(a, CodeFingerprint::from_parts("pub fn g", "0.1.0"));
        assert_ne!(a, CodeFingerprint::from_parts("pub fn f", "0.2.0"));
        // And the embedded inventory is non-trivial.
        assert!(API_INVENTORY.len() > 1000);
        assert_eq!(CodeFingerprint::current().as_str().len(), 32);
    }
}

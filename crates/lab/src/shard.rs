//! The sharded store: N independent [`Store`] shards behind one façade.
//!
//! A cell's 128-bit content address already distributes uniformly (dual-
//! lane FNV over the canonical identity), so sharding is a pure function
//! of the digest: [`shard_of`] takes the high 64-bit lane modulo the shard
//! count. The assignment depends on nothing else — not insertion order,
//! not thread schedule, not the directory's history — so it is stable
//! across restarts and across shard-count-preserving rebalances
//! (compaction, archive drops, segment rewrites all leave routing alone).
//!
//! On disk a sharded store is:
//!
//! ```text
//! <dir>/SHARDS.json           {"format":1,"shards":4}      (absent when 1)
//! <dir>/shard-000/…           a complete single Store directory
//! <dir>/shard-001/…
//! ```
//!
//! A 1-shard store uses `<dir>` itself as the shard directory — the exact
//! legacy layout — so every store written before sharding opens unchanged
//! and every tool that understood the old layout keeps working.
//!
//! Each shard keeps its own append stream, its own segments and its own
//! [`Store::gc`]; the façade holds one `Mutex` **per shard**, so writers
//! routed to different shards never contend.

use crate::fingerprint::CodeFingerprint;
use crate::jsonio::Cursor;
use crate::store::{Cell, GcReport, OnStale, Store};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// On-disk shard-manifest format version.
pub const SHARDS_FORMAT: u32 = 1;

/// The shard a key routes to: a pure function of the key's leading 64-bit
/// digest lane and the shard count. Keys are 32-hex-digit cell addresses;
/// any other string falls back to an FNV-1a fold of its bytes so routing
/// stays total (and still deterministic).
pub fn shard_of(key: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let lane = key
        .get(..16)
        .and_then(|prefix| u64::from_str_radix(prefix, 16).ok())
        .unwrap_or_else(|| {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in key.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        });
    (lane % shards as u64) as usize
}

fn shards_manifest_path(dir: &Path) -> PathBuf {
    dir.join("SHARDS.json")
}

fn parse_shards_manifest(text: &str) -> Result<(u32, usize), String> {
    let mut cur = Cursor::new(text);
    cur.expect(b'{')?;
    let mut format = None;
    let mut shards = None;
    loop {
        let field = cur.string()?;
        cur.expect(b':')?;
        match field.as_str() {
            "format" => format = Some(cur.u64()? as u32),
            "shards" => shards = Some(cur.u64()? as usize),
            other => return Err(format!("unknown shard-manifest field '{other}'")),
        }
        if !cur.eat(b',') {
            break;
        }
    }
    cur.expect(b'}')?;
    Ok((
        format.ok_or("shard manifest missing format")?,
        shards.ok_or("shard manifest missing shards")?,
    ))
}

/// The shard count recorded at `dir`: what `SHARDS.json` says, or 1 for a
/// legacy single-directory store (or an empty directory).
pub fn shard_count_of(dir: &Path) -> io::Result<usize> {
    let path = shards_manifest_path(dir);
    if !path.exists() {
        return Ok(1);
    }
    let text = fs::read_to_string(&path)?;
    let (format, shards) =
        parse_shards_manifest(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if format != SHARDS_FORMAT {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("shard manifest format {format} != supported {SHARDS_FORMAT}"),
        ));
    }
    if shards == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "shard manifest records 0 shards",
        ));
    }
    Ok(shards)
}

/// The shard subdirectory for shard `i` of `n` under `dir` (the directory
/// itself when `n == 1` — the legacy layout).
pub fn shard_dir(dir: &Path, i: usize, n: usize) -> PathBuf {
    if n <= 1 {
        dir.to_path_buf()
    } else {
        dir.join(format!("shard-{i:03}"))
    }
}

/// A content-addressed store split across N digest-routed shards.
///
/// The API mirrors [`Store`] where it matters to callers (get/put/len/
/// cells/gc/segments), aggregating across shards; lookups and appends lock
/// only the one shard the key routes to.
#[derive(Debug)]
pub struct ShardedStore {
    dir: PathBuf,
    code: CodeFingerprint,
    shards: Vec<Mutex<Store>>,
}

impl ShardedStore {
    /// Open (creating if needed) a store at `dir` with `shards` shards.
    ///
    /// A directory that already records a different shard count refuses to
    /// open: re-sharding moves cells between append-only logs, which is a
    /// migration (`gc` + re-import), not an open-time side effect. Pass
    /// [`shard_count_of`]'s answer to open whatever is on disk.
    pub fn open(
        dir: &Path,
        shards: usize,
        code: CodeFingerprint,
        on_stale: OnStale,
    ) -> io::Result<ShardedStore> {
        let shards = shards.max(1);
        fs::create_dir_all(dir)?;
        let on_disk = shard_count_of(dir)?;
        let manifest_exists = shards_manifest_path(dir).exists();
        if manifest_exists && on_disk != shards {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "store at {} has {on_disk} shard(s), requested {shards}; \
                     re-sharding an append-only store is a migration, not an open",
                    dir.display()
                ),
            ));
        }
        if !manifest_exists && shards > 1 {
            // A legacy single-dir store cannot silently become sharded:
            // its existing cells would route nowhere.
            let has_legacy_segments = fs::read_dir(dir)?
                .filter_map(|e| e.ok())
                .any(|e| e.file_name().to_string_lossy().starts_with("segment-"));
            if has_legacy_segments {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "store at {} is a legacy 1-shard store; opening it with \
                         {shards} shards would strand its cells",
                        dir.display()
                    ),
                ));
            }
            crate::store::write_atomic(
                &shards_manifest_path(dir),
                &format!("{{\"format\":{SHARDS_FORMAT},\"shards\":{shards}}}\n"),
            )?;
        }
        let mut opened = Vec::with_capacity(shards);
        for i in 0..shards {
            let sub = shard_dir(dir, i, shards);
            opened.push(Mutex::new(Store::open(&sub, code.clone(), on_stale)?));
        }
        Ok(ShardedStore {
            dir: dir.to_path_buf(),
            code,
            shards: opened,
        })
    }

    /// Wrap an already-open single [`Store`] as a 1-shard store — the
    /// zero-cost bridge for callers that open legacy directories.
    pub fn from_single(store: Store) -> ShardedStore {
        ShardedStore {
            dir: store.dir().to_path_buf(),
            code: store.code().clone(),
            shards: vec![Mutex::new(store)],
        }
    }

    /// Open with the shard count already recorded on disk (1 for a fresh
    /// or legacy directory).
    pub fn open_existing(
        dir: &Path,
        code: CodeFingerprint,
        on_stale: OnStale,
    ) -> io::Result<ShardedStore> {
        let n = if dir.exists() { shard_count_of(dir)? } else { 1 };
        ShardedStore::open(dir, n, code, on_stale)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to.
    pub fn route(&self, key: &str) -> usize {
        shard_of(key, self.shards.len())
    }

    /// Root directory of the sharded store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shard subdirectories, in shard order.
    pub fn shard_dirs(&self) -> Vec<PathBuf> {
        (0..self.shards.len())
            .map(|i| shard_dir(&self.dir, i, self.shards.len()))
            .collect()
    }

    /// The code fingerprint this store writes under.
    pub fn code(&self) -> &CodeFingerprint {
        &self.code
    }

    /// When opened with [`OnStale::Keep`] over a stale store: the writing
    /// generation of the first stale shard (all shards are written by one
    /// process generation, so they agree).
    pub fn stale(&self) -> Option<String> {
        self.shards
            .iter()
            .find_map(|s| s.lock().expect("shard poisoned").stale().map(String::from))
    }

    /// Unparsable lines skipped during load, summed across shards.
    pub fn torn(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").torn())
            .sum()
    }

    /// Live cells across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    /// Whether no shard holds a cell.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a cell's rows by content address (locks one shard).
    pub fn rows_of(&self, key: &str) -> Option<Vec<Vec<String>>> {
        self.shards[self.route(key)]
            .lock()
            .expect("shard poisoned")
            .get(key)
            .map(|c| c.rows.clone())
    }

    /// Look up a whole cell by content address (cloned out of the shard).
    pub fn get(&self, key: &str) -> Option<Cell> {
        self.shards[self.route(key)]
            .lock()
            .expect("shard poisoned")
            .get(key)
            .cloned()
    }

    /// Append a cell to the shard its key routes to.
    pub fn put(&self, cell: Cell) -> io::Result<()> {
        self.shards[self.route(&cell.key)]
            .lock()
            .expect("shard poisoned")
            .put(cell)
    }

    /// All live cells across shards, sorted by `(exp, domain, index, key)`
    /// — the same total order a 1-shard store reports, so query output is
    /// independent of the shard count.
    pub fn cells(&self) -> Vec<Cell> {
        let mut all: Vec<Cell> = Vec::new();
        for s in &self.shards {
            all.extend(s.lock().expect("shard poisoned").cells().into_iter().cloned());
        }
        all.sort_by(|a, b| {
            (&a.exp, &a.domain, a.index, &a.key).cmp(&(&b.exp, &b.domain, b.index, &b.key))
        });
        all
    }

    /// Live cells of one experiment, in the same shard-count-independent
    /// order as [`ShardedStore::cells`].
    pub fn cells_for(&self, exp: &str) -> Vec<Cell> {
        self.cells().into_iter().filter(|c| c.exp == exp).collect()
    }

    /// `(experiment, live-cell count)` pairs, sorted by name.
    pub fn experiments(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        for s in &self.shards {
            for (name, n) in s.lock().expect("shard poisoned").experiments() {
                *counts.entry(name).or_default() += n;
            }
        }
        let mut out: Vec<(String, usize)> = counts.into_iter().collect();
        out.sort();
        out
    }

    /// Segment files across shards, `(name, bytes)`; names carry a
    /// `shard-NNN/` prefix when the store is sharded.
    pub fn segments(&self) -> io::Result<Vec<(String, u64)>> {
        let n = self.shards.len();
        let mut out = Vec::new();
        for (i, s) in self.shards.iter().enumerate() {
            for (name, bytes) in s.lock().expect("shard poisoned").segments()? {
                if n > 1 {
                    out.push((format!("shard-{i:03}/{name}"), bytes));
                } else {
                    out.push((name, bytes));
                }
            }
        }
        Ok(out)
    }

    /// Compact every shard (each shard's own [`Store::gc`]), summing the
    /// per-shard reports.
    pub fn gc(&self) -> io::Result<GcReport> {
        let mut total = GcReport::default();
        for s in &self.shards {
            let rep = s.lock().expect("shard poisoned").gc()?;
            total.live += rep.live;
            total.removed_segments += rep.removed_segments;
            total.removed_archives += rep.removed_archives;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bvl-lab-shard-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn code() -> CodeFingerprint {
        CodeFingerprint::from_parts("shard test api", "0.0.0")
    }

    fn cell(key: &str, i: usize) -> Cell {
        Cell {
            key: key.into(),
            exp: "e".into(),
            domain: "d".into(),
            index: i,
            params: format!("i={i}"),
            plan: None,
            rows: vec![vec![format!("r{i}")]],
        }
    }

    /// 32-hex keys with distinct high lanes.
    fn key(i: usize) -> String {
        format!(
            "{:016x}{:016x}",
            (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            i as u64
        )
    }

    #[test]
    fn routing_is_pure_total_and_in_range() {
        for n in [1usize, 2, 3, 4, 7] {
            for i in 0..64 {
                let k = key(i);
                let s = shard_of(&k, n);
                assert!(s < n);
                assert_eq!(s, shard_of(&k, n), "routing must be deterministic");
            }
        }
        // Non-hex keys still route deterministically.
        assert_eq!(shard_of("not hex at all", 4), shard_of("not hex at all", 4));
        assert_eq!(shard_of("", 3), shard_of("", 3));
    }

    #[test]
    fn one_shard_is_the_legacy_layout() {
        let dir = tmpdir("legacy");
        {
            let s = ShardedStore::open(&dir, 1, code(), OnStale::Error).unwrap();
            s.put(cell(&key(0), 0)).unwrap();
            assert!(!shards_manifest_path(&dir).exists(), "1 shard writes no manifest");
            assert!(dir.join("segment-00000.jsonl").exists(), "legacy file layout");
        }
        // The plain Store opens the same directory unchanged.
        let plain = Store::open(&dir, code(), OnStale::Error).unwrap();
        assert_eq!(plain.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_put_get_persists_and_spreads() {
        let dir = tmpdir("spread");
        {
            let s = ShardedStore::open(&dir, 4, code(), OnStale::Error).unwrap();
            for i in 0..64 {
                s.put(cell(&key(i), i)).unwrap();
            }
            assert_eq!(s.len(), 64);
        }
        let s = ShardedStore::open(&dir, 4, code(), OnStale::Error).unwrap();
        assert_eq!(s.len(), 64);
        assert_eq!(shard_count_of(&dir).unwrap(), 4);
        // Every cell lands on the shard its key routes to, and is found.
        let mut used = [false; 4];
        for i in 0..64 {
            let k = key(i);
            assert_eq!(s.rows_of(&k), Some(vec![vec![format!("r{i}")]]));
            used[shard_of(&k, 4)] = true;
        }
        assert!(used.iter().all(|&u| u), "64 spread keys must touch all 4 shards");
        // The aggregate view is sorted and complete.
        assert_eq!(s.cells().len(), 64);
        assert_eq!(s.experiments(), vec![("e".into(), 64)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_count_mismatch_refuses_to_open() {
        let dir = tmpdir("mismatch");
        drop(ShardedStore::open(&dir, 2, code(), OnStale::Error).unwrap());
        let err = ShardedStore::open(&dir, 4, code(), OnStale::Error).unwrap_err();
        assert!(err.to_string().contains("re-sharding"), "{err}");
        // open_existing adopts what is on disk.
        let s = ShardedStore::open_existing(&dir, code(), OnStale::Error).unwrap();
        assert_eq!(s.shard_count(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_store_cannot_silently_become_sharded() {
        let dir = tmpdir("strand");
        {
            let mut plain = Store::open(&dir, code(), OnStale::Error).unwrap();
            plain.put(cell(&key(1), 1)).unwrap();
        }
        let err = ShardedStore::open(&dir, 4, code(), OnStale::Error).unwrap_err();
        assert!(err.to_string().contains("legacy"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_compacts_every_shard() {
        let dir = tmpdir("gc");
        let s = ShardedStore::open(&dir, 2, code(), OnStale::Error).unwrap();
        for i in 0..32 {
            s.put(cell(&key(i), i)).unwrap();
        }
        for i in 0..32 {
            s.put(cell(&key(i), i)).unwrap(); // duplicates to fold
        }
        let rep = s.gc().unwrap();
        assert_eq!(rep.live, 32);
        assert_eq!(s.segments().unwrap().len(), 2, "one fresh segment per shard");
        assert!(s.segments().unwrap()[0].0.starts_with("shard-000/"));
        fs::remove_dir_all(&dir).unwrap();
    }
}

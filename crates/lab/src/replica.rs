//! Op-log replication over the store's append-only JSONL segments.
//!
//! The segment format is already log-shaped: one record per line, files
//! numbered in append order, no in-place rewrites. That makes the
//! operation log literally *the* on-disk representation, so replication
//! needs no second log — a follower is a directory that holds a byte
//! prefix of the leader's segments, and the replay cursor is three
//! numbers derived from the follower's own files:
//!
//! * `segment` — the newest segment id present (the append frontier),
//! * `offset`  — bytes of complete records in that segment,
//! * `records` — complete records across all segments (the sequence
//!   number: record *k* of the log is record *k* on every replica).
//!
//! The protocol round is pull-based and idempotent:
//!
//! 1. **Repair** ([`repair_dir`]): truncate the follower's newest segment
//!    to its longest clean prefix — whole `\n`-terminated lines that
//!    decode as records. A crash mid-append tears at most the bytes past
//!    that prefix, so repair returns the follower to "byte prefix of the
//!    leader" no matter where the tear landed.
//! 2. **Sync** ([`sync_dir`]): for each leader segment, append the bytes
//!    of the leader's clean prefix that lie beyond the follower's cursor.
//!    If the follower has diverged — a segment that is not a byte prefix
//!    of the leader's, or a segment the leader no longer has (leader
//!    `gc()` compacted) — fall back to a full resync: drop the follower's
//!    segments and copy fresh. The manifest is copied atomically last, so
//!    a crash mid-sync leaves a follower that the *next* round repairs.
//! 3. **Prove** ([`dir_digest`]): both sides digest their live cells
//!    (decoded last-writer-wins in segment order, sorted by key, framed
//!    through [`Digest::of`]). Equal digests ⇒ every query answers
//!    bit-identically on either replica — which is the property the
//!    lower-bound audit needs: a replica must never serve a cell cheaper
//!    (or different) than the leader proved.

use crate::fingerprint::Digest;
use crate::shard::{shard_count_of, shard_dir, SHARDS_FORMAT};
use crate::store::{segment_id, segment_path, write_atomic, Cell};
use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The replay position of a replica directory, derived from its files.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicaCursor {
    /// Newest segment id present (`None` encoded as an empty log).
    pub segment: Option<u32>,
    /// Bytes of clean (complete, decodable) records in that segment.
    pub offset: u64,
    /// Clean records across all segments — the log sequence number.
    pub records: u64,
}

/// What one [`sync_dir`] round did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Torn bytes truncated off the follower before copying.
    pub repaired_bytes: u64,
    /// Bytes appended to follower segments.
    pub copied_bytes: u64,
    /// Segments the follower created this round.
    pub new_segments: usize,
    /// True when divergence forced a drop-and-recopy instead of an
    /// incremental tail append.
    pub full_resync: bool,
}

/// Segment ids under `dir`, sorted ascending.
fn segment_ids(dir: &Path) -> io::Result<Vec<u32>> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut ids: Vec<u32> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .filter_map(|e| segment_id(&e.file_name().to_string_lossy()))
        .collect();
    ids.sort_unstable();
    Ok(ids)
}

/// Length in bytes of the clean prefix of a segment's text: whole
/// newline-terminated lines, each empty or decoding as a record, stopping
/// at the first line that is torn (no `\n`) or corrupt (fails to decode).
/// Also returns the number of records inside that prefix.
fn clean_prefix(text: &str) -> (u64, u64) {
    let mut good = 0usize;
    let mut records = 0u64;
    let mut pos = 0usize;
    for line in text.split_inclusive('\n') {
        let end = pos + line.len();
        if !line.ends_with('\n') {
            break; // torn tail: no terminator yet
        }
        let body = line.trim_end_matches(['\n', '\r']);
        if body.trim().is_empty() {
            good = end;
        } else if Cell::decode(body).is_ok() {
            good = end;
            records += 1;
        } else {
            break; // corrupt record: everything after is suspect
        }
        pos = end;
    }
    (good as u64, records)
}

/// Derive the replay cursor of a replica directory from its files alone.
pub fn cursor_of(dir: &Path) -> io::Result<ReplicaCursor> {
    let ids = segment_ids(dir)?;
    let mut records = 0u64;
    let mut offset = 0u64;
    for &id in &ids {
        let text = fs::read_to_string(segment_path(dir, id))?;
        let (bytes, recs) = clean_prefix(&text);
        records += recs;
        offset = bytes;
    }
    Ok(ReplicaCursor {
        segment: ids.last().copied(),
        offset,
        records,
    })
}

/// Truncate the newest segment of `dir` to its clean prefix, undoing a
/// crash-torn append. Returns the bytes removed (0 on a healthy log).
pub fn repair_dir(dir: &Path) -> io::Result<u64> {
    let Some(&newest) = segment_ids(dir)?.last() else {
        return Ok(0);
    };
    let path = segment_path(dir, newest);
    let text = fs::read_to_string(&path)?;
    let (good, _) = clean_prefix(&text);
    let torn = text.len() as u64 - good;
    if torn > 0 {
        let f = OpenOptions::new().write(true).open(&path)?;
        f.set_len(good)?;
        f.sync_all()?;
    }
    Ok(torn)
}

/// One pull round: make `follower` a byte-identical copy of `leader`'s
/// clean log. Repairs the follower first; appends incrementally when the
/// follower is a prefix of the leader, otherwise drops the follower's
/// segments and recopies (leader compaction, or divergence). Idempotent —
/// a second round on an up-to-date follower copies zero bytes.
pub fn sync_dir(leader: &Path, follower: &Path) -> io::Result<SyncReport> {
    fs::create_dir_all(follower)?;
    let mut report = SyncReport {
        repaired_bytes: repair_dir(follower)?,
        ..SyncReport::default()
    };

    let leader_ids = segment_ids(leader)?;
    let follower_ids = segment_ids(follower)?;

    // Divergence: any follower segment the leader lacks (leader gc), or
    // whose bytes are not a prefix of the leader's clean prefix.
    let mut diverged = false;
    for &id in &follower_ids {
        if !leader_ids.contains(&id) {
            diverged = true;
            break;
        }
        let ltext = fs::read_to_string(segment_path(leader, id))?;
        let (lgood, _) = clean_prefix(&ltext);
        let fbytes = fs::read(segment_path(follower, id))?;
        if fbytes.len() as u64 > lgood || ltext.as_bytes()[..fbytes.len()] != fbytes[..] {
            diverged = true;
            break;
        }
    }
    if diverged {
        for &id in &follower_ids {
            fs::remove_file(segment_path(follower, id))?;
        }
        report.full_resync = true;
    }

    for &id in &leader_ids {
        let ltext = fs::read_to_string(segment_path(leader, id))?;
        let (lgood, _) = clean_prefix(&ltext);
        let fpath = segment_path(follower, id);
        let have = if diverged || !fpath.exists() {
            if !fpath.exists() {
                report.new_segments += 1;
            }
            0u64
        } else {
            fs::metadata(&fpath)?.len()
        };
        if have < lgood {
            let mut f = OpenOptions::new().create(true).append(true).open(&fpath)?;
            f.write_all(&ltext.as_bytes()[have as usize..lgood as usize])?;
            f.sync_all()?;
            report.copied_bytes += lgood - have;
        }
    }

    // Manifest last: a crash before this point leaves the follower's old
    // generation label, and the next round simply recopies it.
    let lman = leader.join("MANIFEST.json");
    if lman.exists() {
        write_atomic(&follower.join("MANIFEST.json"), &fs::read_to_string(&lman)?)?;
    }
    Ok(report)
}

/// Content digest of a replica directory's live cells: decode every clean
/// record in segment order (last writer wins per key), then digest the
/// surviving cells sorted by key. Two directories with equal digests
/// answer every store query bit-identically, regardless of how their
/// bytes are arranged into segments.
pub fn dir_digest(dir: &Path) -> io::Result<Digest> {
    let mut live: BTreeMap<String, String> = BTreeMap::new();
    for id in segment_ids(dir)? {
        let text = fs::read_to_string(segment_path(dir, id))?;
        for line in text.split_inclusive('\n') {
            if !line.ends_with('\n') {
                break;
            }
            let body = line.trim_end_matches(['\n', '\r']);
            if body.trim().is_empty() {
                continue;
            }
            if let Ok(cell) = Cell::decode(body) {
                live.insert(cell.key.clone(), cell.encode());
            }
        }
    }
    let parts: Vec<(&str, &str)> = live
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    Ok(Digest::of(&parts))
}

/// Shard directories of a store root, in shard order (the root itself for
/// a 1-shard / legacy store).
fn shard_dirs_of(root: &Path) -> io::Result<Vec<PathBuf>> {
    let n = if root.exists() { shard_count_of(root)? } else { 1 };
    Ok((0..n).map(|i| shard_dir(root, i, n)).collect())
}

/// [`sync_dir`] across a whole (possibly sharded) store root: copies the
/// shard manifest, then syncs each shard directory. Refuses a follower
/// already holding a different shard count — replicas of a sharded store
/// must mirror its layout exactly.
pub fn sync_store(leader: &Path, follower: &Path) -> io::Result<Vec<SyncReport>> {
    let n = if leader.exists() { shard_count_of(leader)? } else { 1 };
    fs::create_dir_all(follower)?;
    let follower_n = shard_count_of(follower)?;
    if follower.join("SHARDS.json").exists() && follower_n != n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("follower has {follower_n} shard(s), leader has {n}"),
        ));
    }
    if n > 1 {
        write_atomic(
            &follower.join("SHARDS.json"),
            &format!("{{\"format\":{SHARDS_FORMAT},\"shards\":{n}}}\n"),
        )?;
    }
    let mut reports = Vec::with_capacity(n);
    for i in 0..n {
        reports.push(sync_dir(&shard_dir(leader, i, n), &shard_dir(follower, i, n))?);
    }
    Ok(reports)
}

/// [`dir_digest`] across a whole (possibly sharded) store root: the
/// per-shard digests folded in shard order.
pub fn store_digest(root: &Path) -> io::Result<Digest> {
    let dirs = shard_dirs_of(root)?;
    if dirs.len() == 1 {
        return dir_digest(&dirs[0]);
    }
    let hexes: Vec<String> = dirs
        .iter()
        .map(|d| dir_digest(d).map(|g| g.hex()))
        .collect::<io::Result<Vec<_>>>()?;
    let parts: Vec<(&str, &str)> = hexes.iter().map(|h| ("shard", h.as_str())).collect();
    Ok(Digest::of(&parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::CodeFingerprint;
    use crate::store::{OnStale, Store};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bvl-lab-replica-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn code() -> CodeFingerprint {
        CodeFingerprint::from_parts("replica test api", "0.0.0")
    }

    fn cell(i: usize) -> Cell {
        Cell {
            key: format!("{i:032x}"),
            exp: "e".into(),
            domain: "d".into(),
            index: i,
            params: format!("i={i}"),
            plan: None,
            rows: vec![vec![format!("row {i} \"q\""), "γ̂=1.2".into()]],
        }
    }

    #[test]
    fn cursor_counts_records_and_offsets() {
        let dir = tmpdir("cursor");
        let mut s = Store::open(&dir, code(), OnStale::Error).unwrap();
        assert_eq!(
            cursor_of(&dir).unwrap(),
            ReplicaCursor { segment: None, offset: 0, records: 0 }
        );
        for i in 0..5 {
            s.put(cell(i)).unwrap();
        }
        let cur = cursor_of(&dir).unwrap();
        assert_eq!(cur.segment, Some(0));
        assert_eq!(cur.records, 5);
        assert_eq!(cur.offset, fs::metadata(segment_path(&dir, 0)).unwrap().len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_then_digest_matches_and_is_idempotent() {
        let ldir = tmpdir("sync-l");
        let fdir = tmpdir("sync-f");
        let mut leader = Store::open(&ldir, code(), OnStale::Error).unwrap();
        for i in 0..20 {
            leader.put(cell(i)).unwrap();
        }
        let r1 = sync_dir(&ldir, &fdir).unwrap();
        assert!(r1.copied_bytes > 0);
        assert_eq!(dir_digest(&ldir).unwrap(), dir_digest(&fdir).unwrap());
        // Follower bytes are literally identical, not just logically.
        assert_eq!(
            fs::read(segment_path(&ldir, 0)).unwrap(),
            fs::read(segment_path(&fdir, 0)).unwrap()
        );
        // Incremental: more appends, second round copies only the delta.
        for i in 20..25 {
            leader.put(cell(i)).unwrap();
        }
        let r2 = sync_dir(&ldir, &fdir).unwrap();
        assert!(!r2.full_resync);
        assert!(r2.copied_bytes > 0 && r2.copied_bytes < r1.copied_bytes);
        assert_eq!(dir_digest(&ldir).unwrap(), dir_digest(&fdir).unwrap());
        // Idempotent: up to date ⇒ zero bytes move.
        assert_eq!(sync_dir(&ldir, &fdir).unwrap().copied_bytes, 0);
        // The follower opens as a normal store with the same content.
        let f = Store::open(&fdir, code(), OnStale::Error).unwrap();
        assert_eq!(f.len(), 25);
        fs::remove_dir_all(&ldir).unwrap();
        fs::remove_dir_all(&fdir).unwrap();
    }

    #[test]
    fn torn_follower_tail_repairs_then_converges() {
        let ldir = tmpdir("torn-l");
        let fdir = tmpdir("torn-f");
        let mut leader = Store::open(&ldir, code(), OnStale::Error).unwrap();
        for i in 0..8 {
            leader.put(cell(i)).unwrap();
        }
        sync_dir(&ldir, &fdir).unwrap();
        // Crash the follower mid-append: chop bytes off its newest segment.
        let seg = segment_path(&fdir, 0);
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 17]).unwrap();
        let rep = sync_dir(&ldir, &fdir).unwrap();
        assert!(rep.repaired_bytes > 0, "torn partial record was truncated");
        assert!(!rep.full_resync, "a clean prefix only needs a tail append");
        assert_eq!(dir_digest(&ldir).unwrap(), dir_digest(&fdir).unwrap());
        fs::remove_dir_all(&ldir).unwrap();
        fs::remove_dir_all(&fdir).unwrap();
    }

    #[test]
    fn leader_gc_forces_full_resync() {
        let ldir = tmpdir("gc-l");
        let fdir = tmpdir("gc-f");
        let mut leader = Store::open(&ldir, code(), OnStale::Error).unwrap();
        for i in 0..600 {
            leader.put(cell(i)).unwrap(); // rotates past one segment
        }
        sync_dir(&ldir, &fdir).unwrap();
        leader.gc().unwrap(); // rewrites the log into one fresh segment
        let rep = sync_dir(&ldir, &fdir).unwrap();
        assert!(rep.full_resync, "compacted leader invalidates old segments");
        assert_eq!(dir_digest(&ldir).unwrap(), dir_digest(&fdir).unwrap());
        assert_eq!(segment_ids(&fdir).unwrap(), segment_ids(&ldir).unwrap());
        fs::remove_dir_all(&ldir).unwrap();
        fs::remove_dir_all(&fdir).unwrap();
    }

    #[test]
    fn sharded_store_replicates_shard_by_shard() {
        use crate::shard::ShardedStore;
        let ldir = tmpdir("shard-l");
        let fdir = tmpdir("shard-f");
        let leader = ShardedStore::open(&ldir, 3, code(), OnStale::Error).unwrap();
        for i in 0..40 {
            let mut c = cell(i);
            c.key = crate::fingerprint::Digest(i as u64 * 0x9e37_79b9, i as u64).hex();
            leader.put(c).unwrap();
        }
        let reports = sync_store(&ldir, &fdir).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(store_digest(&ldir).unwrap(), store_digest(&fdir).unwrap());
        let follower = ShardedStore::open_existing(&fdir, code(), OnStale::Error).unwrap();
        assert_eq!(follower.shard_count(), 3);
        assert_eq!(follower.len(), 40);
        fs::remove_dir_all(&ldir).unwrap();
        fs::remove_dir_all(&fdir).unwrap();
    }
}

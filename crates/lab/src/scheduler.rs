//! The incremental sweep scheduler.
//!
//! [`run_grid`] takes a requested grid, partitions it against the store
//! into cached **hits** and to-be-computed **misses**, executes only the
//! misses in parallel, and journals each completion into the store the
//! moment it finishes — an interrupted grid resumes exactly where it
//! stopped, because every already-finished cell is a hit on the next run.
//!
//! **Determinism contract** (inherited from `bvl_bench::sweep` and load-
//! bearing for the cache): each cell's RNG stream is derived from
//! `(master seed, domain, index)` — never from the position of the cell in
//! the miss list, the worker thread, or the schedule. A cell therefore
//! computes bit-identical rows whether it runs cold in a full sweep, warm
//! as the single missing cell of a resumed grid, or at any
//! `RAYON_NUM_THREADS`.
//!
//! Hit/miss counts land on [`Counter::CacheHits`]/[`Counter::CacheMisses`]
//! and per-miss compute latency on [`Hist::CellCompute`] when the caller
//! passes an enabled registry.

use crate::fingerprint::{cell_key, CodeFingerprint};
use crate::shard::ShardedStore;
use crate::store::Cell;
use bvl_exec::RunOptions;
use bvl_model::rngutil::SeedStream;
use bvl_obs::{Counter, Hist, Registry};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::io;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One requested grid cell: the domain point of the content address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellSpec {
    /// Sweep domain (salts the RNG stream, groups cells in the store).
    pub domain: String,
    /// Index within the domain (the RNG lane — *not* the position in the
    /// request, so partial grids keep their streams).
    pub index: usize,
    /// Human-readable cell parameters; part of the content address.
    pub params: String,
    /// Fault-plan line for adversarial cells; part of the content address.
    pub plan: Option<String>,
    /// Never serve this cell from cache and never store it. For cells
    /// whose run must be live (e.g. they feed an enabled observability
    /// registry whose spans are exported afterwards).
    pub force: bool,
}

impl CellSpec {
    /// A plain cacheable cell.
    pub fn new(domain: impl Into<String>, index: usize, params: impl Into<String>) -> CellSpec {
        CellSpec {
            domain: domain.into(),
            index,
            params: params.into(),
            plan: None,
            force: false,
        }
    }

    /// Attach a fault-plan line.
    #[must_use]
    pub fn plan(mut self, plan: impl Into<String>) -> CellSpec {
        self.plan = Some(plan.into());
        self
    }

    /// Mark the cell always-live (uncacheable).
    #[must_use]
    pub fn forced(mut self) -> CellSpec {
        self.force = true;
        self
    }
}

/// A requested grid: experiment name, master seed, base run options, and
/// the cells.
#[derive(Clone, Debug)]
pub struct GridSpec {
    /// Experiment name (the store's grouping key).
    pub exp: String,
    /// Master seed every cell's RNG stream derives from.
    pub master: u64,
    /// Base run options; their canonical form is part of every cell key.
    pub opts: RunOptions,
    /// The requested cells.
    pub cells: Vec<CellSpec>,
}

impl GridSpec {
    /// An empty grid with default options.
    pub fn new(exp: impl Into<String>, master: u64) -> GridSpec {
        GridSpec {
            exp: exp.into(),
            master,
            opts: RunOptions::new(),
            cells: Vec::new(),
        }
    }

    /// Append a cell.
    #[must_use]
    pub fn cell(mut self, cell: CellSpec) -> GridSpec {
        self.cells.push(cell);
        self
    }

    /// The content address of one of this grid's cells under `code`.
    pub fn key_of(&self, code: &CodeFingerprint, cell: &CellSpec) -> String {
        cell_key(
            code,
            &self.exp,
            &cell.domain,
            cell.index,
            &cell.params,
            &self.opts.canonical(),
            cell.plan.as_deref(),
        )
    }
}

/// Per-cell context handed to the grid body (mirrors
/// `bvl_bench::sweep::Job` so retrofitted experiment bodies port 1:1).
pub struct Job {
    /// The cell's index within its domain.
    pub index: usize,
    /// Private RNG stream derived from `(master, domain, index)`.
    pub rng: ChaCha8Rng,
    /// Run options for this cell (a clone of the grid's base options).
    pub opts: RunOptions,
}

/// Outcome of a [`run_grid`] call.
#[derive(Debug)]
pub struct GridReport {
    /// Per-cell result rows, in request order.
    pub rows: Vec<Vec<Vec<String>>>,
    /// Cells served from the store.
    pub hits: usize,
    /// Cells computed (includes forced cells).
    pub misses: usize,
    /// Of the misses, how many were forced live.
    pub forced: usize,
    /// Worker threads used for the miss sweep.
    pub threads: usize,
    /// Wall-clock time of the whole call.
    pub elapsed: Duration,
}

impl GridReport {
    /// A zero report, the identity for [`GridReport::merge`].
    pub fn empty() -> GridReport {
        GridReport {
            rows: Vec::new(),
            hits: 0,
            misses: 0,
            forced: 0,
            threads: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Fold another grid's report in: rows append in order, counters add,
    /// elapsed times sum (the grids ran back to back).
    pub fn merge(&mut self, other: GridReport) {
        self.rows.extend(other.rows);
        self.hits += other.hits;
        self.misses += other.misses;
        self.forced += other.forced;
        self.threads = self.threads.max(other.threads);
        self.elapsed += other.elapsed;
    }

    /// Fraction of cells served from cache (1.0 for an all-hit grid; 0.0
    /// for an empty one).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// One-line summary for logs:
    /// `7 hits / 2 misses (1 forced) / 4 threads / 0.31s`.
    pub fn summary(&self) -> String {
        format!(
            "{} hits / {} misses ({} forced) / {} threads / {:.2}s",
            self.hits,
            self.misses,
            self.forced,
            self.threads,
            self.elapsed.as_secs_f64()
        )
    }
}

/// Execute `grid`, serving cached cells from `store` and computing the
/// rest via `f` in parallel. Pass `None` for an uncached (pure) sweep —
/// the execution and seeding paths are identical, so cached and uncached
/// runs of the same grid produce bit-identical rows. The store may have
/// any shard count: cell keys (and therefore rows) are shard-independent,
/// so the same grid against a 1-, 2- or 4-shard store is bit-identical.
pub fn run_grid<F>(
    grid: &GridSpec,
    store: Option<&ShardedStore>,
    registry: &Registry,
    f: F,
) -> io::Result<GridReport>
where
    F: Fn(&CellSpec, Job) -> Vec<Vec<String>> + Sync,
{
    let t0 = Instant::now();
    let code = match store {
        Some(s) => s.code().clone(),
        None => CodeFingerprint::current(),
    };

    let mut rows: Vec<Option<Vec<Vec<String>>>> = vec![None; grid.cells.len()];
    let mut missing: Vec<(usize, String)> = Vec::new(); // (slot, key)
    let mut hits = 0;
    let mut forced = 0;
    for (slot, cell) in grid.cells.iter().enumerate() {
        let key = grid.key_of(&code, cell);
        if cell.force {
            forced += 1;
            missing.push((slot, key));
            continue;
        }
        match store.and_then(|s| s.rows_of(&key)) {
            Some(cached) => {
                rows[slot] = Some(cached);
                hits += 1;
            }
            None => missing.push((slot, key)),
        }
    }

    let misses = missing.len();
    let threads = rayon::current_num_threads().min(misses.max(1));
    let seeds = SeedStream::new(grid.master);
    let io_err: Mutex<Option<io::Error>> = Mutex::new(None);
    let computed: Vec<(usize, Vec<Vec<String>>)> = missing
        .into_par_iter()
        .map(|(slot, key)| {
            let cell = &grid.cells[slot];
            let job = Job {
                index: cell.index,
                rng: seeds.derive(&cell.domain, cell.index as u64),
                opts: grid.opts.clone(),
            };
            let cell_t0 = Instant::now();
            let out = f(cell, job);
            registry.observe(Hist::CellCompute, cell_t0.elapsed().as_micros() as u64);
            // Journal the completion immediately: a grid interrupted after
            // this point resumes with this cell as a hit.
            if let Some(s) = store {
                if !cell.force {
                    let put = s.put(Cell {
                        key,
                        exp: grid.exp.clone(),
                        domain: cell.domain.clone(),
                        index: cell.index,
                        params: cell.params.clone(),
                        plan: cell.plan.clone(),
                        rows: out.clone(),
                    });
                    if let Err(e) = put {
                        io_err.lock().expect("err slot poisoned").get_or_insert(e);
                    }
                }
            }
            (slot, out)
        })
        .collect();
    if let Some(e) = io_err.into_inner().expect("err slot poisoned") {
        return Err(e);
    }
    for (slot, out) in computed {
        rows[slot] = Some(out);
    }

    registry.add(bvl_model::ProcId(0), Counter::CacheHits, hits as u64);
    registry.add(bvl_model::ProcId(0), Counter::CacheMisses, misses as u64);

    Ok(GridReport {
        rows: rows
            .into_iter()
            .map(|r| r.expect("every slot is a hit or a computed miss"))
            .collect(),
        hits,
        misses,
        forced,
        threads,
        elapsed: t0.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{OnStale, Store};
    use rand::RngCore;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bvl-lab-sched-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn grid(n: usize) -> GridSpec {
        let mut g = GridSpec::new("sched-test", 42);
        for i in 0..n {
            g = g.cell(CellSpec::new("dom", i, format!("i={i}")));
        }
        g
    }

    fn body(cell: &CellSpec, mut job: Job) -> Vec<Vec<String>> {
        vec![vec![cell.params.clone(), job.rng.next_u64().to_string()]]
    }

    #[test]
    fn uncached_grid_matches_request_order_and_is_deterministic() {
        let reg = Registry::disabled();
        let a = run_grid(&grid(16), None, &reg, body).unwrap();
        let b = run_grid(&grid(16), None, &reg, body).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.hits, 0);
        assert_eq!(a.misses, 16);
        assert_eq!(a.rows[7][0][0], "i=7");
    }

    #[test]
    fn second_run_is_all_hits_with_identical_rows() {
        let dir = tmpdir("warm");
        let code = CodeFingerprint::from_parts("api", "0");
        let store = ShardedStore::open(&dir, 1, code, OnStale::Error).unwrap();
        let reg = Registry::enabled(1);
        let cold = run_grid(&grid(12), Some(&store), &reg, body).unwrap();
        assert_eq!((cold.hits, cold.misses), (0, 12));
        let warm = run_grid(&grid(12), Some(&store), &reg, body).unwrap();
        assert_eq!((warm.hits, warm.misses), (12, 0));
        assert_eq!(warm.hit_rate(), 1.0);
        assert_eq!(cold.rows, warm.rows);
        assert_eq!(reg.counter(Counter::CacheHits), 12);
        assert_eq!(reg.counter(Counter::CacheMisses), 12);
        assert_eq!(reg.histogram(Hist::CellCompute).count, 12);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_grid_resumes_where_it_stopped() {
        let dir = tmpdir("resume");
        let code = CodeFingerprint::from_parts("api", "0");
        let store = ShardedStore::open(&dir, 1, code.clone(), OnStale::Error).unwrap();
        let reg = Registry::disabled();
        // "Interrupted" run: only the first half of the grid was requested
        // before the process died.
        let mut half = grid(16);
        half.cells.truncate(8);
        run_grid(&half, Some(&store), &reg, body).unwrap();
        drop(store);
        // Restart: reopen the store, request the full grid.
        let store = ShardedStore::open(&dir, 1, code, OnStale::Error).unwrap();
        let full = run_grid(&grid(16), Some(&store), &reg, body).unwrap();
        assert_eq!((full.hits, full.misses), (8, 8));
        // The resumed cells' streams are (domain, index)-derived, so the
        // rows equal a from-scratch uncached run.
        let fresh = run_grid(&grid(16), None, &reg, body).unwrap();
        assert_eq!(full.rows, fresh.rows);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn forced_cells_never_cache() {
        let dir = tmpdir("forced");
        let code = CodeFingerprint::from_parts("api", "0");
        let store = ShardedStore::from_single(Store::open(&dir, code, OnStale::Error).unwrap());
        let reg = Registry::disabled();
        let g = GridSpec::new("forced-test", 1)
            .cell(CellSpec::new("dom", 0, "cached"))
            .cell(CellSpec::new("dom", 1, "live").forced());
        let cold = run_grid(&g, Some(&store), &reg, body).unwrap();
        assert_eq!((cold.hits, cold.misses, cold.forced), (0, 2, 1));
        let warm = run_grid(&g, Some(&store), &reg, body).unwrap();
        assert_eq!((warm.hits, warm.misses, warm.forced), (1, 1, 1));
        assert_eq!(store.len(), 1);
        assert_eq!(cold.rows, warm.rows, "forced cells are still deterministic");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn distinct_options_or_plans_get_distinct_keys() {
        let code = CodeFingerprint::from_parts("api", "0");
        let g = grid(1);
        let base = g.key_of(&code, &g.cells[0]);
        let mut seeded = g.clone();
        seeded.opts = RunOptions::new().seed(9);
        assert_ne!(base, seeded.key_of(&code, &seeded.cells[0]));
        let planned = g.cells[0].clone().plan("seed=1,dup=3");
        assert_ne!(base, g.key_of(&code, &planned));
    }
}

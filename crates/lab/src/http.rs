//! The serve front end: a std-only HTTP/1.1 JSON endpoint over the store.
//!
//! No async runtime and no HTTP dependency: a [`std::net::TcpListener`]
//! accept loop feeds a **bounded pool** of worker threads over an
//! `mpsc` channel, each worker parsing the one-request-per-connection
//! subset of HTTP/1.1 this service speaks (`Connection: close` on every
//! response). That is deliberately the smallest thing that serves
//! concurrent clients correctly; swapping in a real server framework
//! would change this file only.
//!
//! Routes:
//!
//! * `GET /status` — store + service counters (cells, segments, staleness,
//!   cache hits/misses, serve-latency histogram mean).
//! * `GET /metrics` — the live metrics plane: a full counter snapshot,
//!   histogram summaries, and the scheduler's cache hit rate, all read
//!   from the same service registry `/status` reports, so the two
//!   endpoints always agree.
//! * `GET /cells?exp=NAME` — every cached cell of one experiment, payload
//!   rows included.
//! * `POST /run` — body `{"exp":"NAME","smoke":true,"tier":"sampled:8"}`
//!   (`smoke` and `tier` optional): run the named registered experiment's
//!   grid through the store (incremental: cached cells are hits) at the
//!   requested observability [`Tier`] and report the hit/miss split. The
//!   tier never enters the cache key, so dialing recording depth up or
//!   down cannot fork the store. Instead of `"exp"` the body may carry
//!   `"scenario":"<document text>"` — a scenario document (its one-line
//!   `repro()` form fits a JSON string natively; multi-line text uses
//!   `\n` escapes) parsed, compiled, run and audited by the registered
//!   [`ScenarioRunner`]. Exactly one of the two fields must be present.

use crate::jsonio::{encode_rows, escape, Cursor};
use crate::scheduler::{run_grid, CellSpec, GridReport, GridSpec, Job};
use crate::store::Store;
use bvl_obs::{Counter, Hist, Registry, Tier};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A runnable experiment the service can execute on demand: a named grid
/// plus the per-cell measurement body. Implementations live next to the
/// experiment binaries (`bvl_bench::labexp`) so the CLI, the HTTP service
/// and the `exp_*` bins share one grid definition — and therefore one set
/// of cache keys.
pub trait Experiment: Send + Sync {
    /// Stable experiment name (the store grouping key and URL parameter).
    fn name(&self) -> &str;
    /// Build the requested grids (`smoke` selects the reduced CI shape).
    /// An experiment may span several grids when its sweeps use different
    /// master seeds; every grid's `exp` should equal [`Experiment::name`].
    fn grids(&self, smoke: bool) -> Vec<GridSpec>;
    /// Compute one cell.
    fn run_cell(&self, cell: &CellSpec, job: Job) -> Vec<Vec<String>>;
    /// Audit a completed grid's rows (`rows[i]` belongs to
    /// `grid.cells[i]`) against whatever invariants the experiment can
    /// prove — e.g. the BSS communication lower bounds. Each returned
    /// string is one violation; any violation **fails the run** (a
    /// measured cost below a proven bound is a simulator bug, not a fast
    /// run). The default audits nothing.
    fn audit(&self, _grid: &GridSpec, _rows: &[Vec<Vec<String>>]) -> Vec<String> {
        Vec::new()
    }
}

/// How a scenario run failed: a bad document (client error) or a failed
/// execution/audit (server error). The split drives the HTTP status.
#[derive(Debug)]
pub enum ScenarioError {
    /// The document did not parse or compile.
    Invalid(String),
    /// The document ran but a grid failed or a bounds audit fired.
    Failed(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Invalid(e) => write!(f, "invalid scenario: {e}"),
            ScenarioError::Failed(e) => write!(f, "{e}"),
        }
    }
}

/// Runs scenario documents submitted as data (`POST /run` with a
/// `"scenario"` body, `lab run --scenario`). The lab crate cannot lower
/// documents itself — cell bodies live next to the experiment binaries —
/// so the binary that builds the [`Service`] registers a runner via
/// [`Service::with_scenario_runner`].
pub trait ScenarioRunner: Send + Sync {
    /// Parse, compile, run and audit `text` through `store`, returning the
    /// scenario name and the merged report.
    fn run_scenario(
        &self,
        text: &str,
        store: &Mutex<Store>,
        registry: &Registry,
        smoke: bool,
        tier: Option<Tier>,
    ) -> Result<(String, GridReport), ScenarioError>;
}

/// Shared state behind the front end: the store, the service registry and
/// the registered experiments.
pub struct Service {
    /// The persistent result store.
    pub store: Mutex<Store>,
    /// Service metrics (cache hits/misses, serve latency).
    pub registry: Registry,
    exps: Vec<Box<dyn Experiment>>,
    scenario: Option<Box<dyn ScenarioRunner>>,
}

impl Service {
    /// Bundle a store, a registry and the runnable experiments.
    pub fn new(store: Store, registry: Registry, exps: Vec<Box<dyn Experiment>>) -> Service {
        Service {
            store: Mutex::new(store),
            registry,
            exps,
            scenario: None,
        }
    }

    /// Enable `POST /run` scenario bodies by registering a runner.
    pub fn with_scenario_runner(mut self, runner: Box<dyn ScenarioRunner>) -> Service {
        self.scenario = Some(runner);
        self
    }

    /// Run a scenario document through the registered [`ScenarioRunner`].
    /// `None` when no runner is registered.
    pub fn run_scenario(
        &self,
        text: &str,
        smoke: bool,
        tier: Option<Tier>,
    ) -> Option<Result<(String, GridReport), ScenarioError>> {
        let runner = self.scenario.as_ref()?;
        Some(runner.run_scenario(text, &self.store, &self.registry, smoke, tier))
    }

    /// Registered experiment names.
    pub fn names(&self) -> Vec<&str> {
        self.exps.iter().map(|e| e.name()).collect()
    }

    /// Look up a registered experiment.
    pub fn experiment(&self, name: &str) -> Option<&dyn Experiment> {
        self.exps.iter().find(|e| e.name() == name).map(|e| e.as_ref())
    }

    /// Run a registered experiment's grids through the store, merging the
    /// per-grid reports into one. `tier` (when given) overrides the grids'
    /// observability tier for this run's live cells; it is excluded from
    /// cell keys, so cached results are shared across tiers.
    pub fn run(
        &self,
        name: &str,
        smoke: bool,
        tier: Option<Tier>,
    ) -> Option<io::Result<GridReport>> {
        let exp = self.experiment(name)?;
        let mut merged = GridReport::empty();
        for mut grid in exp.grids(smoke) {
            if let Some(t) = tier {
                grid.opts = grid.opts.clone().obs(t);
            }
            let rep = match run_grid(&grid, Some(&self.store), &self.registry, |cell, job| {
                exp.run_cell(cell, job)
            }) {
                Ok(rep) => rep,
                Err(e) => return Some(Err(e)),
            };
            let violations = exp.audit(&grid, &rep.rows);
            if !violations.is_empty() {
                return Some(Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "bounds audit failed ({} violation{}): {}",
                        violations.len(),
                        if violations.len() == 1 { "" } else { "s" },
                        violations.join("; ")
                    ),
                )));
            }
            merged.merge(rep);
        }
        Some(Ok(merged))
    }
}

/// A running HTTP server; dropping it does **not** stop the threads —
/// call [`Server::stop`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// The bound address (useful with a `:0` listen request).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal shutdown, unblock the accept loop, and join every thread.
    /// In-flight requests complete; queued connections are served.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Start serving `service` on `addr` (e.g. `"127.0.0.1:0"`) with a bounded
/// pool of `workers` threads. Accepted connections queue (bounded at
/// `4 × workers`) until a worker frees up, so a burst of clients larger
/// than the pool is served, in order, rather than dropped.
pub fn serve(addr: &str, service: Arc<Service>, workers: usize) -> io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let workers = workers.max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) = sync_channel(4 * workers);
    let rx = Arc::new(Mutex::new(rx));

    let mut handles = Vec::new();
    for _ in 0..workers {
        let rx = Arc::clone(&rx);
        let service = Arc::clone(&service);
        handles.push(std::thread::spawn(move || loop {
            let stream = match rx.lock().expect("rx poisoned").recv() {
                Ok(s) => s,
                Err(_) => break, // accept loop dropped the sender: shutdown
            };
            let t0 = Instant::now();
            let _ = handle_connection(stream, &service);
            service
                .registry
                .observe(Hist::ServeLatency, t0.elapsed().as_micros() as u64);
        }));
    }

    let accept_stop = Arc::clone(&stop);
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // A send only fails when every worker already exited.
            if tx.send(stream).is_err() {
                break;
            }
        }
        // Dropping `tx` here wakes the workers out of `recv`.
    });

    Ok(Server {
        addr: local,
        stop,
        accept,
        workers: handles,
    })
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn err_body(msg: &str) -> String {
    format!("{{\"error\":\"{}\"}}", escape(msg))
}

fn handle_connection(mut stream: TcpStream, service: &Service) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => return respond(&mut stream, "400 Bad Request", &err_body("malformed request line")),
    };

    // Headers: only Content-Length matters to this service.
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap_or(0);
        }
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let query_param = |name: &str| -> Option<String> {
        query
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.to_string())
    };

    match (method.as_str(), path) {
        ("GET", "/status") => respond(&mut stream, "200 OK", &status_body(service)),
        ("GET", "/metrics") => respond(&mut stream, "200 OK", &metrics_body(service)),
        ("GET", "/cells") => match query_param("exp") {
            None => respond(&mut stream, "400 Bad Request", &err_body("missing ?exp=")),
            Some(exp) => respond(&mut stream, "200 OK", &cells_body(service, &exp)),
        },
        ("POST", "/run") => {
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            let body = String::from_utf8_lossy(&body);
            match parse_run_body(&body) {
                Err(e) => respond(&mut stream, "400 Bad Request", &err_body(&e)),
                Ok(req) if req.scenario.is_some() => {
                    let text = req.scenario.as_deref().unwrap_or_default();
                    match service.run_scenario(text, req.smoke, req.tier) {
                        None => respond(
                            &mut stream,
                            "400 Bad Request",
                            &err_body("this service has no scenario runner registered"),
                        ),
                        Some(Err(ScenarioError::Invalid(e))) => {
                            respond(&mut stream, "400 Bad Request", &err_body(&e))
                        }
                        Some(Err(ScenarioError::Failed(e))) => {
                            respond(&mut stream, "500 Internal Server Error", &err_body(&e))
                        }
                        Some(Ok((name, rep))) => respond(
                            &mut stream,
                            "200 OK",
                            &run_report_body("scenario", &name, req.smoke, req.tier, &rep),
                        ),
                    }
                }
                Ok(req) => {
                    let exp = req.exp.as_deref().unwrap_or_default();
                    match service.run(exp, req.smoke, req.tier) {
                        None => respond(
                            &mut stream,
                            "400 Bad Request",
                            &err_body(&format!(
                                "unknown experiment '{exp}' (registered: {})",
                                service.names().join(", ")
                            )),
                        ),
                        Some(Err(e)) => respond(
                            &mut stream,
                            "500 Internal Server Error",
                            &err_body(&format!("grid failed: {e}")),
                        ),
                        Some(Ok(rep)) => respond(
                            &mut stream,
                            "200 OK",
                            &run_report_body("exp", exp, req.smoke, req.tier, &rep),
                        ),
                    }
                }
            }
        }
        ("GET", _) => respond(&mut stream, "404 Not Found", &err_body("no such route")),
        _ => respond(&mut stream, "405 Method Not Allowed", &err_body("GET or POST only")),
    }
}

/// A decoded `POST /run` body: exactly one of `exp` (a registered
/// experiment name) or `scenario` (a scenario document as text) plus the
/// optional `smoke` and `tier` knobs.
#[derive(Debug, PartialEq)]
struct RunRequest {
    exp: Option<String>,
    scenario: Option<String>,
    smoke: bool,
    tier: Option<Tier>,
}

/// Parse `{"exp":"NAME"}` or `{"scenario":"TEXT"}` with optional
/// `"smoke":BOOL` and `"tier":"off|counters|sampled[:rate]|full"` fields,
/// in any order.
fn parse_run_body(body: &str) -> Result<RunRequest, String> {
    let mut cur = Cursor::new(body);
    cur.expect(b'{')?;
    let mut exp = None;
    let mut scenario = None;
    let mut smoke = false;
    let mut tier = None;
    loop {
        let field = cur.string()?;
        cur.expect(b':')?;
        match field.as_str() {
            "exp" => exp = Some(cur.string()?),
            "scenario" => scenario = Some(cur.string()?),
            "smoke" => smoke = cur.boolean()?,
            "tier" => {
                let label = cur.string()?;
                tier = Some(
                    Tier::parse(&label).ok_or_else(|| format!("unknown tier '{label}'"))?,
                );
            }
            other => return Err(format!("unknown field '{other}'")),
        }
        if !cur.eat(b',') {
            break;
        }
    }
    cur.expect(b'}')?;
    match (&exp, &scenario) {
        (None, None) => Err("missing \"exp\"".into()),
        (Some(_), Some(_)) => Err("\"exp\" and \"scenario\" are mutually exclusive".into()),
        _ => Ok(RunRequest {
            exp,
            scenario,
            smoke,
            tier,
        }),
    }
}

/// The `POST /run` success body, shared by experiment and scenario runs —
/// only the leading field name (`"exp"` vs `"scenario"`) differs.
fn run_report_body(
    kind: &str,
    name: &str,
    smoke: bool,
    tier: Option<Tier>,
    rep: &GridReport,
) -> String {
    format!(
        "{{\"{kind}\":\"{}\",\"smoke\":{smoke},\"tier\":\"{}\",\"cells\":{},\
         \"hits\":{},\"misses\":{},\"forced\":{},\"elapsed_ms\":{}}}",
        escape(name),
        tier.unwrap_or_default().label(),
        rep.rows.len(),
        rep.hits,
        rep.misses,
        rep.forced,
        rep.elapsed.as_millis()
    )
}

fn status_body(service: &Service) -> String {
    let store = service.store.lock().expect("store poisoned");
    let segments = store.segments().map(|s| s.len()).unwrap_or(0);
    let exps: Vec<String> = store
        .experiments()
        .into_iter()
        .map(|(name, cells)| format!("{{\"name\":\"{}\",\"cells\":{cells}}}", escape(&name)))
        .collect();
    let serve = service.registry.histogram(Hist::ServeLatency);
    format!(
        "{{\"code\":\"{}\",\"stale\":{},\"cells\":{},\"segments\":{segments},\"torn\":{},\
         \"experiments\":[{}],\"registered\":[{}],\"cache_hits\":{},\"cache_misses\":{},\
         \"serve_mean_us\":{:.0}}}",
        escape(store.code().as_str()),
        store
            .stale()
            .map_or_else(|| "null".into(), |c| format!("\"{}\"", escape(c))),
        store.len(),
        store.torn(),
        exps.join(","),
        service
            .names()
            .iter()
            .map(|n| format!("\"{}\"", escape(n)))
            .collect::<Vec<_>>()
            .join(","),
        service.registry.counter(Counter::CacheHits),
        service.registry.counter(Counter::CacheMisses),
        serve.mean(),
    )
}

/// The live metrics plane: every counter, a summary of every histogram,
/// and the scheduler's cache hit rate — all read from `service.registry`,
/// the same source `/status` reports, so the two endpoints agree by
/// construction.
fn metrics_body(service: &Service) -> String {
    let reg = &service.registry;
    let counters: Vec<String> = Counter::ALL
        .iter()
        .map(|&c| format!("\"{}\":{}", c.as_str(), reg.counter(c)))
        .collect();
    let hists: Vec<String> = Hist::ALL
        .iter()
        .map(|&h| {
            let s = reg.histogram(h);
            format!(
                "\"{}\":{{\"count\":{},\"mean\":{:.2}}}",
                h.as_str(),
                s.count,
                s.mean()
            )
        })
        .collect();
    let hits = reg.counter(Counter::CacheHits);
    let misses = reg.counter(Counter::CacheMisses);
    let total = hits + misses;
    let hit_rate = if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    };
    format!(
        "{{\"tier\":\"{}\",\"spans_dropped\":{},\"counters\":{{{}}},\"hists\":{{{}}},\
         \"scheduler\":{{\"cache_hits\":{hits},\"cache_misses\":{misses},\
         \"hit_rate\":{hit_rate:.4}}}}}",
        reg.tier().label(),
        reg.spans_dropped(),
        counters.join(","),
        hists.join(",")
    )
}

fn cells_body(service: &Service, exp: &str) -> String {
    let store = service.store.lock().expect("store poisoned");
    let cells: Vec<String> = store
        .cells_for(exp)
        .into_iter()
        .map(|c| {
            let plan = c
                .plan
                .as_deref()
                .map_or_else(|| "null".into(), |p| format!("\"{}\"", escape(p)));
            format!(
                "{{\"key\":\"{}\",\"domain\":\"{}\",\"index\":{},\"params\":\"{}\",\
                 \"plan\":{plan},\"payload\":{}}}",
                escape(&c.key),
                escape(&c.domain),
                c.index,
                escape(&c.params),
                encode_rows(&c.rows)
            )
        })
        .collect();
    format!(
        "{{\"exp\":\"{}\",\"count\":{},\"cells\":[{}]}}",
        escape(exp),
        cells.len(),
        cells.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp_req(exp: &str, smoke: bool, tier: Option<Tier>) -> RunRequest {
        RunRequest {
            exp: Some(exp.into()),
            scenario: None,
            smoke,
            tier,
        }
    }

    #[test]
    fn run_body_parses_both_orders_and_rejects_junk() {
        assert_eq!(
            parse_run_body("{\"exp\":\"t\",\"smoke\":true}").unwrap(),
            exp_req("t", true, None)
        );
        assert_eq!(
            parse_run_body("{\"smoke\":false,\"exp\":\"t\"}").unwrap(),
            exp_req("t", false, None)
        );
        assert_eq!(
            parse_run_body("{\"exp\":\"t\"}").unwrap(),
            exp_req("t", false, None)
        );
        assert!(parse_run_body("{\"smoke\":true}").is_err());
        assert!(parse_run_body("not json").is_err());
        assert!(parse_run_body("{\"exp\":\"t\",\"extra\":1}").is_err());
    }

    #[test]
    fn run_body_parses_the_tier_field() {
        assert_eq!(
            parse_run_body("{\"exp\":\"t\",\"tier\":\"sampled:4\"}").unwrap(),
            exp_req("t", false, Some(Tier::Sampled { rate: 4 }))
        );
        assert_eq!(
            parse_run_body("{\"tier\":\"counters\",\"smoke\":true,\"exp\":\"t\"}").unwrap(),
            exp_req("t", true, Some(Tier::CountersOnly))
        );
        assert!(parse_run_body("{\"exp\":\"t\",\"tier\":\"loud\"}").is_err());
    }

    #[test]
    fn run_body_accepts_a_scenario_but_not_both() {
        let req =
            parse_run_body("{\"scenario\":\"scenario s; grid exp=e master=1\",\"smoke\":true}")
                .unwrap();
        assert_eq!(req.exp, None);
        assert_eq!(
            req.scenario.as_deref(),
            Some("scenario s; grid exp=e master=1")
        );
        assert!(req.smoke);
        // Embedded newlines arrive through the JSON string escape.
        let multiline = parse_run_body("{\"scenario\":\"scenario s\\ngrid exp=e master=1\"}")
            .unwrap();
        assert_eq!(
            multiline.scenario.as_deref(),
            Some("scenario s\ngrid exp=e master=1")
        );
        assert!(parse_run_body("{\"exp\":\"t\",\"scenario\":\"scenario s\"}").is_err());
    }
}

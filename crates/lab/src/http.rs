//! The serve front end: a nonblocking HTTP/1.1 JSON endpoint on epoll.
//!
//! No async runtime and no HTTP dependency. One event-loop thread owns a
//! nonblocking [`std::net::TcpListener`] plus every live connection,
//! multiplexed through [`crate::epoll::Epoll`] (level-triggered). Cheap
//! requests (`GET /status`, `/metrics`, `/cells`) are answered directly
//! on the loop; `POST /run` — which may compute a whole grid — is handed
//! to a bounded pool of worker threads, and the finished response comes
//! back to the loop through a completion queue plus an
//! [`crate::epoll::EventFd`] doorbell. Concurrency is therefore bounded
//! by file descriptors, not threads: thousands of simultaneous clients
//! cost one `Conn` struct each, while at most `workers` grids compute.
//!
//! Connections are persistent per HTTP/1.1: a request without
//! `Connection: close` keeps the connection open after the response, and
//! because requests are framed by `Content-Length` a client may pipeline
//! — buffered bytes beyond one request are kept and dispatched as soon as
//! the previous response drains. A connection is a little state machine:
//! **Reading** (accumulate bytes until the request is complete),
//! **Running** (a worker owns the response), **Writing** (drain the
//! response until done or `WouldBlock`), then back to Reading on
//! keep-alive. Responses are counted and their latency observed the
//! moment the last byte is written (request-received to
//! response-written), not at close. Connections idle in Reading/Writing
//! past `IDLE_TIMEOUT` are reaped, so stalled or half-open peers cannot
//! leak descriptors.
//!
//! Routes:
//!
//! * `GET /status` — store + service counters (cells, segments, shards,
//!   staleness, cache hits/misses, serve-latency histogram mean).
//! * `GET /metrics` — the live metrics plane: a full counter snapshot,
//!   histogram summaries, the scheduler's cache hit rate, and the serve
//!   loop's own accept/response/close counters, all read from the same
//!   service registry `/status` reports, so the two endpoints agree.
//! * `GET /cells?exp=NAME` — every cached cell of one experiment, payload
//!   rows included.
//! * `POST /run` — body `{"exp":"NAME","smoke":true,"tier":"sampled:8"}`
//!   (`smoke` and `tier` optional): run the named registered experiment's
//!   grid through the store (incremental: cached cells are hits) at the
//!   requested observability [`Tier`] and report the hit/miss split. The
//!   tier never enters the cache key, so dialing recording depth up or
//!   down cannot fork the store. Instead of `"exp"` the body may carry
//!   `"scenario":"<document text>"` — a scenario document (its one-line
//!   `repro()` form fits a JSON string natively; multi-line text uses
//!   `\n` escapes) parsed, compiled, run and audited by the registered
//!   [`ScenarioRunner`]. Exactly one of the two fields must be present.

use crate::epoll::{Epoll, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::jsonio::{encode_rows, escape, Cursor};
use crate::scheduler::{run_grid, CellSpec, GridReport, GridSpec, Job};
use crate::shard::ShardedStore;
use bvl_obs::{Counter, Hist, Registry, Tier};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A runnable experiment the service can execute on demand: a named grid
/// plus the per-cell measurement body. Implementations live next to the
/// experiment binaries (`bvl_bench::labexp`) so the CLI, the HTTP service
/// and the `exp_*` bins share one grid definition — and therefore one set
/// of cache keys.
pub trait Experiment: Send + Sync {
    /// Stable experiment name (the store grouping key and URL parameter).
    fn name(&self) -> &str;
    /// Build the requested grids (`smoke` selects the reduced CI shape).
    /// An experiment may span several grids when its sweeps use different
    /// master seeds; every grid's `exp` should equal [`Experiment::name`].
    fn grids(&self, smoke: bool) -> Vec<GridSpec>;
    /// Compute one cell.
    fn run_cell(&self, cell: &CellSpec, job: Job) -> Vec<Vec<String>>;
    /// Audit a completed grid's rows (`rows[i]` belongs to
    /// `grid.cells[i]`) against whatever invariants the experiment can
    /// prove — e.g. the BSS communication lower bounds. Each returned
    /// string is one violation; any violation **fails the run** (a
    /// measured cost below a proven bound is a simulator bug, not a fast
    /// run). The default audits nothing.
    fn audit(&self, _grid: &GridSpec, _rows: &[Vec<Vec<String>>]) -> Vec<String> {
        Vec::new()
    }
}

/// How a scenario run failed: a bad document (client error) or a failed
/// execution/audit (server error). The split drives the HTTP status.
#[derive(Debug)]
pub enum ScenarioError {
    /// The document did not parse or compile.
    Invalid(String),
    /// The document ran but a grid failed or a bounds audit fired.
    Failed(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Invalid(e) => write!(f, "invalid scenario: {e}"),
            ScenarioError::Failed(e) => write!(f, "{e}"),
        }
    }
}

/// Runs scenario documents submitted as data (`POST /run` with a
/// `"scenario"` body, `lab run --scenario`). The lab crate cannot lower
/// documents itself — cell bodies live next to the experiment binaries —
/// so the binary that builds the [`Service`] registers a runner via
/// [`Service::with_scenario_runner`].
pub trait ScenarioRunner: Send + Sync {
    /// Parse, compile, run and audit `text` through `store`, returning the
    /// scenario name and the merged report.
    fn run_scenario(
        &self,
        text: &str,
        store: &ShardedStore,
        registry: &Registry,
        smoke: bool,
        tier: Option<Tier>,
    ) -> Result<(String, GridReport), ScenarioError>;
}

/// The serve loop's own lifecycle counters, surfaced on `GET /metrics` so
/// a load generator can reconcile what it saw with what the server did.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Responses fully written.
    pub responses: AtomicU64,
    /// Connections closed (every accept ends here, with or without a
    /// response — disconnects, timeouts and malformed requests included).
    pub closed: AtomicU64,
}

impl ServeStats {
    fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.accepted.load(Ordering::Relaxed),
            self.responses.load(Ordering::Relaxed),
            self.closed.load(Ordering::Relaxed),
        )
    }
}

/// Shared state behind the front end: the sharded store, the service
/// registry and the registered experiments. The store carries its own
/// per-shard locks, so the service needs no outer mutex — concurrent
/// grid runs contend only when they touch the same shard.
pub struct Service {
    /// The persistent result store (1..N digest-routed shards).
    pub store: ShardedStore,
    /// Service metrics (cache hits/misses, serve latency).
    pub registry: Registry,
    /// Serve-loop lifecycle counters.
    pub stats: ServeStats,
    exps: Vec<Box<dyn Experiment>>,
    scenario: Option<Box<dyn ScenarioRunner>>,
}

impl Service {
    /// Bundle a store, a registry and the runnable experiments.
    pub fn new(
        store: ShardedStore,
        registry: Registry,
        exps: Vec<Box<dyn Experiment>>,
    ) -> Service {
        Service {
            store,
            registry,
            stats: ServeStats::default(),
            exps,
            scenario: None,
        }
    }

    /// Enable `POST /run` scenario bodies by registering a runner.
    pub fn with_scenario_runner(mut self, runner: Box<dyn ScenarioRunner>) -> Service {
        self.scenario = Some(runner);
        self
    }

    /// Run a scenario document through the registered [`ScenarioRunner`].
    /// `None` when no runner is registered.
    pub fn run_scenario(
        &self,
        text: &str,
        smoke: bool,
        tier: Option<Tier>,
    ) -> Option<Result<(String, GridReport), ScenarioError>> {
        let runner = self.scenario.as_ref()?;
        Some(runner.run_scenario(text, &self.store, &self.registry, smoke, tier))
    }

    /// Registered experiment names.
    pub fn names(&self) -> Vec<&str> {
        self.exps.iter().map(|e| e.name()).collect()
    }

    /// Look up a registered experiment.
    pub fn experiment(&self, name: &str) -> Option<&dyn Experiment> {
        self.exps.iter().find(|e| e.name() == name).map(|e| e.as_ref())
    }

    /// Run a registered experiment's grids through the store, merging the
    /// per-grid reports into one. `tier` (when given) overrides the grids'
    /// observability tier for this run's live cells; it is excluded from
    /// cell keys, so cached results are shared across tiers.
    pub fn run(
        &self,
        name: &str,
        smoke: bool,
        tier: Option<Tier>,
    ) -> Option<io::Result<GridReport>> {
        let exp = self.experiment(name)?;
        let mut merged = GridReport::empty();
        for mut grid in exp.grids(smoke) {
            if let Some(t) = tier {
                grid.opts = grid.opts.clone().obs(t);
            }
            let rep = match run_grid(&grid, Some(&self.store), &self.registry, |cell, job| {
                exp.run_cell(cell, job)
            }) {
                Ok(rep) => rep,
                Err(e) => return Some(Err(e)),
            };
            let violations = exp.audit(&grid, &rep.rows);
            if !violations.is_empty() {
                return Some(Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "bounds audit failed ({} violation{}): {}",
                        violations.len(),
                        if violations.len() == 1 { "" } else { "s" },
                        violations.join("; ")
                    ),
                )));
            }
            merged.merge(rep);
        }
        Some(Ok(merged))
    }
}

/// Reap a connection stuck in Reading/Writing for this long. Connections
/// in Running are exempt — a long grid compute is progress, not a stall.
const IDLE_TIMEOUT: Duration = Duration::from_secs(10);
/// After [`Server::stop`], wait at most this long for in-flight runs.
const STOP_GRACE: Duration = Duration::from_secs(30);
/// Reject a request whose head (request line + headers) exceeds this.
const MAX_HEAD: usize = 64 * 1024;
/// Reject a request whose declared body exceeds this.
const MAX_BODY: usize = 8 * 1024 * 1024;

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// A running HTTP server; dropping it does **not** stop the threads —
/// call [`Server::stop`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wake: Arc<EventFd>,
    event_loop: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// The bound address (useful with a `:0` listen request).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal shutdown, wake the event loop, and join every thread.
    /// In-flight runs complete (bounded by a grace period); new
    /// connections stop being accepted immediately.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.wake.ring();
        let _ = self.event_loop.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// One `POST /run` handed to the worker pool.
struct RunJob {
    token: u64,
    req: RunRequest,
    /// Framing the worker must bake into the response bytes.
    keep_alive: bool,
}

/// Start serving `service` on `addr` (e.g. `"127.0.0.1:0"`). The event
/// loop is nonblocking epoll, so concurrent *connections* are limited
/// only by descriptors; `workers` bounds how many `POST /run` grids
/// compute simultaneously (queued jobs run in arrival order).
pub fn serve(addr: &str, service: Arc<Service>, workers: usize) -> io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    // Widen the accept backlog past std's 128 so a concurrent-connect
    // storm establishes promptly instead of parking in SYN_RECV. Best
    // effort: the server works (slower under storms) at the default.
    let _ = crate::epoll::widen_backlog(listener.as_raw_fd(), 4096);
    let workers = workers.max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let wake = Arc::new(EventFd::new()?);
    let completions: CompletionQueue = Arc::new(Mutex::new(Vec::new()));
    let (work_tx, work_rx) = channel::<RunJob>();
    let work_rx = Arc::new(Mutex::new(work_rx));

    let mut worker_handles = Vec::new();
    for _ in 0..workers {
        let work_rx = Arc::clone(&work_rx);
        let service = Arc::clone(&service);
        let completions = Arc::clone(&completions);
        let wake = Arc::clone(&wake);
        worker_handles.push(std::thread::spawn(move || loop {
            let job = {
                let rx = work_rx.lock().expect("work rx poisoned");
                match rx.recv() {
                    Ok(job) => job,
                    Err(_) => break, // event loop exited: shutdown
                }
            };
            let (status, body) = run_response(&service, &job.req);
            completions
                .lock()
                .expect("completions poisoned")
                .push((job.token, response_bytes(status, &body, job.keep_alive)));
            let _ = wake.ring();
        }));
    }

    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
    epoll.add(wake.raw(), EPOLLIN, TOKEN_WAKE)?;

    let loop_stop = Arc::clone(&stop);
    let loop_wake = Arc::clone(&wake);
    let event_loop = std::thread::spawn(move || {
        event_loop(
            listener,
            epoll,
            loop_wake,
            service,
            loop_stop,
            completions,
            work_tx,
        );
    });

    Ok(Server {
        addr: local,
        stop,
        wake,
        event_loop,
        workers: worker_handles,
    })
}

/// Completed `POST /run` responses, keyed by connection token, handed
/// from the worker pool back to the event loop.
type CompletionQueue = Arc<Mutex<Vec<(u64, Vec<u8>)>>>;

/// Connection lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnState {
    /// Accumulating request bytes.
    Reading,
    /// A worker thread owns the response.
    Running,
    /// Draining the response buffer.
    Writing,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    buf: Vec<u8>,
    out: Vec<u8>,
    written: usize,
    /// When the in-flight request was fully received (serve latency is
    /// request-received → response-written); accept time until then.
    t0: Instant,
    last_activity: Instant,
    /// Whether the in-flight request asked to keep the connection open
    /// (HTTP/1.1 default; `Connection: close` or HTTP/1.0 opt out).
    keep_alive: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        let now = Instant::now();
        Conn {
            stream,
            state: ConnState::Reading,
            buf: Vec::new(),
            out: Vec::new(),
            written: 0,
            t0: now,
            last_activity: now,
            keep_alive: false,
        }
    }
}

/// What the loop should do with a connection after handling an event.
enum Action {
    Keep,
    Close { responded: bool },
    /// A keep-alive response was fully written: count it, return the
    /// connection to Reading, and dispatch any pipelined request already
    /// buffered.
    Responded,
}

#[allow(clippy::too_many_lines)]
fn event_loop(
    listener: TcpListener,
    epoll: Epoll,
    wake: Arc<EventFd>,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    completions: CompletionQueue,
    work_tx: Sender<RunJob>,
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events = vec![crate::epoll::EpollEvent { events: 0, data: 0 }; 512];
    let mut accepting = true;
    let mut stopped_at: Option<Instant> = None;

    while let Ok(n) = epoll.wait(&mut events, 100) {
        let ready: Vec<(u64, u32)> = events[..n].iter().map(|e| (e.data, e.events)).collect();
        for (token, bits) in ready {
            match token {
                TOKEN_LISTENER => {
                    if !accepting {
                        continue;
                    }
                    accept_ready(&listener, &epoll, &service, &mut conns, &mut next_token);
                }
                TOKEN_WAKE => {
                    let _ = wake.drain();
                }
                token => {
                    let Some(conn) = conns.get_mut(&token) else { continue };
                    let action = handle_conn_event(conn, bits, token, &epoll, &service, &work_tx);
                    finish(action, token, &mut conns, &epoll, &service, &work_tx);
                }
            }
        }

        // Deliver worker completions: attach the response and start
        // draining it on the owning connection.
        let done: Vec<(u64, Vec<u8>)> = {
            let mut q = completions.lock().expect("completions poisoned");
            std::mem::take(&mut *q)
        };
        for (token, bytes) in done {
            let Some(conn) = conns.get_mut(&token) else {
                continue; // client vanished mid-run; drop the response
            };
            let action = start_writing(conn, bytes, token, &epoll);
            finish(action, token, &mut conns, &epoll, &service, &work_tx);
        }

        // Reap connections idle in Reading/Writing (half-open peers,
        // stalled readers). Running is exempt: the worker owns it.
        let now = Instant::now();
        let idle: Vec<u64> = conns
            .iter()
            .filter(|(_, c)| {
                c.state != ConnState::Running && now - c.last_activity > IDLE_TIMEOUT
            })
            .map(|(&t, _)| t)
            .collect();
        for token in idle {
            finish(
                Action::Close { responded: false },
                token,
                &mut conns,
                &epoll,
                &service,
                &work_tx,
            );
        }

        if stop.load(Ordering::SeqCst) {
            if accepting {
                accepting = false;
                let _ = epoll.del(listener.as_raw_fd());
                stopped_at = Some(Instant::now());
            }
            let grace_over = stopped_at.is_some_and(|t| t.elapsed() > STOP_GRACE);
            if conns.is_empty() || grace_over {
                break;
            }
        }
    }
    // Dropping `work_tx` here hangs up the worker channel; workers drain
    // queued jobs, then exit. Remaining connections close with the loop.
    for (_, conn) in conns.drain() {
        let _ = epoll.del(conn.stream.as_raw_fd());
        service.stats.closed.fetch_add(1, Ordering::Relaxed);
    }
}

fn accept_ready(
    listener: &TcpListener,
    epoll: &Epoll,
    service: &Service,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if epoll
                    .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
                    .is_err()
                {
                    continue; // fd table pressure: shed the connection
                }
                conns.insert(token, Conn::new(stream));
                service.stats.accepted.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Apply `action`. On close, deregister and drop the connection (closing
/// its descriptor), counting the response if one was written. On
/// `Responded` (keep-alive), count the response, return the connection to
/// Reading, and immediately dispatch the next pipelined request if one is
/// already buffered — looping, since that request may complete in turn.
fn finish(
    mut action: Action,
    token: u64,
    conns: &mut HashMap<u64, Conn>,
    epoll: &Epoll,
    service: &Service,
    work_tx: &Sender<RunJob>,
) {
    loop {
        match action {
            Action::Keep => return,
            Action::Close { responded } => {
                if let Some(conn) = conns.remove(&token) {
                    let _ = epoll.del(conn.stream.as_raw_fd());
                    service.stats.closed.fetch_add(1, Ordering::Relaxed);
                    if responded {
                        count_response(service, &conn);
                    }
                    // `conn.stream` drops here, closing the fd — the only
                    // close path, so every accepted descriptor is
                    // released exactly once.
                }
                return;
            }
            Action::Responded => {
                let Some(conn) = conns.get_mut(&token) else { return };
                count_response(service, conn);
                conn.state = ConnState::Reading;
                conn.out.clear();
                conn.written = 0;
                let now = Instant::now();
                conn.t0 = now;
                conn.last_activity = now;
                let _ = epoll.modify(conn.stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token);
                match try_dispatch(conn, token, epoll, service, work_tx) {
                    None => return, // no complete pipelined request yet
                    Some(a) => action = a,
                }
            }
        }
    }
}

/// Count a fully-written response and observe its latency (request
/// received → last byte written).
fn count_response(service: &Service, conn: &Conn) {
    service.stats.responses.fetch_add(1, Ordering::Relaxed);
    service
        .registry
        .observe(Hist::ServeLatency, conn.t0.elapsed().as_micros() as u64);
}

fn handle_conn_event(
    conn: &mut Conn,
    bits: u32,
    token: u64,
    epoll: &Epoll,
    service: &Service,
    work_tx: &Sender<RunJob>,
) -> Action {
    if bits & (EPOLLERR | EPOLLHUP) != 0 {
        return Action::Close { responded: false };
    }
    conn.last_activity = Instant::now();
    match conn.state {
        ConnState::Reading => {
            let mut peer_eof = false;
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        peer_eof = true;
                        break;
                    }
                    Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return Action::Close { responded: false },
                }
            }
            match try_dispatch(conn, token, epoll, service, work_tx) {
                Some(action) => action,
                None if peer_eof => Action::Close { responded: false },
                None => Action::Keep,
            }
        }
        // A worker owns the response; only ERR/HUP (handled above) close.
        ConnState::Running => Action::Keep,
        ConnState::Writing => flush_out(conn, token, epoll),
    }
}

/// If `conn.buf` now holds a complete request, route it. `None` = need
/// more bytes.
fn try_dispatch(
    conn: &mut Conn,
    token: u64,
    epoll: &Epoll,
    service: &Service,
    work_tx: &Sender<RunJob>,
) -> Option<Action> {
    let head = match parse_head(&conn.buf) {
        Ok(Some(head)) => head,
        Ok(None) => {
            if conn.buf.len() > MAX_HEAD {
                conn.keep_alive = false; // unframed: cannot resync the stream
                return Some(respond(conn, token, epoll, "400 Bad Request", &err_body("request head too large")));
            }
            return None;
        }
        Err(e) => {
            conn.keep_alive = false;
            return Some(respond(conn, token, epoll, "400 Bad Request", &err_body(&e)));
        }
    };
    if head.content_length > MAX_BODY {
        conn.keep_alive = false; // the oversized body is never read
        return Some(respond(conn, token, epoll, "400 Bad Request", &err_body("request body too large")));
    }
    if conn.buf.len() < head.head_end + head.content_length {
        return None; // body still arriving
    }
    let body_bytes = &conn.buf[head.head_end..head.head_end + head.content_length];
    let body = String::from_utf8_lossy(body_bytes).into_owned();
    // The request is complete: consume its bytes (pipelined successors
    // stay buffered), adopt its framing, and start its latency clock.
    conn.buf.drain(..head.head_end + head.content_length);
    conn.keep_alive = head.keep_alive;
    conn.t0 = Instant::now();

    let (path, query) = match head.target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (head.target.clone(), String::new()),
    };
    let query_param = |name: &str| -> Option<String> {
        query
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.to_string())
    };

    Some(match (head.method.as_str(), path.as_str()) {
        ("GET", "/status") => respond(conn, token, epoll, "200 OK", &status_body(service)),
        ("GET", "/metrics") => respond(conn, token, epoll, "200 OK", &metrics_body(service)),
        ("GET", "/cells") => match query_param("exp") {
            None => respond(conn, token, epoll, "400 Bad Request", &err_body("missing ?exp=")),
            Some(exp) => respond(conn, token, epoll, "200 OK", &cells_body(service, &exp)),
        },
        ("POST", "/run") => match parse_run_body(&body) {
            Err(e) => respond(conn, token, epoll, "400 Bad Request", &err_body(&e)),
            Ok(req) => {
                // Hand the grid to the worker pool; stop watching for
                // input (level-triggered EPOLLIN would spin on any
                // pipelined bytes). ERR/HUP still arrive unrequested.
                conn.state = ConnState::Running;
                let _ = epoll.modify(conn.stream.as_raw_fd(), 0, token);
                let keep_alive = conn.keep_alive;
                if work_tx.send(RunJob { token, req, keep_alive }).is_err() {
                    // Shutdown race: workers are gone.
                    return Some(respond(
                        conn,
                        token,
                        epoll,
                        "503 Service Unavailable",
                        &err_body("server is stopping"),
                    ));
                }
                Action::Keep
            }
        },
        ("GET", _) => respond(conn, token, epoll, "404 Not Found", &err_body("no such route")),
        _ => respond(conn, token, epoll, "405 Method Not Allowed", &err_body("GET or POST only")),
    })
}

/// Attach a response (framed for the connection's keep-alive decision)
/// and start draining it.
fn respond(conn: &mut Conn, token: u64, epoll: &Epoll, status: &str, body: &str) -> Action {
    let bytes = response_bytes(status, body, conn.keep_alive);
    start_writing(conn, bytes, token, epoll)
}

fn start_writing(conn: &mut Conn, bytes: Vec<u8>, token: u64, epoll: &Epoll) -> Action {
    conn.out = bytes;
    conn.written = 0;
    conn.state = ConnState::Writing;
    conn.last_activity = Instant::now();
    let action = flush_out(conn, token, epoll);
    if matches!(action, Action::Keep) {
        // Socket buffer is full: wait for EPOLLOUT.
        let _ = epoll.modify(conn.stream.as_raw_fd(), EPOLLOUT, token);
    }
    action
}

/// Drain `conn.out`. Fully written → `Responded` (keep-alive) or
/// close-with-response; keep (armed for EPOLLOUT) on `WouldBlock`; close
/// silently on a write error.
fn flush_out(conn: &mut Conn, _token: u64, _epoll: &Epoll) -> Action {
    while conn.written < conn.out.len() {
        match conn.stream.write(&conn.out[conn.written..]) {
            Ok(0) => return Action::Close { responded: false },
            Ok(n) => {
                conn.written += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Action::Keep,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Action::Close { responded: false },
        }
    }
    let _ = conn.stream.flush();
    if conn.keep_alive {
        Action::Responded
    } else {
        Action::Close { responded: true }
    }
}

/// A parsed request head.
struct Head {
    method: String,
    target: String,
    content_length: usize,
    /// Byte offset where the body starts.
    head_end: usize,
    /// Whether the request asks for a persistent connection: the
    /// HTTP/1.1 default unless `Connection: close`; HTTP/1.0 only with
    /// an explicit `Connection: keep-alive`.
    keep_alive: bool,
}

/// Find the end of the head (`\r\n\r\n`, or bare `\n\n` from sloppy
/// clients) and parse the request line + `Content-Length` +
/// `Connection`. `Ok(None)` = incomplete; `Err` = malformed.
fn parse_head(buf: &[u8]) -> Result<Option<Head>, String> {
    let head_end = match find_head_end(buf) {
        Some(end) => end,
        None => return Ok(None),
    };
    let text = String::from_utf8_lossy(&buf[..head_end]);
    let mut lines = text.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => return Err("malformed request line".into()),
    };
    let http10 = parts.next() == Some("HTTP/1.0");
    let mut content_length = 0usize;
    let mut connection = String::new();
    for line in lines {
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:").map(str::trim) {
            content_length = v.parse().map_err(|_| "bad content-length".to_string())?;
        } else if let Some(v) = lower.strip_prefix("connection:").map(str::trim) {
            connection = v.to_string();
        }
    }
    let keep_alive = if http10 {
        connection == "keep-alive"
    } else {
        connection != "close"
    };
    Ok(Some(Head {
        method,
        target,
        content_length,
        head_end,
        keep_alive,
    }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

fn response_bytes(status: &str, body: &str, keep_alive: bool) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut out = format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

fn err_body(msg: &str) -> String {
    format!("{{\"error\":\"{}\"}}", escape(msg))
}

/// Execute a parsed `POST /run` request (on a worker thread) and return
/// `(status, body)`.
fn run_response(service: &Service, req: &RunRequest) -> (&'static str, String) {
    if let Some(text) = req.scenario.as_deref() {
        return match service.run_scenario(text, req.smoke, req.tier) {
            None => (
                "400 Bad Request",
                err_body("this service has no scenario runner registered"),
            ),
            Some(Err(ScenarioError::Invalid(e))) => ("400 Bad Request", err_body(&e)),
            Some(Err(ScenarioError::Failed(e))) => ("500 Internal Server Error", err_body(&e)),
            Some(Ok((name, rep))) => (
                "200 OK",
                run_report_body("scenario", &name, req.smoke, req.tier, &rep),
            ),
        };
    }
    let exp = req.exp.as_deref().unwrap_or_default();
    match service.run(exp, req.smoke, req.tier) {
        None => (
            "400 Bad Request",
            err_body(&format!(
                "unknown experiment '{exp}' (registered: {})",
                service.names().join(", ")
            )),
        ),
        Some(Err(e)) => (
            "500 Internal Server Error",
            err_body(&format!("grid failed: {e}")),
        ),
        Some(Ok(rep)) => (
            "200 OK",
            run_report_body("exp", exp, req.smoke, req.tier, &rep),
        ),
    }
}

/// A decoded `POST /run` body: exactly one of `exp` (a registered
/// experiment name) or `scenario` (a scenario document as text) plus the
/// optional `smoke` and `tier` knobs.
#[derive(Debug, PartialEq)]
struct RunRequest {
    exp: Option<String>,
    scenario: Option<String>,
    smoke: bool,
    tier: Option<Tier>,
}

/// Parse `{"exp":"NAME"}` or `{"scenario":"TEXT"}` with optional
/// `"smoke":BOOL` and `"tier":"off|counters|sampled[:rate]|full"` fields,
/// in any order.
fn parse_run_body(body: &str) -> Result<RunRequest, String> {
    let mut cur = Cursor::new(body);
    cur.expect(b'{')?;
    let mut exp = None;
    let mut scenario = None;
    let mut smoke = false;
    let mut tier = None;
    loop {
        let field = cur.string()?;
        cur.expect(b':')?;
        match field.as_str() {
            "exp" => exp = Some(cur.string()?),
            "scenario" => scenario = Some(cur.string()?),
            "smoke" => smoke = cur.boolean()?,
            "tier" => {
                let label = cur.string()?;
                tier = Some(
                    Tier::parse(&label).ok_or_else(|| format!("unknown tier '{label}'"))?,
                );
            }
            other => return Err(format!("unknown field '{other}'")),
        }
        if !cur.eat(b',') {
            break;
        }
    }
    cur.expect(b'}')?;
    match (&exp, &scenario) {
        (None, None) => Err("missing \"exp\"".into()),
        (Some(_), Some(_)) => Err("\"exp\" and \"scenario\" are mutually exclusive".into()),
        _ => Ok(RunRequest {
            exp,
            scenario,
            smoke,
            tier,
        }),
    }
}

/// The `POST /run` success body, shared by experiment and scenario runs —
/// only the leading field name (`"exp"` vs `"scenario"`) differs.
fn run_report_body(
    kind: &str,
    name: &str,
    smoke: bool,
    tier: Option<Tier>,
    rep: &GridReport,
) -> String {
    format!(
        "{{\"{kind}\":\"{}\",\"smoke\":{smoke},\"tier\":\"{}\",\"cells\":{},\
         \"hits\":{},\"misses\":{},\"forced\":{},\"elapsed_ms\":{}}}",
        escape(name),
        tier.unwrap_or_default().label(),
        rep.rows.len(),
        rep.hits,
        rep.misses,
        rep.forced,
        rep.elapsed.as_millis()
    )
}

fn status_body(service: &Service) -> String {
    let store = &service.store;
    let segments = store.segments().map(|s| s.len()).unwrap_or(0);
    let exps: Vec<String> = store
        .experiments()
        .into_iter()
        .map(|(name, cells)| format!("{{\"name\":\"{}\",\"cells\":{cells}}}", escape(&name)))
        .collect();
    let serve = service.registry.histogram(Hist::ServeLatency);
    format!(
        "{{\"code\":\"{}\",\"stale\":{},\"cells\":{},\"segments\":{segments},\
         \"shards\":{},\"torn\":{},\
         \"experiments\":[{}],\"registered\":[{}],\"cache_hits\":{},\"cache_misses\":{},\
         \"serve_mean_us\":{:.0}}}",
        escape(store.code().as_str()),
        store
            .stale()
            .map_or_else(|| "null".into(), |c| format!("\"{}\"", escape(&c))),
        store.len(),
        store.shard_count(),
        store.torn(),
        exps.join(","),
        service
            .names()
            .iter()
            .map(|n| format!("\"{}\"", escape(n)))
            .collect::<Vec<_>>()
            .join(","),
        service.registry.counter(Counter::CacheHits),
        service.registry.counter(Counter::CacheMisses),
        serve.mean(),
    )
}

/// The live metrics plane: every counter, a summary of every histogram,
/// the scheduler's cache hit rate, and the serve loop's lifecycle
/// counters — all read from `service.registry` and `service.stats`, the
/// same sources `/status` reports, so the two endpoints agree by
/// construction.
fn metrics_body(service: &Service) -> String {
    let reg = &service.registry;
    let counters: Vec<String> = Counter::ALL
        .iter()
        .map(|&c| format!("\"{}\":{}", c.as_str(), reg.counter(c)))
        .collect();
    let hists: Vec<String> = Hist::ALL
        .iter()
        .map(|&h| {
            let s = reg.histogram(h);
            format!(
                "\"{}\":{{\"count\":{},\"mean\":{:.2}}}",
                h.as_str(),
                s.count,
                s.mean()
            )
        })
        .collect();
    let hits = reg.counter(Counter::CacheHits);
    let misses = reg.counter(Counter::CacheMisses);
    let total = hits + misses;
    let hit_rate = if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    };
    let (accepted, responses, closed) = service.stats.snapshot();
    format!(
        "{{\"tier\":\"{}\",\"spans_dropped\":{},\"counters\":{{{}}},\"hists\":{{{}}},\
         \"scheduler\":{{\"cache_hits\":{hits},\"cache_misses\":{misses},\
         \"hit_rate\":{hit_rate:.4}}},\
         \"serve\":{{\"accepted\":{accepted},\"responses\":{responses},\
         \"closed\":{closed},\"active\":{}}}}}",
        reg.tier().label(),
        reg.spans_dropped(),
        counters.join(","),
        hists.join(","),
        accepted - closed,
    )
}

fn cells_body(service: &Service, exp: &str) -> String {
    let cells: Vec<String> = service
        .store
        .cells_for(exp)
        .into_iter()
        .map(|c| {
            let plan = c
                .plan
                .as_deref()
                .map_or_else(|| "null".into(), |p| format!("\"{}\"", escape(p)));
            format!(
                "{{\"key\":\"{}\",\"domain\":\"{}\",\"index\":{},\"params\":\"{}\",\
                 \"plan\":{plan},\"payload\":{}}}",
                escape(&c.key),
                escape(&c.domain),
                c.index,
                escape(&c.params),
                encode_rows(&c.rows)
            )
        })
        .collect();
    format!(
        "{{\"exp\":\"{}\",\"count\":{},\"cells\":[{}]}}",
        escape(exp),
        cells.len(),
        cells.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp_req(exp: &str, smoke: bool, tier: Option<Tier>) -> RunRequest {
        RunRequest {
            exp: Some(exp.into()),
            scenario: None,
            smoke,
            tier,
        }
    }

    #[test]
    fn run_body_parses_both_orders_and_rejects_junk() {
        assert_eq!(
            parse_run_body("{\"exp\":\"t\",\"smoke\":true}").unwrap(),
            exp_req("t", true, None)
        );
        assert_eq!(
            parse_run_body("{\"smoke\":false,\"exp\":\"t\"}").unwrap(),
            exp_req("t", false, None)
        );
        assert_eq!(
            parse_run_body("{\"exp\":\"t\"}").unwrap(),
            exp_req("t", false, None)
        );
        assert!(parse_run_body("{\"smoke\":true}").is_err());
        assert!(parse_run_body("not json").is_err());
        assert!(parse_run_body("{\"exp\":\"t\",\"extra\":1}").is_err());
    }

    #[test]
    fn run_body_parses_the_tier_field() {
        assert_eq!(
            parse_run_body("{\"exp\":\"t\",\"tier\":\"sampled:4\"}").unwrap(),
            exp_req("t", false, Some(Tier::Sampled { rate: 4 }))
        );
        assert_eq!(
            parse_run_body("{\"tier\":\"counters\",\"smoke\":true,\"exp\":\"t\"}").unwrap(),
            exp_req("t", true, Some(Tier::CountersOnly))
        );
        assert!(parse_run_body("{\"exp\":\"t\",\"tier\":\"loud\"}").is_err());
    }

    #[test]
    fn run_body_accepts_a_scenario_but_not_both() {
        let req =
            parse_run_body("{\"scenario\":\"scenario s; grid exp=e master=1\",\"smoke\":true}")
                .unwrap();
        assert_eq!(req.exp, None);
        assert_eq!(
            req.scenario.as_deref(),
            Some("scenario s; grid exp=e master=1")
        );
        assert!(req.smoke);
        // Embedded newlines arrive through the JSON string escape.
        let multiline = parse_run_body("{\"scenario\":\"scenario s\\ngrid exp=e master=1\"}")
            .unwrap();
        assert_eq!(
            multiline.scenario.as_deref(),
            Some("scenario s\ngrid exp=e master=1")
        );
        assert!(parse_run_body("{\"exp\":\"t\",\"scenario\":\"scenario s\"}").is_err());
    }

    #[test]
    fn head_parsing_handles_split_arrivals_and_rejects_garbage() {
        let full = b"POST /run HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"exp\":\"t\"}";
        // Incomplete prefixes ask for more bytes rather than erroring.
        for cut in [0, 5, 20, 40] {
            assert!(parse_head(&full[..cut.min(43)]).unwrap().is_none());
        }
        let head = parse_head(full).unwrap().unwrap();
        assert_eq!(head.method, "POST");
        assert_eq!(head.target, "/run");
        assert_eq!(head.content_length, 11);
        assert_eq!(&full[head.head_end..], b"{\"exp\":\"t\"}");
        // Bare-\n heads (sloppy clients) still terminate.
        let sloppy = b"GET /status HTTP/1.1\ncontent-length: 0\n\n";
        assert_eq!(parse_head(sloppy).unwrap().unwrap().target, "/status");
        // A complete head with no request line is malformed, not pending.
        assert!(parse_head(b"\r\n\r\n").is_err());
        assert!(parse_head(b"GET /x HTTP/1.1\r\nContent-Length: zebra\r\n\r\n").is_err());
    }

    #[test]
    fn keep_alive_follows_the_version_defaults() {
        let ka = |head: &[u8]| parse_head(head).unwrap().unwrap().keep_alive;
        // HTTP/1.1 persists by default; `Connection: close` opts out.
        assert!(ka(b"GET /status HTTP/1.1\r\n\r\n"));
        assert!(!ka(b"GET /status HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(ka(b"GET /status HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n"));
        // HTTP/1.0 closes by default; keep-alive is an explicit opt-in.
        assert!(!ka(b"GET /status HTTP/1.0\r\n\r\n"));
        assert!(ka(b"GET /status HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
    }
}

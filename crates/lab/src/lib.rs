//! # bvl-lab — the content-addressed experiment service
//!
//! The `exp_*` binaries regenerate deterministic `(simulator × params ×
//! seed)` grids; before this crate every invocation recomputed the whole
//! grid. `bvl-lab` turns those grids into a **re-queryable result
//! database** — the shape in which experimental-methodology papers
//! (Gerbessiotis–Siniolakis' BSP sorting study, Ezhova's BSF
//! verification) present exactly this kind of parameter sweep — and the
//! batching/caching/serving layer the ROADMAP's production north star
//! needs.
//!
//! Three layers, one module each:
//!
//! * [`fingerprint`] — stable content addresses: a cell is keyed by the
//!   canonical run options, the domain point, the fault-plan line, and a
//!   code fingerprint (public-API inventory + crate version), so results
//!   survive restarts but never outlive the code that produced them.
//! * [`store`] — the crash-safe persistent store: append-only JSONL
//!   segments, in-memory index, atomic compaction, stale-generation
//!   invalidation.
//! * [`scheduler`] — the incremental executor: partition a requested grid
//!   into hits and misses, compute only the misses (rayon, with the same
//!   per-`(domain, index)` seeding as `bvl_bench::sweep`, so warm and
//!   cold runs are bit-identical), journal each completion for resume.
//! * [`shard`] — the scale-out layer: [`shard::ShardedStore`] routes each
//!   cell to one of N independent store shards by a pure function of its
//!   content digest, so shard count never changes what a grid computes.
//! * [`replica`] — op-log replication: a follower replays the leader's
//!   segment logs byte-for-byte behind a `(segment, offset, records)`
//!   cursor, repairs crash-torn tails, and proves itself bit-identical
//!   via a content digest over the live cells.
//! * [`http`] — the front end: a std-only nonblocking HTTP/1.1 JSON
//!   endpoint (`GET /cells`, `GET /status`, `GET /metrics`, `POST /run`)
//!   on an [`epoll`] event loop with a bounded worker pool for runs, plus
//!   the [`http::Experiment`] registration trait the `lab` CLI and the
//!   `exp_*` bins share.
//!
//! `unsafe` is denied crate-wide and appears only in [`epoll`], which
//! declares the five raw syscall bindings the event loop needs.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod epoll;
pub mod fingerprint;
pub mod http;
pub mod jsonio;
pub mod replica;
pub mod scheduler;
pub mod shard;
pub mod store;

pub use fingerprint::{cell_key, CodeFingerprint, Digest};
pub use http::{serve, Experiment, ScenarioError, ScenarioRunner, Server, Service};
pub use replica::{dir_digest, repair_dir, store_digest, sync_store, ReplicaCursor, SyncReport};
pub use scheduler::{run_grid, CellSpec, GridReport, GridSpec, Job};
pub use shard::{shard_count_of, shard_of, ShardedStore};
pub use store::{Cell, GcReport, OnStale, Store};

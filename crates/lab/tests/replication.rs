//! Replication under crash faults — the satellite contract (ISSUE 9):
//!
//! * a follower synced from a live leader is bit-identical (digest over
//!   the live cell set, last-writer-wins across segments);
//! * a follower killed mid-append — simulated by truncating its newest
//!   segment at *every byte boundary inside the last record* — repairs
//!   and converges back to bit-identical on the next sync;
//! * the same holds shard by shard for a sharded store, and a leader
//!   whose history was rewritten (gc) forces a clean full resync.

use bvl_lab::replica::cursor_of;
use bvl_lab::{
    run_grid, store_digest, sync_store, CellSpec, CodeFingerprint, GridSpec, Job, OnStale,
    ShardedStore,
};
use bvl_obs::Registry;
use rand::RngCore;
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bvl-lab-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn grid(cells: usize) -> GridSpec {
    let mut g = GridSpec::new("replication", 96);
    for i in 0..cells {
        g = g.cell(CellSpec::new("cells", i, format!("i={i}")));
    }
    g
}

fn body(cell: &CellSpec, mut job: Job) -> Vec<Vec<String>> {
    vec![vec![cell.params.clone(), job.rng.next_u64().to_string()]]
}

/// Populate a store at `dir` with `shards` shards through the public
/// `run_grid` path, so segments carry real journaled cells.
fn populate(dir: &Path, shards: usize, cells: usize) {
    let code = CodeFingerprint::from_parts("replication-api", "0");
    let store = ShardedStore::open(dir, shards, code, OnStale::Error).unwrap();
    run_grid(&grid(cells), Some(&store), &Registry::disabled(), body).unwrap();
}

/// Newest segment file under a (flat or shard) directory, if any — a
/// shard the digest router never picked has no segments.
fn newest_segment_in(dir: &Path) -> Option<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    segs.sort();
    segs.pop()
}

fn newest_segment(dir: &Path) -> PathBuf {
    newest_segment_in(dir).expect("directory has segments")
}

#[test]
fn synced_follower_is_digest_identical_and_cursor_agrees() {
    let (leader, follower) = (tmpdir("sync-leader"), tmpdir("sync-follower"));
    populate(&leader, 1, 10);
    let reports = sync_store(&leader, &follower).unwrap();
    assert_eq!(reports.len(), 1);
    assert!(reports[0].copied_bytes > 0);
    assert_eq!(store_digest(&leader).unwrap(), store_digest(&follower).unwrap());
    // The replay cursor sees the same history on both sides.
    assert_eq!(cursor_of(&leader).unwrap(), cursor_of(&follower).unwrap());
    assert_eq!(cursor_of(&follower).unwrap().records, 10);
    // Idempotent: a second sync moves nothing.
    let again = sync_store(&leader, &follower).unwrap();
    assert_eq!(again[0].copied_bytes, 0);
    assert!(!again[0].full_resync);
    for d in [&leader, &follower] {
        std::fs::remove_dir_all(d).unwrap();
    }
}

/// The tentpole crash matrix: kill the follower mid-append by truncating
/// its newest segment at every byte boundary inside the last record (and
/// at the record's start, the clean-kill case). Every cut must repair and
/// replay back to a digest-identical follower.
#[test]
fn every_truncation_boundary_of_the_last_record_converges() {
    let (leader, follower) = (tmpdir("cut-leader"), tmpdir("cut-follower"));
    populate(&leader, 1, 8);
    sync_store(&leader, &follower).unwrap();
    let want = store_digest(&leader).unwrap();

    let seg = newest_segment(&follower);
    let full = std::fs::read(&seg).unwrap();
    let text = std::str::from_utf8(&full).unwrap();
    assert!(text.ends_with('\n'), "segments are newline-terminated");
    // Start of the last record: byte after the second-to-last newline.
    let last_start = text[..text.len() - 1].rfind('\n').map_or(0, |i| i + 1);
    assert!(full.len() - last_start > 2, "last record is non-trivial");

    for cut in last_start..=full.len() {
        std::fs::write(&seg, &full[..cut]).unwrap();
        let report = &sync_store(&leader, &follower).unwrap()[0];
        if cut < full.len() && cut > last_start {
            assert!(
                report.repaired_bytes > 0 || report.full_resync,
                "cut at {cut} left a torn tail unrepaired"
            );
        }
        assert_eq!(
            store_digest(&follower).unwrap(),
            want,
            "cut at byte {cut} of {} did not converge",
            full.len()
        );
        // The replayed follower is byte-identical, not just digest-equal:
        // the tail append copies the leader's serialization verbatim.
        assert_eq!(std::fs::read(&seg).unwrap(), full, "cut at {cut}");
    }
    for d in [&leader, &follower] {
        std::fs::remove_dir_all(d).unwrap();
    }
}

#[test]
fn sharded_store_heals_a_torn_shard_and_detects_rewritten_history() {
    let (leader, follower) = (tmpdir("shard-leader"), tmpdir("shard-follower"));
    populate(&leader, 4, 24);
    let reports = sync_store(&leader, &follower).unwrap();
    assert_eq!(reports.len(), 4, "one sync report per shard");
    let want = store_digest(&leader).unwrap();
    assert_eq!(store_digest(&follower).unwrap(), want);

    // Tear every populated shard's newest segment mid-record at once;
    // one sync pass heals them all.
    let mut torn = Vec::new();
    for shard in 0..4 {
        let dir = follower.join(format!("shard-{shard:03}"));
        if let Some(seg) = newest_segment_in(&dir) {
            let bytes = std::fs::read(&seg).unwrap();
            std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
            torn.push(shard);
        }
    }
    assert!(!torn.is_empty(), "24 cells over 4 shards hit at least one");
    let reports = sync_store(&leader, &follower).unwrap();
    assert!(torn
        .iter()
        .all(|&s| reports[s].repaired_bytes > 0 || reports[s].full_resync));
    assert_eq!(store_digest(&follower).unwrap(), want);

    // Rewritten leader history (gc compacts segments) must not be
    // tail-patched onto the follower's old bytes: the divergence check
    // forces a full resync that still converges.
    let code = CodeFingerprint::from_parts("replication-api", "0");
    let store = ShardedStore::open(&leader, 4, code, OnStale::Error).unwrap();
    run_grid(&grid(32), Some(&store), &Registry::disabled(), body).unwrap();
    store.gc().unwrap();
    drop(store);
    let reports = sync_store(&leader, &follower).unwrap();
    assert!(reports.iter().any(|r| r.full_resync), "gc rewrites history");
    assert_eq!(store_digest(&follower).unwrap(), store_digest(&leader).unwrap());
    for d in [&leader, &follower] {
        std::fs::remove_dir_all(d).unwrap();
    }
}

#[test]
fn follower_shard_count_mismatch_is_refused() {
    let (leader, follower) = (tmpdir("mismatch-leader"), tmpdir("mismatch-follower"));
    populate(&leader, 2, 6);
    populate(&follower, 4, 6);
    let err = sync_store(&leader, &follower).unwrap_err();
    assert!(
        err.to_string().contains("shard"),
        "mismatch error names the shard count: {err}"
    );
    for d in [&leader, &follower] {
        std::fs::remove_dir_all(d).unwrap();
    }
}

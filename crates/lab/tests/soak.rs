//! Concurrency soak — the satellite contract (ISSUE 9): ≥64 clients of
//! mixed traffic (valid `POST /run` and GETs, malformed requests,
//! mid-request disconnects, responses abandoned unread) against the
//! nonblocking front end. Afterwards the server must have closed every
//! connection (no fd leak, checked against `/proc/self/fd`), and the
//! `/metrics` serve counters must reconcile with what the harness saw:
//! `accepted == closed + active`, every harness-observed response counted,
//! and the latency histogram's count equal to the response counter.

use bvl_lab::{serve, CellSpec, CodeFingerprint, Experiment, GridSpec, Job, OnStale, Service,
    ShardedStore};
use bvl_obs::Registry;
use rand::RngCore;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 64;
const ROUNDS: usize = 6;

struct Square;

impl Experiment for Square {
    fn name(&self) -> &str {
        "square"
    }

    fn grids(&self, smoke: bool) -> Vec<GridSpec> {
        let n = if smoke { 4 } else { 16 };
        let mut g = GridSpec::new("square", 7);
        for i in 0..n {
            g = g.cell(CellSpec::new("square-cells", i, format!("i={i}")));
        }
        vec![g]
    }

    fn run_cell(&self, cell: &CellSpec, mut job: Job) -> Vec<Vec<String>> {
        vec![vec![cell.params.clone(), job.rng.next_u64().to_string()]]
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bvl-lab-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok()?;
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: lab\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let status: u16 = response.lines().next()?.split_whitespace().nth(1)?.parse().ok()?;
    let payload = response.split_once("\r\n\r\n")?.1.to_string();
    Some((status, payload))
}

/// The integer right after `"needle":` (digits only).
fn json_u64(body: &str, needle: &str) -> u64 {
    let at = body.find(&format!("\"{needle}\":")).unwrap_or_else(|| panic!("no {needle}: {body}"));
    body[at + needle.len() + 3..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd").map(|d| d.count()).unwrap_or(0)
}

/// Poll `/metrics` until the server has closed every soak connection
/// (the probe itself is the one remaining active connection while its
/// request is in flight).
fn drain(addr: SocketAddr) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = request(addr, "GET", "/metrics", "").expect("metrics probe");
        assert_eq!(status, 200);
        if json_u64(&body, "active") <= 1 {
            return body;
        }
        assert!(Instant::now() < deadline, "connections never drained: {body}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn soak_mixed_traffic_leaks_no_fds_and_metrics_reconcile() {
    let dir = tmpdir("store");
    let code = CodeFingerprint::from_parts("soak-test-api", "0");
    let store = ShardedStore::open(&dir, 2, code, OnStale::Error).unwrap();
    let service = Arc::new(Service::new(store, Registry::enabled(1), vec![Box::new(Square)]));
    let server = serve("127.0.0.1:0", Arc::clone(&service), 3).unwrap();
    let addr = server.addr();

    // Warm the grid so soak-phase POSTs are cheap cache hits.
    let (status, _) = request(addr, "POST", "/run", "{\"exp\":\"square\"}").unwrap();
    assert_eq!(status, 200);

    // Let the warm-up connection fully close, then baseline the fd table.
    drain(addr);
    let fds_before = fd_count();

    let ok_200 = AtomicU64::new(0);
    let ok_400 = AtomicU64::new(0);
    let transport_errors = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let (ok_200, ok_400, transport_errors) = (&ok_200, &ok_400, &transport_errors);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    match (client + round) % 6 {
                        0 => match request(addr, "POST", "/run", "{\"exp\":\"square\"}") {
                            Some((200, _)) => drop(ok_200.fetch_add(1, Ordering::Relaxed)),
                            _ => drop(transport_errors.fetch_add(1, Ordering::Relaxed)),
                        },
                        1 => match request(addr, "GET", "/status", "") {
                            Some((200, _)) => drop(ok_200.fetch_add(1, Ordering::Relaxed)),
                            _ => drop(transport_errors.fetch_add(1, Ordering::Relaxed)),
                        },
                        2 => match request(addr, "GET", "/cells?exp=square", "") {
                            Some((200, _)) => drop(ok_200.fetch_add(1, Ordering::Relaxed)),
                            _ => drop(transport_errors.fetch_add(1, Ordering::Relaxed)),
                        },
                        3 => {
                            // Malformed request line: a clean 400, not a hang.
                            let mut s = TcpStream::connect(addr).unwrap();
                            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                            s.write_all(b"NONSENSE\r\n\r\n").unwrap();
                            let mut out = String::new();
                            s.read_to_string(&mut out).unwrap();
                            if out.starts_with("HTTP/1.1 400") {
                                ok_400.fetch_add(1, Ordering::Relaxed);
                            } else {
                                transport_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        4 => {
                            // Disconnect mid-request: half a head, then gone.
                            let mut s = TcpStream::connect(addr).unwrap();
                            let _ = s.write_all(b"GET /status HTT");
                            drop(s);
                        }
                        _ => {
                            // Valid request, response abandoned unread.
                            let mut s = TcpStream::connect(addr).unwrap();
                            let _ = s.write_all(
                                b"GET /status HTTP/1.1\r\nHost: lab\r\nConnection: close\r\n\r\n",
                            );
                            drop(s);
                        }
                    }
                }
            });
        }
    });
    assert_eq!(transport_errors.into_inner(), 0, "soak saw transport failures");
    let ok_200 = ok_200.into_inner();
    let ok_400 = ok_400.into_inner();
    assert_eq!(ok_200, (CLIENTS * ROUNDS / 6 * 3) as u64, "every valid request answered");
    assert_eq!(ok_400, (CLIENTS * ROUNDS / 6) as u64, "every malformed request rejected");

    // Every soak connection must close: no deadlock, no leaked conn slots.
    let metrics = drain(addr);
    let accepted = json_u64(&metrics, "accepted");
    let responses = json_u64(&metrics, "responses");
    let closed = json_u64(&metrics, "closed");
    let active = json_u64(&metrics, "active");
    assert_eq!(accepted, closed + active, "lifecycle counters reconcile");
    // Warm-up + drains + the 4 responding traffic classes; the abandoned
    // and mid-request classes may or may not get a response on the wire,
    // so `responses` is bounded, not exact.
    assert!(responses >= 1 + ok_200 + ok_400, "{metrics}");
    assert!(accepted >= (CLIENTS * ROUNDS) as u64, "{metrics}");
    // The latency histogram observes exactly once per written response.
    let needle = "\"serve_latency_us\":{\"count\":";
    let hist_at = metrics.find(needle).expect("hist");
    let hist_count: u64 = metrics[hist_at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap();
    assert_eq!(hist_count, responses, "one latency sample per response");

    // The fd table is back to its baseline: nothing leaked. The final
    // drain probe's own socket is already closed client-side; allow the
    // server a moment to finish its half.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if fd_count() <= fds_before {
            break;
        }
        assert!(Instant::now() < deadline, "fd leak: {} > {}", fd_count(), fds_before);
        std::thread::sleep(Duration::from_millis(50));
    }

    server.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

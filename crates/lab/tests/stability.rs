//! Cache-key and payload stability — the satellite contract:
//!
//! * identical `RunOptions` / domain points hash identically across
//!   `RAYON_NUM_THREADS` 1, 2 and 4, and across process restarts;
//! * the code fingerprint moves when the public-API inventory moves;
//! * a store written under a stale code fingerprint is detected
//!   (the check `lab diff` builds on).

use bvl_lab::{run_grid, CellSpec, CodeFingerprint, GridSpec, Job, OnStale, ShardedStore, Store};
use bvl_obs::Registry;
use rand::RngCore;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bvl-lab-stab-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn grid() -> GridSpec {
    let mut g = GridSpec::new("stability", 1996);
    for i in 0..12 {
        g = g.cell(CellSpec::new("points", i, format!("p={}", 1 << i)));
    }
    g.cell(CellSpec::new("adversarial", 0, "p=64").plan("seed=3,dup=2,delay=5"))
}

fn body(cell: &CellSpec, mut job: Job) -> Vec<Vec<String>> {
    // Two rows per cell, mixing params, index arithmetic and seeded draws,
    // so any seeding drift shows up in the payload.
    vec![
        vec![cell.params.clone(), job.rng.next_u64().to_string()],
        vec![job.index.to_string(), job.rng.next_u64().to_string()],
    ]
}

/// Keys and payloads must not depend on worker-pool width. One test owns
/// the env toggling (integration tests in this file avoid racing it by not
/// reading `RAYON_NUM_THREADS` elsewhere).
#[test]
fn keys_and_payloads_identical_across_thread_counts() {
    let g = grid();
    let code = CodeFingerprint::from_parts("stability-api", "0");
    let keys: Vec<String> = g.cells.iter().map(|c| g.key_of(&code, c)).collect();
    let reg = Registry::disabled();

    let mut payloads = Vec::new();
    for threads in ["1", "2", "4"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        // Keys are pure functions of the request — no thread dependence.
        let now: Vec<String> = g.cells.iter().map(|c| g.key_of(&code, c)).collect();
        assert_eq!(keys, now, "keys moved at RAYON_NUM_THREADS={threads}");

        // Cold run, then a warm run against a fresh store (a "process
        // restart" is an open of the same directory; the scheduler tests
        // cover reopen, here each width gets its own store).
        let dir = tmpdir(&format!("threads-{threads}"));
        let store = ShardedStore::open(&dir, 1, code.clone(), OnStale::Error).unwrap();
        let cold = run_grid(&g, Some(&store), &reg, body).unwrap();
        assert_eq!(cold.misses, 13, "at RAYON_NUM_THREADS={threads}");
        let warm = run_grid(&g, Some(&store), &reg, body).unwrap();
        assert_eq!(warm.hits, 13, "at RAYON_NUM_THREADS={threads}");
        assert_eq!(cold.rows, warm.rows);
        payloads.push(cold.rows);
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::env::remove_var("RAYON_NUM_THREADS");

    assert_eq!(payloads[0], payloads[1], "1 vs 2 threads diverged");
    assert_eq!(payloads[0], payloads[2], "1 vs 4 threads diverged");
}

/// A store survives a process restart byte-for-byte: reopen the directory
/// with an equal (recomputed) fingerprint and serve every cell as a hit.
#[test]
fn reopened_store_serves_identical_payloads() {
    let g = grid();
    let dir = tmpdir("restart");
    let reg = Registry::disabled();
    let cold = {
        let store = ShardedStore::open(
            &dir,
            1,
            CodeFingerprint::from_parts("stability-api", "0"),
            OnStale::Error,
        )
        .unwrap();
        run_grid(&g, Some(&store), &reg, body).unwrap()
    };
    // "Restart": a brand-new store value over the same directory, with the
    // fingerprint recomputed from the same inputs (as a fresh process would).
    let store = ShardedStore::open(
        &dir,
        1,
        CodeFingerprint::from_parts("stability-api", "0"),
        OnStale::Error,
    )
    .unwrap();
    let warm = run_grid(&g, Some(&store), &reg, body).unwrap();
    assert_eq!((warm.hits, warm.misses), (13, 0));
    assert_eq!(cold.rows, warm.rows);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The `lab diff` signal: opening a store written by a different code
/// generation reports staleness instead of serving stale cells.
#[test]
fn stale_code_fingerprint_is_detected() {
    let g = grid();
    let dir = tmpdir("stale");
    let reg = Registry::disabled();
    let old_code = CodeFingerprint::from_parts("stability-api", "0");
    {
        let store = ShardedStore::open(&dir, 1, old_code.clone(), OnStale::Error).unwrap();
        run_grid(&g, Some(&store), &reg, body).unwrap();
    }

    // The public-API inventory changed: the fingerprint must move...
    let new_code = CodeFingerprint::from_parts("stability-api + pub fn added", "0");
    assert_ne!(old_code, new_code);

    // ...`OnStale::Keep` (what `lab diff` uses) reports the writer...
    let kept = Store::open(&dir, new_code.clone(), OnStale::Keep).unwrap();
    assert_eq!(kept.stale(), Some(old_code.as_str()));
    assert_eq!(kept.len(), 13, "diff still sees the stale cells");
    drop(kept);

    // ...`OnStale::Error` refuses...
    let err = Store::open(&dir, new_code.clone(), OnStale::Error).unwrap_err();
    assert!(err.to_string().contains("written by code"), "{err}");

    // ...and `OnStale::Invalidate` archives and recomputes everything.
    let store = ShardedStore::open(&dir, 1, new_code, OnStale::Invalidate).unwrap();
    assert_eq!(store.len(), 0);
    let recomputed = run_grid(&g, Some(&store), &reg, body).unwrap();
    assert_eq!((recomputed.hits, recomputed.misses), (0, 13));
    std::fs::remove_dir_all(&dir).unwrap();
}

//! Front-end integration: the HTTP endpoint under concurrent clients.
//!
//! Acceptance floor (ISSUE 5): the endpoint must serve ≥ 8 concurrent
//! `query` clients correctly. The test registers a synthetic experiment,
//! warms its grid through `POST /run`, then fires 8 client threads × 4
//! requests each at `GET /cells` / `GET /status` and checks every
//! response is complete and consistent.

use bvl_lab::{
    serve, CellSpec, CodeFingerprint, Experiment, GridSpec, Job, OnStale, Service, ShardedStore,
};
use bvl_obs::Registry;
use rand::RngCore;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

struct Square;

impl Experiment for Square {
    fn name(&self) -> &str {
        "square"
    }

    fn grids(&self, smoke: bool) -> Vec<GridSpec> {
        let n = if smoke { 4 } else { 16 };
        let mut g = GridSpec::new("square", 7);
        for i in 0..n {
            g = g.cell(CellSpec::new("square-cells", i, format!("i={i}")));
        }
        vec![g]
    }

    fn run_cell(&self, cell: &CellSpec, mut job: Job) -> Vec<Vec<String>> {
        vec![vec![
            cell.params.clone(),
            (job.index * job.index).to_string(),
            job.rng.next_u64().to_string(),
        ]]
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bvl-lab-http-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One HTTP/1.1 request over a fresh connection; returns (status, body).
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: lab\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("recv");
    let status = response
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("")
        .to_string();
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

#[test]
fn http_serves_eight_concurrent_query_clients() {
    let dir = tmpdir("concurrent");
    let code = CodeFingerprint::from_parts("http-test-api", "0");
    let store = ShardedStore::open(&dir, 1, code, OnStale::Error).unwrap();
    let service = Arc::new(Service::new(store, Registry::enabled(1), vec![Box::new(Square)]));
    // 4 workers < 8 clients: the bounded pool must queue, not drop.
    let server = serve("127.0.0.1:0", Arc::clone(&service), 4).unwrap();
    let addr = server.addr();

    // Warm the grid over the wire.
    let (status, body) = request(addr, "POST", "/run", "{\"exp\":\"square\"}");
    assert_eq!(status, "200", "POST /run failed: {body}");
    assert!(body.contains("\"hits\":0") && body.contains("\"misses\":16"), "{body}");

    // A second run is incremental: all hits.
    let (status, body) = request(addr, "POST", "/run", "{\"exp\":\"square\",\"smoke\":false}");
    assert_eq!(status, "200");
    assert!(body.contains("\"hits\":16") && body.contains("\"misses\":0"), "{body}");

    // The metrics plane reads the same registry /status reports, so the
    // scheduler counters agree: 16 misses then 16 hits is a 0.5 hit rate.
    let (status, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, "200");
    assert!(body.contains("\"cache_hits\":16"), "{body}");
    assert!(body.contains("\"cache_misses\":16"), "{body}");
    assert!(body.contains("\"hit_rate\":0.5000"), "{body}");
    assert!(body.contains("\"tier\":\"full\""), "{body}");
    assert!(body.contains("\"cell_compute_us\""), "{body}");

    // Per-run tier selection never enters the cache key: a counters-only
    // re-run is still all hits. Unknown tiers are a client error.
    let (status, body) =
        request(addr, "POST", "/run", "{\"exp\":\"square\",\"tier\":\"counters\"}");
    assert_eq!(status, "200");
    assert!(body.contains("\"tier\":\"counters\"") && body.contains("\"hits\":16"), "{body}");
    assert_eq!(
        request(addr, "POST", "/run", "{\"exp\":\"square\",\"tier\":\"loud\"}").0,
        "400"
    );

    // 8 concurrent clients, 4 requests each, mixing /cells and /status.
    let reference = request(addr, "GET", "/cells?exp=square", "").1;
    assert!(reference.contains("\"count\":16"), "{reference}");
    std::thread::scope(|scope| {
        for client in 0..8 {
            let reference = &reference;
            scope.spawn(move || {
                for round in 0..4 {
                    if (client + round) % 2 == 0 {
                        let (status, body) = request(addr, "GET", "/cells?exp=square", "");
                        assert_eq!(status, "200", "client {client} round {round}");
                        assert_eq!(&body, reference, "client {client} saw a different payload");
                    } else {
                        let (status, body) = request(addr, "GET", "/status", "");
                        assert_eq!(status, "200", "client {client} round {round}");
                        assert!(body.contains("\"cells\":16"), "{body}");
                        assert!(body.contains("\"stale\":null"), "{body}");
                    }
                }
            });
        }
    });

    // Error paths stay well-formed under the same pool.
    assert_eq!(request(addr, "GET", "/nope", "").0, "404");
    assert_eq!(request(addr, "GET", "/cells", "").0, "400");
    assert_eq!(request(addr, "PUT", "/run", "").0, "405");
    assert_eq!(request(addr, "POST", "/run", "{\"exp\":\"unknown\"}").0, "400");
    assert_eq!(request(addr, "POST", "/run", "garbage").0, "400");

    server.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A persistent connection: sends framed requests and reads framed
/// responses, carrying leftover pipelined bytes between reads.
struct KeepAliveClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl KeepAliveClient {
    fn connect(addr: std::net::SocketAddr) -> KeepAliveClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .expect("timeout");
        KeepAliveClient { stream, buf: Vec::new() }
    }

    fn request_bytes(method: &str, path: &str, body: &str, close: bool) -> Vec<u8> {
        format!(
            "{method} {path} HTTP/1.1\r\nHost: lab\r\nContent-Length: {}{}\r\n\r\n{body}",
            body.len(),
            if close { "\r\nConnection: close" } else { "" }
        )
        .into_bytes()
    }

    fn send(&mut self, method: &str, path: &str, body: &str, close: bool) {
        self.stream
            .write_all(&Self::request_bytes(method, path, body, close))
            .expect("send");
    }

    /// Read one response; returns (status, connection header, body).
    fn recv(&mut self) -> (String, String, String) {
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(i) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i + 4;
            }
            let n = self.stream.read(&mut chunk).expect("read head");
            assert!(n > 0, "eof before response head");
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).to_string();
        let header = |name: &str| -> Option<String> {
            head.lines().find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix(&format!("{name}:"))
                    .map(|v| v.trim().to_string())
            })
        };
        let len: usize = header("content-length")
            .expect("content-length")
            .parse()
            .expect("numeric length");
        while self.buf.len() < head_end + len {
            let n = self.stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "eof mid-body");
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let status = head
            .lines()
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .unwrap_or("")
            .to_string();
        let body = String::from_utf8_lossy(&self.buf[head_end..head_end + len]).to_string();
        self.buf.drain(..head_end + len);
        (status, header("connection").unwrap_or_default(), body)
    }
}

#[test]
fn keep_alive_reuses_one_connection_for_sequential_and_pipelined_requests() {
    let dir = tmpdir("keepalive");
    let code = CodeFingerprint::from_parts("http-test-api", "0");
    let store = ShardedStore::open(&dir, 1, code, OnStale::Error).unwrap();
    let service = Arc::new(Service::new(store, Registry::enabled(1), vec![Box::new(Square)]));
    let server = serve("127.0.0.1:0", Arc::clone(&service), 2).unwrap();
    let addr = server.addr();

    let mut c = KeepAliveClient::connect(addr);

    // Sequential reuse: HTTP/1.1 without `Connection: close` persists.
    for _ in 0..3 {
        c.send("GET", "/status", "", false);
        let (status, connection, _) = c.recv();
        assert_eq!(status, "200");
        assert_eq!(connection, "keep-alive");
    }

    // Pipelining: three requests written back-to-back, three complete
    // responses in order.
    let mut burst = Vec::new();
    burst.extend(KeepAliveClient::request_bytes("GET", "/status", "", false));
    burst.extend(KeepAliveClient::request_bytes("GET", "/metrics", "", false));
    burst.extend(KeepAliveClient::request_bytes("GET", "/cells?exp=square", "", false));
    c.stream.write_all(&burst).expect("pipelined burst");
    let (s1, _, b1) = c.recv();
    let (s2, _, b2) = c.recv();
    let (s3, _, b3) = c.recv();
    assert_eq!((s1.as_str(), s2.as_str(), s3.as_str()), ("200", "200", "200"));
    assert!(b1.contains("\"cells\""), "{b1}");
    assert!(b2.contains("\"scheduler\""), "{b2}");
    assert!(b3.contains("\"exp\":\"square\""), "{b3}");

    // The connection survives a worker-pool round trip (Running state).
    c.send("POST", "/run", "{\"exp\":\"square\",\"smoke\":true}", false);
    let (status, connection, body) = c.recv();
    assert_eq!(status, "200", "{body}");
    assert_eq!(connection, "keep-alive");
    assert!(body.contains("\"cells\":4"), "{body}");
    c.send("GET", "/status", "", false);
    assert_eq!(c.recv().0, "200");

    // Everything so far rode one accepted connection.
    c.send("GET", "/metrics", "", false);
    let (_, _, metrics) = c.recv();
    let accepted: u64 = metrics
        .split("\"accepted\":")
        .nth(1)
        .and_then(|r| r.split(|ch: char| !ch.is_ascii_digit()).next())
        .and_then(|d| d.parse().ok())
        .expect("accepted counter");
    assert_eq!(accepted, 1, "{metrics}");

    // An explicit `Connection: close` is honored: final response, then EOF.
    c.send("GET", "/status", "", true);
    let (status, connection, _) = c.recv();
    assert_eq!(status, "200");
    assert_eq!(connection, "close");
    let mut rest = Vec::new();
    c.stream.read_to_end(&mut rest).expect("drain to eof");
    assert!(rest.is_empty(), "bytes after close: {rest:?}");

    server.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn run_then_query_round_trips_payloads() {
    let dir = tmpdir("roundtrip");
    let code = CodeFingerprint::from_parts("http-test-api", "0");
    let store = ShardedStore::open(&dir, 1, code, OnStale::Error).unwrap();
    let service = Arc::new(Service::new(store, Registry::disabled(), vec![Box::new(Square)]));
    let rep = service.run("square", true, None).unwrap().unwrap();
    assert_eq!(rep.rows.len(), 4);
    let server = serve("127.0.0.1:0", Arc::clone(&service), 2).unwrap();
    let (status, body) = request(server.addr(), "GET", "/cells?exp=square", "");
    assert_eq!(status, "200");
    // Cell 3 of the smoke grid: params i=3, square 9, and its seeded draw.
    assert!(body.contains("\"params\":\"i=3\""), "{body}");
    assert!(body.contains(&format!("\"{}\"", rep.rows[3][0][1])), "{body}");
    assert!(body.contains(&rep.rows[3][0][2]), "{body}");
    server.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

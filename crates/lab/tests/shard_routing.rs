//! Shard routing properties — the satellite contract (ISSUE 9): routing
//! is a pure, total function of the cell digest. No key is ever lost, no
//! shard index is ever out of range, the hex fast path agrees with the
//! digest arithmetic, and a store's aggregate cell set is independent of
//! the shard count it was written under.

use bvl_lab::{
    run_grid, shard_of, CellSpec, CodeFingerprint, GridSpec, Job, OnStale, ShardedStore,
};
use bvl_obs::Registry;
use proptest::prelude::*;
use proptest::test_runner::TestRng;
use rand::RngCore;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bvl-lab-route-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pick(rng: &mut TestRng, n: u64) -> u64 {
    rng.next_u64() % n
}

/// Arbitrary key text: hex digits, non-hex ASCII, separators, unicode —
/// everything a caller could conceivably hand the router.
fn any_key() -> impl Strategy<Value = String> {
    const ALPHABET: &[char] = &[
        '0', '1', '7', '9', 'a', 'b', 'e', 'f', 'g', 'k', 'z', 'X', '-', '_', ' ', 'γ',
    ];
    Just(()).prop_perturb(|_, mut rng| {
        let len = pick(&mut rng, 48) as usize;
        (0..len)
            .map(|_| ALPHABET[pick(&mut rng, ALPHABET.len() as u64) as usize])
            .collect()
    })
}

/// A key with no hex prefix at all, forcing the FNV fallback route.
fn non_hex_key() -> impl Strategy<Value = String> {
    Just(()).prop_perturb(|_, mut rng| {
        let len = 1 + pick(&mut rng, 40) as usize;
        (0..len)
            .map(|_| (b'g' + pick(&mut rng, 20) as u8) as char)
            .collect()
    })
}

fn u64_pair() -> impl Strategy<Value = (u64, u64)> {
    Just(()).prop_perturb(|_, mut rng| (rng.next_u64(), rng.next_u64()))
}

proptest! {
    /// Total and in range for any string key and any plausible count.
    #[test]
    fn routing_is_total_and_in_range(key in any_key(), shards in 1usize..=32) {
        let s = shard_of(&key, shards);
        prop_assert!(s < shards);
        // Pure: same inputs, same shard, every time.
        prop_assert_eq!(s, shard_of(&key, shards));
    }

    /// One shard is the identity route — the legacy flat layout.
    #[test]
    fn single_shard_routes_everything_to_zero(key in any_key()) {
        prop_assert_eq!(shard_of(&key, 1), 0);
    }

    /// Store keys are 32 hex chars; the router folds the first 16 into a
    /// u64 and reduces mod the count. Check against the arithmetic.
    #[test]
    fn hex_keys_route_by_leading_u64((hi, lo) in u64_pair(), shards in 1usize..=8) {
        let key = format!("{hi:016x}{lo:016x}");
        prop_assert_eq!(shard_of(&key, shards), (hi % shards as u64) as usize);
        // The low half never moves the route.
        let other = format!("{hi:016x}{:016x}", lo.wrapping_add(1));
        prop_assert_eq!(shard_of(&key, shards), shard_of(&other, shards));
    }

    /// Non-hex keys still route deterministically (FNV fallback) and in
    /// range — routing never panics on garbage.
    #[test]
    fn garbage_keys_route_deterministically(key in non_hex_key(), shards in 1usize..=8) {
        let s = shard_of(&key, shards);
        prop_assert!(s < shards);
        prop_assert_eq!(s, shard_of(&key, shards));
    }
}

fn grid(cells: usize) -> GridSpec {
    let mut g = GridSpec::new("routing", 1729);
    for i in 0..cells {
        g = g.cell(CellSpec::new("cells", i, format!("i={i}")));
    }
    g
}

fn body(cell: &CellSpec, mut job: Job) -> Vec<Vec<String>> {
    vec![vec![cell.params.clone(), job.rng.next_u64().to_string()]]
}

/// Every key a grid run journals is findable again, lands on the shard
/// the router names, and the aggregate cell set (keys and payloads) is
/// identical at 1, 2 and 4 shards.
#[test]
fn aggregate_cell_set_is_shard_count_invariant() {
    let g = grid(16);
    let code = CodeFingerprint::from_parts("routing-api", "0");
    let mut per_count = Vec::new();
    for shards in [1usize, 2, 4] {
        let dir = tmpdir(&format!("agg-{shards}"));
        let store = ShardedStore::open(&dir, shards, code.clone(), OnStale::Error).unwrap();
        let rep = run_grid(&g, Some(&store), &Registry::disabled(), body).unwrap();
        assert_eq!(rep.misses, 16);
        for cell in &g.cells {
            let key = g.key_of(&code, cell);
            assert_eq!(store.route(&key), shard_of(&key, shards), "route agrees");
            assert!(store.rows_of(&key).is_some(), "key {key} lost at {shards} shards");
        }
        let cells: Vec<(String, Vec<Vec<String>>)> =
            store.cells().into_iter().map(|c| (c.key, c.rows)).collect();
        per_count.push((rep.rows, cells));
        std::fs::remove_dir_all(&dir).unwrap();
    }
    assert_eq!(per_count[0], per_count[1], "1 vs 2 shards diverged");
    assert_eq!(per_count[0], per_count[2], "1 vs 4 shards diverged");
}

/// A reopened sharded store routes exactly as the writer did: every cell
/// is a hit, none recompute, and a wrong `--store-shards` is refused.
#[test]
fn reopen_preserves_routing_and_count_mismatch_is_refused() {
    let g = grid(12);
    let code = CodeFingerprint::from_parts("routing-api", "0");
    let dir = tmpdir("reopen");
    {
        let store = ShardedStore::open(&dir, 4, code.clone(), OnStale::Error).unwrap();
        run_grid(&g, Some(&store), &Registry::disabled(), body).unwrap();
    }
    let store = ShardedStore::open(&dir, 4, code.clone(), OnStale::Error).unwrap();
    let rep = run_grid(&g, Some(&store), &Registry::disabled(), body).unwrap();
    assert_eq!((rep.hits, rep.misses), (12, 0), "reopen serves every cell");
    drop(store);
    let err = ShardedStore::open(&dir, 2, code, OnStale::Error).unwrap_err();
    assert!(err.to_string().contains("shard"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

//! Simulation of LogP on BSP (§3, Theorem 1).
//!
//! A stall-free LogP program runs on BSP with slowdown `O(1 + g/G + ℓ/L)`:
//! each BSP superstep simulates a *cycle* of `C = ⌈L/2⌉` consecutive LogP
//! steps. Message submissions become insertions into the BSP output pool;
//! the superstep's communication phase transmits them, and the destination
//! feeds them into a local FIFO at the start of the next superstep — i.e.
//! "all messages submitted in a cycle arrive at their destination in the
//! subsequent cycle", which is an admissible LogP execution because a
//! stall-free program submits at most `⌈L/G⌉ ≤ L/2` messages per destination
//! per cycle, so distinct arrival times within the next cycle exist with
//! every delivery latency ≤ L (the paper's correctness argument).
//!
//! Faithfulness notes:
//!
//! * The guest's LogP clock advances with exact `o`/`G` accounting; an
//!   operation whose completion crosses a cycle boundary is carried across
//!   supersteps (a `Send` resolving to a submission time in a later cycle is
//!   buffered and transmitted in the superstep simulating that cycle).
//! * The per-superstep BSP work charge is the guest's *busy* time within
//!   the cycle (computation + overheads), never more than `C` — matching
//!   the `O(L)` work term in the proof.
//! * `verify_stall_free` checks the proof's premise: at most `⌈L/G⌉`
//!   messages per destination submitted per cycle. Programs exceeding it
//!   are not stall-free (an adversary delaying deliveries to the latency
//!   bound would saturate the destination's capacity), and the simulation
//!   reports [`ModelError::StallDetected`].

use bvl_bsp::{BspMachine, BspParams, BspProcess, RunReport, Status, SuperstepCtx};
use bvl_exec::RunOptions;
use bvl_logp::{LogpParams, LogpProcess, Op, ProcView};
use bvl_model::{Envelope, ModelError, MsgId, Payload, ProcId, Steps};
use std::collections::VecDeque;

/// Options for the Theorem 1 simulation. Run-wide knobs (registry, host
/// superstep budget) come from the [`RunOptions`] passed alongside.
#[derive(Clone, Copy, Debug)]
pub struct Theorem1Config {
    /// Enforce the stall-free premise (`⌈L/G⌉` submissions per destination
    /// per cycle); violations abort the run. Default on.
    pub verify_stall_free: bool,
}

impl Default for Theorem1Config {
    fn default() -> Self {
        Theorem1Config {
            verify_stall_free: true,
        }
    }
}

/// Default host superstep budget when `opts.budget` is unset.
pub const DEFAULT_HOST_BUDGET: u64 = 1_000_000;

/// The per-guest emulation state shared by the plain (Theorem 1) and the
/// clustered (work-preserving, footnote 1) hosts.
pub struct GuestCore<P: LogpProcess> {
    program: P,
    logp: LogpParams,
    cycle_len: u64,
    /// Guest-local LogP clock.
    local_time: Steps,
    last_submit: Option<Steps>,
    last_acquire: Option<Steps>,
    /// Delivered-but-unacquired guest messages.
    queue: VecDeque<Envelope>,
    /// Sends whose submission time falls in a future cycle:
    /// `(submission time, dst, payload)`.
    outgoing: VecDeque<(Steps, ProcId, Payload)>,
    /// A `Recv` op the guest is blocked on across cycle boundaries.
    pending_recv: bool,
    halted: bool,
}

impl<P: LogpProcess> GuestCore<P> {
    fn new(program: P, logp: LogpParams) -> Self {
        GuestCore {
            program,
            logp,
            cycle_len: logp.l.div_ceil(2).max(1),
            local_time: Steps::ZERO,
            last_submit: None,
            last_acquire: None,
            queue: VecDeque::new(),
            outgoing: VecDeque::new(),
            pending_recv: false,
            halted: false,
        }
    }

    fn view(&self, me: ProcId) -> ProcView {
        ProcView {
            me,
            p: self.logp.p,
            now: self.local_time,
            buffered: self.queue.len(),
            params: self.logp,
        }
    }

    /// True once the guest has halted and flushed all pending sends.
    fn done(&self) -> bool {
        self.halted && self.outgoing.is_empty()
    }

    /// Simulate one cycle `[cycle_start, cycle_end)` of this guest:
    /// `arrivals` are the messages routed in the previous superstep; sends
    /// whose submissions fall inside the cycle go through `sink`.
    /// Returns `(busy steps, messages sent)`.
    fn run_cycle(
        &mut self,
        me: ProcId,
        cycle_start: Steps,
        cycle_end: Steps,
        arrivals: Vec<Envelope>,
        sink: &mut dyn FnMut(ProcId, Payload),
    ) -> (u64, u64) {
        let o = self.logp.o;
        let g = self.logp.g;
        // 1. Previous superstep's messages arrive now.
        for mut e in arrivals {
            e.delivered = cycle_start;
            self.queue.push_back(e);
        }
        // 2. Flush sends resolved in earlier cycles whose submission time
        //    falls inside this cycle.
        let mut busy = 0u64;
        let mut sent = 0u64;
        while let Some(&(t_sub, dst, _)) = self.outgoing.front() {
            if t_sub >= cycle_end {
                break;
            }
            let (_, _, payload) = self.outgoing.pop_front().expect("peeked");
            sink(dst, payload);
            busy += o;
            sent += 1;
            let _ = (t_sub, dst);
        }
        // 3. Run the guest forward while its clock is inside this cycle.
        while self.local_time < cycle_end && !self.halted {
            // Complete a Recv carried over from an earlier cycle.
            if self.pending_recv {
                if let Some(env) = self.queue.pop_front() {
                    let min_gap = self
                        .last_acquire
                        .map(|a| a + Steps(g))
                        .unwrap_or(Steps::ZERO);
                    let t_acq = (self.local_time + Steps(o)).max(min_gap);
                    self.last_acquire = Some(t_acq);
                    self.local_time = t_acq;
                    busy += o;
                    self.pending_recv = false;
                    self.program.on_recv(env);
                    continue;
                }
                // Still nothing: idle until new deliveries (next cycle).
                self.local_time = cycle_end;
                break;
            }
            let op = self.program.next_op(&self.view(me));
            match op {
                Op::Halt => self.halted = true,
                Op::Compute(n) => {
                    // Charge only the part falling inside this cycle; the
                    // remainder is carried by the advanced clock.
                    let end = self.local_time + Steps(n);
                    let inside =
                        end.min(cycle_end).saturating_sub(self.local_time.max(cycle_start));
                    busy += inside.get();
                    self.local_time = end;
                }
                Op::WaitUntil(t) => {
                    if t > self.local_time {
                        self.local_time = t;
                    }
                }
                Op::Recv => {
                    self.pending_recv = true;
                }
                Op::Send { dst, payload } => {
                    assert!(dst.index() < self.logp.p, "bad destination {dst:?}");
                    let min_gap = self
                        .last_submit
                        .map(|s| s + Steps(g))
                        .unwrap_or(Steps::ZERO);
                    let t_sub = (self.local_time + Steps(o)).max(min_gap);
                    self.last_submit = Some(t_sub);
                    self.local_time = t_sub;
                    if t_sub < cycle_end {
                        sink(dst, payload);
                        busy += o;
                        sent += 1;
                    } else {
                        // Submission lands in a later cycle: transmit then.
                        self.outgoing.push_back((t_sub, dst, payload));
                    }
                }
            }
        }
        (busy, sent)
    }
}

/// A LogP processor emulated inside one BSP process (Theorem 1's 1:1 host).
pub struct GuestProc<P: LogpProcess> {
    core: GuestCore<P>,
}

impl<P: LogpProcess> GuestProc<P> {
    fn new(program: P, logp: LogpParams) -> Self {
        GuestProc {
            core: GuestCore::new(program, logp),
        }
    }

    /// The wrapped guest program (for reading final state after the run).
    pub fn program(&self) -> &P {
        &self.core.program
    }

    /// Consume into the guest program.
    pub fn into_program(self) -> P {
        self.core.program
    }

    /// The guest's final LogP-clock value.
    pub fn guest_time(&self) -> Steps {
        self.core.local_time
    }
}

impl<P: LogpProcess> BspProcess for GuestProc<P> {
    fn superstep(&mut self, ctx: &mut SuperstepCtx<'_>) -> Status {
        let cycle_len = self.core.cycle_len;
        let cycle_start = Steps(ctx.superstep_index() * cycle_len);
        let cycle_end = Steps((ctx.superstep_index() + 1) * cycle_len);
        let me = ProcId::from(ctx.me().index());
        let arrivals = ctx.recv_all();
        let mut sends: Vec<(ProcId, Payload)> = Vec::new();
        let (busy, sent) = self.core.run_cycle(me, cycle_start, cycle_end, arrivals, &mut |d, p| {
            sends.push((d, p));
        });
        for (dst, payload) in sends {
            ctx.send(dst, payload);
        }
        // `ctx.send` charged 1 per message; `busy` already includes the full
        // `o` per send, so top up only the difference.
        ctx.charge(busy.saturating_sub(sent).min(cycle_len));

        if self.core.done() {
            Status::Halt
        } else {
            Status::Continue
        }
    }
}

/// A BSP process hosting a *cluster* of LogP guests — the work-preserving
/// variant noted in the paper's footnote 1 (Ramachandran, Grayson, Dahlin):
/// the Theorem 1 simulation "can be immediately made work-preserving while
/// maintaining the same slowdown" by folding `c` guests onto each of `p/c`
/// BSP processors. Each superstep simulates one `⌈L/2⌉`-step cycle of every
/// resident guest sequentially, so `w ≤ c·⌈L/2⌉` and per-superstep traffic
/// is `h ≤ c·⌈L/G⌉`; total host work `p' · T_BSP = Θ(p · T_LogP)` when
/// `ℓ = O(c·L)`.
pub struct ClusterProc<P: LogpProcess> {
    cores: Vec<GuestCore<P>>,
    /// First virtual guest id resident here.
    base: usize,
    cluster: usize,
}

impl<P: LogpProcess> ClusterProc<P> {
    /// Virtual guest ids resident on this host.
    fn guest_ids(&self) -> std::ops::Range<usize> {
        self.base..self.base + self.cores.len()
    }

    /// Consume into the guest programs (in virtual-id order).
    pub fn into_programs(self) -> Vec<P> {
        self.cores.into_iter().map(|c| c.program).collect()
    }
}

/// Tag for envelopes carrying clustered guest traffic:
/// `data = [virtual_src, virtual_dst, original_tag, original data…]`.
const CLUSTER_TAG: u32 = 0xC105;

impl<P: LogpProcess> BspProcess for ClusterProc<P> {
    fn superstep(&mut self, ctx: &mut SuperstepCtx<'_>) -> Status {
        let cycle_len = self.cores[0].cycle_len;
        let cycle_start = Steps(ctx.superstep_index() * cycle_len);
        let cycle_end = Steps((ctx.superstep_index() + 1) * cycle_len);
        let cluster = self.cluster;

        // Distribute arrivals to resident guests by virtual destination.
        let mut per_guest: Vec<Vec<Envelope>> = vec![Vec::new(); self.cores.len()];
        for e in ctx.recv_all() {
            debug_assert_eq!(e.payload.tag, CLUSTER_TAG);
            let d = e.payload.data();
            let vsrc = d[0] as u32;
            let vdst = d[1] as usize;
            debug_assert!(self.guest_ids().contains(&vdst));
            let mut inner = Envelope::new(
                ProcId(vsrc),
                ProcId(vdst as u32),
                Payload::words(d[2] as u32, &d[3..]),
            );
            inner.id = e.id;
            per_guest[vdst - self.base].push(inner);
        }

        let mut total_busy = 0u64;
        let mut total_sent = 0u64;
        let mut outbound: Vec<(ProcId, Payload)> = Vec::new();
        for (k, core) in self.cores.iter_mut().enumerate() {
            let vme = ProcId::from(self.base + k);
            let arrivals = std::mem::take(&mut per_guest[k]);
            let (busy, sent) =
                core.run_cycle(vme, cycle_start, cycle_end, arrivals, &mut |vdst, payload| {
                    let host = ProcId::from(vdst.index() / cluster);
                    let mut data = Vec::with_capacity(3 + payload.data().len());
                    data.push((self.base + k) as i64);
                    data.push(vdst.index() as i64);
                    data.push(payload.tag as i64);
                    data.extend_from_slice(payload.data());
                    outbound.push((host, Payload::from_vec(CLUSTER_TAG, data)));
                });
            total_busy += busy;
            total_sent += sent;
        }
        for (dst, payload) in outbound {
            ctx.send(dst, payload);
        }
        ctx.charge(
            total_busy
                .saturating_sub(total_sent)
                .min(cycle_len * self.cores.len() as u64),
        );

        if self.cores.iter().all(|c| c.done()) {
            Status::Halt
        } else {
            Status::Continue
        }
    }
}

/// Work-preserving report.
pub struct WorkPreservingReport<P: LogpProcess> {
    /// The host BSP run.
    pub bsp: RunReport,
    /// Guest programs, in virtual-processor order.
    pub programs: Vec<P>,
    /// Host processors used (`p / cluster`).
    pub hosts: usize,
    /// Guests per host.
    pub cluster: usize,
}

impl<P: LogpProcess> WorkPreservingReport<P> {
    /// Host work = `p' · T_BSP` — compare against `p · T_LogP`.
    pub fn host_work(&self) -> u64 {
        self.hosts as u64 * self.bsp.cost.get()
    }
}

/// Simulate a `p`-guest stall-free LogP program on a BSP machine with only
/// `p / cluster` processors (footnote 1's work-preserving regime).
/// `bsp.p` must equal `logp.p / cluster` and `cluster` must divide `p`.
pub fn simulate_logp_on_bsp_clustered<P: LogpProcess>(
    logp: LogpParams,
    bsp: BspParams,
    cluster: usize,
    programs: Vec<P>,
    opts: &RunOptions,
) -> Result<WorkPreservingReport<P>, ModelError> {
    let p = logp.p;
    assert!(cluster >= 1 && p.is_multiple_of(cluster), "cluster must divide p");
    assert_eq!(bsp.p, p / cluster, "host machine size must be p / cluster");
    assert_eq!(programs.len(), p);

    let mut hosts: Vec<ClusterProc<P>> = Vec::with_capacity(bsp.p);
    let mut iter = programs.into_iter();
    for h in 0..bsp.p {
        let cores: Vec<GuestCore<P>> = (0..cluster)
            .map(|_| GuestCore::new(iter.next().expect("p programs"), logp))
            .collect();
        hosts.push(ClusterProc {
            cores,
            base: h * cluster,
            cluster,
        });
    }
    let mut machine = BspMachine::new(bsp, hosts);
    machine.instrument(opts);
    let report = machine.run(opts.budget_or(DEFAULT_HOST_BUDGET))?;
    let mut programs = Vec::with_capacity(p);
    for host in machine.into_processes() {
        programs.extend(host.into_programs());
    }
    Ok(WorkPreservingReport {
        bsp: report,
        programs,
        hosts: bsp.p,
        cluster,
    })
}

/// Result of a Theorem 1 simulation.
pub struct Theorem1Report<P: LogpProcess> {
    /// The host BSP run (supersteps, total cost).
    pub bsp: RunReport,
    /// Guest programs in their final states.
    pub programs: Vec<P>,
    /// Guest LogP-clock values at halt (max ≈ the virtual LogP makespan the
    /// simulation realized).
    pub guest_times: Vec<Steps>,
    /// Cycle length `C = ⌈L/2⌉` used.
    pub cycle_len: u64,
}

impl<P: LogpProcess> Theorem1Report<P> {
    /// The virtual guest makespan (latest guest clock).
    pub fn guest_makespan(&self) -> Steps {
        self.guest_times.iter().copied().max().unwrap_or(Steps::ZERO)
    }

    /// Measured slowdown: host BSP cost / guest LogP time.
    pub fn slowdown(&self) -> f64 {
        let guest = self.guest_makespan().get().max(1);
        self.bsp.cost.get() as f64 / guest as f64
    }

    /// Attribute the host cost onto Theorem 1's terms: `work` is the cycle
    /// emulation (the `1` term), `comm` the superstep routing (`g/G`), and
    /// `sync` the barriers (`ℓ/L`). Residual is zero by the BSP cost
    /// identity `cost = Σ (w + g·h + ℓ)`.
    pub fn attribution(&self, bsp: &BspParams, label: impl Into<String>) -> bvl_obs::CostReport {
        let work: u64 = self.bsp.records.iter().map(|r| r.w).sum();
        let comm: u64 = self.bsp.records.iter().map(|r| bsp.g * r.h).sum();
        bvl_obs::CostReport {
            label: label.into(),
            makespan: self.bsp.cost,
            work: Steps(work),
            comm: Steps(comm),
            sync: Steps(bsp.l * self.bsp.supersteps),
            stall: Steps::ZERO,
            other: Steps::ZERO,
        }
    }
}

/// Run a LogP program (one `LogpProcess` per processor) on a BSP host and
/// report cost, guest state, and slowdown inputs.
///
/// Observability comes through `opts`: `opts.registry` is attached to the
/// host BSP machine, which feeds it per-superstep local-work, barrier and
/// routing spans plus counters on the host's ledger clock; `opts.budget`
/// caps the host superstep count ([`DEFAULT_HOST_BUDGET`] when unset).
pub fn simulate_logp_on_bsp<P: LogpProcess>(
    logp: LogpParams,
    bsp: BspParams,
    programs: Vec<P>,
    config: Theorem1Config,
    opts: &RunOptions,
) -> Result<Theorem1Report<P>, ModelError> {
    assert_eq!(logp.p, bsp.p, "models must agree on p");
    let guests: Vec<GuestProc<P>> = programs
        .into_iter()
        .map(|prog| GuestProc::new(prog, logp))
        .collect();
    let mut machine = BspMachine::new(bsp, guests);
    machine.instrument(opts);
    let report = machine.run(opts.budget_or(DEFAULT_HOST_BUDGET))?;

    if config.verify_stall_free {
        // The proof's premise: per superstep, h <= ceil(L/G) (each cycle
        // routes at most a ceil(L/G)-relation). h above that implies the
        // guest was not stall-free.
        let cap = logp.capacity();
        for rec in &report.records {
            if rec.h > cap {
                return Err(ModelError::StallDetected {
                    proc: ProcId(0),
                    at: rec.index,
                });
            }
        }
    }

    let cycle_len = logp.l.div_ceil(2).max(1);
    let mut guest_times = Vec::new();
    let mut programs = Vec::new();
    for g in machine.into_processes() {
        guest_times.push(g.guest_time());
        programs.push(g.into_program());
    }
    Ok(Theorem1Report {
        bsp: report,
        programs,
        guest_times,
        cycle_len,
    })
}

/// Build a guest envelope (used by tests constructing expected messages).
pub fn guest_envelope(src: ProcId, dst: ProcId, payload: Payload, delivered: Steps) -> Envelope {
    let mut e = Envelope::new(src, dst, payload);
    e.id = MsgId(0);
    e.delivered = delivered;
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_logp::{LogpConfig, LogpMachine, Script};
    use bvl_obs::Registry;

    fn send(dst: u32, w: i64) -> Op {
        Op::Send {
            dst: ProcId(dst),
            payload: Payload::word(0, w),
        }
    }

    /// Ring shift: every processor sends to its right neighbour and
    /// receives once. Run natively and hosted; outputs must agree.
    fn ring_programs(p: usize) -> Vec<Script> {
        (0..p)
            .map(|i| Script::new([send(((i + 1) % p) as u32, i as i64), Op::Recv]))
            .collect()
    }

    #[test]
    fn hosted_ring_matches_native_outputs() {
        let logp = LogpParams::new(8, 8, 1, 2).unwrap();
        let bsp = BspParams::new(8, 2, 8).unwrap();

        let mut native = LogpMachine::with_config(logp, LogpConfig::stall_free(), ring_programs(8));
        native.run().unwrap();
        let native_received: Vec<Vec<i64>> = native
            .into_programs()
            .into_iter()
            .map(|s| s.into_received().iter().map(|e| e.payload.expect_word()).collect())
            .collect();

        let rep = simulate_logp_on_bsp(
            logp,
            bsp,
            ring_programs(8),
            Theorem1Config::default(),
            &RunOptions::new(),
        )
        .unwrap();
        let hosted_received: Vec<Vec<i64>> = rep
            .programs
            .into_iter()
            .map(|s| s.into_received().iter().map(|e| e.payload.expect_word()).collect())
            .collect();
        assert_eq!(native_received, hosted_received);
    }

    #[test]
    fn slowdown_is_constant_when_parameters_match() {
        // g = G, l = L: Theorem 1 promises O(1) slowdown.
        let logp = LogpParams::new(16, 16, 1, 4).unwrap();
        let bsp = BspParams::new(16, 4, 16).unwrap();
        // A workload long enough to amortize startup: 8 ring rounds.
        let programs: Vec<Script> = (0..16)
            .map(|i| {
                let mut ops = Vec::new();
                for r in 0..8 {
                    ops.push(send(((i + 1) % 16) as u32, (i * 100 + r) as i64));
                    ops.push(Op::Recv);
                }
                Script::new(ops)
            })
            .collect();
        let mut native = LogpMachine::with_config(logp, LogpConfig::stall_free(), programs.clone());
        let native_time = native.run().unwrap().makespan;

        let rep =
            simulate_logp_on_bsp(logp, bsp, programs, Theorem1Config::default(), &RunOptions::new())
                .unwrap();
        let slowdown = rep.bsp.cost.get() as f64 / native_time.get() as f64;
        // Theorem 1: O(1 + g/G + l/L) = O(3); allow engine constants.
        assert!(slowdown < 12.0, "slowdown {slowdown}");
        assert!(slowdown >= 1.0, "hosted cannot beat native: {slowdown}");
    }

    #[test]
    fn messages_never_arrive_in_the_cycle_they_were_submitted() {
        // P0 sends at guest time ~o; P1 records its guest acquisition time,
        // which must be in cycle >= 1 (i.e. >= C).
        let logp = LogpParams::new(2, 12, 1, 3).unwrap(); // C = 6
        let bsp = BspParams::new(2, 3, 12).unwrap();
        let programs = vec![Script::new([send(1, 9)]), Script::new([Op::Recv])];
        let rep =
            simulate_logp_on_bsp(logp, bsp, programs, Theorem1Config::default(), &RunOptions::new())
                .unwrap();
        let received = &rep.programs[1].received()[0];
        assert_eq!(received.payload.expect_word(), 9);
        assert!(received.delivered >= Steps(6), "delivered {:?}", received.delivered);
    }

    #[test]
    fn obs_host_feeds_registry_and_attribution_is_exact() {
        let logp = LogpParams::new(8, 8, 1, 2).unwrap();
        let bsp = BspParams::new(8, 2, 8).unwrap();
        let reg = Registry::enabled(8);
        let rep = simulate_logp_on_bsp(
            logp,
            bsp,
            ring_programs(8),
            Theorem1Config::default(),
            &RunOptions::new().registry(&reg),
        )
        .unwrap();
        // The host machine emitted one Superstep span per superstep.
        let spans = reg.spans();
        let count = spans
            .iter()
            .filter(|s| s.kind == bvl_obs::SpanKind::Superstep)
            .count() as u64;
        assert_eq!(count, rep.bsp.supersteps);
        // Every send the guests made was observed at the host level.
        assert_eq!(reg.counter(bvl_obs::Counter::Submitted), 8);
        let cost = rep.attribution(&bsp, "thm1 ring");
        assert_eq!(cost.makespan, rep.bsp.cost);
        assert_eq!(cost.residual(), 0, "{cost}");
    }

    #[test]
    fn stall_free_premise_violation_detected() {
        // All 7 processors send to P0 in the same cycle: 7 > ceil(L/G) = 2.
        let logp = LogpParams::new(8, 8, 1, 4).unwrap();
        let bsp = BspParams::new(8, 4, 8).unwrap();
        let mut programs = vec![Script::idle()];
        programs.extend((1..8).map(|i| Script::new([send(0, i as i64)])));
        // P0 never receives; it would deadlock on Recv, so just idle it.
        let err =
            simulate_logp_on_bsp(logp, bsp, programs, Theorem1Config::default(), &RunOptions::new());
        assert!(matches!(err, Err(ModelError::StallDetected { .. })));
    }

    #[test]
    fn long_compute_carries_across_cycles() {
        let logp = LogpParams::new(2, 8, 1, 2).unwrap(); // C = 4
        let bsp = BspParams::new(2, 2, 8).unwrap();
        let programs = vec![
            Script::new([Op::Compute(23), send(1, 5)]),
            Script::new([Op::Recv]),
        ];
        let rep =
            simulate_logp_on_bsp(logp, bsp, programs, Theorem1Config::default(), &RunOptions::new())
                .unwrap();
        // Send submits at 23 + o = 24, i.e. cycle 6; receiver gets it after.
        assert_eq!(rep.programs[1].received().len(), 1);
        assert!(rep.guest_times[0] >= Steps(24));
        // Work charged per superstep never exceeds the cycle length.
        for r in &rep.bsp.records {
            assert!(r.w <= rep.cycle_len, "w {} > C {}", r.w, rep.cycle_len);
        }
    }

    #[test]
    fn gap_respected_inside_cycles() {
        // Three sends from one guest: submissions G apart on the guest
        // clock even though the host superstep is much coarser.
        let logp = LogpParams::new(4, 16, 1, 8).unwrap();
        let bsp = BspParams::new(4, 8, 16).unwrap();
        let mut programs = vec![Script::new([send(1, 0), send(2, 1), send(3, 2)])];
        programs.extend((0..3).map(|_| Script::new([Op::Recv])));
        let rep =
            simulate_logp_on_bsp(logp, bsp, programs, Theorem1Config::default(), &RunOptions::new())
                .unwrap();
        // Guest submissions at 1, 9, 17 -> final guest clock >= 17.
        assert!(rep.guest_times[0] >= Steps(17));
    }

    #[test]
    fn deadlocked_guest_times_out() {
        let logp = LogpParams::new(2, 8, 1, 2).unwrap();
        let bsp = BspParams::new(2, 2, 8).unwrap();
        let programs = vec![Script::new([Op::Recv]), Script::idle()];
        let err = simulate_logp_on_bsp(
            logp,
            bsp,
            programs,
            Theorem1Config::default(),
            &RunOptions::new().budget(50),
        );
        assert!(matches!(err, Err(ModelError::Timeout { .. })));
    }
}

#[cfg(test)]
mod cluster_tests {
    use super::*;
    use bvl_logp::{LogpConfig, LogpMachine, Script};

    fn send(dst: u32, w: i64) -> Op {
        Op::Send {
            dst: ProcId(dst),
            payload: Payload::word(0, w),
        }
    }

    fn ring_programs(p: usize, rounds: usize) -> Vec<Script> {
        (0..p)
            .map(|i| {
                let mut ops = Vec::new();
                for r in 0..rounds {
                    ops.push(send(((i + 1) % p) as u32, (i * 100 + r) as i64));
                    ops.push(Op::Recv);
                }
                Script::new(ops)
            })
            .collect()
    }

    #[test]
    fn clustered_results_match_native() {
        let logp = LogpParams::new(16, 16, 1, 4).unwrap();
        let mut native =
            LogpMachine::with_config(logp, LogpConfig::stall_free(), ring_programs(16, 4));
        native.run().unwrap();
        let want: Vec<Vec<i64>> = native
            .into_programs()
            .into_iter()
            .map(|s| s.into_received().iter().map(|e| e.payload.expect_word()).collect())
            .collect();

        for cluster in [1usize, 2, 4, 8] {
            let bsp = BspParams::new(16 / cluster, 4, 16).unwrap();
            let rep = simulate_logp_on_bsp_clustered(
                logp,
                bsp,
                cluster,
                ring_programs(16, 4),
                &RunOptions::new().budget(10_000),
            )
            .unwrap();
            let got: Vec<Vec<i64>> = rep
                .programs
                .into_iter()
                .map(|s| s.into_received().iter().map(|e| e.payload.expect_word()).collect())
                .collect();
            assert_eq!(got, want, "cluster = {cluster}");
        }
    }

    #[test]
    fn clustering_is_work_preserving() {
        // The 1:1 host wastes p processors on an l-dominated simulation;
        // folding guests together amortizes the barrier: host work must not
        // grow with the cluster factor (and typically shrinks).
        let logp = LogpParams::new(32, 16, 1, 4).unwrap();
        let mut works = Vec::new();
        for cluster in [1usize, 4, 8] {
            let bsp = BspParams::new(32 / cluster, 4, 64).unwrap(); // pricey barrier
            let rep = simulate_logp_on_bsp_clustered(
                logp,
                bsp,
                cluster,
                ring_programs(32, 6),
                &RunOptions::new().budget(10_000),
            )
            .unwrap();
            works.push(rep.host_work());
        }
        assert!(works[1] < works[0], "work {works:?}");
        assert!(works[2] <= works[1], "work {works:?}");
    }

    #[test]
    fn cluster_of_p_runs_on_one_host() {
        let logp = LogpParams::new(8, 8, 1, 2).unwrap();
        let bsp = BspParams::new(1, 2, 8).unwrap();
        let rep = simulate_logp_on_bsp_clustered(
            logp,
            bsp,
            8,
            ring_programs(8, 2),
            &RunOptions::new().budget(10_000),
        )
        .unwrap();
        assert_eq!(rep.hosts, 1);
        assert_eq!(rep.programs.len(), 8);
        // Sequentialized: every guest received its 2 messages.
        for s in &rep.programs {
            assert_eq!(s.received().len(), 2);
        }
    }
}

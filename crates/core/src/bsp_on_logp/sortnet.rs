//! Sorting networks (the small-r sorting scheme of §4.2).
//!
//! The paper uses the AKS network for its `O(log p)` depth. AKS's constants
//! are astronomically impractical (depth `c·log p` with `c` in the
//! thousands), and the paper leans on it *only* for the asymptotic
//! `O((Gr + L) log p)` term, so this crate substitutes **Batcher's bitonic
//! network**: `log p (log p + 1)/2` rounds, each a perfect matching of the
//! processors, with tiny constants (see DESIGN.md §2, substitution 2). The
//! experiment harness reports the AKS cost *formula* next to the measured
//! Batcher cost so both depth regimes are visible.
//!
//! Each round is returned as a set of disjoint `(lo, hi, ascending)` pairs.
//! Applied with compare-exchange it sorts scalars; applied with
//! **merge-split** on locally sorted blocks of `r` keys it sorts `rp` keys
//! (Knuth's standard block generalization, exercised by `route_det`).

/// One comparator: processors `lo < hi` exchange and keep
/// (min, max) if `ascending`, else (max, min).
pub type Comparator = (usize, usize, bool);

/// The rounds of Batcher's bitonic sorting network on `p = 2^k` lines.
/// Round `r` is a perfect matching; there are `k(k+1)/2` rounds.
pub fn bitonic_stages(p: usize) -> Vec<Vec<Comparator>> {
    assert!(p.is_power_of_two() && p >= 1, "bitonic needs a power of two");
    let mut rounds = Vec::new();
    let k = p.trailing_zeros();
    for stage in 0..k {
        for sub in (0..=stage).rev() {
            let mut round = Vec::with_capacity(p / 2);
            let bit = 1usize << sub;
            for i in 0..p {
                let j = i | bit;
                if i & bit == 0 && j < p {
                    // Direction of the bitonic merge block containing i.
                    let ascending = i & (1usize << (stage + 1)) == 0;
                    round.push((i, j, ascending));
                }
            }
            rounds.push(round);
        }
    }
    rounds
}

/// Apply a comparator network to a scalar vector (test/reference semantics).
pub fn apply_network<T: Ord + Copy>(rounds: &[Vec<Comparator>], xs: &mut [T]) {
    for round in rounds {
        for &(lo, hi, asc) in round {
            let (a, b) = (xs[lo], xs[hi]);
            let (mn, mx) = if a <= b { (a, b) } else { (b, a) };
            if asc {
                xs[lo] = mn;
                xs[hi] = mx;
            } else {
                xs[lo] = mx;
                xs[hi] = mn;
            }
        }
    }
}

/// Merge two sorted blocks and split into (low half, high half) — the
/// block-level compare-exchange. Both inputs must be sorted ascending and of
/// equal length `r`; outputs are sorted ascending.
pub fn merge_split<T: Ord + Clone>(a: &[T], b: &[T]) -> (Vec<T>, Vec<T>) {
    assert_eq!(a.len(), b.len());
    let r = a.len();
    let mut merged = Vec::with_capacity(2 * r);
    let (mut i, mut j) = (0, 0);
    while i < r && j < r {
        if a[i] <= b[j] {
            merged.push(a[i].clone());
            i += 1;
        } else {
            merged.push(b[j].clone());
            j += 1;
        }
    }
    merged.extend(a[i..].iter().cloned());
    merged.extend(b[j..].iter().cloned());
    let high = merged.split_off(r);
    (merged, high)
}

/// The AKS cost *formula* of §4.2 — `T_AKS(r, p) = Θ((Gr + L) log p)` — with
/// unit constant, for measured-vs-asymptotic reporting.
pub fn aks_cost_formula(g: u64, l: u64, r: u64, p: usize) -> f64 {
    (g * r + l) as f64 * (p.max(2) as f64).log2()
}

/// The bitonic cost formula with its real depth:
/// `(2o + G(r−1) + L + merge) · k(k+1)/2`.
pub fn bitonic_cost_formula(g: u64, l: u64, o: u64, r: u64, p: usize) -> f64 {
    let k = (p.max(2) as f64).log2();
    let per_round = (2 * o + g * r.saturating_sub(1) + l + 2 * r) as f64;
    per_round * k * (k + 1.0) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_model::rngutil::SeedStream;
    use rand::Rng;

    #[test]
    fn rounds_are_matchings() {
        for k in 0..6 {
            let p = 1 << k;
            let rounds = bitonic_stages(p);
            assert_eq!(rounds.len(), k * (k + 1) / 2);
            for round in &rounds {
                let mut used = vec![false; p];
                for &(lo, hi, _) in round {
                    assert!(lo < hi && hi < p);
                    assert!(!used[lo] && !used[hi], "round is not a matching");
                    used[lo] = true;
                    used[hi] = true;
                }
                // Every processor participates (perfect matching).
                assert!(used.iter().all(|&u| u), "matching is not perfect");
            }
        }
    }

    #[test]
    fn sorts_all_01_vectors_small() {
        // 0-1 principle: a network sorting all 0-1 inputs sorts everything.
        for p in [2usize, 4, 8, 16] {
            let rounds = bitonic_stages(p);
            for mask in 0..(1u32 << p) {
                let mut v: Vec<u32> = (0..p).map(|i| (mask >> i) & 1).collect();
                apply_network(&rounds, &mut v);
                assert!(v.windows(2).all(|w| w[0] <= w[1]), "p={p} mask={mask:b}");
            }
        }
    }

    #[test]
    fn sorts_random_vectors_large() {
        let mut rng = SeedStream::new(3).derive("sortnet", 0);
        for k in [5u32, 7] {
            let p = 1usize << k;
            let rounds = bitonic_stages(p);
            for _ in 0..5 {
                let mut v: Vec<i64> = (0..p).map(|_| rng.gen_range(-1000..1000)).collect();
                let mut expect = v.clone();
                expect.sort_unstable();
                apply_network(&rounds, &mut v);
                assert_eq!(v, expect);
            }
        }
    }

    #[test]
    fn merge_split_halves_correctly() {
        let (lo, hi) = merge_split(&[1, 4, 7], &[2, 3, 9]);
        assert_eq!(lo, vec![1, 2, 3]);
        assert_eq!(hi, vec![4, 7, 9]);
        let (lo, hi) = merge_split::<i32>(&[], &[]);
        assert!(lo.is_empty() && hi.is_empty());
    }

    #[test]
    fn blockwise_network_sorts_globally() {
        // Knuth's generalization: replace compare-exchange with merge-split
        // on sorted blocks; the network then sorts the concatenation.
        let mut rng = SeedStream::new(4).derive("blocks", 0);
        let (p, r) = (16usize, 5usize);
        let rounds = bitonic_stages(p);
        let mut blocks: Vec<Vec<i64>> = (0..p)
            .map(|_| {
                let mut b: Vec<i64> = (0..r).map(|_| rng.gen_range(0..10_000)).collect();
                b.sort_unstable();
                b
            })
            .collect();
        let mut expect: Vec<i64> = blocks.iter().flatten().copied().collect();
        expect.sort_unstable();
        for round in &rounds {
            for &(lo, hi, asc) in round {
                let (a, b) = merge_split(&blocks[lo], &blocks[hi]);
                if asc {
                    blocks[lo] = a;
                    blocks[hi] = b;
                } else {
                    blocks[lo] = b;
                    blocks[hi] = a;
                }
            }
        }
        let got: Vec<i64> = blocks.iter().flatten().copied().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn cost_formulas_positive_and_ordered() {
        // For moderate r the bitonic formula exceeds the AKS asymptote by
        // about a log factor.
        let aks = aks_cost_formula(2, 16, 8, 256);
        let bit = bitonic_cost_formula(2, 16, 1, 8, 256);
        assert!(aks > 0.0 && bit > aks);
    }
}

/// The rounds of Batcher's odd-even mergesort network on `p = 2^k` lines —
/// same `O(log² p)` depth as bitonic but ~half the comparators (all
/// ascending), so each round is a *partial* matching. Generated recursively
/// and then level-scheduled into rounds.
pub fn odd_even_merge_stages(p: usize) -> Vec<Vec<Comparator>> {
    assert!(p.is_power_of_two() && p >= 1, "odd-even merge needs a power of two");
    let mut comparators: Vec<(usize, usize)> = Vec::new();

    fn merge(lo: usize, n: usize, r: usize, out: &mut Vec<(usize, usize)>) {
        let m = 2 * r;
        if m < n {
            merge(lo, n, m, out);
            merge(lo + r, n, m, out);
            let mut i = lo + r;
            while i + r < lo + n {
                out.push((i, i + r));
                i += m;
            }
        } else {
            out.push((lo, lo + r));
        }
    }
    fn sort(lo: usize, n: usize, out: &mut Vec<(usize, usize)>) {
        if n > 1 {
            let m = n / 2;
            sort(lo, m, out);
            sort(lo + m, m, out);
            merge(lo, n, 1, out);
        }
    }
    sort(0, p, &mut comparators);

    // Level-schedule: a comparator runs in the round after the last round
    // touching either of its wires.
    let mut wire_round = vec![0usize; p];
    let mut rounds: Vec<Vec<Comparator>> = Vec::new();
    for (a, b) in comparators {
        let r = wire_round[a].max(wire_round[b]);
        if rounds.len() <= r {
            rounds.resize_with(r + 1, Vec::new);
        }
        rounds[r].push((a, b, true));
        wire_round[a] = r + 1;
        wire_round[b] = r + 1;
    }
    rounds
}

#[cfg(test)]
mod odd_even_tests {
    use super::*;

    #[test]
    fn sorts_all_01_vectors() {
        for p in [2usize, 4, 8, 16] {
            let rounds = odd_even_merge_stages(p);
            for mask in 0..(1u32 << p) {
                let mut v: Vec<u32> = (0..p).map(|i| (mask >> i) & 1).collect();
                apply_network(&rounds, &mut v);
                assert!(v.windows(2).all(|w| w[0] <= w[1]), "p={p} mask={mask:b}");
            }
        }
    }

    #[test]
    fn rounds_are_matchings_and_all_ascending() {
        for k in 1..7 {
            let p = 1usize << k;
            for round in odd_even_merge_stages(p) {
                let mut used = vec![false; p];
                for &(a, b, asc) in &round {
                    assert!(asc);
                    assert!(a < b && b < p);
                    assert!(!used[a] && !used[b], "not a matching at p={p}");
                    used[a] = true;
                    used[b] = true;
                }
            }
        }
    }

    #[test]
    fn fewer_comparators_than_bitonic() {
        for k in 3..9 {
            let p = 1usize << k;
            let oe: usize = odd_even_merge_stages(p).iter().map(|r| r.len()).sum();
            let bi: usize = bitonic_stages(p).iter().map(|r| r.len()).sum();
            assert!(oe < bi, "p={p}: odd-even {oe} vs bitonic {bi}");
        }
    }

    #[test]
    fn depth_matches_batcher_formula() {
        // Depth of odd-even mergesort is k(k+1)/2 for p = 2^k.
        for k in 1..8 {
            let p = 1usize << k;
            assert_eq!(odd_even_merge_stages(p).len(), k * (k + 1) / 2, "p={p}");
        }
    }
}

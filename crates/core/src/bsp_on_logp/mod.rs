//! Simulation of BSP on LogP (§4, Theorems 2 and 3).
//!
//! The superstep simulation needs two ingredients beyond local execution:
//! a LogP barrier ([`cb`], Propositions 1–2) and a capacity-respecting
//! h-relation router — deterministic via sorting-based decomposition
//! ([`route_det`], with [`sortnet`] and [`columnsort`] as the two §4.2
//! sorting schemes) or randomized batching ([`route_rand`], Theorem 3).
//! [`runner`] assembles them into the full per-superstep pipeline; shared
//! phase plumbing (scripted machine runs, off-line optimal routing) lives
//! in [`phase`], and the message records the sorting protocols move live in
//! [`record`].

pub mod cb;
pub mod columnsort;
pub mod phase;
pub mod record;
pub mod route_det;
pub mod route_rand;
pub mod runner;
pub mod sortnet;

//! Randomized routing of h-relations with `h` known in advance (§4.3,
//! Theorem 3).
//!
//! The protocol, per processor:
//!
//! 1. Assign each outgoing message an integer batch uniformly in `[1, R]`,
//!    independently, with `R = (1 + β')·h/⌈L/G⌉`.
//! 2. Execute `R` rounds of `2(L + o)` steps each; in round `r` transmit up
//!    to `⌈L/G⌉` messages of batch `r`, one every `G` steps.
//! 3. Transmit all remaining messages, one every `G` steps.
//!
//! Theorem 3: with `⌈L/G⌉ ≥ c₁ log p`, the relation completes without
//! stalling in time `βGh` with probability `≥ 1 − p^{−c₂}`,
//! `β = 4e^{2(c₂+3)/c₁}`. Even when the Chernoff bound fails, the Stalling
//! Rule guarantees an `O(Gh²)` worst case. The engine runs with stalling
//! *permitted* and reports whether any occurred — that is the experiment's
//! measured failure event.

use crate::bsp_on_logp::phase::verify_delivery;
use crate::slowdown::theorem3_batches;
use bvl_exec::RunOptions;
use bvl_logp::{LogpParams, Op, Script};
use bvl_model::rngutil::SeedStream;
use bvl_model::{HRelation, ModelError, Steps};
use bvl_obs::{Span, SpanKind};
use rand::Rng;

/// Outcome of one randomized routing run.
#[derive(Clone, Debug)]
pub struct RouteRandReport {
    /// Completion time (makespan of the routing phase).
    pub time: Steps,
    /// Number of batches `R` used.
    pub batches: u64,
    /// Messages that overflowed their batch's capacity window and were sent
    /// in the cleanup step (Step 3).
    pub leftover: usize,
    /// Did any processor stall?
    pub stalled: bool,
    /// Total stall episodes (0 in the high-probability case).
    pub stall_episodes: u64,
    /// Measured `time / (G·h)` — the empirical β.
    pub beta_measured: f64,
    /// Machine runs needed: 1 on a well-behaved medium; more when an
    /// injected fault wedged an attempt and the protocol retried.
    pub attempts: u64,
    /// Backoff time charged between failed attempts (zero when
    /// `attempts == 1`); already included in `time`.
    pub backoff: Steps,
}

/// Route `rel` (degree `h` assumed known to all processors, as Theorem 3
/// requires) with the randomized batching protocol. `slack` is the batch
/// head-room factor `1 + β'` (see `slowdown::theorem3_batches`; `2.0` is a
/// good default).
///
/// Observability comes through `opts`: each non-empty batch round is
/// emitted as a [`SpanKind::RouteBatch`] span (the cleanup step, when
/// present, gets index `R`) into `opts.registry`, offset by
/// `opts.clock_base` on the caller's virtual clock; `opts.seed` drives the
/// batch assignment and the machine run.
pub fn route_randomized(
    params: LogpParams,
    rel: &HRelation,
    slack: f64,
    opts: &RunOptions,
) -> Result<RouteRandReport, ModelError> {
    let seed = opts.seed;
    let registry = &opts.registry;
    let base = opts.clock_base;
    let p = params.p;
    assert_eq!(rel.p(), p);
    let h = rel.degree() as u64;
    if h == 0 {
        return Ok(RouteRandReport {
            time: Steps::ZERO,
            batches: 0,
            leftover: 0,
            stalled: false,
            stall_episodes: 0,
            beta_measured: 0.0,
            attempts: 0,
            backoff: Steps::ZERO,
        });
    }
    let cap = params.capacity() as usize;
    let r_batches = theorem3_batches(&params, h, slack);
    let round_len = 2 * (params.l + params.o);

    // Batch assignment, independently uniform per message.
    let seeds = SeedStream::new(seed);
    let mut assign: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); r_batches as usize]; p];
    for (idx, d) in rel.demands().iter().enumerate() {
        let mut rng = seeds.derive("batch", idx as u64);
        let b = rng.gen_range(0..r_batches) as usize;
        assign[d.src.index()][b].push(idx);
    }

    // Build the scripts.
    let in_deg = rel.in_degrees();
    let mut leftover = 0usize;
    let scripts: Vec<Script> = (0..p)
        .map(|j| {
            let mut ops = Vec::new();
            let mut spill: Vec<usize> = Vec::new();
            for (b, msgs) in assign[j].iter().enumerate() {
                if msgs.is_empty() && spill.is_empty() {
                    continue;
                }
                let start = Steps(b as u64 * round_len);
                if !msgs.is_empty() {
                    ops.push(Op::WaitUntil(start));
                }
                for (k, &idx) in msgs.iter().enumerate() {
                    if k < cap {
                        let d = &rel.demands()[idx];
                        ops.push(Op::Send {
                            dst: d.dst,
                            payload: d.payload.clone(),
                        });
                    } else {
                        spill.push(idx);
                    }
                }
            }
            // Step 3: cleanup at the end of the R rounds.
            if !spill.is_empty() {
                leftover += spill.len();
                ops.push(Op::WaitUntil(Steps(r_batches * round_len)));
                for idx in spill {
                    let d = &rel.demands()[idx];
                    ops.push(Op::Send {
                        dst: d.dst,
                        payload: d.payload.clone(),
                    });
                }
            }
            ops.extend(std::iter::repeat_n(Op::Recv, in_deg[j]));
            Script::new(ops)
        })
        .collect();

    // Stalling permitted: its occurrence is the measured failure event.
    //
    // Under an adversarial medium (opts.faulted()) an attempt can wedge
    // outright — a transient capacity outage or injected delay leaves
    // receivers blocked past the engine's quiescence point, surfacing as
    // `Deadlock` or `Timeout`. Theorem 3's protocol is oblivious (batch
    // assignment is independent of the medium), so the recovery is a full
    // re-run with a fresh policy seed, charged to the protocol clock with
    // exponential backoff. Each failed attempt is surfaced as a
    // [`SpanKind::Stall`] span in `opts.registry`.
    let max_attempts: u64 = if opts.faulted() { 4 } else { 1 };
    let mut backoff = Steps::ZERO;
    let mut outcome = None;
    let mut attempts = 0;
    for attempt in 0..max_attempts {
        attempts = attempt + 1;
        let config = bvl_logp::LogpConfig {
            forbid_stalling: false,
            seed: seed.wrapping_add(1 + attempt.wrapping_mul(0x9E37_79B9)),
            ..bvl_logp::LogpConfig::default()
        };
        let mut machine = bvl_logp::LogpMachine::with_config(params, config, scripts.clone());
        machine.instrument(opts);
        match machine.run() {
            Ok(report) => {
                let received: Vec<Vec<bvl_model::Envelope>> = machine
                    .into_programs()
                    .into_iter()
                    .map(|s| s.into_received())
                    .collect();
                verify_delivery(rel, &received).map_err(ModelError::Internal)?;
                outcome = Some(report);
                break;
            }
            Err(ModelError::Deadlock { .. } | ModelError::Timeout { .. }) => {
                // Exponential backoff: double the charged recovery window
                // each failed attempt (a round's worth at minimum).
                let penalty = Steps(round_len << attempt);
                if registry.is_enabled() {
                    registry.span(
                        Span::new(SpanKind::Stall, base + backoff, base + backoff + penalty)
                            .at_index(attempt),
                    );
                }
                backoff += penalty;
            }
            Err(e) => return Err(e),
        }
    }
    let Some(report) = outcome else {
        return Err(ModelError::Internal(format!(
            "randomized routing wedged {max_attempts} times under injected faults \
             (seed {seed}, h {h})"
        )));
    };

    if registry.is_enabled() {
        // One span per batch round that carried any traffic, nominal round
        // windows; the cleanup step spans from the end of the R rounds to
        // the measured finish.
        for b in 0..r_batches as usize {
            if assign.iter().any(|per_proc| !per_proc[b].is_empty()) {
                let start = Steps(b as u64 * round_len);
                let end = Steps((b as u64 + 1) * round_len).min(report.makespan);
                registry
                    .span(Span::new(SpanKind::RouteBatch, base + start, base + end).at_index(b as u64));
            }
        }
        if leftover > 0 {
            let start = Steps(r_batches * round_len).min(report.makespan);
            registry.span(
                Span::new(SpanKind::RouteBatch, base + start, base + report.makespan)
                    .at_index(r_batches),
            );
        }
    }

    let time = report.makespan + backoff;
    Ok(RouteRandReport {
        time,
        batches: r_batches,
        leftover,
        stalled: report.stall_episodes > 0,
        stall_episodes: report.stall_episodes,
        beta_measured: time.get() as f64 / (params.g * h) as f64,
        attempts,
        backoff,
    })
}

// Re-exported so callers can size experiments without running them.
pub use crate::slowdown::theorem3_beta;

#[cfg(test)]
mod tests {
    use super::*;

    /// Parameters satisfying ⌈L/G⌉ ≥ c₁ log p comfortably.
    fn roomy_params(p: usize) -> LogpParams {
        // L = 64, G = 2 -> capacity 32 >= 4·log2(p) for p <= 256.
        LogpParams::new(p, 64, 1, 2).unwrap()
    }

    #[test]
    fn routes_exact_relation_without_stalling_whp() {
        let params = roomy_params(16);
        let mut rng = SeedStream::new(3).derive("rel", 0);
        let rel = HRelation::random_exact(&mut rng, 16, 32);
        let rep = route_randomized(params, &rel, 2.0, &RunOptions::new().seed(42)).unwrap();
        assert!(!rep.stalled, "stall in the high-probability regime");
        assert!(rep.beta_measured > 0.0);
        // Time should be within the advertised O(Gh) regime — allow a
        // generous constant for the engine's acquisition serialization.
        assert!(
            rep.time.get() <= 40 * params.g * 32,
            "time {:?} vs Gh {}",
            rep.time,
            params.g * 32
        );
    }

    #[test]
    fn empty_relation_is_free() {
        let params = roomy_params(8);
        let rel = HRelation::new(8);
        let rep = route_randomized(params, &rel, 2.0, &RunOptions::new().seed(1)).unwrap();
        assert_eq!(rep.time, Steps::ZERO);
    }

    #[test]
    fn permutation_routes_quickly() {
        let params = roomy_params(32);
        let mut rng = SeedStream::new(4).derive("rel", 0);
        let rel = HRelation::random_permutation(&mut rng, 32);
        let rep = route_randomized(params, &rel, 2.0, &RunOptions::new().seed(7)).unwrap();
        assert!(!rep.stalled);
        assert_eq!(rep.batches, theorem3_batches(&params, 1, 2.0));
    }

    #[test]
    fn hot_spot_completes_even_if_it_stalls() {
        // A hot spot with tiny capacity: stalls likely, but the Stalling
        // Rule still bounds completion by O(Gh^2).
        let params = LogpParams::new(8, 4, 1, 2).unwrap(); // capacity 2
        let rel = HRelation::hot_spot(8, bvl_model::ProcId(0), 7, 3);
        let h = rel.degree() as u64;
        let rep = route_randomized(params, &rel, 2.0, &RunOptions::new().seed(9)).unwrap();
        assert!(
            rep.time.get() <= 4 * params.g * h * h + 8 * params.l,
            "time {:?} vs Gh^2 {}",
            rep.time,
            params.g * h * h
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let params = roomy_params(16);
        let mut rng = SeedStream::new(5).derive("rel", 0);
        let rel = HRelation::random_exact(&mut rng, 16, 8);
        let a = route_randomized(params, &rel, 2.0, &RunOptions::new().seed(11)).unwrap();
        let b = route_randomized(params, &rel, 2.0, &RunOptions::new().seed(11)).unwrap();
        assert_eq!(a.time, b.time);
        assert_eq!(a.leftover, b.leftover);
        assert_eq!(a.attempts, 1, "clean media never need a retry");
        assert_eq!(a.backoff, Steps::ZERO);
    }

    /// A medium that wedges the first machine run outright (capacity 0,
    /// no wake hint) exercises the retry path: the protocol must charge
    /// backoff, re-run with a fresh policy seed, and still deliver the
    /// exact relation.
    #[test]
    fn retries_after_a_wedged_attempt() {
        use bvl_exec::{Medium, WrapMedium};
        use bvl_model::{Envelope, ProcId};
        use rand::RngCore;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        struct Wedged(Box<dyn Medium + Send>);
        impl Medium for Wedged {
            fn capacity(&self, _dst: ProcId, _now: Steps) -> u64 {
                0
            }
            fn delivery_time(&mut self, env: &Envelope, now: Steps, rng: &mut dyn RngCore) -> Steps {
                self.0.delivery_time(env, now, rng)
            }
            fn name(&self) -> &'static str {
                "wedged"
            }
        }
        struct WedgeOnce(AtomicU64);
        impl WrapMedium for WedgeOnce {
            fn wrap(&self, inner: Box<dyn Medium + Send>) -> Box<dyn Medium + Send> {
                if self.0.fetch_add(1, Ordering::SeqCst) == 0 {
                    Box::new(Wedged(inner))
                } else {
                    inner
                }
            }
            fn label(&self) -> String {
                "wedge-once".into()
            }
        }

        let params = roomy_params(8);
        let mut rng = SeedStream::new(6).derive("rel", 0);
        let rel = HRelation::random_exact(&mut rng, 8, 4);
        let opts = RunOptions::new()
            .seed(3)
            .faults(Arc::new(WedgeOnce(AtomicU64::new(0))));
        let rep = route_randomized(params, &rel, 2.0, &opts).unwrap();
        assert_eq!(rep.attempts, 2, "first attempt wedges, second succeeds");
        assert!(rep.backoff > Steps::ZERO, "backoff must be charged");
        assert!(rep.time > rep.backoff, "time includes the real run too");
    }

    /// A permanently wedged medium must fail with the seeded diagnostic,
    /// not hang.
    #[test]
    fn gives_up_after_bounded_attempts() {
        use bvl_exec::{Medium, WrapMedium};
        use bvl_model::{Envelope, ProcId};
        use rand::RngCore;
        use std::sync::Arc;

        struct Wedged(Box<dyn Medium + Send>);
        impl Medium for Wedged {
            fn capacity(&self, _dst: ProcId, _now: Steps) -> u64 {
                0
            }
            fn delivery_time(&mut self, env: &Envelope, now: Steps, rng: &mut dyn RngCore) -> Steps {
                self.0.delivery_time(env, now, rng)
            }
            fn name(&self) -> &'static str {
                "wedged"
            }
        }
        struct WedgeAlways;
        impl WrapMedium for WedgeAlways {
            fn wrap(&self, inner: Box<dyn Medium + Send>) -> Box<dyn Medium + Send> {
                Box::new(Wedged(inner))
            }
            fn label(&self) -> String {
                "wedge-always".into()
            }
        }

        let params = roomy_params(8);
        let mut rng = SeedStream::new(6).derive("rel", 0);
        let rel = HRelation::random_exact(&mut rng, 8, 4);
        let opts = RunOptions::new().seed(3).faults(Arc::new(WedgeAlways));
        let err = route_randomized(params, &rel, 2.0, &opts).unwrap_err();
        assert!(
            matches!(&err, ModelError::Internal(m) if m.contains("wedged")),
            "expected the give-up diagnostic, got {err:?}"
        );
    }
}

//! Columnsort — the large-r sorting scheme (Cubesort's role in §4.2).
//!
//! The paper invokes Cubesort for `r` large (`r = p^ε` makes the round count
//! constant, giving `T_CS = O(Gr + L)` and hence `S = O(1)`). What Theorem 2
//! actually needs from the large-r scheme is: **O(1) rounds, each an
//! input-independent data redistribution (an r-relation, decomposable
//! off-line into 1-relations) followed by local sorts.** Leighton's
//! Columnsort has exactly that structure — 4 local sorting steps and 4 fixed
//! redistributions — and is vastly simpler, so we substitute it
//! (DESIGN.md §2, substitution 3). Its validity condition is
//! `r ≥ 2(p−1)²` with `r` even, which is inside Theorem 2's large-h regime
//! (`h = Ω(p^ε)`, here `ε = 2`).
//!
//! The matrix is `r` rows × `p` columns, column `j` living on processor `j`,
//! sorted column-major at the end. Steps (Leighton 1985):
//!
//! 1. sort columns; 2. "transpose" (entry at column-major position `x`
//!    moves to row-major position `x`); 3. sort columns; 4. untranspose;
//!    5. sort columns; 6. shift down by `r/2` into `p+1` virtual columns;
//!    7. sort columns; 8. unshift.
//!
//! The virtual column `p` (bottom half of column `p−1` plus `+∞` padding)
//! stays resident on processor `p−1` and is already sorted after step 5, so
//! no extra processor is needed.

use crate::bsp_on_logp::phase::route_offline;
use crate::bsp_on_logp::record::Record;
use crate::slowdown::t_seq_sort;
use bvl_exec::RunOptions;
use bvl_logp::LogpParams;
use bvl_model::{HRelation, ModelError, ProcId, Steps};
use bvl_obs::{Registry, Span, SpanKind};

/// Does Columnsort's validity condition hold for block length `r` on `p`
/// processors?
pub fn columnsort_valid(p: usize, r: usize) -> bool {
    r.is_multiple_of(2) && p >= 2 && r >= 2 * (p - 1) * (p - 1)
}

/// Redistribute records according to `target(col, idx) -> new_col`, routing
/// the induced relation off-line; returns (time, new blocks). The order of
/// records within a receiving block is unspecified (a local sort always
/// follows).
fn redistribute(
    params: LogpParams,
    blocks: Vec<Vec<Record>>,
    opts: &RunOptions,
    target: impl Fn(usize, usize) -> usize,
) -> Result<(Steps, Vec<Vec<Record>>), ModelError> {
    let p = params.p;
    let mut rel = HRelation::new(p);
    let mut stay: Vec<Vec<Record>> = vec![Vec::new(); p];
    for (j, block) in blocks.into_iter().enumerate() {
        for (i, rec) in block.into_iter().enumerate() {
            let d = target(j, i);
            if d == j {
                stay[j].push(rec); // self-delivery needs no network time
            } else {
                rel.push(ProcId::from(j), ProcId::from(d), rec.to_payload());
            }
        }
    }
    let (t, received) = route_offline(params, &rel, opts)?;
    let mut out = stay;
    for (j, msgs) in received.into_iter().enumerate() {
        out[j].extend(msgs.iter().map(|e| Record::from_payload(&e.payload)));
    }
    Ok((t, out))
}

/// Distributed Columnsort over sorted-or-not blocks of equal even length
/// `r ≥ 2(p−1)²`. Returns (total time, globally sorted blocks) where block
/// `j` holds ranks `[j·r, (j+1)·r)`.
///
/// Time = 4 local sorts (`t_seq_sort`) + 4 off-line-routed redistributions,
/// i.e. `O(Tseq-sort(r) + Gr + L)` — constant rounds, as the paper requires
/// of the large-r scheme.
///
/// Each of the four sort+redistribute rounds is emitted as a
/// [`SpanKind::ColumnsortRound`] span into `registry`, offset by `base` on
/// the caller's virtual clock (pass `Registry::disabled()` and `Steps::ZERO`
/// when observability is not wanted).
pub fn columnsort(
    params: LogpParams,
    mut blocks: Vec<Vec<Record>>,
    opts: &RunOptions,
    registry: &Registry,
    base: Steps,
) -> Result<(Steps, usize, Vec<Vec<Record>>), ModelError> {
    let p = params.p;
    assert_eq!(blocks.len(), p);
    let r = blocks[0].len();
    assert!(blocks.iter().all(|b| b.len() == r), "equal block lengths");
    assert!(
        columnsort_valid(p, r),
        "columnsort needs even r >= 2(p-1)^2; got p={p}, r={r}"
    );
    let mut time = Steps::ZERO;
    let sort_charge = Steps(t_seq_sort(r as u64, p as u64));
    let sort_cols = |blocks: &mut Vec<Vec<Record>>| {
        for b in blocks.iter_mut() {
            b.sort();
        }
    };

    // Step 1: sort columns.
    sort_cols(&mut blocks);
    time += sort_charge;

    // Step 2: transpose — column-major position x = j*r + i lands at
    // row-major position x, i.e. column x mod p.
    let (t2, mut blocks2) = redistribute(params, blocks, &opts.clone().seed(opts.seed.wrapping_add(2)), |j, i| {
        (j * r + i) % p
    })?;
    time += t2;
    registry.span(Span::new(SpanKind::ColumnsortRound, base, base + time).at_index(0));
    let mut round_mark = time;

    // Step 3: sort columns.
    sort_cols(&mut blocks2);
    time += sort_charge;

    // Step 4: untranspose — row-major position x = i*p + j returns to
    // column-major, i.e. column x / r. (Row order within a column is
    // irrelevant: step 5 sorts.) Note position within the receiving block
    // after step 3's sort is the row index i.
    let (t4, mut blocks4) = redistribute(params, blocks2, &opts.clone().seed(opts.seed.wrapping_add(4)), |j, i| {
        (i * p + j) / r
    })?;
    time += t4;
    registry.span(Span::new(SpanKind::ColumnsortRound, base + round_mark, base + time).at_index(1));
    round_mark = time;

    // Step 5: sort columns.
    sort_cols(&mut blocks4);
    time += sort_charge;

    // Step 6: shift down r/2 — each column's bottom half moves to the next
    // column; column p-1's bottom half stays resident as the real part of
    // virtual column p. After step 5, both halves are sorted.
    let half = r / 2;
    let (t6, mut shifted) = redistribute(params, blocks4, &opts.clone().seed(opts.seed.wrapping_add(6)), |j, i| {
        if i < half || j == p - 1 {
            j
        } else {
            j + 1
        }
    })?;
    time += t6;
    registry.span(Span::new(SpanKind::ColumnsortRound, base + round_mark, base + time).at_index(2));
    round_mark = time;

    // Step 7: sort the shifted columns. Processor p-1 holds its shifted
    // column plus the (already sorted) virtual column; sort only the former:
    // its real shifted column is the records NOT in its retained bottom
    // half. Sorting the union then splitting by rank is equivalent here
    // because the virtual column's entries all exceed the shifted column's?
    // Not in general — so keep the two parts distinct.
    // Representation: shifted[p-1] = shifted column (r entries: received
    // bottom of p-2 + own top) ++ virtual column (own bottom, half entries).
    // The `stay` list put the retained own-top and own-bottom first; split
    // by re-deriving which records belong to the virtual column: they are
    // the largest `half` records of what processor p-1 kept from itself —
    // rather than reverse-engineer, re-split structurally below.
    //
    // Simpler and robust: for processor p-1 we kept (own top ++ own bottom)
    // in `stay` order followed by received; own bottom = the `half` records
    // at positions half..r of the pre-shift sorted column. Recover it by
    // sorting everything and taking the global tail? That is only correct
    // if virtual-column entries dominate — which Columnsort does NOT
    // guarantee mid-run. Instead, redistribute() preserved stay-order:
    // stay[p-1] = pre-shift column in order (top half then bottom half).
    let virt: Vec<Record>;
    {
        let keep = &mut shifted[p - 1];
        // stay order: indices 0..half = top half, half..r = bottom half
        // (virtual column), then received entries (bottom of column p-2).
        let mut own: Vec<Record> = keep.drain(..r.min(keep.len())).collect();
        let received_part: Vec<Record> = std::mem::take(keep);
        let bottom: Vec<Record> = own.split_off(half);
        virt = bottom;
        let mut col = own;
        col.extend(received_part);
        *keep = col;
    }
    sort_cols(&mut shifted);
    time += sort_charge;

    // Step 8: unshift — shifted column j's top half returns to column j-1's
    // bottom; its bottom half becomes column j's top. Virtual column p's
    // entries (all real, sorted) become column p-1's bottom half.
    let (t8, unshifted) = redistribute(params, shifted, &opts.clone().seed(opts.seed.wrapping_add(8)), |j, i| {
        if i < half && j > 0 {
            j - 1
        } else {
            j
        }
    })?;
    time += t8;
    let mut result = unshifted;
    result[p - 1].extend(virt);
    // Final per-column ordering: top (kept bottom half of shifted col j)
    // and received top half of shifted col j+1 are each sorted; a local
    // merge finishes the column. Charge one more linear pass.
    sort_cols(&mut result);
    time += Steps(r as u64);
    registry.span(Span::new(SpanKind::ColumnsortRound, base + round_mark, base + time).at_index(3));

    debug_assert!(result.iter().all(|b| b.len() == r));
    debug_assert!({
        let flat: Vec<(u32, u64)> = result.iter().flatten().map(|rc| rc.key()).collect();
        flat.windows(2).all(|w| w[0] <= w[1])
    });
    Ok((time, 4, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_model::rngutil::SeedStream;
    use rand::Rng;

    fn params(p: usize) -> LogpParams {
        LogpParams::new(p, 8, 1, 2).unwrap()
    }

    fn random_blocks(p: usize, r: usize, seed: u64) -> Vec<Vec<Record>> {
        let mut rng = SeedStream::new(seed).derive("cs", 0);
        (0..p)
            .map(|j| {
                (0..r)
                    .map(|i| Record {
                        dest: rng.gen_range(0..1000),
                        uid: (j * r + i) as u64,
                        tag: 0,
                        data: vec![],
                    })
                    .collect()
            })
            .collect()
    }

    fn assert_globally_sorted(blocks: &[Vec<Record>], want: &mut Vec<(u32, u64)>) {
        let flat: Vec<(u32, u64)> = blocks.iter().flatten().map(|r| r.key()).collect();
        want.sort();
        assert_eq!(&flat, want);
    }

    #[test]
    fn validity_condition() {
        assert!(columnsort_valid(2, 2));
        assert!(!columnsort_valid(2, 1));
        assert!(columnsort_valid(4, 18));
        assert!(!columnsort_valid(4, 16));
        assert!(!columnsort_valid(4, 19)); // odd
    }

    #[test]
    fn sorts_p2() {
        let p = 2;
        let r = 8;
        let blocks = random_blocks(p, r, 1);
        let mut want: Vec<(u32, u64)> = blocks.iter().flatten().map(|r| r.key()).collect();
        let (t, rounds, sorted) = columnsort(params(p), blocks, &RunOptions::new().seed(10), &Registry::disabled(), Steps::ZERO).unwrap();
        assert_globally_sorted(&sorted, &mut want);
        assert!(t > Steps::ZERO);
        assert_eq!(rounds, 4);
    }

    #[test]
    fn sorts_p4() {
        let p = 4;
        let r = 2 * 9; // = 2(p-1)^2
        for seed in [2u64, 3, 4] {
            let blocks = random_blocks(p, r, seed);
            let mut want: Vec<(u32, u64)> = blocks.iter().flatten().map(|r| r.key()).collect();
            let (_, _, sorted) = columnsort(params(p), blocks, &RunOptions::new().seed(seed * 100), &Registry::disabled(), Steps::ZERO).unwrap();
            assert_globally_sorted(&sorted, &mut want);
        }
    }

    #[test]
    fn sorts_p8_larger_r() {
        let p = 8;
        let r = 2 * 49 + 2; // 100
        let blocks = random_blocks(p, r, 5);
        let mut want: Vec<(u32, u64)> = blocks.iter().flatten().map(|r| r.key()).collect();
        let (_, _, sorted) = columnsort(params(p), blocks, &RunOptions::new().seed(500), &Registry::disabled(), Steps::ZERO).unwrap();
        assert_globally_sorted(&sorted, &mut want);
    }

    #[test]
    fn sorts_adversarial_inputs() {
        // Already sorted, reverse sorted, and all-equal keys.
        let p = 4;
        let r = 18;
        let mk = |f: &dyn Fn(usize) -> u32| -> Vec<Vec<Record>> {
            (0..p)
                .map(|j| {
                    (0..r)
                        .map(|i| Record {
                            dest: f(j * r + i),
                            uid: (j * r + i) as u64,
                            tag: 0,
                            data: vec![],
                        })
                        .collect()
                })
                .collect()
        };
        for f in [
            &(|x: usize| x as u32) as &dyn Fn(usize) -> u32,
            &|x: usize| (p * r - x) as u32,
            &|_x: usize| 7u32,
        ] {
            let blocks = mk(f);
            let mut want: Vec<(u32, u64)> = blocks.iter().flatten().map(|r| r.key()).collect();
            let (_, _, sorted) = columnsort(params(p), blocks, &RunOptions::new().seed(9), &Registry::disabled(), Steps::ZERO).unwrap();
            assert_globally_sorted(&sorted, &mut want);
        }
    }

    #[test]
    #[should_panic(expected = "columnsort needs")]
    fn rejects_invalid_r() {
        let p = 4;
        let blocks = random_blocks(p, 4, 1);
        let _ = columnsort(params(p), blocks, &RunOptions::new().seed(1), &Registry::disabled(), Steps::ZERO);
    }
}

//! Phase execution helpers for the BSP-on-LogP protocols.
//!
//! The §4 protocols decompose into globally synchronized phases (CB passes,
//! sorting rounds, routing cycles). Each phase here is executed as a real
//! [`LogpMachine`] run over [`Script`] programs: the machine enforces the
//! `o`/`G`/`L`/capacity semantics and `forbid_stalling` turns any capacity
//! violation — i.e. any bug in a protocol's schedule — into a hard error.
//! Phase makespans are summed by the drivers; the phase boundary itself is
//! justified by the protocols' own synchronization structure (each phase
//! ends with all processors knowing it ended).

use bvl_exec::RunOptions;
use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bvl_model::decompose::koenig_color;
use bvl_model::{Envelope, HRelation, ModelError, ProcId, Steps};

/// Run one phase: a scripted program per processor. Returns the phase
/// makespan and, per processor, the envelopes it acquired (in order).
///
/// `opts` seeds the machine and carries the fault decorator (if any) onto
/// its medium. `forbid_stalling` is downgraded to a measurement when the
/// options inject faults: a stall under an adversarial medium is the
/// adversary's doing, not a schedule bug.
pub fn run_scripts(
    params: LogpParams,
    scripts: Vec<Script>,
    forbid_stalling: bool,
    opts: &RunOptions,
) -> Result<(Steps, Vec<Vec<Envelope>>), ModelError> {
    let config = LogpConfig {
        forbid_stalling: forbid_stalling && !opts.faulted(),
        seed: opts.seed,
        ..LogpConfig::default()
    };
    let mut machine = LogpMachine::with_config(params, config, scripts);
    machine.instrument(opts);
    let report = machine.run()?;
    let received = machine
        .into_programs()
        .into_iter()
        .map(|s| s.into_received())
        .collect();
    Ok((report.makespan, received))
}

/// Off-line optimal routing of a *known* h-relation (§4.2):
///
/// > "By Hall's Theorem, any h-relation can be decomposed into disjoint
/// > 1-relations and, therefore, be routed off-line in optimal
/// > `2o + G(h−1) + L` time in LogP."
///
/// The constructive decomposition is `bvl_model::decompose::koenig_color`
/// (exactly `h` rounds); round `i`'s sends are scheduled at `i·G`, which
/// pipelines the 1-relations at the gap rate without ever exceeding the
/// capacity constraint (at most `⌈L/G⌉` consecutive rounds can be in flight
/// towards one destination). Stalling is forbidden — the schedule's
/// capacity-safety is *checked*, not assumed.
///
/// Returns the makespan and the delivered envelopes per destination.
pub fn route_offline(
    params: LogpParams,
    rel: &HRelation,
    opts: &RunOptions,
) -> Result<(Steps, Vec<Vec<Envelope>>), ModelError> {
    assert_eq!(rel.p(), params.p);
    if rel.is_empty() {
        return Ok((Steps::ZERO, vec![Vec::new(); params.p]));
    }
    let decomp = koenig_color(rel);
    debug_assert!(decomp.validate(rel).is_ok());

    // Per processor: (round, dst, payload) send schedule and receive count.
    let mut sends: Vec<Vec<(u64, ProcId, bvl_model::Payload)>> = vec![Vec::new(); params.p];
    let mut recv_count = vec![0usize; params.p];
    for (round, idxs) in decomp.rounds().iter().enumerate() {
        for &i in idxs {
            let d = &rel.demands()[i];
            sends[d.src.index()].push((round as u64, d.dst, d.payload.clone()));
            recv_count[d.dst.index()] += 1;
        }
    }

    let scripts: Vec<Script> = (0..params.p)
        .map(|i| {
            let mut ops = Vec::new();
            sends[i].sort_by_key(|&(round, dst, _)| (round, dst.0));
            for (round, dst, payload) in sends[i].drain(..) {
                // Aim the submission at round*G; the o-overhead prep starts
                // at the wait target, so submissions land at round*G + o,
                // uniformly shifted — spacing (and capacity) unaffected.
                ops.push(Op::WaitUntil(Steps(round * params.g)));
                ops.push(Op::Send { dst, payload });
            }
            ops.extend(std::iter::repeat_n(Op::Recv, recv_count[i]));
            Script::new(ops)
        })
        .collect();

    run_scripts(params, scripts, true, opts)
}

/// Check that the delivered envelopes reproduce exactly the intended
/// relation (every demand delivered once to its destination).
pub fn verify_delivery(rel: &HRelation, received: &[Vec<Envelope>]) -> Result<(), String> {
    let mut got: Vec<(u32, u32, u32, Vec<i64>)> = Vec::new();
    for (dst, msgs) in received.iter().enumerate() {
        for e in msgs {
            if e.dst.index() != dst {
                return Err(format!("message for {:?} acquired at P{dst}", e.dst));
            }
            got.push((e.dst.0, e.src.0, e.payload.tag, e.payload.data().to_vec()));
        }
    }
    got.sort();
    let want = rel.canonical();
    if got != want {
        return Err(format!(
            "delivered set mismatch: {} delivered vs {} intended",
            got.len(),
            want.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_exec::RunOptions;
    use bvl_model::rngutil::SeedStream;
    use bvl_model::Payload;

    fn params(p: usize, l: u64, o: u64, g: u64) -> LogpParams {
        LogpParams::new(p, l, o, g).unwrap()
    }

    #[test]
    fn offline_permutation_in_optimal_time() {
        let pr = params(8, 8, 1, 2);
        let rel = HRelation::permutation(&[3, 2, 1, 0, 7, 6, 5, 4]);
        let (t, received) = route_offline(pr, &rel, &RunOptions::new().seed(1)).unwrap();
        verify_delivery(&rel, &received).unwrap();
        // 1 round: submission at o, delivery at o+L, acquisition at o+L+o.
        assert_eq!(t, Steps(2 * pr.o + pr.l));
    }

    #[test]
    fn offline_h_relation_time_scales_linearly() {
        let pr = params(16, 16, 1, 2);
        let s = SeedStream::new(7);
        let mut times = Vec::new();
        for h in [2usize, 4, 8] {
            let mut rng = s.derive("rel", h as u64);
            let rel = HRelation::random_exact(&mut rng, 16, h);
            let (t, received) = route_offline(pr, &rel, &RunOptions::new().seed(2)).unwrap();
            verify_delivery(&rel, &received).unwrap();
            // Within a small constant of 2o + G(h-1) + L (receive-side
            // acquisition serialization can add ~G·h more).
            let bound = 2 * pr.o + pr.g * (h as u64 - 1) + pr.l;
            assert!(t.get() <= 3 * bound, "h={h}: {t:?} vs bound {bound}");
            times.push(t.get());
        }
        assert!(times[2] > times[0], "time must grow with h");
    }

    #[test]
    fn offline_hot_spot_respects_capacity() {
        // 12 messages to one destination: rounds pipeline at gap rate and
        // stalling stays forbidden (the schedule is capacity-safe).
        let pr = params(8, 8, 1, 2); // capacity 4
        let rel = HRelation::hot_spot(8, ProcId(0), 4, 3);
        let (t, received) = route_offline(pr, &rel, &RunOptions::new().seed(3)).unwrap();
        verify_delivery(&rel, &received).unwrap();
        assert!(t.get() >= 12 * pr.g, "12 receives at gap rate");
    }

    #[test]
    fn offline_empty_relation() {
        let pr = params(4, 8, 1, 2);
        let rel = HRelation::new(4);
        let (t, received) = route_offline(pr, &rel, &RunOptions::new().seed(4)).unwrap();
        assert_eq!(t, Steps::ZERO);
        assert!(received.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn verify_delivery_catches_loss() {
        let rel = HRelation::permutation(&[1, 0]);
        let received = vec![Vec::new(), Vec::new()];
        assert!(verify_delivery(&rel, &received).is_err());
    }

    #[test]
    fn run_scripts_reports_makespan() {
        let pr = params(2, 8, 1, 2);
        let scripts = vec![
            Script::new([Op::Send {
                dst: ProcId(1),
                payload: Payload::word(0, 1),
            }]),
            Script::new([Op::Recv]),
        ];
        let (t, received) = run_scripts(pr, scripts, true, &RunOptions::new().seed(5)).unwrap();
        assert_eq!(t, Steps(1 + 8 + 1)); // submit at 1, deliver 9, acquire 10
        assert_eq!(received[1].len(), 1);
    }
}

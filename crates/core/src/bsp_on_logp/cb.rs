//! Combine-and-Broadcast (§4.1).
//!
//! Given an associative operator `op` and values `x_0 … x_{p−1}` held by
//! distinct processors, CB returns `op(x_0, …, x_{p−1})` to all processors.
//! The paper's algorithm ascends and descends a complete
//! `max{2, ⌈L/G⌉}`-ary tree; when `⌈L/G⌉ = 1` the tree is binary and
//! transmissions to the parent are confined to timed slots (even multiples
//! of `L` for left children, odd for right) so the capacity-1 constraint is
//! never violated. Running time (Proposition 2, optimal by Proposition 1):
//!
//! ```text
//! T_CB ≤ 3(L + o) · log p / log(1 + ⌈L/G⌉)
//! ```
//!
//! Two tree shapes are provided:
//!
//! * [`TreeShape::Heap`] — the paper's complete k-ary heap tree. Children
//!   are combined in arrival order, so the operator must be commutative
//!   (the paper's uses — AND, OR, MAX — all are).
//! * [`TreeShape::Range`] — a contiguous k-ary range tree that folds
//!   children strictly in processor order, supporting *non-commutative*
//!   associative operators (needed by the deterministic router's segmented
//!   in-degree computation, `route_det`).
//!
//! CB doubles as the barrier of the superstep simulation: processors may
//! join at different times (`join_at`), and `T_synch` is measured from the
//! latest join, exactly as Proposition 2 states.

use bvl_exec::RunOptions;
use bvl_logp::{LogpConfig, LogpMachine, LogpParams, LogpProcess, Op, ProcView};
use bvl_model::{Envelope, ModelError, Payload, ProcId, Steps};
use std::sync::Arc;

/// An associative combiner over payloads.
pub type Combine = Arc<dyn Fn(&Payload, &Payload) -> Payload + Send + Sync>;

/// Tree shape used by CB (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeShape {
    /// Paper-faithful complete k-ary heap tree (commutative operators).
    Heap,
    /// Contiguous range tree folding children in processor order
    /// (supports non-commutative operators).
    Range,
}

/// Communication plan for one processor within the CB tree.
#[derive(Clone, Debug, Default)]
pub struct CbPlan {
    /// Processors whose partial results this processor combines, in fold
    /// order.
    pub gather_from: Vec<u32>,
    /// Where to send the combined value (`None` at the root).
    pub send_up_to: Option<u32>,
    /// Processors to forward the final result to.
    pub scatter_to: Vec<u32>,
    /// `Some(offset)` when ascending sends are confined to timed slots
    /// `t ≡ offset·L (mod 2L)` (the paper's capacity-1 discipline).
    pub slot_offset: Option<u64>,
}

/// Build the per-processor plans for a `p`-processor tree of the given
/// shape and arity `k = max{2, ⌈L/G⌉}`.
pub fn build_plans(p: usize, k: usize, shape: TreeShape, timed_slots: bool) -> Vec<CbPlan> {
    assert!(k >= 2);
    let mut plans = vec![CbPlan::default(); p];
    match shape {
        TreeShape::Heap => {
            for (i, plan) in plans.iter_mut().enumerate() {
                let children: Vec<u32> = (1..=k)
                    .map(|c| k * i + c)
                    .filter(|&c| c < p)
                    .map(|c| c as u32)
                    .collect();
                plan.gather_from = children.clone();
                plan.scatter_to = children;
                if i > 0 {
                    plan.send_up_to = Some(((i - 1) / k) as u32);
                    if timed_slots {
                        plan.slot_offset = Some(((i - 1) % k) as u64 % 2);
                    }
                }
            }
        }
        TreeShape::Range => {
            // Recursive contiguous split: owner of [lo, hi) is lo; the range
            // splits into k near-equal parts, part 0 owned by lo itself and
            // parts 1..k sending their sub-results to lo in order. Deeper
            // (smaller) ranges complete first, so a processor's fold order
            // is "own leaf value, then senders from deepest to shallowest".
            fn split(lo: usize, hi: usize, k: usize, plans: &mut Vec<CbPlan>) {
                let n = hi - lo;
                if n <= 1 {
                    return;
                }
                let part = n.div_ceil(k);
                let mut starts = Vec::new();
                let mut s = lo;
                while s < hi {
                    starts.push(s);
                    s += part;
                }
                // Recurse first so that deeper senders are appended to the
                // owner's gather list before this level's senders.
                for (idx, &st) in starts.iter().enumerate() {
                    let en = (st + part).min(hi);
                    split(st, en, k, plans);
                    if idx > 0 {
                        plans[st].send_up_to = Some(lo as u32);
                        plans[lo].gather_from.push(st as u32);
                        plans[lo].scatter_to.push(st as u32);
                    }
                }
            }
            split(0, p, k, &mut plans);
        }
    }
    plans
}

enum Phase {
    Join,
    Gather,
    SendUp,
    AwaitResult,
    Scatter(usize),
    Done,
}

/// The LogP process executing one node of the CB tree.
pub struct CbProcess {
    plan: CbPlan,
    combine: Combine,
    ordered: bool,
    value: Payload,
    join_at: Steps,
    received: Vec<Envelope>,
    acc: Option<Payload>,
    result: Option<Payload>,
    /// When the *root* first held the fully combined value (the
    /// combine/broadcast split point); `None` on non-root processors.
    combined_at: Option<Steps>,
    phase: Phase,
    l: u64,
}

impl CbProcess {
    /// Build the process for one processor.
    pub fn new(
        plan: CbPlan,
        value: Payload,
        combine: Combine,
        ordered: bool,
        join_at: Steps,
        l: u64,
    ) -> CbProcess {
        CbProcess {
            plan,
            combine,
            ordered,
            value,
            join_at,
            received: Vec::new(),
            acc: None,
            result: None,
            combined_at: None,
            phase: Phase::Join,
            l,
        }
    }

    /// The final CB result (after the machine has run).
    pub fn result(&self) -> Option<&Payload> {
        self.result.as_ref()
    }

    fn fold(&mut self) {
        let mut acc = self.value.clone();
        if self.ordered {
            for &src in &self.plan.gather_from {
                let msg = self
                    .received
                    .iter()
                    .find(|e| e.src.0 == src)
                    .expect("gather message from every child");
                acc = (self.combine)(&acc, &msg.payload);
            }
        } else {
            for msg in &self.received {
                acc = (self.combine)(&acc, &msg.payload);
            }
        }
        self.acc = Some(acc);
    }
}

impl LogpProcess for CbProcess {
    fn next_op(&mut self, view: &ProcView) -> Op {
        loop {
            match self.phase {
                Phase::Join => {
                    self.phase = Phase::Gather;
                    if view.now < self.join_at {
                        return Op::WaitUntil(self.join_at);
                    }
                }
                Phase::Gather => {
                    if self.received.len() < self.plan.gather_from.len() {
                        return Op::Recv;
                    }
                    self.fold();
                    self.phase = Phase::SendUp;
                }
                Phase::SendUp => {
                    let acc = self.acc.clone().expect("folded");
                    match self.plan.send_up_to {
                        Some(parent) => {
                            self.phase = Phase::AwaitResult;
                            if let Some(offset) = self.plan.slot_offset {
                                // Next slot t >= now with t = offset*L (mod 2L).
                                let period = 2 * self.l;
                                let now = view.now.get();
                                let base = offset * self.l;
                                let t = if now <= base {
                                    base
                                } else {
                                    base + (now - base).div_ceil(period) * period
                                };
                                if t > now {
                                    // Re-enter SendUp after the wait.
                                    self.phase = Phase::SendUp;
                                    self.plan.slot_offset = None; // wait once, then send
                                    let slot = Steps(t);
                                    // Remember the slot by re-checking time.
                                    return Op::WaitUntil(slot);
                                }
                            }
                            return Op::Send {
                                dst: ProcId(parent),
                                payload: acc,
                            };
                        }
                        None => {
                            self.result = Some(acc);
                            self.combined_at = Some(view.now);
                            self.phase = Phase::Scatter(0);
                        }
                    }
                }
                Phase::AwaitResult => {
                    if self.result.is_none() {
                        return Op::Recv;
                    }
                    self.phase = Phase::Scatter(0);
                }
                Phase::Scatter(i) => {
                    if i < self.plan.scatter_to.len() {
                        self.phase = Phase::Scatter(i + 1);
                        return Op::Send {
                            dst: ProcId(self.plan.scatter_to[i]),
                            payload: self.result.clone().expect("have result"),
                        };
                    }
                    self.phase = Phase::Done;
                }
                Phase::Done => return Op::Halt,
            }
        }
    }

    fn on_recv(&mut self, msg: Envelope) {
        if self.received.len() < self.plan.gather_from.len() {
            self.received.push(msg);
        } else {
            // The only message after all gathers is the parent's result.
            self.result = Some(msg.payload);
        }
    }
}

/// Outcome of a CB run.
#[derive(Debug)]
pub struct CbReport {
    /// Makespan measured from the latest `join_at` (Proposition 2's
    /// `T_synch` convention) — zero-clamped if the machine somehow finished
    /// before the last join.
    pub t_cb: Steps,
    /// Absolute machine makespan.
    pub makespan: Steps,
    /// The ascent: latest join until the root holds the combined value
    /// (measured on the `t_cb` clock, i.e. from the latest join).
    pub t_combine: Steps,
    /// The descent: root's combined value until the last processor has the
    /// result (`t_cb = t_combine + t_broadcast`).
    pub t_broadcast: Steps,
    /// The result payload as seen by every processor.
    pub results: Vec<Payload>,
}

/// Run a full CB: builds the tree (`k = max{2, ⌈L/G⌉}`, timed slots iff the
/// capacity is 1), executes it on a fresh LogP machine with stalling
/// *forbidden* (the algorithm must be stall-free by construction), and
/// returns per-processor results plus timing.
///
/// `opts` seeds the machine and carries any fault decorator onto its
/// medium; under injected faults stall-freedom becomes a measurement, not
/// an invariant (the adversary may legitimately induce stalls).
pub fn run_cb(
    params: LogpParams,
    shape: TreeShape,
    values: Vec<Payload>,
    combine: Combine,
    join_times: &[Steps],
    opts: &RunOptions,
) -> Result<CbReport, ModelError> {
    assert_eq!(values.len(), params.p);
    assert_eq!(join_times.len(), params.p);
    let k = 2usize.max(params.capacity() as usize);
    let timed = params.capacity() == 1;
    let plans = build_plans(params.p, k, shape, timed);
    let ordered = shape == TreeShape::Range;
    // The heap tree is stall-free by construction (timed slots cover the
    // capacity-1 case, per §4.1). The range tree bounds per-level fan-in by
    // k-1 <= capacity but can see brief cross-level overlaps at capacity 1;
    // stalling is permitted there (correctness unaffected, bounded delay).
    let forbid = (shape == TreeShape::Heap || params.capacity() > 1) && !opts.faulted();
    let procs: Vec<CbProcess> = plans
        .into_iter()
        .zip(values)
        .zip(join_times)
        .map(|((plan, v), &j)| CbProcess::new(plan, v, combine.clone(), ordered, j, params.l))
        .collect();
    let config = LogpConfig {
        forbid_stalling: forbid,
        seed: opts.seed,
        ..LogpConfig::default()
    };
    let mut machine = LogpMachine::with_config(params, config, procs);
    machine.instrument(opts);
    let report = machine.run()?;
    let last_join = join_times.iter().copied().max().unwrap_or(Steps::ZERO);
    let programs = machine.into_programs();
    // The root (processor 0 in both tree shapes) stamps the moment it holds
    // the fully combined value; everything after is the broadcast descent.
    let combined_at = programs[0].combined_at.unwrap_or(report.makespan);
    let results: Vec<Payload> = programs
        .into_iter()
        .map(|p| p.result().cloned().expect("CB completed"))
        .collect();
    let t_cb = report.makespan.saturating_sub(last_join);
    let t_combine = combined_at.saturating_sub(last_join).min(t_cb);
    Ok(CbReport {
        t_cb,
        makespan: report.makespan,
        t_combine,
        t_broadcast: t_cb.saturating_sub(t_combine),
        results,
    })
}

/// Convenience: CB over single words with a word-level operator.
pub fn word_combine(f: fn(i64, i64) -> i64) -> Combine {
    Arc::new(move |a: &Payload, b: &Payload| {
        Payload::word(a.tag, f(a.expect_word(), b.expect_word()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steps0(p: usize) -> Vec<Steps> {
        vec![Steps::ZERO; p]
    }

    #[test]
    fn heap_plans_form_a_tree() {
        let plans = build_plans(10, 3, TreeShape::Heap, false);
        assert!(plans[0].send_up_to.is_none());
        assert_eq!(plans[0].gather_from, vec![1, 2, 3]);
        assert_eq!(plans[3].send_up_to, Some(0));
        assert_eq!(plans[3].gather_from, vec![]);
        assert_eq!(plans[1].gather_from, vec![4, 5, 6]);
        // Every non-root appears exactly once as someone's child.
        let mut seen = [0usize; 10];
        for pl in &plans {
            for &c in &pl.gather_from {
                seen[c as usize] += 1;
            }
        }
        assert_eq!(seen[0], 0);
        assert!(seen[1..].iter().all(|&s| s == 1));
    }

    #[test]
    fn range_plans_cover_every_processor_once() {
        for p in [1usize, 2, 3, 7, 16, 31] {
            for k in [2usize, 3, 5] {
                let plans = build_plans(p, k, TreeShape::Range, false);
                let mut seen = vec![0usize; p];
                for pl in &plans {
                    for &c in &pl.gather_from {
                        seen[c as usize] += 1;
                    }
                }
                assert_eq!(seen[0], 0, "p={p} k={k}");
                assert!(seen[1..].iter().all(|&s| s == 1), "p={p} k={k}");
            }
        }
    }

    #[test]
    fn cb_max_over_all_processors() {
        let params = LogpParams::new(13, 8, 1, 2).unwrap();
        let values: Vec<Payload> = (0..13).map(|i| Payload::word(0, (i * 7 % 13) as i64)).collect();
        let rep = run_cb(
            params,
            TreeShape::Heap,
            values,
            word_combine(i64::max),
            &steps0(13),
            &RunOptions::new().seed(1),
        )
        .unwrap();
        for r in &rep.results {
            assert_eq!(r.expect_word(), 12);
        }
    }

    #[test]
    fn cb_and_barrier_semantics() {
        let params = LogpParams::new(8, 8, 1, 2).unwrap();
        let values = vec![Payload::word(0, 1); 8];
        let rep = run_cb(
            params,
            TreeShape::Heap,
            values,
            word_combine(|a, b| a & b),
            &steps0(8),
            &RunOptions::new().seed(1),
        )
        .unwrap();
        assert!(rep.results.iter().all(|r| r.expect_word() == 1));
    }

    #[test]
    fn cb_with_capacity_one_uses_timed_slots_and_stays_stall_free() {
        // G = L -> capacity 1, binary tree, timed slots. forbid_stalling
        // inside run_cb turns any violation into an error.
        let params = LogpParams::new(16, 6, 1, 6).unwrap();
        assert_eq!(params.capacity(), 1);
        let values: Vec<Payload> = (0..16).map(|i| Payload::word(0, i as i64)).collect();
        let rep = run_cb(
            params,
            TreeShape::Heap,
            values,
            word_combine(i64::max),
            &steps0(16),
            &RunOptions::new().seed(2),
        )
        .unwrap();
        assert!(rep.results.iter().all(|r| r.expect_word() == 15));
    }

    #[test]
    fn cb_sum_matches_sequential() {
        let params = LogpParams::new(32, 16, 2, 4).unwrap();
        let values: Vec<Payload> = (0..32).map(|i| Payload::word(0, i as i64 * 3 - 7)).collect();
        let expect: i64 = (0..32).map(|i| i * 3 - 7).sum();
        let rep = run_cb(
            params,
            TreeShape::Heap,
            values,
            word_combine(|a, b| a + b),
            &steps0(32),
            &RunOptions::new().seed(3),
        )
        .unwrap();
        assert!(rep.results.iter().all(|r| r.expect_word() == expect));
    }

    #[test]
    fn range_tree_supports_non_commutative_fold() {
        // Operator: list concatenation (associative, NOT commutative).
        let params = LogpParams::new(11, 8, 1, 2).unwrap();
        let values: Vec<Payload> = (0..11).map(|i| Payload::word(0, i as i64)).collect();
        let concat: Combine = Arc::new(|a: &Payload, b: &Payload| {
            let mut data = a.data().to_vec();
            data.extend_from_slice(b.data());
            Payload::from_vec(0, data)
        });
        let rep = run_cb(params, TreeShape::Range, values, concat, &steps0(11), &RunOptions::new().seed(4)).unwrap();
        let expect: Vec<i64> = (0..11).collect();
        for r in &rep.results {
            assert_eq!(r.data(), expect, "fold must preserve processor order");
        }
    }

    #[test]
    fn combine_broadcast_split_partitions_t_cb() {
        for p in [1usize, 2, 8, 32] {
            let params = LogpParams::new(p, 8, 1, 2).unwrap();
            let values = vec![Payload::word(0, 1); p];
            let rep = run_cb(
                params,
                TreeShape::Heap,
                values,
                word_combine(|a, b| a & b),
                &steps0(p),
                &RunOptions::new().seed(7),
            )
            .unwrap();
            assert_eq!(rep.t_combine + rep.t_broadcast, rep.t_cb, "p={p}");
            if p > 1 {
                // A real tree must spend time on both ascent and descent.
                assert!(rep.t_combine > Steps::ZERO, "p={p}");
                assert!(rep.t_broadcast > Steps::ZERO, "p={p}");
            }
        }
    }

    #[test]
    fn staggered_joins_measure_from_latest() {
        let params = LogpParams::new(8, 8, 1, 2).unwrap();
        let joins: Vec<Steps> = (0..8).map(|i| Steps(i as u64 * 10)).collect();
        let values = vec![Payload::word(0, 1); 8];
        let rep = run_cb(
            params,
            TreeShape::Heap,
            values,
            word_combine(|a, b| a & b),
            &joins,
            &RunOptions::new().seed(5),
        )
        .unwrap();
        assert!(rep.makespan >= Steps(70));
        assert!(rep.t_cb < rep.makespan);
    }

    #[test]
    fn cb_time_tracks_the_proposition2_bound() {
        // Measured T_CB should be within a small constant of the paper's
        // 3(L+o) log p / log(1+cap) expression across parameter choices.
        for (p, l, o, g) in [(64, 16, 1, 2), (64, 8, 1, 8), (128, 32, 2, 4), (256, 16, 1, 2)] {
            let params = LogpParams::new(p, l, o, g).unwrap();
            let values = vec![Payload::word(0, 1); p];
            let rep = run_cb(
                params,
                TreeShape::Heap,
                values,
                word_combine(|a, b| a & b),
                &vec![Steps::ZERO; p],
                &RunOptions::new().seed(6),
            )
            .unwrap();
            let bound = params.cb_bound();
            let measured = rep.t_cb.get() as f64;
            assert!(
                measured <= 2.0 * bound + 4.0 * (l + o) as f64,
                "p={p} L={l} o={o} G={g}: measured {measured}, bound {bound}"
            );
        }
    }
}

#[cfg(test)]
mod capacity_one_range_tests {
    use super::*;

    #[test]
    fn range_tree_correct_at_capacity_one() {
        // G = L -> capacity 1: the range tree may stall briefly (permitted;
        // see run_cb) but the ordered fold must still be exact.
        let params = LogpParams::new(13, 6, 1, 6).unwrap();
        assert_eq!(params.capacity(), 1);
        let values: Vec<Payload> = (0..13).map(|i| Payload::word(0, i as i64)).collect();
        let concat: Combine = Arc::new(|a: &Payload, b: &Payload| {
            let mut d = a.data().to_vec();
            d.extend_from_slice(b.data());
            Payload::from_vec(0, d)
        });
        let rep = run_cb(
            params,
            TreeShape::Range,
            values,
            concat,
            &[Steps::ZERO; 13],
            &RunOptions::new().seed(8),
        )
        .unwrap();
        let expect: Vec<i64> = (0..13).collect();
        assert!(rep.results.iter().all(|r| r.data() == expect));
    }
}

//! Deterministic on-line routing of h-relations in stall-free LogP (§4.2).
//!
//! The protocol (verbatim from the paper, with each step executed as real
//! LogP machine phases):
//!
//! 1. Compute `r` (max messages sent by any processor) and broadcast it
//!    (CB-max); pad every processor to exactly `r` messages with dummies of
//!    nominal destination `p`.
//! 2. Sort all messages by destination and rank them. Small `r`: a
//!    merge-split sorting network (Batcher substituting AKS — see
//!    `sortnet`); large `r` (`≥ 2(p−1)²`): Columnsort substituting Cubesort
//!    (see `columnsort`). Each network round exchanges blocks of `r`
//!    records between matched processors via off-line-decomposed
//!    1-relations.
//! 3. Compute `s` (max messages received by any processor, dummies
//!    excluded) and broadcast it. The segmented max-count over the sorted
//!    sequence is an *ordered* associative aggregation, run through the
//!    range-tree CB.
//! 4. For `0 ≤ i < h = max{r, s}`: a routing cycle delivering all
//!    non-dummy messages with `rank ≡ i (mod h)`. Cycles pipeline with
//!    period `G`; each cycle is a 1-relation (each processor holds at most
//!    one rank per residue class, each destination's messages are
//!    contiguous in rank), so the capacity constraint is never violated —
//!    and the engine *verifies* that via `forbid_stalling`.
//!
//! Total: `T_rout(h) ≤ 2·T_CB + T_sort(r, p) + 2o + (G+2)h + L` (paper
//! equation (2)).

use crate::bsp_on_logp::cb::{run_cb, word_combine, Combine, TreeShape};
use crate::bsp_on_logp::columnsort::columnsort;
use crate::bsp_on_logp::phase::{route_offline, run_scripts};
use crate::bsp_on_logp::record::Record;
use crate::bsp_on_logp::sortnet::{bitonic_stages, merge_split, odd_even_merge_stages};
use crate::slowdown::t_seq_sort;
use bvl_exec::RunOptions;
use bvl_logp::{LogpParams, Op, Script};
use bvl_model::{HRelation, ModelError, Payload, ProcId, Steps};
use bvl_obs::{Registry, Span, SpanKind};
use std::sync::Arc;

/// Which §4.2 sorting scheme Step 2 uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortScheme {
    /// Merge-split sorting network (the AKS role; Batcher's bitonic in
    /// practice). Works for every `r`.
    Network,
    /// Batcher's odd-even merge network: same depth, ~half the comparators
    /// (rounds are partial matchings, so fewer block exchanges per round).
    NetworkOddEven,
    /// Columnsort (the Cubesort role): `O(1)` communication rounds, valid
    /// for `r ≥ 2(p−1)²` and even `r`.
    Columnsort,
    /// Pick Columnsort when its validity condition holds, else the network.
    Auto,
}

/// Per-phase timing breakdown of one deterministic routing run.
#[derive(Clone, Debug)]
pub struct RouteDetReport {
    /// Total routing time (sum of phase makespans).
    pub total: Steps,
    /// Step 1: compute/broadcast `r` (+ local padding charge).
    pub t_r: Steps,
    /// Step 2: local sort + sorting rounds.
    pub t_sort: Steps,
    /// Step 3: compute/broadcast `s`.
    pub t_s: Steps,
    /// Step 4: the `h` pipelined routing cycles.
    pub t_cycles: Steps,
    /// Max out-degree.
    pub r: u64,
    /// Max in-degree.
    pub s: u64,
    /// `h = max{r, s}`.
    pub h: u64,
    /// Communication rounds used by the sorting phase.
    pub sort_rounds: usize,
    /// Which scheme step 2 actually used.
    pub scheme_used: SortScheme,
}

/// The ordered segmented max-count aggregate for Step 3 (see `seg_combine`).
/// Encoding: `[empty, pref_dest, pref_cnt, suf_dest, suf_cnt, best]`.
fn seg_payload(empty: bool, pd: i64, pc: i64, sd: i64, sc: i64, best: i64) -> Payload {
    Payload::words(1, &[i64::from(empty), pd, pc, sd, sc, best])
}

/// Local aggregate of one sorted block (dummies excluded). `best` counts the
/// longest run *within* the block — a lower bound on the true segment size
/// that the prefix/suffix extension mechanics of `seg_combine` grow to the
/// exact value. Because blocks are sorted, "uniform" is simply
/// `pref_dest == suf_dest`.
fn seg_local(block: &[Record], p: usize) -> Payload {
    let real: Vec<&Record> = block.iter().filter(|r| !r.is_dummy(p)).collect();
    if real.is_empty() {
        return seg_payload(true, 0, 0, 0, 0, 0);
    }
    let pd = real[0].dest as i64;
    let sd = real[real.len() - 1].dest as i64;
    let mut best = 0i64;
    let mut pref = 0i64;
    let mut run = 0i64;
    let mut run_dest = pd;
    for r in &real {
        let d = r.dest as i64;
        if d == run_dest {
            run += 1;
        } else {
            if run_dest == pd {
                pref = run;
            }
            best = best.max(run);
            run_dest = d;
            run = 1;
        }
    }
    best = best.max(run);
    let suf = run;
    if pd == sd {
        pref = real.len() as i64; // uniform block: one run spans it all
    }
    seg_payload(false, pd, pref, sd, suf, best)
}

/// Associative (non-commutative) combiner over `seg_payload` aggregates.
fn seg_combine() -> Combine {
    Arc::new(|a: &Payload, b: &Payload| {
        let (ad, bd) = (a.data(), b.data());
        let (ae, apd, apc, asd, asc, ab) = (ad[0] != 0, ad[1], ad[2], ad[3], ad[4], ad[5]);
        let (be, bpd, bpc, bsd, bsc, bb) = (bd[0] != 0, bd[1], bd[2], bd[3], bd[4], bd[5]);
        if ae {
            return b.clone();
        }
        if be {
            return a.clone();
        }
        let a_uniform = apd == asd;
        let b_uniform = bpd == bsd;
        // The run bridging the boundary (a real contiguous run of the
        // concatenation whenever the destinations match).
        let joined = if asd == bpd { asc + bpc } else { 0 };
        let pref = if a_uniform && apd == bpd { apc + bpc } else { apc };
        let suf = if b_uniform && bsd == asd { bsc + asc } else { bsc };
        // `best` tracks the longest run seen so far; every candidate is a
        // real contiguous run of the concatenation, so max never overcounts,
        // and the pref/suf chains guarantee the true maximum is eventually
        // a candidate.
        let best = ab.max(bb).max(joined).max(pref).max(suf);
        seg_payload(false, apd, pref, bsd, suf, best)
    })
}

/// Final `s` from the root aggregate (`best` already dominates the boundary
/// runs by construction).
fn seg_finish(agg: &Payload) -> u64 {
    if agg.data()[0] != 0 {
        return 0;
    }
    agg.data()[5].max(0) as u64
}

/// Step 2 (network scheme): run the merge-split Batcher network; each round
/// is an off-line-decomposed block exchange on the live machine.
fn sort_network(
    params: LogpParams,
    mut blocks: Vec<Vec<Record>>,
    opts: &RunOptions,
    odd_even: bool,
    registry: &Registry,
    base: Steps,
) -> Result<(Steps, usize, Vec<Vec<Record>>), ModelError> {
    let p = params.p;
    let r = blocks[0].len();
    let rounds = if odd_even {
        odd_even_merge_stages(p)
    } else {
        bitonic_stages(p)
    };
    let mut time = Steps::ZERO;
    for (round_idx, round) in rounds.iter().enumerate() {
        let round_start = time;
        // Block exchange: every matched pair swaps full blocks.
        let mut rel = HRelation::new(p);
        for &(lo, hi, _) in round {
            for (down, up) in blocks[lo][..r].iter().zip(&blocks[hi][..r]) {
                rel.push(ProcId::from(lo), ProcId::from(hi), down.to_payload());
                rel.push(ProcId::from(hi), ProcId::from(lo), up.to_payload());
            }
        }
        let round_opts = opts.clone().seed(opts.seed.wrapping_add(round_idx as u64));
        let (t, received) = route_offline(params, &rel, &round_opts)?;
        time += t;
        // Local merge-split (all processors in parallel): charge 2r.
        time += Steps(2 * r as u64);
        for &(lo, hi, asc) in round {
            // Messages received AT lo came FROM hi (hi's old block) and vice
            // versa; arrival order follows the decomposition schedule, so
            // re-sort before merging (merge-split needs sorted inputs).
            let decode = |msgs: &[bvl_model::Envelope]| -> Vec<Record> {
                let mut v: Vec<Record> =
                    msgs.iter().map(|e| Record::from_payload(&e.payload)).collect();
                v.sort();
                v
            };
            let old_hi = decode(&received[lo]);
            let old_lo = decode(&received[hi]);
            let (mn, mx) = merge_split(&old_lo, &old_hi);
            if asc {
                blocks[lo] = mn;
                blocks[hi] = mx;
            } else {
                blocks[lo] = mx;
                blocks[hi] = mn;
            }
        }
        registry.span(
            Span::new(SpanKind::SortRound, base + round_start, base + time)
                .at_index(round_idx as u64),
        );
    }
    Ok((time, rounds.len(), blocks))
}

/// Route an arbitrary (unknown-degree) h-relation deterministically on a
/// stall-free LogP machine, returning the per-phase timing breakdown. The
/// delivered messages are checked against the intended relation.
///
/// Requires `p = params.p` to be a power of two (the sorting network's
/// matching structure; experiments use power-of-two machines, as is
/// conventional).
///
/// Observability comes through `opts`: sorting rounds and the pipelined
/// cycle phase are emitted as [`SpanKind::SortRound`] /
/// [`SpanKind::ColumnsortRound`] / [`SpanKind::RouteCycles`] spans into
/// `opts.registry`, offset by `opts.clock_base` (the caller's virtual-clock
/// position of the routing phase); `opts.seed` drives every randomized
/// sub-phase.
pub fn route_deterministic(
    params: LogpParams,
    rel: &HRelation,
    scheme: SortScheme,
    opts: &RunOptions,
) -> Result<RouteDetReport, ModelError> {
    let seed = opts.seed;
    let registry = &opts.registry;
    let base = opts.clock_base;
    let p = params.p;
    assert_eq!(rel.p(), p);
    assert!(p.is_power_of_two(), "deterministic router needs p = 2^k");
    if rel.is_empty() {
        return Ok(RouteDetReport {
            total: Steps::ZERO,
            t_r: Steps::ZERO,
            t_sort: Steps::ZERO,
            t_s: Steps::ZERO,
            t_cycles: Steps::ZERO,
            r: 0,
            s: 0,
            h: 0,
            sort_rounds: 0,
            scheme_used: scheme,
        });
    }

    // ---- Step 1: r via CB(max), then dummy padding. -------------------
    let out_deg = rel.out_degrees();
    let values: Vec<Payload> = out_deg.iter().map(|&d| Payload::word(0, d as i64)).collect();
    let joins = vec![Steps::ZERO; p];
    let cb_r = run_cb(
        params,
        TreeShape::Heap,
        values,
        word_combine(i64::max),
        &joins,
        &opts.subphase(),
    )?;
    let r = cb_r.results[0].expect_word() as u64;
    debug_assert_eq!(r as usize, rel.max_out_degree());
    let mut r_pad = r as usize;
    if r_pad % 2 == 1 {
        r_pad += 1; // columnsort wants even block length; harmless otherwise
    }
    let t_r = cb_r.makespan + Steps(r_pad as u64); // + local padding charge

    // Build padded blocks at the sources.
    let mut blocks: Vec<Vec<Record>> = vec![Vec::with_capacity(r_pad); p];
    let mut dummy_uid = rel.len() as u64;
    for (uid, d) in rel.demands().iter().enumerate() {
        blocks[d.src.index()].push(Record {
            dest: d.dst.0,
            uid: uid as u64,
            tag: d.payload.tag,
            data: d.payload.data().to_vec(),
        });
    }
    for block in &mut blocks {
        while block.len() < r_pad {
            block.push(Record::dummy(p, dummy_uid));
            dummy_uid += 1;
        }
    }

    // ---- Step 2: sort by destination. ----------------------------------
    // Local sort charge (all processors in parallel).
    let local_sort = Steps(t_seq_sort(r_pad as u64, p as u64));
    for block in &mut blocks {
        block.sort();
    }
    let use_columnsort = match scheme {
        SortScheme::Network | SortScheme::NetworkOddEven => false,
        SortScheme::Columnsort => true,
        SortScheme::Auto => p >= 2 && r_pad >= 2 * (p - 1) * (p - 1),
    };
    let sort_base = base + t_r + local_sort;
    let (t_net, sort_rounds, blocks) = if use_columnsort {
        columnsort(
            params,
            blocks,
            &opts.subphase().seed(seed.wrapping_add(1000)),
            registry,
            sort_base,
        )?
    } else {
        sort_network(
            params,
            blocks,
            &opts.subphase().seed(seed.wrapping_add(2000)),
            scheme == SortScheme::NetworkOddEven,
            registry,
            sort_base,
        )?
    };
    let t_sort = local_sort + t_net;
    let scheme_used = if use_columnsort {
        SortScheme::Columnsort
    } else {
        SortScheme::Network
    };

    // Sorted invariant.
    debug_assert!({
        let flat: Vec<(u32, u64)> = blocks.iter().flatten().map(|rc| rc.key()).collect();
        flat.windows(2).all(|w| w[0] <= w[1])
    });

    // ---- Step 3: s via ordered range-tree CB. ---------------------------
    let seg_values: Vec<Payload> = blocks.iter().map(|b| seg_local(b, p)).collect();
    let cb_s = run_cb(
        params,
        TreeShape::Range,
        seg_values,
        seg_combine(),
        &joins,
        &opts.subphase().seed(seed.wrapping_add(3000)),
    )?;
    let s = seg_finish(&cb_s.results[0]);
    debug_assert_eq!(s as usize, rel.max_in_degree());
    let t_s = cb_s.makespan + Steps(r_pad as u64); // + local aggregate scan

    // ---- Step 4: h pipelined routing cycles. ----------------------------
    let h = r.max(s).max(1);
    let mut scripts: Vec<Vec<Op>> = vec![Vec::new(); p];
    let in_deg = rel.in_degrees();
    for (j, block) in blocks.iter().enumerate() {
        // Sends in cycle order (block is rank-sorted already, and ranks are
        // consecutive, so residues appear in increasing cycle order after a
        // stable sort by cycle).
        let mut plan: Vec<(u64, &Record)> = block
            .iter()
            .enumerate()
            .filter(|(_, rc)| !rc.is_dummy(p))
            .map(|(q, rc)| (((j * r_pad + q) as u64) % h, rc))
            .collect();
        plan.sort_by_key(|&(cycle, _)| cycle);
        for (cycle, rc) in plan {
            scripts[j].push(Op::WaitUntil(Steps(cycle * params.g)));
            scripts[j].push(Op::Send {
                dst: ProcId(rc.dest),
                payload: rc.to_payload(),
            });
        }
        scripts[j].extend(std::iter::repeat_n(Op::Recv, in_deg[j]));
    }
    let scripts: Vec<Script> = scripts.into_iter().map(Script::new).collect();
    let (t_cycles, received) =
        run_scripts(params, scripts, true, &opts.subphase().seed(seed.wrapping_add(4000)))?;

    // Verify the delivery reproduces the relation exactly.
    let unpacked: Vec<Vec<bvl_model::Envelope>> = received
        .into_iter()
        .map(|msgs| {
            msgs.into_iter()
                .map(|mut e| {
                    let rc = Record::from_payload(&e.payload);
                    e.payload = rc.original_payload();
                    e
                })
                .collect()
        })
        .collect();
    // Source information was carried implicitly: rebuild against demands by
    // payload multiset (src of the final hop is the sorted holder, not the
    // original sender, so compare dst+payload only).
    verify_routing(rel, &unpacked).map_err(ModelError::Internal)?;

    let total = t_r + t_sort + t_s + t_cycles;
    registry.span(Span::new(
        SpanKind::RouteCycles,
        base + t_r + t_sort + t_s,
        base + total,
    ));
    Ok(RouteDetReport {
        total,
        t_r,
        t_sort,
        t_s,
        t_cycles,
        r,
        s,
        h,
        sort_rounds,
        scheme_used,
    })
}

/// Delivery check ignoring the physical last-hop source (the protocol
/// routes via sorted holders, so the envelope's `src` is the holder).
fn verify_routing(rel: &HRelation, received: &[Vec<bvl_model::Envelope>]) -> Result<(), String> {
    let mut got: Vec<(u32, u32, Vec<i64>)> = Vec::new();
    for (dst, msgs) in received.iter().enumerate() {
        for e in msgs {
            if e.dst.index() != dst {
                return Err(format!("message for {:?} acquired at P{dst}", e.dst));
            }
            got.push((e.dst.0, e.payload.tag, e.payload.data().to_vec()));
        }
    }
    got.sort();
    let mut want: Vec<(u32, u32, Vec<i64>)> = rel
        .demands()
        .iter()
        .map(|d| (d.dst.0, d.payload.tag, d.payload.data().to_vec()))
        .collect();
    want.sort();
    if got != want {
        return Err(format!(
            "routed multiset mismatch: {} delivered vs {} intended",
            got.len(),
            want.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_model::rngutil::SeedStream;

    fn params(p: usize, l: u64, o: u64, g: u64) -> LogpParams {
        LogpParams::new(p, l, o, g).unwrap()
    }

    fn seeded(seed: u64) -> RunOptions {
        RunOptions::new().seed(seed)
    }

    #[test]
    fn seg_local_counts_runs() {
        let block = vec![
            Record { dest: 1, uid: 0, tag: 0, data: vec![] },
            Record { dest: 1, uid: 1, tag: 0, data: vec![] },
            Record { dest: 2, uid: 2, tag: 0, data: vec![] },
            Record { dest: 3, uid: 3, tag: 0, data: vec![] },
            Record { dest: 3, uid: 4, tag: 0, data: vec![] },
            Record { dest: 3, uid: 5, tag: 0, data: vec![] },
        ];
        let agg = seg_local(&block, 8);
        // pref = (1, 2), suf = (3, 3), best run = 3 (the run of dest 3).
        assert_eq!(agg.data(), &[0, 1, 2, 3, 3, 3]);
    }

    #[test]
    fn seg_combine_matches_bruteforce() {
        // Randomized: split a sorted dest sequence into blocks, fold with
        // seg_combine, compare seg_finish with the true max run length.
        let mut rng = SeedStream::new(9).derive("seg", 0);
        for trial in 0..50 {
            use rand::Rng;
            let p = 8usize;
            let n = rng.gen_range(1..40);
            let mut dests: Vec<u32> = (0..n).map(|_| rng.gen_range(0..p as u32)).collect();
            dests.sort();
            let records: Vec<Record> = dests
                .iter()
                .enumerate()
                .map(|(i, &d)| Record { dest: d, uid: i as u64, tag: 0, data: vec![] })
                .collect();
            // True answer.
            let mut counts = vec![0u64; p];
            for &d in &dests {
                counts[d as usize] += 1;
            }
            let truth = counts.into_iter().max().unwrap();
            // Fold over random block sizes.
            let combine = seg_combine();
            let mut acc = seg_payload(true, 0, 0, 0, 0, 0);
            let mut i = 0;
            while i < records.len() {
                let len = rng.gen_range(1..=records.len() - i);
                let agg = seg_local(&records[i..i + len], p);
                acc = combine(&acc, &agg);
                i += len;
            }
            assert_eq!(seg_finish(&acc), truth, "trial {trial}, dests {dests:?}");
        }
    }

    #[test]
    fn routes_random_relations() {
        let pr = params(8, 8, 1, 2);
        let s = SeedStream::new(11);
        for (i, h) in [1usize, 2, 4].into_iter().enumerate() {
            let mut rng = s.derive("rel", i as u64);
            let rel = HRelation::random_exact(&mut rng, 8, h);
            let rep = route_deterministic(pr, &rel, SortScheme::Network, &seeded(77)).unwrap();
            assert_eq!(rep.r, h as u64);
            assert_eq!(rep.s, h as u64);
            assert!(rep.total > Steps::ZERO);
        }
    }

    #[test]
    fn odd_even_network_routes_equally_well() {
        let pr = params(16, 16, 1, 4);
        let mut rng = SeedStream::new(21).derive("rel", 0);
        let rel = HRelation::random_uniform(&mut rng, 16, 3);
        let a = route_deterministic(pr, &rel, SortScheme::Network, &seeded(90)).unwrap();
        let b = route_deterministic(pr, &rel, SortScheme::NetworkOddEven, &seeded(90)).unwrap();
        assert_eq!(a.h, b.h);
        // Same depth, fewer exchanges: odd-even never slower in t_sort.
        assert!(b.t_sort <= a.t_sort, "oe {:?} vs bitonic {:?}", b.t_sort, a.t_sort);
    }

    #[test]
    fn routes_irregular_relation_with_unknown_degree() {
        let pr = params(16, 16, 1, 4);
        let mut rng = SeedStream::new(12).derive("rel", 0);
        let rel = HRelation::random_uniform(&mut rng, 16, 3);
        let rep = route_deterministic(pr, &rel, SortScheme::Network, &seeded(78)).unwrap();
        assert_eq!(rep.r, 3);
        assert_eq!(rep.s as usize, rel.max_in_degree());
        assert_eq!(rep.h, rep.r.max(rep.s));
    }

    #[test]
    fn routes_hot_spot_relation() {
        let pr = params(8, 8, 1, 2);
        let rel = HRelation::hot_spot(8, ProcId(5), 7, 2);
        let rep = route_deterministic(pr, &rel, SortScheme::Network, &seeded(79)).unwrap();
        assert_eq!(rep.s, 14);
        assert_eq!(rep.r, 2);
        assert_eq!(rep.h, 14);
    }

    #[test]
    fn broadcast_relation_routes() {
        let pr = params(8, 8, 1, 2);
        let rel = HRelation::broadcast(8, ProcId(0));
        let rep = route_deterministic(pr, &rel, SortScheme::Network, &seeded(80)).unwrap();
        assert_eq!(rep.r, 7);
        assert_eq!(rep.s, 1);
    }

    #[test]
    fn cycle_phase_is_linear_in_h() {
        let pr = params(16, 16, 1, 2);
        let s = SeedStream::new(13);
        let mut cyc = Vec::new();
        for h in [2usize, 8] {
            let mut rng = s.derive("rel", h as u64);
            let rel = HRelation::random_exact(&mut rng, 16, h);
            let rep = route_deterministic(pr, &rel, SortScheme::Network, &seeded(81)).unwrap();
            // Step 4 within a constant of 2o + (G+2)h + L.
            let bound = 2 * pr.o + (pr.g + 2) * h as u64 + pr.l;
            assert!(
                rep.t_cycles.get() <= 3 * bound,
                "h={h}: cycles {:?} vs bound {bound}",
                rep.t_cycles
            );
            cyc.push(rep.t_cycles.get());
        }
        assert!(cyc[1] > cyc[0]);
    }

    #[test]
    fn empty_relation_is_free() {
        let pr = params(4, 8, 1, 2);
        let rel = HRelation::new(4);
        let rep = route_deterministic(pr, &rel, SortScheme::Auto, &seeded(82)).unwrap();
        assert_eq!(rep.total, Steps::ZERO);
    }
}

//! The routable message record used by the §4.2 sorting-based protocols.
//!
//! The deterministic router moves whole messages (destination, unique id,
//! original payload) through the sorting phases; the sort key is
//! `(destination, uid)`, with dummy records carrying "nominal destination
//! `p`" exactly as Step 1 of the protocol prescribes, so they sort after
//! every real message.

use bvl_model::{Payload, Word};

/// A message record in transit through the protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Destination processor, or `p` for a dummy.
    pub dest: u32,
    /// Globally unique id (ties the record back to its demand; also breaks
    /// sort-key ties so records are totally ordered).
    pub uid: u64,
    /// Original payload tag.
    pub tag: u32,
    /// Original payload words.
    pub data: Vec<Word>,
}

impl Record {
    /// A dummy record (nominal destination `p`).
    pub fn dummy(p: usize, uid: u64) -> Record {
        Record {
            dest: p as u32,
            uid,
            tag: 0,
            data: Vec::new(),
        }
    }

    /// Is this a dummy for a `p`-processor machine?
    pub fn is_dummy(&self, p: usize) -> bool {
        self.dest as usize >= p
    }

    /// The sort key.
    pub fn key(&self) -> (u32, u64) {
        (self.dest, self.uid)
    }

    /// Encode into a message payload (constant-size per the model: the
    /// record rides in one message).
    pub fn to_payload(&self) -> Payload {
        let mut data = Vec::with_capacity(3 + self.data.len());
        data.push(self.dest as Word);
        data.push(self.uid as Word);
        data.push(self.tag as Word);
        data.extend_from_slice(&self.data);
        Payload::from_vec(RECORD_TAG, data)
    }

    /// Decode from a payload produced by [`Record::to_payload`].
    pub fn from_payload(p: &Payload) -> Record {
        assert_eq!(p.tag, RECORD_TAG, "not a record payload");
        let d = p.data();
        Record {
            dest: d[0] as u32,
            uid: d[1] as u64,
            tag: d[2] as u32,
            data: d[3..].to_vec(),
        }
    }

    /// The original message payload this record carries.
    pub fn original_payload(&self) -> Payload {
        Payload::words(self.tag, &self.data)
    }
}

/// Payload tag marking an encoded [`Record`].
pub const RECORD_TAG: u32 = 0x5EC0;

impl PartialOrd for Record {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Record {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        let r = Record {
            dest: 3,
            uid: 42,
            tag: 7,
            data: vec![10, -20, 30],
        };
        let back = Record::from_payload(&r.to_payload());
        assert_eq!(r, back);
        assert_eq!(back.original_payload().tag, 7);
        assert_eq!(back.original_payload().data(), &[10, -20, 30]);
    }

    #[test]
    fn dummies_sort_last() {
        let real = Record {
            dest: 7,
            uid: 999,
            tag: 0,
            data: vec![],
        };
        let dummy = Record::dummy(8, 0);
        assert!(real < dummy);
        assert!(dummy.is_dummy(8));
        assert!(!real.is_dummy(8));
    }

    #[test]
    fn ordering_by_dest_then_uid() {
        let a = Record { dest: 1, uid: 5, tag: 0, data: vec![] };
        let b = Record { dest: 1, uid: 6, tag: 0, data: vec![] };
        let c = Record { dest: 2, uid: 0, tag: 0, data: vec![] };
        assert!(a < b && b < c);
    }
}

//! The full BSP-on-LogP superstep simulation (§4, Theorem 2).
//!
//! Per superstep, the simulation has "the following general structure"
//! (paper §4): (1) each LogP processor executes the local computation of
//! its BSP processor, buffering generated messages; (2) it joins a
//! synchronization activity (CB with Boolean AND) that ends after all have
//! completed; (3) a LogP routing protocol delivers all messages, which also
//! signals termination, so no further synchronization precedes the next
//! superstep. The superstep's simulated time is
//!
//! ```text
//! T_superstep = w + T_synch + T_rout(h)
//! ```
//!
//! realized here as: the CB phase with join times `w_i` (so `T_synch` is
//! measured from the latest join, per Proposition 2) plus the routing
//! phase's makespan. The slowdown against a native BSP machine with
//! `g = G, ℓ = L` is the quantity Theorem 2 bounds by `S(L, G, p, h)`.

use crate::bsp_on_logp::cb::{run_cb, word_combine, TreeShape};
use crate::bsp_on_logp::phase::route_offline;
use crate::bsp_on_logp::route_det::{route_deterministic, SortScheme};
use crate::bsp_on_logp::route_rand::route_randomized;
use bvl_bsp::{BspParams, BspProcess, Status, SuperstepCtx};
use bvl_exec::RunOptions;
use bvl_logp::LogpParams;
use bvl_model::{Envelope, HRelation, ModelError, MsgId, Payload, ProcId, Steps};
use bvl_obs::{CostReport, Counter, Hist, Span, SpanKind};

/// How the communication phase routes each superstep's h-relation.
#[derive(Clone, Copy, Debug)]
pub enum RoutingStrategy {
    /// Theorem 2's deterministic sorting-based protocol.
    Deterministic(SortScheme),
    /// Theorem 3's randomized batching protocol (`h` is taken from the
    /// relation, i.e. assumed known in advance, as the theorem requires).
    Randomized {
        /// Batch head-room factor (see `slowdown::theorem3_batches`).
        slack: f64,
    },
    /// Off-line optimal routing (`2o + G(h−1) + L`) — the input-independent
    /// baseline of §4.2.
    Offline,
}

/// Options for the superstep simulation. Run-wide knobs (seed, registry,
/// superstep budget) come from the [`RunOptions`] passed alongside.
#[derive(Clone, Copy, Debug)]
pub struct Theorem2Config {
    /// Routing strategy.
    pub strategy: RoutingStrategy,
}

impl Default for Theorem2Config {
    fn default() -> Self {
        Theorem2Config {
            strategy: RoutingStrategy::Deterministic(SortScheme::Auto),
        }
    }
}

/// Default superstep budget when `opts.budget` is unset.
pub const DEFAULT_SUPERSTEP_BUDGET: u64 = 100_000;

/// Timing breakdown of one simulated superstep.
#[derive(Clone, Copy, Debug)]
pub struct SuperstepBreakdown {
    /// Maximum local work.
    pub w: u64,
    /// Degree of the routed relation.
    pub h: u64,
    /// Synchronization time (from the latest join).
    pub t_synch: Steps,
    /// Routing time.
    pub t_rout: Steps,
    /// Total simulated LogP time for the superstep.
    pub total: Steps,
    /// What a native BSP machine with `g = G, ℓ = L` charges.
    pub native: Steps,
}

/// Outcome of a full BSP-on-LogP run.
pub struct Theorem2Report<P> {
    /// Per-superstep breakdowns.
    pub supersteps: Vec<SuperstepBreakdown>,
    /// Total simulated LogP time.
    pub total: Steps,
    /// Total native-BSP reference cost.
    pub native_total: Steps,
    /// Guest programs in their final states.
    pub programs: Vec<P>,
}

impl<P> Theorem2Report<P> {
    /// Measured overall slowdown vs the native `g = G, ℓ = L` BSP machine.
    pub fn slowdown(&self) -> f64 {
        self.total.get() as f64 / self.native_total.get().max(1) as f64
    }

    /// Attribute the simulated makespan onto Theorem 2's cost terms:
    /// `work = Σ w`, `comm = Σ min(T_rout, G·h)` (the native `Gh` charge),
    /// `sync = Σ T_synch` (the `L·S` term realized by CB), and
    /// `other = Σ (T_rout − G·h)⁺` (routing overhead beyond the native
    /// charge — the protocol-dependent part of `S(L, G, p, h)`). Because
    /// each superstep's total is exactly `w + T_synch + T_rout`, the
    /// residual is zero by construction; a nonzero residual means the
    /// engine's accounting broke.
    pub fn attribution(&self, logp: &LogpParams, label: impl Into<String>) -> CostReport {
        let mut work = Steps::ZERO;
        let mut comm = Steps::ZERO;
        let mut sync = Steps::ZERO;
        let mut other = Steps::ZERO;
        for s in &self.supersteps {
            let gh = Steps(logp.g * s.h);
            work += Steps(s.w);
            comm += s.t_rout.min(gh);
            sync += s.t_synch;
            other += s.t_rout.saturating_sub(gh);
        }
        CostReport {
            label: label.into(),
            makespan: self.total,
            work,
            comm,
            sync,
            stall: Steps::ZERO,
            other,
        }
    }
}

/// Run a BSP program (one [`BspProcess`] per processor) on a LogP machine.
///
/// The simulation keeps a virtual clock (the cumulative simulated LogP
/// time) and, when `opts.registry` is enabled, emits per superstep:
/// per-processor [`SpanKind::LocalWork`] and [`SpanKind::BarrierWait`]
/// spans, the CB barrier split into [`SpanKind::CbCombine`] /
/// [`SpanKind::CbBroadcast`], a [`SpanKind::Routing`] span (with the
/// router's own round/cycle/batch sub-spans inside it), and an enclosing
/// [`SpanKind::Superstep`] span — plus `Submitted`/`Delivered`/`LocalOps`
/// counters and `BarrierWait`/`SuperstepCost` histograms. With a disabled
/// registry the run is observation-free but otherwise identical.
///
/// `opts.seed` is the master seed for the CB and routing phases;
/// `opts.budget` caps the superstep count ([`DEFAULT_SUPERSTEP_BUDGET`]
/// when unset).
pub fn simulate_bsp_on_logp<P: BspProcess>(
    logp: LogpParams,
    mut programs: Vec<P>,
    config: Theorem2Config,
    opts: &RunOptions,
) -> Result<Theorem2Report<P>, ModelError> {
    let registry = &opts.registry;
    let max_supersteps = opts.budget_or(DEFAULT_SUPERSTEP_BUDGET);
    let p = logp.p;
    assert_eq!(programs.len(), p, "need exactly p programs");
    let native = BspParams::new(p, logp.g, logp.l).expect("valid params");

    let mut inboxes: Vec<Vec<Envelope>> = vec![Vec::new(); p];
    let mut halted = vec![false; p];
    let mut supersteps: Vec<SuperstepBreakdown> = Vec::new();
    let mut total = Steps::ZERO;
    let mut native_total = Steps::ZERO;
    let mut next_msg_id = 0u64;
    let mut index = 0u64;

    while halted.iter().any(|&h| !h) {
        if index >= max_supersteps {
            return Err(ModelError::Timeout {
                budget: max_supersteps,
            });
        }
        // --- Phase 1: local computation (guest BSP bodies). -------------
        let mut works = vec![0u64; p];
        let mut rel = HRelation::new(p);
        for i in 0..p {
            if halted[i] {
                continue;
            }
            let mut inbox = std::mem::take(&mut inboxes[i]);
            let mut ctx = SuperstepCtx::new(ProcId::from(i), p, index, &mut inbox);
            let status = programs[i].superstep(&mut ctx);
            let (w, outbox, _read) = ctx.finish();
            works[i] = w;
            for (dst, payload) in outbox {
                rel.push(ProcId::from(i), dst, payload);
            }
            if status == Status::Halt {
                halted[i] = true;
            }
        }
        let w_max = works.iter().copied().max().unwrap_or(0);
        let h = rel.degree() as u64;
        let base = total; // virtual-clock position of this superstep

        if registry.is_enabled() {
            for (i, &w) in works.iter().enumerate() {
                let proc = ProcId::from(i);
                registry.add(proc, Counter::LocalOps, w);
                if w > 0 {
                    registry.span(
                        Span::new(SpanKind::LocalWork, base, base + Steps(w))
                            .on(proc)
                            .at_index(index),
                    );
                }
                registry.observe(Hist::BarrierWait, w_max - w);
                if w < w_max {
                    registry.span(
                        Span::new(SpanKind::BarrierWait, base + Steps(w), base + Steps(w_max))
                            .on(proc)
                            .at_index(index),
                    );
                }
            }
            for d in rel.demands() {
                registry.add(d.src, Counter::Submitted, 1);
                registry.add(d.dst, Counter::Delivered, 1);
            }
        }

        // --- Phase 2: synchronization (CB-AND, joins at w_i). ------------
        let joins: Vec<Steps> = works.iter().map(|&w| Steps(w)).collect();
        let cb = run_cb(
            logp,
            TreeShape::Heap,
            vec![Payload::word(0, 1); p],
            word_combine(|a, b| a & b),
            &joins,
            &opts.subphase().seed(opts.seed.wrapping_add(index * 17 + 1)),
        )?;
        debug_assert!(cb.results.iter().all(|r| r.expect_word() == 1));
        let t_synch = cb.t_cb;
        if registry.is_enabled() {
            // CB joins at w_i, so on the virtual clock the barrier occupies
            // [base + w_max, base + cb.makespan], split at the root's
            // combine-complete instant.
            let combine_end = base + Steps(w_max) + cb.t_combine;
            registry.span(
                Span::new(SpanKind::CbCombine, base + Steps(w_max), combine_end).at_index(index),
            );
            registry
                .span(Span::new(SpanKind::CbBroadcast, combine_end, base + cb.makespan).at_index(index));
        }

        // --- Phase 3: routing. -------------------------------------------
        let seed = opts.seed.wrapping_add(index * 17 + 2);
        let rout_base = base + cb.makespan;
        let rout_opts = opts.subphase().seed(seed).registry(registry).at(rout_base);
        let t_rout = if rel.is_empty() {
            Steps::ZERO
        } else {
            match config.strategy {
                RoutingStrategy::Deterministic(scheme) => {
                    route_deterministic(logp, &rel, scheme, &rout_opts)?.total
                }
                RoutingStrategy::Randomized { slack } => {
                    route_randomized(logp, &rel, slack, &rout_opts)?.time
                }
                RoutingStrategy::Offline => route_offline(logp, &rel, &rout_opts)?.0,
            }
        };
        if registry.is_enabled() && t_rout > Steps::ZERO {
            registry.span(Span::new(SpanKind::Routing, rout_base, rout_base + t_rout).at_index(index));
        }

        // Deliver to guest inboxes in the BSP machine's canonical order
        // (sender id, then submission order at the sender).
        for d in rel.into_demands() {
            let env = Envelope {
                id: MsgId(next_msg_id),
                src: d.src,
                dst: d.dst,
                payload: d.payload,
                submitted: total,
                accepted: total,
                delivered: total,
            };
            next_msg_id += 1;
            inboxes[env.dst.index()].push(env);
        }

        let step_total = cb.makespan + t_rout;
        if registry.is_enabled() {
            registry.span(Span::new(SpanKind::Superstep, base, base + step_total).at_index(index));
            registry.observe(Hist::SuperstepCost, step_total.get());
        }
        let native_cost = native.superstep_cost(w_max, h);
        supersteps.push(SuperstepBreakdown {
            w: w_max,
            h,
            t_synch,
            t_rout,
            total: step_total,
            native: native_cost,
        });
        total += step_total;
        native_total += native_cost;
        index += 1;
    }

    Ok(Theorem2Report {
        supersteps,
        total,
        native_total,
        programs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_bsp::{BspMachine, FnProcess};
    use bvl_obs::Registry;

    /// The gather workload from the BSP crate's tests: everyone sends its id
    /// to P0, which sums in the next superstep.
    fn gather(p: usize) -> Vec<FnProcess<i64>> {
        (0..p)
            .map(|_| {
                FnProcess::new(0i64, move |state, ctx| match ctx.superstep_index() {
                    0 => {
                        ctx.send(ProcId(0), Payload::word(0, ctx.me().0 as i64));
                        Status::Continue
                    }
                    _ => {
                        if ctx.me().0 == 0 {
                            while let Some(m) = ctx.recv() {
                                *state += m.payload.expect_word();
                            }
                        }
                        Status::Halt
                    }
                })
            })
            .collect()
    }

    fn ring(p: usize, rounds: u64) -> Vec<FnProcess<i64>> {
        (0..p)
            .map(|_| {
                FnProcess::new(0i64, move |acc, ctx| {
                    let p = ctx.p();
                    if ctx.superstep_index() > 0 {
                        *acc += ctx.recv().unwrap().payload.expect_word();
                    }
                    if ctx.superstep_index() < rounds {
                        let right = ProcId(((ctx.me().0 as usize + 1) % p) as u32);
                        ctx.send(right, Payload::word(0, ctx.me().0 as i64));
                        ctx.charge(3);
                        Status::Continue
                    } else {
                        Status::Halt
                    }
                })
            })
            .collect()
    }

    #[test]
    fn gather_results_match_native_bsp() {
        let logp = LogpParams::new(8, 8, 1, 2).unwrap();
        // Native run.
        let bsp = BspParams::new(8, 2, 8).unwrap();
        let mut native = BspMachine::new(bsp, gather(8));
        native.run(10).unwrap();
        let want = *native.process(0).state();

        for strategy in [
            RoutingStrategy::Deterministic(SortScheme::Network),
            RoutingStrategy::Randomized { slack: 2.0 },
            RoutingStrategy::Offline,
        ] {
            let rep = simulate_bsp_on_logp(
                logp,
                gather(8),
                Theorem2Config { strategy },
                &RunOptions::new(),
            )
            .unwrap();
            assert_eq!(*rep.programs[0].state(), want, "{strategy:?}");
            assert_eq!(rep.supersteps.len(), 2);
            assert_eq!(rep.supersteps[0].h, 8);
        }
    }

    #[test]
    fn ring_multi_superstep_equivalence() {
        let logp = LogpParams::new(16, 16, 1, 4).unwrap();
        let bsp = BspParams::new(16, 4, 16).unwrap();
        let mut native = BspMachine::new(bsp, ring(16, 5));
        native.run(10).unwrap();
        let rep =
            simulate_bsp_on_logp(logp, ring(16, 5), Theorem2Config::default(), &RunOptions::new())
                .unwrap();
        for i in 0..16 {
            assert_eq!(rep.programs[i].state(), native.process(i).state());
        }
        assert_eq!(rep.supersteps.len(), 6);
    }

    #[test]
    fn superstep_accounting_adds_up() {
        let logp = LogpParams::new(8, 8, 1, 2).unwrap();
        let rep =
            simulate_bsp_on_logp(logp, ring(8, 2), Theorem2Config::default(), &RunOptions::new())
                .unwrap();
        let sum: Steps = rep.supersteps.iter().map(|s| s.total).sum();
        assert_eq!(sum, rep.total);
        let native: Steps = rep.supersteps.iter().map(|s| s.native).sum();
        assert_eq!(native, rep.native_total);
        assert!(rep.slowdown() >= 1.0, "slowdown {}", rep.slowdown());
    }

    #[test]
    fn offline_strategy_is_fastest() {
        let logp = LogpParams::new(8, 8, 1, 2).unwrap();
        let det = simulate_bsp_on_logp(
            logp,
            ring(8, 3),
            Theorem2Config {
                strategy: RoutingStrategy::Deterministic(SortScheme::Network),
            },
            &RunOptions::new(),
        )
        .unwrap();
        let off = simulate_bsp_on_logp(
            logp,
            ring(8, 3),
            Theorem2Config {
                strategy: RoutingStrategy::Offline,
            },
            &RunOptions::new(),
        )
        .unwrap();
        assert!(off.total < det.total, "offline {:?} det {:?}", off.total, det.total);
    }

    #[test]
    fn obs_run_emits_spans_and_zero_residual_attribution() {
        let logp = LogpParams::new(8, 8, 1, 2).unwrap();
        let reg = Registry::enabled(8);
        let rep = simulate_bsp_on_logp(
            logp,
            ring(8, 3),
            Theorem2Config::default(),
            &RunOptions::new().registry(&reg),
        )
        .unwrap();
        let spans = reg.spans();

        // One Superstep span per superstep, tiling the virtual timeline.
        let mut clock = Steps::ZERO;
        let supersteps: Vec<_> =
            spans.iter().filter(|s| s.kind == SpanKind::Superstep).collect();
        assert_eq!(supersteps.len(), rep.supersteps.len());
        for (i, s) in supersteps.iter().enumerate() {
            assert_eq!(s.start, clock, "superstep {i} not contiguous");
            assert_eq!(s.index, Some(i as u64));
            clock = s.end;
        }
        assert_eq!(clock, rep.total);
        // Every span fits inside the run and is well-ordered.
        assert!(spans.iter().all(|s| s.start <= s.end && s.end <= rep.total));
        // The full phase vocabulary of the deterministic pipeline showed up.
        // (No BarrierWait here: the ring is perfectly balanced, so no
        // processor ever waits — checked separately with a skewed load.)
        for kind in [
            SpanKind::LocalWork,
            SpanKind::CbCombine,
            SpanKind::CbBroadcast,
            SpanKind::SortRound,
            SpanKind::RouteCycles,
            SpanKind::Routing,
        ] {
            assert!(spans.iter().any(|s| s.kind == kind), "missing {kind:?}");
        }
        assert!(!spans.iter().any(|s| s.kind == SpanKind::BarrierWait));

        // A skewed workload (processor i charges 3i) does produce barrier
        // waits, one span per processor slower-than-slowest.
        let skew: Vec<FnProcess<()>> = (0..8)
            .map(|_| {
                FnProcess::new((), |_, ctx| {
                    ctx.charge(ctx.me().0 as u64 * 3);
                    Status::Halt
                })
            })
            .collect();
        let reg2 = Registry::enabled(8);
        simulate_bsp_on_logp(
            logp,
            skew,
            Theorem2Config::default(),
            &RunOptions::new().registry(&reg2),
        )
        .unwrap();
        let waits: Vec<_> =
            reg2.spans().iter().filter(|s| s.kind == SpanKind::BarrierWait).cloned().collect();
        assert_eq!(waits.len(), 7, "all but the slowest processor wait");
        // Σ (w_max - w_i) = Σ_{i<8} (21 - 3i) = 84.
        assert_eq!(reg2.histogram(Hist::BarrierWait).sum, 84);
        // Conservation: submitted == delivered, and the ring sends 8
        // messages in each of its 5 sending supersteps.
        assert_eq!(reg.counter(Counter::Submitted), reg.counter(Counter::Delivered));
        assert_eq!(reg.counter(Counter::Submitted), 8 * 3);
        assert_eq!(reg.histogram(Hist::SuperstepCost).count, rep.supersteps.len() as u64);

        // Attribution explains the makespan exactly.
        let cost = rep.attribution(&logp, "ring p=8");
        assert_eq!(cost.makespan, rep.total);
        assert_eq!(cost.residual(), 0, "{cost}");
        assert!(cost.work > Steps::ZERO && cost.sync > Steps::ZERO && cost.comm > Steps::ZERO);
    }

    #[test]
    fn observation_never_perturbs_the_run() {
        let logp = LogpParams::new(8, 64, 1, 2).unwrap(); // roomy capacity
        let config = Theorem2Config {
            strategy: RoutingStrategy::Randomized { slack: 2.0 },
        };
        let plain = simulate_bsp_on_logp(logp, ring(8, 2), config, &RunOptions::new()).unwrap();
        let reg = Registry::enabled(8);
        let observed =
            simulate_bsp_on_logp(logp, ring(8, 2), config, &RunOptions::new().registry(&reg))
                .unwrap();
        assert_eq!(plain.total, observed.total);
        assert_eq!(plain.native_total, observed.native_total);
        assert!(reg.spans().iter().any(|s| s.kind == SpanKind::RouteBatch));
        assert_eq!(observed.attribution(&logp, "rand").residual(), 0);
    }

    #[test]
    fn pure_compute_costs_only_sync() {
        let logp = LogpParams::new(4, 8, 1, 2).unwrap();
        let procs: Vec<FnProcess<()>> = (0..4)
            .map(|_| {
                FnProcess::new((), |_, ctx| {
                    ctx.charge(10);
                    Status::Halt
                })
            })
            .collect();
        let rep =
            simulate_bsp_on_logp(logp, procs, Theorem2Config::default(), &RunOptions::new())
                .unwrap();
        assert_eq!(rep.supersteps.len(), 1);
        assert_eq!(rep.supersteps[0].w, 10);
        assert_eq!(rep.supersteps[0].t_rout, Steps::ZERO);
        assert!(rep.supersteps[0].t_synch > Steps::ZERO);
    }
}

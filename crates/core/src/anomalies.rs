//! The §2.2 parameter-constraint anomalies.
//!
//! The paper argues for `max{2, o} ≤ G ≤ L` with two thought experiments,
//! both of which this module makes executable:
//!
//! * **`G = 1` (capacity `⌈L/G⌉ = L`)**: if `L` processors simultaneously
//!   send to one destination, the model accepts all of them instantly (no
//!   stall) and must deliver all within `L` steps — forcing the network to
//!   deliver one message *every* step to a single node, "a strong
//!   performance requirement hard to support on a real machine". With
//!   `G = 2` the same pattern immediately stalls.
//! * **`G > L` (capacity 1)**: two senders alternating sends to one
//!   receiver at period `max{G, 2L}` keep at most one message in transit
//!   (never stalling), yet messages arrive faster than the receiver's
//!   acquisition rate `1/G`, so its input buffer grows without bound.

use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bvl_model::trace::Event;
use bvl_model::{ModelError, Payload, ProcId, Steps};

/// Metrics from the `G = 1` scenario.
#[derive(Clone, Debug)]
pub struct GapOneReport {
    /// Did any sender stall?
    pub stalled: bool,
    /// Number of senders (= L).
    pub senders: usize,
    /// All messages delivered within `L` of submission?
    pub all_within_latency: bool,
    /// Maximum messages delivered to the target in one single time step —
    /// `G = 1` forces this towards the full batch under the latest-delivery
    /// policy, i.e. a single-step burst no real network port sustains.
    pub max_deliveries_per_step: usize,
}

/// Run the `G = 1` anomaly: `L` senders fire simultaneously at processor 0.
/// Pass `g = 1` (via `new_unchecked`) or `g = 2` to contrast.
pub fn gap_one_anomaly(l: u64, o: u64, g: u64, seed: u64) -> Result<GapOneReport, ModelError> {
    let senders = l as usize;
    let p = senders + 1;
    let params = LogpParams::new_unchecked(p, l, o, g);
    let mut programs = vec![Script::new(vec![Op::Recv; senders])];
    programs.extend((1..p).map(|i| {
        Script::new([Op::Send {
            dst: ProcId(0),
            payload: Payload::word(0, i as i64),
        }])
    }));
    let config = LogpConfig {
        trace: true,
        seed,
        ..LogpConfig::default()
    };
    let mut machine = LogpMachine::with_config(params, config, programs);
    let report = machine.run()?;

    let mut within = true;
    let mut per_step: std::collections::BTreeMap<Steps, usize> = std::collections::BTreeMap::new();
    let mut submit: std::collections::BTreeMap<bvl_model::MsgId, Steps> =
        std::collections::BTreeMap::new();
    for ev in machine.trace().events() {
        match *ev {
            Event::Submit { at, msg, .. } => {
                submit.insert(msg, at);
            }
            Event::Deliver { at, msg, .. } => {
                *per_step.entry(at).or_insert(0) += 1;
                if let Some(&s) = submit.get(&msg) {
                    // Stall-free: submission == acceptance, so the latency
                    // bound is relative to submission here.
                    if at > s + Steps(l) {
                        within = false;
                    }
                }
            }
            _ => {}
        }
    }
    Ok(GapOneReport {
        stalled: report.stall_episodes > 0,
        senders,
        all_within_latency: within && report.stall_free(),
        max_deliveries_per_step: per_step.values().copied().max().unwrap_or(0),
    })
}

/// Metrics from the `G > L` scenario.
#[derive(Clone, Debug)]
pub struct GapExceedsLatencyReport {
    /// No stalling ever occurs (capacity 1 is never exceeded).
    pub stall_free: bool,
    /// Messages delivered to the receiver.
    pub delivered: u64,
    /// Peak input-buffer occupancy at the receiver.
    pub peak_buffer: usize,
}

/// Run the `G > L` anomaly with `n` messages per sender: processor
/// `i ∈ {0, 1}` sends to processor 2 at times `max{G, 2L}·k + L·i`
/// (the paper's exact schedule).
pub fn gap_exceeds_latency_anomaly(
    l: u64,
    g: u64,
    n: u64,
    seed: u64,
) -> Result<GapExceedsLatencyReport, ModelError> {
    assert!(g > l, "this anomaly needs G > L");
    let params = LogpParams::new_unchecked(3, l, 1, g);
    debug_assert_eq!(params.capacity(), 1);
    let period = g.max(2 * l);
    let mk = |i: u64| {
        let mut ops = Vec::new();
        for k in 0..n {
            // Wait until period*k + L*i; both senders then submit a uniform
            // `o` later, preserving the paper's L-offset interleaving.
            ops.push(Op::WaitUntil(Steps(period * k + l * i)));
            ops.push(Op::Send {
                dst: ProcId(2),
                payload: Payload::word(0, (i * 1000 + k) as i64),
            });
        }
        Script::new(ops)
    };
    let programs = vec![mk(0), mk(1), Script::new(vec![Op::Recv; 2 * n as usize])];
    let mut machine = LogpMachine::with_config(
        params,
        LogpConfig {
            seed,
            ..LogpConfig::default()
        },
        programs,
    );
    let report = machine.run()?;
    Ok(GapExceedsLatencyReport {
        stall_free: report.stall_free(),
        delivered: report.delivered,
        peak_buffer: report.per_proc[2].max_buffer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_one_accepts_everything_instantly() {
        let rep = gap_one_anomaly(8, 1, 1, 1).unwrap();
        assert!(!rep.stalled, "G=1 capacity L admits all senders");
        assert!(rep.all_within_latency);
        // The latest-delivery schedule dumps the whole batch in one step.
        assert!(
            rep.max_deliveries_per_step >= rep.senders,
            "burst {} < senders {}",
            rep.max_deliveries_per_step,
            rep.senders
        );
    }

    #[test]
    fn gap_two_same_pattern_stalls() {
        let rep = gap_one_anomaly(8, 1, 2, 1).unwrap();
        assert!(rep.stalled, "G=2 halves the capacity: stalls appear");
    }

    #[test]
    fn buffer_growth_is_linear_when_g_exceeds_l() {
        // G = 6 > L = 2, period max{G, 2L} = 6: two messages arrive per
        // period but only one can be acquired per G -> backlog grows ~ n/2.
        let small = gap_exceeds_latency_anomaly(2, 6, 10, 1).unwrap();
        let large = gap_exceeds_latency_anomaly(2, 6, 40, 1).unwrap();
        assert!(small.stall_free && large.stall_free);
        assert_eq!(large.delivered, 80);
        assert!(
            large.peak_buffer >= small.peak_buffer + 10,
            "buffer must grow with n: {} vs {}",
            large.peak_buffer,
            small.peak_buffer
        );
    }

    #[test]
    fn no_growth_when_g_within_l_at_same_rate() {
        // Control: G = L = 4 (capacity 1), same period structure -> the
        // receiver keeps up and the buffer stays bounded by a small constant
        // independent of n.
        let params_ok = |n: u64| {
            let l = 4u64;
            let g = 4u64;
            let params = LogpParams::new(3, l, 1, g).unwrap();
            let period = g.max(2 * l);
            let mk = |i: u64| {
                let mut ops = Vec::new();
                for k in 0..n {
                    let _ = &params;
                    ops.push(Op::WaitUntil(Steps(period * k + l * i)));
                    ops.push(Op::Send {
                        dst: ProcId(2),
                        payload: Payload::word(0, k as i64),
                    });
                }
                Script::new(ops)
            };
            let programs = vec![mk(0), mk(1), Script::new(vec![Op::Recv; 2 * n as usize])];
            let mut machine = LogpMachine::new(params, programs);
            machine.run().unwrap().per_proc[2].max_buffer
        };
        let b10 = params_ok(10);
        let b40 = params_ok(40);
        assert!(b40 <= b10 + 2, "bounded buffers expected: {b10} vs {b40}");
    }
}

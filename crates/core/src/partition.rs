//! Partitionability and multiuser operation (§2.2 / §6).
//!
//! The paper contrasts the two models' system-level behaviour:
//!
//! > "if two programs run on disjoint sets of processors, then their
//! > executions do not interfere" (LogP) — "a desirable property, as it
//! > nicely supports partitioning of the computation into independent
//! > subcomputations, as well as multiuser modes of operation."
//!
//! > "A drawback of the \[BSP\] model is that all synchronizations are
//! > essentially global so that, for instance, two programs cannot run
//! > independently on two disjoint sets of processors."
//!
//! [`logp_coschedule`] runs two tenants on disjoint halves of one LogP
//! machine and compares each tenant's completion time with its solo run
//! (they must be *identical* — the capacity constraint is per-destination
//! and the medium has no shared resource in the model).
//! [`bsp_coschedule`] runs two tenants through one BSP machine, where every
//! superstep's cost is `max` over both tenants' work and traffic plus one
//! shared barrier — the light tenant pays for the heavy one.

use bvl_bsp::{BspMachine, BspParams, BspProcess, Status, SuperstepCtx};
use bvl_logp::{LogpConfig, LogpMachine, LogpParams, LogpProcess, Op, ProcView};
use bvl_model::{Envelope, ModelError, ProcId, Steps};

/// A process wrapper that confines a tenant to a contiguous processor range
/// by translating its virtual ids (LogP side).
struct LogpTenantProc<P: LogpProcess> {
    inner: P,
    base: u32,
    vp: usize,
}

impl<P: LogpProcess> LogpProcess for LogpTenantProc<P> {
    fn next_op(&mut self, view: &ProcView) -> Op {
        let virtual_view = ProcView {
            me: ProcId(view.me.0 - self.base),
            p: self.vp,
            ..*view
        };
        match self.inner.next_op(&virtual_view) {
            Op::Send { dst, payload } => {
                assert!(dst.index() < self.vp, "tenant escaped its partition");
                Op::Send {
                    dst: ProcId(dst.0 + self.base),
                    payload,
                }
            }
            other => other,
        }
    }
    fn on_recv(&mut self, mut msg: Envelope) {
        msg.src = ProcId(msg.src.0.saturating_sub(self.base));
        msg.dst = ProcId(msg.dst.0 - self.base);
        self.inner.on_recv(msg);
    }
}

/// Per-tenant completion times from a co-scheduled LogP run.
#[derive(Clone, Debug)]
pub struct LogpCoscheduleReport {
    /// Tenant A's completion (max halt time over its processors).
    pub tenant_a: Steps,
    /// Tenant B's completion.
    pub tenant_b: Steps,
    /// Solo makespans measured on dedicated machines of the partition size.
    pub solo_a: Steps,
    /// Solo makespan of tenant B.
    pub solo_b: Steps,
}

impl LogpCoscheduleReport {
    /// Interference factors (co-scheduled / solo); the LogP model promises
    /// exactly 1.0.
    pub fn interference(&self) -> (f64, f64) {
        (
            self.tenant_a.get() as f64 / self.solo_a.get().max(1) as f64,
            self.tenant_b.get() as f64 / self.solo_b.get().max(1) as f64,
        )
    }
}

/// Run tenant builders `a` and `b` on disjoint halves of a `p`-processor
/// LogP machine (p even, each tenant gets p/2), plus solo on dedicated
/// machines, and report completion times.
pub fn logp_coschedule<PA, PB, FA, FB>(
    params: LogpParams,
    mut a: FA,
    mut b: FB,
    seed: u64,
) -> Result<LogpCoscheduleReport, ModelError>
where
    PA: LogpProcess + 'static,
    PB: LogpProcess + 'static,
    FA: FnMut(usize) -> Vec<PA>,
    FB: FnMut(usize) -> Vec<PB>,
{
    let p = params.p;
    assert!(p.is_multiple_of(2) && p >= 4);
    let half = p / 2;
    let half_params = LogpParams::new_unchecked(half, params.l, params.o, params.g);

    // Solo runs.
    let solo = |procs: Vec<Box<dyn LogpProcess>>| -> Result<Steps, ModelError> {
        let mut m = LogpMachine::with_config(
            half_params,
            LogpConfig {
                seed,
                ..LogpConfig::default()
            },
            procs,
        );
        Ok(m.run()?.makespan)
    };
    let solo_a = solo(
        a(half)
            .into_iter()
            .map(|x| Box::new(x) as Box<dyn LogpProcess>)
            .collect(),
    )?;
    let solo_b = solo(
        b(half)
            .into_iter()
            .map(|x| Box::new(x) as Box<dyn LogpProcess>)
            .collect(),
    )?;

    // Co-scheduled run: tenant A on 0..half, tenant B on half..p.
    let mut procs: Vec<Box<dyn LogpProcess>> = Vec::with_capacity(p);
    for x in a(half) {
        procs.push(Box::new(LogpTenantProc {
            inner: x,
            base: 0,
            vp: half,
        }));
    }
    for x in b(half) {
        procs.push(Box::new(LogpTenantProc {
            inner: x,
            base: half as u32,
            vp: half,
        }));
    }
    let mut m = LogpMachine::with_config(
        params,
        LogpConfig {
            seed,
            ..LogpConfig::default()
        },
        procs,
    );
    let report = m.run()?;
    let halt = |range: std::ops::Range<usize>| -> Steps {
        range
            .map(|i| report.per_proc[i].halt_time)
            .max()
            .unwrap_or(Steps::ZERO)
    };
    Ok(LogpCoscheduleReport {
        tenant_a: halt(0..half),
        tenant_b: halt(half..p),
        solo_a,
        solo_b,
    })
}

/// BSP tenant wrapper: same virtual-id translation, one shared machine.
struct BspTenantProc<P: BspProcess> {
    inner: P,
    base: usize,
    vp: usize,
}

impl<P: BspProcess> BspProcess for BspTenantProc<P> {
    fn superstep(&mut self, ctx: &mut SuperstepCtx<'_>) -> Status {
        // Build a virtual inbox with translated ids.
        let mut inbox: Vec<Envelope> = ctx
            .recv_all()
            .into_iter()
            .map(|mut e| {
                e.src = ProcId(e.src.0 - self.base as u32);
                e.dst = ProcId(e.dst.0 - self.base as u32);
                e
            })
            .collect();
        let mut vctx = SuperstepCtx::new(
            ProcId((ctx.me().0 as usize - self.base) as u32),
            self.vp,
            ctx.superstep_index(),
            &mut inbox,
        );
        let status = self.inner.superstep(&mut vctx);
        let (w, outbox, _) = vctx.finish();
        // Re-sending below re-charges one unit per message; subtract it
        // from the inner work so the tenant's w is not double-counted.
        ctx.charge(w.saturating_sub(outbox.len() as u64));
        for (dst, payload) in outbox {
            assert!(dst.index() < self.vp, "tenant escaped its partition");
            ctx.send(ProcId((dst.index() + self.base) as u32), payload);
        }
        status
    }
}

/// Per-tenant completion costs from a co-scheduled BSP run.
#[derive(Clone, Debug)]
pub struct BspCoscheduleReport {
    /// Cost accumulated up to and including tenant A's final superstep.
    pub tenant_a: Steps,
    /// Cost up to tenant B's final superstep.
    pub tenant_b: Steps,
    /// Solo costs on dedicated half-size machines.
    pub solo_a: Steps,
    /// Solo cost of tenant B.
    pub solo_b: Steps,
}

impl BspCoscheduleReport {
    /// Interference factors (co-scheduled / solo); > 1 whenever the other
    /// tenant's supersteps are heavier or more numerous.
    pub fn interference(&self) -> (f64, f64) {
        (
            self.tenant_a.get() as f64 / self.solo_a.get().max(1) as f64,
            self.tenant_b.get() as f64 / self.solo_b.get().max(1) as f64,
        )
    }
}

/// Run two BSP tenants through one machine with a shared barrier and report
/// each tenant's completion cost vs its solo run.
pub fn bsp_coschedule<PA, PB, FA, FB>(
    params: BspParams,
    mut a: FA,
    mut b: FB,
) -> Result<BspCoscheduleReport, ModelError>
where
    PA: BspProcess + 'static,
    PB: BspProcess + 'static,
    FA: FnMut(usize) -> Vec<PA>,
    FB: FnMut(usize) -> Vec<PB>,
{
    let p = params.p;
    assert!(p.is_multiple_of(2) && p >= 4);
    let half = p / 2;
    let half_params = BspParams::new(half, params.g, params.l).expect("valid");

    let solo_cost_a = {
        let mut m = BspMachine::new(half_params, a(half));
        m.run(100_000)?.cost
    };
    let solo_cost_b = {
        let mut m = BspMachine::new(half_params, b(half));
        m.run(100_000)?.cost
    };

    let mut procs: Vec<Box<dyn BspProcess>> = Vec::with_capacity(p);
    let mut halts_a = HaltTracker::new();
    let mut halts_b = HaltTracker::new();
    for x in a(half) {
        procs.push(Box::new(halts_a.wrap(BspTenantProc {
            inner: x,
            base: 0,
            vp: half,
        })));
    }
    for x in b(half) {
        procs.push(Box::new(halts_b.wrap(BspTenantProc {
            inner: x,
            base: half,
            vp: half,
        })));
    }
    let mut m = BspMachine::new(params, procs);
    let report = m.run(100_000)?;

    // Tenant completion = cumulative cost through its last active superstep.
    let cum = |last: u64| -> Steps {
        report
            .records
            .iter()
            .take(last as usize + 1)
            .map(|r| r.cost)
            .sum()
    };
    Ok(BspCoscheduleReport {
        tenant_a: cum(halts_a.last_superstep()),
        tenant_b: cum(halts_b.last_superstep()),
        solo_a: solo_cost_a,
        solo_b: solo_cost_b,
    })
}

/// Records the superstep at which each wrapped process halted.
struct HaltTracker {
    cell: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl HaltTracker {
    fn new() -> HaltTracker {
        HaltTracker {
            cell: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    fn wrap<P: BspProcess + 'static>(&mut self, inner: P) -> TrackedProc<P> {
        TrackedProc {
            inner,
            cell: self.cell.clone(),
        }
    }

    fn last_superstep(&self) -> u64 {
        self.cell.load(std::sync::atomic::Ordering::Relaxed)
    }
}

struct TrackedProc<P: BspProcess> {
    inner: P,
    cell: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl<P: BspProcess> BspProcess for TrackedProc<P> {
    fn superstep(&mut self, ctx: &mut SuperstepCtx<'_>) -> Status {
        let status = self.inner.superstep(ctx);
        if status == Status::Halt {
            self.cell
                .fetch_max(ctx.superstep_index(), std::sync::atomic::Ordering::Relaxed);
        }
        status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_bsp::FnProcess;
    use bvl_logp::Script;
    use bvl_model::Payload;

    /// A light LogP tenant: one ring round.
    fn light_logp(p: usize) -> Vec<Script> {
        (0..p)
            .map(|i| {
                Script::new([
                    Op::Send {
                        dst: ProcId(((i + 1) % p) as u32),
                        payload: Payload::word(0, i as i64),
                    },
                    Op::Recv,
                ])
            })
            .collect()
    }

    /// A heavy LogP tenant: long compute plus several ring rounds.
    fn heavy_logp(p: usize) -> Vec<Script> {
        (0..p)
            .map(|i| {
                let mut ops = vec![Op::Compute(200)];
                for r in 0..6 {
                    ops.push(Op::Send {
                        dst: ProcId(((i + 1) % p) as u32),
                        payload: Payload::word(r, i as i64),
                    });
                    ops.push(Op::Recv);
                }
                Script::new(ops)
            })
            .collect()
    }

    #[test]
    fn logp_partitions_do_not_interfere() {
        let params = LogpParams::new(16, 8, 1, 2).unwrap();
        let rep = logp_coschedule(params, light_logp, heavy_logp, 1).unwrap();
        assert_eq!(rep.tenant_a, rep.solo_a, "light tenant unaffected");
        assert_eq!(rep.tenant_b, rep.solo_b, "heavy tenant unaffected");
        let (ia, ib) = rep.interference();
        assert_eq!((ia, ib), (1.0, 1.0));
    }

    fn light_bsp(p: usize) -> Vec<FnProcess<i64>> {
        let _ = p;
        (0..p)
            .map(|_| {
                FnProcess::new(0i64, |acc, ctx| {
                    if ctx.superstep_index() > 0 {
                        *acc += ctx.recv().map(|m| m.payload.expect_word()).unwrap_or(0);
                        return Status::Halt;
                    }
                    let right = ProcId(((ctx.me().0 as usize + 1) % ctx.p()) as u32);
                    ctx.send(right, Payload::word(0, 1));
                    Status::Continue
                })
            })
            .collect()
    }

    fn heavy_bsp(p: usize) -> Vec<FnProcess<i64>> {
        let _ = p;
        (0..p)
            .map(|_| {
                FnProcess::new(0i64, |_, ctx| {
                    ctx.charge(500);
                    if ctx.superstep_index() >= 7 {
                        Status::Halt
                    } else {
                        let right = ProcId(((ctx.me().0 as usize + 1) % ctx.p()) as u32);
                        ctx.send(right, Payload::word(0, 1));
                        Status::Continue
                    }
                })
            })
            .collect()
    }

    #[test]
    fn bsp_light_tenant_pays_for_heavy_neighbour() {
        let params = BspParams::new(16, 2, 16).unwrap();
        let rep = bsp_coschedule(params, light_bsp, heavy_bsp).unwrap();
        let (ia, _ib) = rep.interference();
        assert!(
            ia > 2.0,
            "light tenant should suffer from the shared barrier: {ia}"
        );
        // The heavy tenant is barely affected (it dominates every superstep).
        let (_, ib) = rep.interference();
        assert!(ib < 1.2, "heavy tenant interference {ib}");
    }

    #[test]
    fn symmetric_tenants_interfere_symmetrically_on_bsp() {
        let params = BspParams::new(8, 2, 8).unwrap();
        let rep = bsp_coschedule(params, light_bsp, light_bsp).unwrap();
        let (ia, ib) = rep.interference();
        assert!((ia - ib).abs() < 1e-9);
        assert!(ia <= 1.01, "identical tenants add no relative cost: {ia}");
    }
}

//! The paper's analytic slowdown expressions, used by the experiment
//! binaries to print measured-vs-predicted columns.

use bvl_logp::LogpParams;

/// Theorem 1's slowdown bound for simulating stall-free LogP on BSP:
/// `O(1 + g/G + ℓ/L)` (constant when `g = Θ(G)`, `ℓ = Θ(L)`).
pub fn theorem1_bound(g: u64, l: u64, big_g: u64, big_l: u64) -> f64 {
    1.0 + g as f64 / big_g as f64 + l as f64 / big_l as f64
}

/// The sequential sorting time `Tseq-sort(r)` of §4.2 for `r` keys in the
/// range `[0, p]`: `r · min{log r, ⌈log p / log r⌉}` via Radixsort.
pub fn t_seq_sort(r: u64, p: u64) -> u64 {
    if r <= 1 {
        return r;
    }
    let log_r = (r as f64).log2().ceil().max(1.0);
    let log_p = (p.max(2) as f64).log2().ceil();
    let radix = (log_p / log_r).ceil().max(1.0);
    (r as f64 * log_r.min(radix)) as u64
}

/// The synchronization term of Proposition 2:
/// `T_synch = Θ(L · log p / log(1 + ⌈L/G⌉))`.
pub fn t_synch_bound(params: &LogpParams) -> f64 {
    params.cb_bound()
}

/// Theorem 2's slowdown factor `S(L, G, p, h)`:
///
/// ```text
/// S = L log p / ((Gh + L) log(1 + ⌈L/G⌉))
///     + min{ log p, (log p / (h log(h+1)))² · Tseq-sort(h) / (Gh + L) }
/// ```
///
/// (The paper's expression; the `25^{log* ph − log* h}` Cubesort factor is
/// constant in the large-`h` regime and omitted, as in the paper.)
/// `S = O(log p)` always; `S = O(1)` for `h = Ω(p^ε + L log p)`.
pub fn theorem2_s(params: &LogpParams, h: u64) -> f64 {
    let p = params.p as f64;
    if p <= 1.0 {
        return 1.0;
    }
    let log_p = p.log2();
    let gh_l = (params.g * h + params.l) as f64;
    let sync_term = (params.l as f64) * log_p / (gh_l * (1.0 + params.capacity() as f64).log2());
    let sort_small = log_p; // AKS-route: O(log p)
    let h_f = h.max(1) as f64;
    let sort_large =
        (log_p / (h_f * (h_f + 1.0).log2().max(1.0))).powi(2) * t_seq_sort(h, params.p as u64) as f64
            / gh_l;
    sync_term + sort_small.min(sort_large)
}

/// Theorem 2's total superstep bound: `O(w + (Gh + L) · S)`.
pub fn theorem2_superstep_bound(params: &LogpParams, w: u64, h: u64) -> f64 {
    w as f64 + (params.g * h + params.l) as f64 * theorem2_s(params, h)
}

/// Theorem 3's constant: `β = 4e^{2(c₂+3)/c₁}` where `⌈L/G⌉ ≥ c₁ log p` and
/// the failure probability is `p^{−c₂}`.
pub fn theorem3_beta(c1: f64, c2: f64) -> f64 {
    4.0 * (2.0 * (c2 + 3.0) / c1).exp()
}

/// Theorem 3's batch count `R = (1 + β)·h/⌈L/G⌉` (protocol Step 1). The
/// paper sets `1 + β = e^{2(c₂+3)/c₁}` to make the Chernoff bound close;
/// that constant is a worst-case artifact (it explodes for small
/// `c₁ = ⌈L/G⌉/log p`), so the runnable protocol takes the slack factor
/// directly — `2.0` keeps the expected per-round load at half capacity,
/// which the experiments show already drives the stall probability to
/// (un)measurably small values. Use [`theorem3_slack`] to evaluate the
/// paper's analytic choice.
pub fn theorem3_batches(params: &LogpParams, h: u64, slack: f64) -> u64 {
    assert!(slack >= 1.0);
    let cap = params.capacity() as f64;
    ((slack * h as f64 / cap).ceil() as u64).max(1)
}

/// The paper's analytic slack `1 + β' = e^{2(c₂+3)/c₁}` with
/// `c₁ = ⌈L/G⌉ / log p` (meaningful only when `c₁` is bounded below).
pub fn theorem3_slack(params: &LogpParams, c2: f64) -> f64 {
    let cap = params.capacity() as f64;
    let log_p = (params.p.max(2) as f64).log2();
    let c1 = (cap / log_p).max(f64::MIN_POSITIVE);
    (2.0 * (c2 + 3.0) / c1).exp()
}

/// Worst-case time for an h-relation under stalling (§4.3): `O(Gh²)`.
pub fn stalling_worst_case(params: &LogpParams, h: u64) -> u64 {
    params.g * h * h
}

/// The §3 bound for simulating *stalling* LogP programs on BSP with
/// sort/prefix preprocessing: `O(((ℓ + g)/G) · log p)` per §3.
pub fn stalling_simulation_bound(g: u64, l: u64, big_g: u64, p: usize) -> f64 {
    ((l + g) as f64 / big_g as f64) * (p.max(2) as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(p: usize, l: u64, g: u64) -> LogpParams {
        LogpParams::new(p, l, 1, g).unwrap()
    }

    #[test]
    fn theorem1_constant_when_matched() {
        assert_eq!(theorem1_bound(4, 32, 4, 32), 3.0);
        assert!(theorem1_bound(8, 32, 4, 32) > 3.0);
    }

    #[test]
    fn t_seq_sort_regimes() {
        // Small r: log r dominates the min.
        assert_eq!(t_seq_sort(4, 1 << 20), 8); // 4 * min(2, 10)
        // r = p^(1/2): radix term kicks in: min(log r, 2) = 2.
        let r = 1 << 10;
        assert_eq!(t_seq_sort(r, 1 << 20), r * 2);
        assert_eq!(t_seq_sort(1, 100), 1);
        assert_eq!(t_seq_sort(0, 100), 0);
    }

    #[test]
    fn s_is_at_most_log_p_plus_sync() {
        let pr = params(1024, 64, 4);
        for h in [1u64, 4, 16, 64, 256, 1024, 4096] {
            let s = theorem2_s(&pr, h);
            assert!(s > 0.0);
            assert!(s <= 2.0 * (1024f64).log2() + 1.0, "S({h}) = {s}");
        }
    }

    #[test]
    fn s_shrinks_for_large_h() {
        let pr = params(1024, 64, 4);
        let small = theorem2_s(&pr, 2);
        let large = theorem2_s(&pr, 1 << 20);
        assert!(large < small / 2.0, "small {small}, large {large}");
        assert!(large < 2.0, "S must become O(1): {large}");
    }

    #[test]
    fn beta_decreases_with_capacity_headroom() {
        assert!(theorem3_beta(4.0, 1.0) < theorem3_beta(1.0, 1.0));
        // c1 = 2(c2+3) makes the exponent 1.
        let b = theorem3_beta(8.0, 1.0);
        assert!((b - 4.0 * 1f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn batches_scale_with_h_over_capacity() {
        let pr = params(256, 64, 2); // capacity 32
        let r1 = theorem3_batches(&pr, 64, 2.0);
        let r2 = theorem3_batches(&pr, 128, 2.0);
        assert_eq!(r1, 4);
        assert_eq!(r2, 8);
        assert!(theorem3_slack(&pr, 1.0) > 1.0);
    }

    #[test]
    fn stalling_bounds() {
        let pr = params(16, 8, 2);
        assert_eq!(stalling_worst_case(&pr, 10), 200);
        assert!(stalling_simulation_bound(2, 8, 2, 16) > 0.0);
    }
}

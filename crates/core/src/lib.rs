//! # bvl-core — the cross-simulations of *BSP vs LogP*
//!
//! This crate is the paper's primary contribution made executable:
//!
//! * [`logp_on_bsp`] — **Theorem 1**: stall-free LogP programs run on a BSP
//!   host with slowdown `O(1 + g/G + ℓ/L)` by simulating cycles of `⌈L/2⌉`
//!   LogP steps per superstep.
//! * [`bsp_on_logp`] — **Theorem 2** (deterministic: CB synchronization +
//!   sorting-based h-relation decomposition + pipelined routing cycles) and
//!   **Theorem 3** (randomized batching, no stalling w.h.p.), plus the
//!   Combine-and-Broadcast primitive of **Propositions 1–2** and the
//!   off-line optimal router of §4.2.
//! * [`stalling`] — the stalling regime: hot-spot throughput under the
//!   Stalling Rule, the naive stalling extension of Theorem 1, and the
//!   `O(Gh²)` worst case.
//! * [`anomalies`] — the §2.2 arguments for `max{2, o} ≤ G ≤ L`, executable.
//! * [`slowdown`] — the paper's analytic bounds (`S(L,G,p,h)`, `T_CB`,
//!   `β`, …) for measured-vs-predicted reporting.
//!
//! Every protocol moves real data through the `bvl-logp`/`bvl-bsp` engines;
//! stall-freedom claims are enforced by the engines (`forbid_stalling`),
//! not assumed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomalies;
pub mod bsp_on_logp;
pub mod logp_on_bsp;
pub mod partition;
pub mod slowdown;
pub mod stalling;

pub use bsp_on_logp::cb::{run_cb, word_combine, CbReport, Combine, TreeShape};
pub use bsp_on_logp::phase::route_offline;
pub use bsp_on_logp::route_det::{route_deterministic, RouteDetReport, SortScheme};
pub use bsp_on_logp::route_rand::{route_randomized, RouteRandReport};
pub use bsp_on_logp::runner::{
    simulate_bsp_on_logp, RoutingStrategy, SuperstepBreakdown, Theorem2Config, Theorem2Report,
    DEFAULT_SUPERSTEP_BUDGET,
};
pub use logp_on_bsp::{
    simulate_logp_on_bsp, simulate_logp_on_bsp_clustered, Theorem1Config, Theorem1Report,
    WorkPreservingReport, DEFAULT_HOST_BUDGET,
};
pub use partition::{bsp_coschedule, logp_coschedule, BspCoscheduleReport, LogpCoscheduleReport};

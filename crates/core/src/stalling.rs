//! Stalling studies (§2.2 discussion, §3 extension, §4.3 worst case).
//!
//! Three quantitative claims about the stalling regime are exercised here:
//!
//! 1. **Hot-spot throughput** (§2.2): under the Stalling Rule "the delivery
//!    rate at the hot spot is the highest possible given the bandwidth
//!    limitation (one message every `G` steps)", so concentrating traffic
//!    can be *efficient* despite the stalled senders' lost cycles —
//!    [`hot_spot_study`] measures it.
//! 2. **Simulating stalling programs on BSP** (§3): the Theorem 1
//!    simulation extended naively to stalling cycles loses the
//!    `h ≤ ⌈L/G⌉` superstep bound; [`stalling_on_bsp`] measures the
//!    resulting cost against the native stalling makespan, alongside the
//!    paper's improved `O(((ℓ+g)/G) log p)` preprocessing bound.
//! 3. **Worst case `O(Gh²)`** (§4.3): even when the randomized protocol's
//!    Chernoff bound fails, total stall per processor is bounded because a
//!    hot spot drains one message per `G`; [`gh_squared_check`] verifies
//!    measured times stay under the bound.

use crate::logp_on_bsp::{simulate_logp_on_bsp, Theorem1Config};
use bvl_exec::RunOptions;
use bvl_bsp::BspParams;
use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bvl_model::{HRelation, ModelError, Payload, ProcId, Steps};

/// Measurements from one native hot-spot run.
#[derive(Clone, Debug)]
pub struct HotSpotReport {
    /// Completion time.
    pub makespan: Steps,
    /// Total messages delivered to the target.
    pub delivered: u64,
    /// Stall episodes across all senders.
    pub stall_episodes: u64,
    /// Total stalled time across all senders.
    pub total_stall: Steps,
    /// Delivered messages per step over the drain window — the §2.2 claim
    /// is that this approaches `1/G`.
    pub drain_rate: f64,
    /// Mean end-to-end message latency (grows under stalling).
    pub mean_latency: f64,
}

/// Run `senders` processors each sending `k` messages to processor 0 and
/// report throughput/stall metrics.
pub fn hot_spot_study(
    params: LogpParams,
    senders: usize,
    k: usize,
    seed: u64,
) -> Result<HotSpotReport, ModelError> {
    let p = params.p;
    assert!(senders < p);
    let total_msgs = (senders * k) as u64;
    let mut programs = vec![Script::new(vec![Op::Recv; senders * k])];
    programs.extend((1..p).map(|i| {
        if i <= senders {
            Script::new((0..k).map(|q| Op::Send {
                dst: ProcId(0),
                payload: Payload::word(q as u32, i as i64),
            }))
        } else {
            Script::idle()
        }
    }));
    let config = LogpConfig {
        seed,
        ..LogpConfig::default()
    };
    let mut machine = LogpMachine::with_config(params, config, programs);
    let report = machine.run()?;
    Ok(HotSpotReport {
        makespan: report.makespan,
        delivered: report.delivered,
        stall_episodes: report.stall_episodes,
        total_stall: report.total_stall,
        drain_rate: total_msgs as f64 / report.makespan.get().max(1) as f64,
        mean_latency: report.latency.mean(),
    })
}

/// Result of hosting a *stalling* LogP program on BSP (§3).
#[derive(Clone, Debug)]
pub struct StallingOnBspReport {
    /// Native LogP makespan (stalling permitted).
    pub native: Steps,
    /// Hosted BSP cost under the naive cycle-by-cycle extension.
    pub hosted: Steps,
    /// Measured slowdown.
    pub slowdown: f64,
    /// The paper's improved preprocessing bound `O(((ℓ+g)/G) log p)` per
    /// cycle, for comparison.
    pub improved_bound_per_cycle: f64,
}

/// Host a stalling hot-spot program on BSP with the naive Theorem 1
/// extension (stall-freedom verification off) and compare costs.
pub fn stalling_on_bsp(
    logp: LogpParams,
    bsp: BspParams,
    senders: usize,
    k: usize,
    seed: u64,
) -> Result<StallingOnBspReport, ModelError> {
    let p = logp.p;
    let build = || {
        let mut programs = vec![Script::new(vec![Op::Recv; senders * k])];
        programs.extend((1..p).map(|i| {
            if i <= senders {
                Script::new((0..k).map(|q| Op::Send {
                    dst: ProcId(0),
                    payload: Payload::word(q as u32, i as i64),
                }))
            } else {
                Script::idle()
            }
        }));
        programs
    };
    let mut native = LogpMachine::with_config(
        logp,
        LogpConfig {
            seed,
            ..LogpConfig::default()
        },
        build(),
    );
    let native_time = native.run()?.makespan;

    let rep = simulate_logp_on_bsp(
        logp,
        bsp,
        build(),
        Theorem1Config {
            verify_stall_free: false,
        },
        &RunOptions::new(),
    )?;
    let hosted = rep.bsp.cost;
    Ok(StallingOnBspReport {
        native: native_time,
        hosted,
        slowdown: hosted.get() as f64 / native_time.get().max(1) as f64,
        improved_bound_per_cycle: crate::slowdown::stalling_simulation_bound(
            bsp.g, bsp.l, logp.g, p,
        ),
    })
}

/// Verify the §4.3 worst case: route a hot-spot h-relation by brute force
/// (everyone fires immediately, stalling permitted); completion must stay
/// within `c · Gh² + O(L)`.
pub fn gh_squared_check(
    params: LogpParams,
    rel: &HRelation,
    seed: u64,
) -> Result<(Steps, u64), ModelError> {
    let p = params.p;
    assert_eq!(rel.p(), p);
    let in_deg = rel.in_degrees();
    let mut sends: Vec<Vec<(ProcId, Payload)>> = vec![Vec::new(); p];
    for d in rel.demands() {
        sends[d.src.index()].push((d.dst, d.payload.clone()));
    }
    let scripts: Vec<Script> = (0..p)
        .map(|i| {
            let mut ops: Vec<Op> = sends[i]
                .iter()
                .map(|(dst, payload)| Op::Send {
                    dst: *dst,
                    payload: payload.clone(),
                })
                .collect();
            ops.extend(std::iter::repeat_n(Op::Recv, in_deg[i]));
            Script::new(ops)
        })
        .collect();
    let mut machine = LogpMachine::with_config(
        params,
        LogpConfig {
            seed,
            ..LogpConfig::default()
        },
        scripts,
    );
    let report = machine.run()?;
    let h = rel.degree() as u64;
    Ok((report.makespan, params.g * h * h))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_spot_drains_at_gap_rate() {
        // 6 senders x 4 messages to P0 with capacity 2: heavy stalling, but
        // the drain rate stays within a factor ~2 of 1/G.
        let params = LogpParams::new(8, 4, 1, 2).unwrap();
        let rep = hot_spot_study(params, 6, 4, 1).unwrap();
        assert_eq!(rep.delivered, 24);
        assert!(rep.stall_episodes > 0, "hot spot must stall");
        let gap_rate = 1.0 / params.g as f64;
        assert!(
            rep.drain_rate > 0.4 * gap_rate,
            "drain rate {} far below 1/G = {}",
            rep.drain_rate,
            gap_rate
        );
        assert!(rep.drain_rate <= gap_rate * 1.01);
    }

    #[test]
    fn latency_grows_under_stalling() {
        let params = LogpParams::new(8, 4, 1, 2).unwrap();
        let light = hot_spot_study(params, 2, 1, 1).unwrap();
        let heavy = hot_spot_study(params, 6, 4, 1).unwrap();
        assert!(heavy.mean_latency > light.mean_latency);
    }

    #[test]
    fn hosted_stalling_pays_more_than_stall_free_bound() {
        let logp = LogpParams::new(8, 8, 1, 2).unwrap();
        let bsp = BspParams::new(8, 2, 8).unwrap();
        let rep = stalling_on_bsp(logp, bsp, 7, 4, 2).unwrap();
        assert!(rep.slowdown > 0.0);
        assert!(rep.hosted > rep.native, "hosting cannot be free");
    }

    #[test]
    fn gh_squared_bound_holds_on_hot_spots() {
        let params = LogpParams::new(8, 4, 1, 2).unwrap();
        for (senders, k) in [(4usize, 2usize), (7, 3), (7, 6)] {
            let rel = HRelation::hot_spot(8, ProcId(0), senders, k);
            let (time, bound) = gh_squared_check(params, &rel, 3).unwrap();
            assert!(
                time.get() <= 2 * bound + 4 * params.l,
                "senders={senders} k={k}: {time:?} vs Gh^2 = {bound}"
            );
        }
    }
}

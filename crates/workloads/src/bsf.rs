//! The BSF (Bulk Synchronous Farm) master-worker machine.
//!
//! Ezhova–Sokolinsky's BSF model restricts BSP to the master-worker
//! skeleton that dominates cluster practice: each iteration, a master
//! *sequentially* distributes one chunk of work to each of `p` workers
//! (cost `t_t` per transfer), the workers compute their chunks in parallel
//! (`t_w` per unit), and the master sequentially collects the `p` results
//! (`t_t` each), plus a per-iteration setup `t_s`. The model's closed-form
//! iteration time ignores the overlap between later sends and earlier
//! computes:
//!
//! ```text
//! T_pred(p) = t_s + 2·p·t_t + ⌈units/p⌉·t_w
//! ```
//!
//! [`BsfMachine`] implements the finer *event-wise* semantics — worker `i`
//! starts as soon as its own transfer lands, and the master collects each
//! result as soon as both it and the master are free — as a third
//! [`Executor`] beside the BSP and LogP machines (one step = one
//! iteration). By construction the simulated time never exceeds the
//! prediction, and the two converge as compute dominates transfer; the
//! model's headline predictions ride along:
//!
//! * **speedup** `T(1)/T(p)`, provably ≤ `p`;
//! * the **scalability boundary** `p* = √(units·t_w / (2·t_t))`, the
//!   worker count past which the master's serial transfer loop beats the
//!   parallel compute gain and adding workers slows the farm down.
//!
//! The machine is RNG-free and single-threaded deterministic, so its rows
//! are shard- and thread-invariant trivially.

use bvl_exec::{drive, Executor, RunOutcome};
use bvl_model::{ModelError, Steps};

/// BSF machine parameters (all times in abstract steps).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BsfParams {
    /// Worker count `p` (the master is not counted).
    pub workers: usize,
    /// Work units distributed per iteration.
    pub units: u64,
    /// Transfer time `t_t`: master ↔ one worker, one chunk or result.
    pub tt: u64,
    /// Compute time `t_w` per work unit.
    pub tw: u64,
    /// Per-iteration setup time `t_s`.
    pub ts: u64,
    /// Iterations to run.
    pub iters: u64,
}

impl BsfParams {
    /// Validated constructor: `workers ≥ 1`, `units ≥ 1`, `t_t ≥ 1`,
    /// `t_w ≥ 1`, `iters ≥ 1` (`t_s` may be zero).
    pub fn new(
        workers: usize,
        units: u64,
        tt: u64,
        tw: u64,
        ts: u64,
        iters: u64,
    ) -> Result<BsfParams, ModelError> {
        if workers < 1 {
            return Err(ModelError::InvalidParams("BSF needs at least one worker".into()));
        }
        if units < 1 || tt < 1 || tw < 1 || iters < 1 {
            return Err(ModelError::InvalidParams(
                "BSF needs units >= 1, tt >= 1, tw >= 1, iters >= 1".into(),
            ));
        }
        Ok(BsfParams {
            workers,
            units,
            tt,
            tw,
            ts,
            iters,
        })
    }

    /// Worker `i`'s chunk: `⌊units/p⌋` plus one of the `units mod p`
    /// remainder units for the lowest-indexed workers.
    pub fn chunk(&self, i: usize) -> u64 {
        let p = self.workers as u64;
        self.units / p + u64::from((i as u64) < self.units % p)
    }

    /// The model's closed-form iteration time
    /// `t_s + 2·p·t_t + ⌈units/p⌉·t_w` (no send/compute overlap).
    pub fn predicted_iteration(&self) -> u64 {
        let p = self.workers as u64;
        self.ts + 2 * p * self.tt + self.units.div_ceil(p) * self.tw
    }

    /// Predicted total over all iterations.
    pub fn predicted_total(&self) -> u64 {
        self.iters * self.predicted_iteration()
    }

    /// Event-wise iteration time: the master's sends are serial (`i`-th
    /// transfer lands at `t_s + (i+1)·t_t`), each worker computes as soon
    /// as its chunk lands, and the master collects result `i` as soon as
    /// worker `i` has finished *and* the master is free — overlap the
    /// closed form gives away. Provably ≤ [`BsfParams::predicted_iteration`].
    pub fn simulated_iteration(&self) -> u64 {
        let mut send_done = self.ts;
        let mut finish = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            send_done += self.tt;
            finish.push(send_done + self.chunk(i) * self.tw);
        }
        let mut recv = 0u64;
        for f in finish {
            recv = recv.max(f) + self.tt;
        }
        recv
    }

    /// The scalability boundary `p* = √(units·t_w / (2·t_t))`: the
    /// continuous minimizer of the predicted curve. Past it, the master's
    /// `2·p·t_t` serial loop grows faster than the `units/p·t_w` compute
    /// shrinks, and adding workers slows the farm.
    pub fn optimal_workers(&self) -> f64 {
        ((self.units * self.tw) as f64 / (2 * self.tt) as f64).sqrt()
    }

    /// The same farm with a different worker count (for speedup curves).
    #[must_use]
    pub fn with_workers(&self, workers: usize) -> BsfParams {
        BsfParams {
            workers: workers.max(1),
            ..*self
        }
    }
}

/// The BSF master-worker machine: a deterministic [`Executor`] whose unit
/// of work is one full distribute–compute–collect iteration.
#[derive(Clone, Debug)]
pub struct BsfMachine {
    params: BsfParams,
    done: u64,
    makespan: Steps,
}

impl BsfMachine {
    /// Build a machine over validated parameters.
    pub fn new(params: BsfParams) -> BsfMachine {
        BsfMachine {
            params,
            done: 0,
            makespan: Steps::ZERO,
        }
    }

    /// The machine parameters.
    pub fn params(&self) -> &BsfParams {
        &self.params
    }

    /// Iterations completed so far.
    pub fn iterations(&self) -> u64 {
        self.done
    }

    /// Drive the farm to completion through the shared run loop.
    pub fn run(&mut self) -> Result<RunOutcome, ModelError> {
        drive(self, self.params.iters)
    }
}

impl Executor for BsfMachine {
    fn step(&mut self) -> Result<bool, ModelError> {
        if self.done >= self.params.iters {
            return Ok(false);
        }
        self.makespan += Steps(self.params.simulated_iteration());
        self.done += 1;
        Ok(true)
    }

    fn halted(&self) -> bool {
        self.done >= self.params.iters
    }

    fn outcome(&self) -> RunOutcome {
        RunOutcome {
            makespan: self.makespan,
            // One chunk out and one result back per worker per iteration.
            delivered: self.done * 2 * self.params.workers as u64,
            work: self.done * self.params.units,
            halted: self.halted(),
        }
    }
}

/// The measured-vs-predicted outcome of one BSF cell.
#[derive(Clone, Copy, Debug)]
pub struct BsfStudy {
    /// Event-wise simulated makespan.
    pub simulated: u64,
    /// Closed-form predicted makespan, ≥ `simulated`.
    pub predicted: u64,
    /// `predicted / simulated` — ≥ 1, → 1 as compute dominates transfer.
    pub ratio: f64,
    /// Simulated speedup `T(1) / T(p)`, provably ≤ `p`.
    pub speedup: f64,
    /// The scalability boundary `p*`.
    pub optimal_workers: f64,
}

/// Run one BSF cell: simulate the farm at `params.workers` and at one
/// worker, and report the model's predictions next to the measurements.
pub fn run_bsf(params: &BsfParams) -> Result<BsfStudy, ModelError> {
    let mut farm = BsfMachine::new(*params);
    let out = farm.run()?;
    let mut solo = BsfMachine::new(params.with_workers(1));
    let solo_out = solo.run()?;
    let simulated = out.makespan.get();
    let predicted = params.predicted_total();
    Ok(BsfStudy {
        simulated,
        predicted,
        ratio: predicted as f64 / simulated as f64,
        speedup: solo_out.makespan.get() as f64 / simulated as f64,
        optimal_workers: params.optimal_workers(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(workers: usize, units: u64) -> BsfParams {
        BsfParams::new(workers, units, 2, 8, 5, 3).unwrap()
    }

    #[test]
    fn invalid_params_are_rejected() {
        assert!(BsfParams::new(0, 8, 1, 1, 0, 1).is_err());
        assert!(BsfParams::new(4, 0, 1, 1, 0, 1).is_err());
        assert!(BsfParams::new(4, 8, 0, 1, 0, 1).is_err());
        assert!(BsfParams::new(4, 8, 1, 1, 0, 0).is_err());
        assert!(BsfParams::new(4, 8, 1, 1, 0, 1).is_ok());
    }

    #[test]
    fn chunks_partition_the_units() {
        let p = params(4, 10);
        let total: u64 = (0..4).map(|i| p.chunk(i)).sum();
        assert_eq!(total, 10);
        assert_eq!(p.chunk(0), 3);
        assert_eq!(p.chunk(3), 2);
    }

    #[test]
    fn simulation_never_exceeds_the_prediction() {
        for workers in [1, 2, 3, 7, 16] {
            for units in [1, 16, 160, 1000] {
                let p = params(workers, units);
                assert!(
                    p.simulated_iteration() <= p.predicted_iteration(),
                    "overlap can only help: p={workers} units={units}"
                );
            }
        }
    }

    #[test]
    fn prediction_converges_as_compute_dominates() {
        // tt fixed, tw·units/p growing: the serial transfer loop the
        // closed form double-counts becomes negligible.
        let coarse = BsfParams::new(4, 40_000, 2, 8, 5, 1).unwrap();
        let study = run_bsf(&coarse).unwrap();
        assert!(study.ratio >= 1.0);
        assert!(study.ratio < 1.01, "ratio {} should be ≈ 1", study.ratio);
    }

    #[test]
    fn speedup_is_bounded_by_worker_count() {
        for workers in [1, 2, 4, 8, 32] {
            let study = run_bsf(&params(workers, 640)).unwrap();
            assert!(study.speedup <= workers as f64 + 1e-9);
            assert!(study.speedup >= 1.0 || workers == 1);
        }
    }

    #[test]
    fn scalability_boundary_shows_in_the_curve() {
        // units·tw/(2tt) = 64·4/(2·2) = 64 → p* = 8: the predicted curve
        // must dip at 8 relative to both far sides.
        let base = BsfParams::new(8, 64, 2, 4, 0, 1).unwrap();
        assert!((base.optimal_workers() - 8.0).abs() < 1e-9);
        let at = |p: usize| base.with_workers(p).predicted_iteration();
        assert!(at(8) < at(2));
        assert!(at(8) < at(32), "past p* the serial master dominates");
    }

    #[test]
    fn executor_contract_and_determinism() {
        let p = params(4, 100);
        let mut m = BsfMachine::new(p);
        assert!(!m.halted());
        let out = m.run().unwrap();
        assert!(out.halted);
        assert_eq!(out.work, 300, "3 iterations × 100 units");
        assert_eq!(out.delivered, 3 * 2 * 4);
        assert_eq!(out.makespan, Steps(3 * p.simulated_iteration()));
        // Stepping past completion quiesces rather than erroring.
        assert!(!m.step().unwrap());
        // Bit-identical on re-run: the machine is deterministic.
        let again = BsfMachine::new(p).run().unwrap();
        assert_eq!(again, out);
    }
}

//! The BSP sample-sort study (Gerbessiotis–Siniolakis methodology).
//!
//! One cell of the study: generate `n` keys deterministically on
//! per-processor [`SeedStream`] lanes, sort them with the library's
//! direct-BSP sample sort, and report
//!
//! * the measured cost decomposed into its native `w + g·h + ℓ` terms
//!   (zero residual — the ledger charges exactly those terms), and
//! * the **1-optimality ratio**: measured cost over [`ideal_sort_cost`],
//!   the cost of the same 4-superstep schedule with perfectly balanced
//!   buckets. Every measured `w`/`h` term dominates its balanced
//!   counterpart (max ≥ mean, pigeonhole), so the ratio is provably ≥ 1,
//!   and it approaches 1 exactly as the regular sampling keeps buckets
//!   balanced — the paper's experimental question.
//!
//! The same SPMD program (via
//! [`bvl_algos::bsp::sort::sample_sort_processes`]) is then re-run through
//! the Theorem 2 cross-simulation onto a LogP machine with `G = g, L = ℓ`,
//! so each cell also reports the measured LogP-side slowdown against the
//! predicted `S = O(log p)` envelope (with the implementation's measured
//! protocol constant, [`THEOREM2_PROTOCOL_CONSTANT`]).

use bvl_algos::bsp::sort::{sample_sort_processes, sample_sort_with};
use bvl_bsp::BspParams;
use bvl_core::{simulate_bsp_on_logp, Theorem2Config};
use bvl_exec::RunOptions;
use bvl_logp::LogpParams;
use bvl_model::rngutil::SeedStream;
use bvl_model::{ModelError, Word};
use rand::Rng;

/// One cell of the sorting study.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SortConfig {
    /// Processors.
    pub p: usize,
    /// Total keys across all processors.
    pub n: u64,
    /// BSP gap `g` (also the LogP `G` of the cross-simulation). Must be
    /// ≥ 2 so the LogP constraint `max{2, o} ≤ G` holds.
    pub g: u64,
    /// BSP periodicity `ℓ` (also the LogP `L`). Must be ≥ `g`.
    pub l: u64,
    /// Master seed for the key-generation lanes.
    pub seed: u64,
}

/// The native-BSP leg of one study cell.
#[derive(Clone, Copy, Debug)]
pub struct SortLeg {
    /// Measured total cost (`Σ (w + g·h + ℓ·rounds)`).
    pub cost: u64,
    /// The balanced 1-optimal reference, [`ideal_sort_cost`].
    pub ideal: u64,
    /// `cost / ideal` — the 1-optimality ratio, provably ≥ 1.
    pub ratio: f64,
    /// Supersteps executed.
    pub supersteps: u64,
    /// `Σ w` — the computation term.
    pub work: u64,
    /// `g · Σ h` — the communication term.
    pub comm: u64,
    /// `cost − work − comm` — the synchronization term (`ℓ` per round;
    /// more than `ℓ·supersteps` when the run is streamed).
    pub sync: u64,
}

/// Theorem 2's slowdown guarantee is `S = O(log p)`; the asymptotic
/// expression suppresses the concrete protocol's constants (the CB
/// synchronization tree and the deterministic sorting-based router both
/// cost real steps the O-notation hides). This is the measured constant
/// for this implementation — the cross-simulation envelope is
/// `native · C · (1 + log₂ p)`, and the sorting study's measured
/// slowdowns sit below 85 % of it across the full grid range (worst case
/// `p = 2`, one key per processor, where the protocol's constant floor is
/// not yet amortized). The same suppressed-constant treatment is applied
/// to Theorem 1 in the stack experiment.
pub const THEOREM2_PROTOCOL_CONSTANT: f64 = 4.0;

/// The Theorem 2 cross-simulation leg: the same program on LogP.
#[derive(Clone, Copy, Debug)]
pub struct XsimLeg {
    /// Measured total simulated LogP time.
    pub total: u64,
    /// What the native BSP machine with `g = G, ℓ = L` charges.
    pub native: u64,
    /// `total / native` — the measured slowdown.
    pub slowdown: f64,
    /// The predicted envelope `native · C · (1 + log₂ p)` — Theorem 2's
    /// `S = O(log p)` with the implementation's measured constant
    /// [`THEOREM2_PROTOCOL_CONSTANT`].
    pub envelope: f64,
    /// Whether the measured total sits within the predicted envelope.
    pub in_envelope: bool,
}

/// The full outcome of one study cell.
#[derive(Clone, Copy, Debug)]
pub struct SortStudy {
    /// Native-BSP measurement.
    pub bsp: SortLeg,
    /// Theorem 2 cross-simulation measurement.
    pub xsim: XsimLeg,
    /// Output verification: globally sorted, a permutation of the input,
    /// and bit-identical between the two machines.
    pub sorted_ok: bool,
}

/// Deterministic per-processor key blocks: processor `i` draws its block
/// from `SeedStream(seed).derive("sort-keys", i)`, so any processor's keys
/// can be regenerated independently of the others (and independently of
/// `p`-wide iteration order). Blocks have size `⌈n/p⌉` or `⌊n/p⌋` with the
/// larger blocks first.
pub fn generate_keys(cfg: &SortConfig) -> Vec<Vec<Word>> {
    let stream = SeedStream::new(cfg.seed);
    let p = cfg.p as u64;
    (0..cfg.p)
        .map(|i| {
            let len = cfg.n / p + u64::from((i as u64) < cfg.n % p);
            let mut rng = stream.derive("sort-keys", i as u64);
            (0..len).map(|_| rng.gen_range(-1_000_000..1_000_000)).collect()
        })
        .collect()
}

/// The perfectly balanced cost of the 4-superstep sample-sort schedule:
///
/// ```text
/// s0: w = ⌈n/p⌉ (local sort)        h = p(p−1) (samples into P0)
/// s1: w = p(p−1) (splitter select)  h = p      (broadcast)
/// s2: w = ⌈n/p⌉ (partition)         h = ⌈n/p⌉  (balanced all-to-all)
/// s3: w = ⌈n/p⌉ (balanced merge)    h = 0
/// ```
///
/// each plus one `ℓ`. Every measured term dominates its balanced
/// counterpart — `w₀`, `h₀`, `w₁`, `h₁` are deterministic and exact, the
/// all-to-all degree and the merge block are maxima over processors whose
/// mean is `n/p` — so `measured / ideal ≥ 1` always, with equality
/// approached exactly when regular sampling balances the buckets.
pub fn ideal_sort_cost(cfg: &SortConfig) -> u64 {
    let p = cfg.p as u64;
    let b = cfg.n.div_ceil(p);
    let samples = p * (p - 1);
    3 * b + samples + cfg.g * (samples + p + b) + 4 * cfg.l
}

/// Run one cell of the study: the native BSP leg and the Theorem 2
/// cross-simulation leg, both on the same deterministic keys.
///
/// `opts` applies to the BSP leg in full (registry, threads, shards, the
/// pseudo-streaming window); the cross-simulation leg takes its seed and
/// fault decorator through [`RunOptions::subphase`] semantics.
pub fn run_sort(cfg: &SortConfig, opts: &RunOptions) -> Result<SortStudy, ModelError> {
    if cfg.p < 2 || !cfg.p.is_power_of_two() {
        return Err(ModelError::InvalidParams(
            "the sorting study needs p = 2^k >= 2 (the Theorem 2 leg routes \
             through the power-of-two deterministic sorting network)"
                .into(),
        ));
    }
    if cfg.n < cfg.p as u64 {
        return Err(ModelError::InvalidParams(format!(
            "need n >= p for nonempty blocks (n = {}, p = {})",
            cfg.n, cfg.p
        )));
    }
    let params = BspParams::new(cfg.p, cfg.g, cfg.l)?;
    let keys = generate_keys(cfg);
    let mut want: Vec<Word> = keys.iter().flatten().copied().collect();
    want.sort_unstable();

    // Native BSP leg.
    let (blocks, report) = sample_sort_with(params, keys.clone(), opts)?;
    let got: Vec<Word> = blocks.iter().flatten().copied().collect();
    let cost = report.cost.get();
    let work: u64 = report.records.iter().map(|r| r.w).sum();
    let comm: u64 = cfg.g * report.records.iter().map(|r| r.h).sum::<u64>();
    let ideal = ideal_sort_cost(cfg);
    let bsp = SortLeg {
        cost,
        ideal,
        ratio: cost as f64 / ideal as f64,
        supersteps: report.supersteps,
        work,
        comm,
        sync: cost - work - comm,
    };

    // Theorem 2 cross-simulation leg: the same program on LogP with
    // G = g, L = ℓ (o = 2, the smallest legal overhead).
    let logp = LogpParams::new(cfg.p, cfg.l, 2, cfg.g)?;
    let rep = simulate_bsp_on_logp(
        logp,
        sample_sort_processes(keys),
        Theorem2Config::default(),
        &opts.subphase(),
    )?;
    let envelope = rep.native_total.get() as f64
        * THEOREM2_PROTOCOL_CONSTANT
        * (1.0 + (cfg.p as f64).log2());
    let xsim = XsimLeg {
        total: rep.total.get(),
        native: rep.native_total.get(),
        slowdown: rep.slowdown(),
        envelope,
        in_envelope: (rep.total.get() as f64) <= envelope,
    };
    let xsim_got: Vec<Word> = rep
        .programs
        .into_iter()
        .flat_map(|pr| pr.into_state().received)
        .collect();

    Ok(SortStudy {
        bsp,
        xsim,
        sorted_ok: got == want && xsim_got == got,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg(p: usize, n: u64, seed: u64) -> SortConfig {
        SortConfig {
            p,
            n,
            g: 2,
            l: 16,
            seed,
        }
    }

    #[test]
    fn key_lanes_are_independent_of_p() {
        // Processor 2's block is the same whether the machine has 4 or 8
        // processors (modulo block length), because each lane derives from
        // its own (domain, lane) pair.
        let a = generate_keys(&cfg(4, 64, 7));
        let b = generate_keys(&cfg(8, 128, 7));
        assert_eq!(a[2], b[2]);
        assert_eq!(a.iter().map(Vec::len).sum::<usize>(), 64);
    }

    #[test]
    fn study_reports_a_ratio_of_at_least_one() {
        for seed in [0, 1, 1996] {
            let study = run_sort(&cfg(8, 512, seed), &RunOptions::new()).unwrap();
            assert!(study.sorted_ok, "seed {seed}: output must sort");
            assert!(
                study.bsp.ratio >= 1.0,
                "seed {seed}: measured {} below balanced ideal {}",
                study.bsp.cost,
                study.bsp.ideal
            );
            assert_eq!(
                study.bsp.cost,
                study.bsp.work + study.bsp.comm + study.bsp.sync,
                "decomposition must be zero-residual"
            );
            assert!(study.xsim.in_envelope, "seed {seed}: outside Theorem 2 envelope");
            assert!(study.xsim.slowdown > 0.0);
        }
    }

    #[test]
    fn ratio_tightens_as_blocks_grow() {
        // 1-optimality: with fixed p the ratio should approach 1 as n/p
        // grows (the fixed sample/splitter costs amortize away).
        let small = run_sort(&cfg(4, 64, 3), &RunOptions::new()).unwrap();
        let large = run_sort(&cfg(4, 4096, 3), &RunOptions::new()).unwrap();
        assert!(
            large.bsp.ratio < small.bsp.ratio,
            "ratio must tighten: {} !< {}",
            large.bsp.ratio,
            small.bsp.ratio
        );
        assert!(large.bsp.ratio < 2.0, "large blocks should be near-optimal");
    }

    #[test]
    fn streaming_inflates_only_the_sync_term() {
        let native = run_sort(&cfg(8, 512, 5), &RunOptions::new()).unwrap();
        let streamed = run_sort(&cfg(8, 512, 5), &RunOptions::new().streamed(16)).unwrap();
        assert!(streamed.sorted_ok);
        assert_eq!(streamed.bsp.work, native.bsp.work);
        assert_eq!(streamed.bsp.comm, native.bsp.comm);
        assert!(streamed.bsp.sync > native.bsp.sync);
        assert!(streamed.bsp.cost > native.bsp.cost);
    }

    #[test]
    fn tiny_configs_are_rejected() {
        assert!(run_sort(&cfg(1, 8, 0), &RunOptions::new()).is_err());
        assert!(run_sort(&cfg(8, 4, 0), &RunOptions::new()).is_err());
    }

    proptest! {
        /// The library sort already proptests correctness; this pins the
        /// *study*: for arbitrary seeds and sizes the output is sorted, a
        /// permutation of its input, identical across machines, and never
        /// beats the balanced ideal.
        #[test]
        fn sorted_permutation_and_optimality(seed in 0u64..1_000, n in 16u64..400, logp in 1u32..4) {
            let p = 1usize << logp; // the Theorem 2 leg needs p = 2^k
            let n = n.max(p as u64);
            let study = run_sort(&cfg(p, n, seed), &RunOptions::new()).unwrap();
            prop_assert!(study.sorted_ok);
            prop_assert!(study.bsp.ratio >= 1.0);
            prop_assert!(study.xsim.in_envelope);
        }
    }
}

//! Pseudo-streaming supersteps: the bounded-memory study.
//!
//! Buurlage-style pseudo-streaming keeps a superstep's working set fixed:
//! instead of routing a whole h-relation and synchronizing once, the
//! relation streams through a window of at most `window` messages per
//! processor, synchronizing after every round — `⌈h/window⌉` rounds, each
//! paying `ℓ`. The knob is [`bvl_exec::RunOptions::streamed`], so *any*
//! existing workload runs in streaming mode unchanged; this module drives
//! the sample-sort workload through it and quantifies the overhead
//! against the classical one-shot execution:
//!
//! ```text
//! streamed = native + ℓ · (rounds − supersteps)
//! ```
//!
//! an identity the study verifies exactly (both runs are deterministic on
//! the same seed), alongside output equality — streaming changes *when*
//! synchronization happens, never *what* is computed.

use crate::sort::{run_sort, SortConfig, SortStudy};
use bvl_exec::RunOptions;
use bvl_model::ModelError;

/// One cell of the streaming study.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamConfig {
    /// The underlying sort workload.
    pub sort: SortConfig,
    /// Streaming window: messages per processor per round.
    pub window: u64,
}

/// Outcome of one streaming cell: the same workload measured classically
/// and through the window.
#[derive(Clone, Copy, Debug)]
pub struct StreamStudy {
    /// Classical (one-shot h-relation) cost.
    pub native: u64,
    /// Cost with the relation streamed through the window.
    pub streamed: u64,
    /// Synchronization rounds paid by the streamed run (≥ supersteps).
    pub rounds: u64,
    /// Supersteps (identical in both runs).
    pub supersteps: u64,
    /// `streamed / native` — the bounded-memory overhead, ≥ 1.
    pub overhead: f64,
    /// Output verification from both underlying runs.
    pub sorted_ok: bool,
    /// The streamed leg's full study (1-optimality under streaming).
    pub study: SortStudy,
}

/// Run one streaming cell: the sort workload classically, then streamed,
/// on identical keys. `opts` must not itself carry a streaming window —
/// the cell owns that knob.
pub fn run_stream(cfg: &StreamConfig, opts: &RunOptions) -> Result<StreamStudy, ModelError> {
    if opts.stream.is_some() {
        return Err(ModelError::InvalidParams(
            "run_stream owns the streaming window; pass unstreamed options".into(),
        ));
    }
    let native = run_sort(&cfg.sort, opts)?;
    let streamed = run_sort(&cfg.sort, &opts.clone().streamed(cfg.window))?;
    // Both runs execute the identical superstep schedule, so the round
    // count falls out of the cost identity: every extra round costs ℓ.
    let extra = (streamed.bsp.cost - native.bsp.cost) / cfg.sort.l;
    Ok(StreamStudy {
        native: native.bsp.cost,
        streamed: streamed.bsp.cost,
        rounds: native.bsp.supersteps + extra,
        supersteps: native.bsp.supersteps,
        overhead: streamed.bsp.cost as f64 / native.bsp.cost as f64,
        sorted_ok: native.sorted_ok && streamed.sorted_ok,
        study: streamed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window: u64) -> StreamConfig {
        StreamConfig {
            sort: SortConfig {
                p: 8,
                n: 512,
                g: 2,
                l: 16,
                seed: 9,
            },
            window,
        }
    }

    #[test]
    fn narrow_windows_cost_more() {
        let wide = run_stream(&cfg(10_000), &RunOptions::new()).unwrap();
        let narrow = run_stream(&cfg(8), &RunOptions::new()).unwrap();
        assert!(wide.sorted_ok && narrow.sorted_ok);
        // A window larger than any relation reproduces the classical run.
        assert_eq!(wide.streamed, wide.native);
        assert_eq!(wide.rounds, wide.supersteps);
        assert!((wide.overhead - 1.0).abs() < 1e-9);
        // A narrow window pays for its extra rounds, and only in ℓ.
        assert!(narrow.streamed > narrow.native);
        assert!(narrow.rounds > narrow.supersteps);
        assert_eq!(
            narrow.streamed - narrow.native,
            (narrow.rounds - narrow.supersteps) * 16,
            "every extra round costs exactly one ℓ"
        );
    }

    #[test]
    fn pre_streamed_options_are_rejected() {
        let err = run_stream(&cfg(8), &RunOptions::new().streamed(4));
        assert!(err.is_err());
    }
}

//! # bvl-workloads — real-algorithm studies over the machine simulators
//!
//! The paper's comparison is only as convincing as the workloads driven
//! through it. The synthetic Theorem 1/2 grids exercise the machinery;
//! this crate drives *real algorithms* through the same `bvl-exec`
//! substrate and asks the questions the experimental literature asks:
//!
//! * [`sort`] — the BSP sample-sort study (Gerbessiotis–Siniolakis
//!   methodology): deterministic per-processor key generation on
//!   [`bvl_model::rngutil::SeedStream`] lanes, measured superstep cost
//!   decomposed into `w + g·h + ℓ`, and the **1-optimality ratio** —
//!   measured cost over the perfectly bucket-balanced cost of the same
//!   4-superstep schedule — reported per cell, on the native BSP machine
//!   *and* through the Theorem 2 cross-simulation onto LogP.
//! * [`stream`] — bounded-memory **pseudo-streaming** supersteps
//!   (Buurlage-style): any BSP workload re-run with
//!   [`bvl_exec::RunOptions::streamed`], its h-relations routed through a
//!   fixed working set of `window` messages per processor at one extra
//!   synchronization `ℓ` per round; the study quantifies the overhead
//!   against the classical one-shot relation.
//! * [`bsf`] — the **BSF** (Bulk Synchronous Farm, Ezhova–Sokolinsky)
//!   master-worker cost model as a third [`bvl_exec::Executor`] beside
//!   BSP and LogP, with its closed-form predicted iteration time checked
//!   against an event-wise simulation with compute/transfer overlap, plus
//!   the model's speedup and scalability-boundary predictions.
//!
//! Everything here is deterministic under the workspace contract: given a
//! seed, results are bit-identical at any thread or shard count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bsf;
pub mod sort;
pub mod stream;

pub use bsf::{run_bsf, BsfMachine, BsfParams, BsfStudy};
pub use sort::{generate_keys, ideal_sort_cost, run_sort, SortConfig, SortStudy};
pub use stream::{run_stream, StreamConfig, StreamStudy};

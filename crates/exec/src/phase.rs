//! The shared intra-instant event phases.
//!
//! Both the LogP engine's three-phase timeline and the trace validator's
//! same-instant ordering rely on one convention: at a single time step,
//! deliveries happen before submissions, and submissions before processor
//! wake-ups. Encoding the convention once here (rather than as per-crate
//! `PHASE_*` constants) makes the ordering a workspace-level contract.

/// Ordering of events that share a timestamp, earliest first.
///
/// The order is load-bearing: a message delivered at `t` must enter the
/// destination buffer before capacity is re-examined for submissions at
/// `t`, and a processor made ready at `t` must observe both.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Phase {
    /// A message arrives at its destination buffer.
    Deliver = 0,
    /// A processor hands a message to the medium.
    Submit = 1,
    /// A processor becomes schedulable again.
    Ready = 2,
}

impl Phase {
    /// Number of phases (sizing for phase-indexed queues).
    pub const COUNT: usize = 3;

    /// Every phase, in execution order.
    pub const ALL: [Phase; Phase::COUNT] = [Phase::Deliver, Phase::Submit, Phase::Ready];

    /// The wire/index form.
    #[inline]
    pub const fn as_u8(self) -> u8 {
        self as u8
    }

    /// The index form (for phase-bucketed arrays).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Phase::as_u8`].
    ///
    /// # Panics
    /// Panics on values outside `0..3` — phases never come from untrusted
    /// input, so an out-of-range value is an engine bug.
    #[inline]
    pub const fn from_u8(v: u8) -> Phase {
        match v {
            0 => Phase::Deliver,
            1 => Phase::Submit,
            2 => Phase::Ready,
            _ => panic!("invalid phase"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_orders() {
        for ph in Phase::ALL {
            assert_eq!(Phase::from_u8(ph.as_u8()), ph);
        }
        assert!(Phase::Deliver < Phase::Submit);
        assert!(Phase::Submit < Phase::Ready);
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
    }

    #[test]
    #[should_panic(expected = "invalid phase")]
    fn rejects_out_of_range() {
        let _ = Phase::from_u8(3);
    }
}

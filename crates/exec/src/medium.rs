//! Message-transport abstraction.
//!
//! The paper's models differ precisely in what sits between a submitted
//! message and its delivery: LogP's abstract latency-`L` channel with the
//! `⌈L/G⌉` capacity constraint, or a concrete §3 network routing over a
//! topology. A [`Medium`] captures exactly that seam — per-destination
//! capacity plus a delivery-time function — so the LogP engine can run
//! over either (the latter is how stacks ground Table 1's measured `g`/`L`
//! end-to-end).

use bvl_model::{Envelope, ProcId, Steps};
use rand::RngCore;

/// The transport between submission (accept) and delivery.
///
/// Implementations must be deterministic given the `rng` stream: the same
/// sequence of `delivery_time` calls with identically-seeded RNGs must
/// return the same times (the workspace determinism contract).
pub trait Medium {
    /// How many messages may be in transit towards `dst` at once (the
    /// Stalling Rule threshold; `⌈L/G⌉` in pure LogP).
    fn capacity(&self, dst: ProcId) -> u64;

    /// When a message accepted at `now` arrives at `env.dst`.
    ///
    /// Must return a time `> now` (delivery is never instantaneous). The
    /// `rng` is the machine's policy stream — draw from it only as the
    /// medium's policy requires, since every draw advances the stream.
    fn delivery_time(&mut self, env: &Envelope, now: Steps, rng: &mut dyn RngCore) -> Steps;

    /// Short human-readable label for reports.
    fn name(&self) -> &'static str {
        "medium"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_model::{MsgId, Payload};

    struct FixedDelay(u64);

    impl Medium for FixedDelay {
        fn capacity(&self, _dst: ProcId) -> u64 {
            1
        }

        fn delivery_time(&mut self, _env: &Envelope, now: Steps, _rng: &mut dyn RngCore) -> Steps {
            now + Steps(self.0)
        }
    }

    #[test]
    fn medium_is_object_safe() {
        let mut m: Box<dyn Medium> = Box::new(FixedDelay(4));
        let env = Envelope {
            id: MsgId(0),
            src: ProcId(0),
            dst: ProcId(1),
            payload: Payload::word(0, 7),
            submitted: Steps::ZERO,
            accepted: Steps::ZERO,
            delivered: Steps::ZERO,
        };
        let mut rng = rand_stub();
        assert_eq!(m.delivery_time(&env, Steps(3), &mut rng), Steps(7));
        assert_eq!(m.capacity(ProcId(1)), 1);
        assert_eq!(m.name(), "medium");
    }

    fn rand_stub() -> impl RngCore {
        struct Zero;
        impl RngCore for Zero {
            fn next_u32(&mut self) -> u32 {
                0
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
        }
        Zero
    }
}

//! Message-transport abstraction.
//!
//! The paper's models differ precisely in what sits between a submitted
//! message and its delivery: LogP's abstract latency-`L` channel with the
//! `⌈L/G⌉` capacity constraint, or a concrete §3 network routing over a
//! topology. A [`Medium`] captures exactly that seam — per-destination
//! capacity plus a delivery-time function — so the LogP engine can run
//! over either (the latter is how stacks ground Table 1's measured `g`/`L`
//! end-to-end).
//!
//! Because the seam carries *all* transport behaviour, it is also where
//! adversarial behaviour is injected: a [`WrapMedium`] decorates any inner
//! medium with delay jitter, reordering, duplication, or capacity faults
//! (see `bvl-fault`), and the engines apply the decorator from
//! [`crate::RunOptions`] without any API fork.

use bvl_model::{Envelope, ProcId, Steps};
use rand::RngCore;
use std::sync::Arc;

/// The transport between submission (accept) and delivery.
///
/// Implementations must be deterministic given the `rng` stream: the same
/// sequence of `delivery_time` calls with identically-seeded RNGs must
/// return the same times (the workspace determinism contract).
pub trait Medium {
    /// How many messages may be in transit towards `dst` at instant `now`
    /// (the Stalling Rule threshold; `⌈L/G⌉` in pure LogP). Most media are
    /// time-invariant and ignore `now`; fault decorators use it to model
    /// transient outages (capacity squeezes, stall bursts).
    fn capacity(&self, dst: ProcId, now: Steps) -> u64;

    /// When a message accepted at `now` arrives at `env.dst`.
    ///
    /// # Contract
    ///
    /// The returned time must be **strictly after `now`** — delivery is
    /// never instantaneous, and a time `< now` would make the medium a time
    /// machine (events scheduled in the engine's past are either lost or
    /// panic the timeline, depending on the implementation — neither is
    /// recoverable). Engines call this through
    /// [`Medium::delivery_time_checked`], which `debug_assert`s the
    /// contract so a misbehaving medium fails loudly in test builds
    /// instead of silently corrupting the clock.
    ///
    /// The `rng` is the machine's policy stream — draw from it only as the
    /// medium's policy requires, since every draw advances the stream.
    fn delivery_time(&mut self, env: &Envelope, now: Steps, rng: &mut dyn RngCore) -> Steps;

    /// [`Medium::delivery_time`] with the time-travel contract enforced
    /// (`delivered > now`) in debug builds. Engines must schedule through
    /// this entry point; implementors override `delivery_time` only.
    fn delivery_time_checked(
        &mut self,
        env: &Envelope,
        now: Steps,
        rng: &mut dyn RngCore,
    ) -> Steps {
        let at = self.delivery_time(env, now, rng);
        debug_assert!(
            at > now,
            "medium '{}' time-travelled: delivery at {at:?} for a message accepted at {now:?}",
            self.name()
        );
        at
    }

    /// An optional *second* delivery of the message just scheduled at
    /// `scheduled` (adversarial duplication). Engines query this right
    /// after [`Medium::delivery_time_checked`] for the same envelope; a
    /// `Some(t)` schedules an extra copy at `t > now` which occupies an
    /// in-transit slot like any accepted message. Receiving engines
    /// de-duplicate by message id (see [`Medium::may_duplicate`]), so
    /// program semantics see at-least-once delivery collapsed back to
    /// exactly-once.
    fn duplicate_delivery(
        &mut self,
        _env: &Envelope,
        _scheduled: Steps,
        _now: Steps,
        _rng: &mut dyn RngCore,
    ) -> Option<Steps> {
        None
    }

    /// Whether this medium may ever answer [`Medium::duplicate_delivery`]
    /// with `Some`. Engines that see `true` maintain a delivered-id set and
    /// drop duplicate copies at the buffer boundary; the default `false`
    /// keeps the hot path free of that bookkeeping.
    fn may_duplicate(&self) -> bool {
        false
    }

    /// When acceptance towards `dst` is blocked at `now` by a *transient*
    /// capacity outage (capacity 0 with nothing in transit to free a
    /// slot), the earliest future instant at which capacity may reappear.
    /// Engines schedule a re-poll of the Stalling Rule at that instant, so
    /// a stall burst extends stalls instead of wedging the run. Permanent
    /// media (`None`, the default) need no wake-ups: any saturation is
    /// resolved by a future delivery.
    fn wake_hint(&mut self, _dst: ProcId, _now: Steps) -> Option<Steps> {
        None
    }

    /// Short human-readable label for reports.
    fn name(&self) -> &'static str {
        "medium"
    }

    /// An independent replica of this medium for one shard of a sharded
    /// engine, or `None` when the medium's behaviour depends on global
    /// call-order state that cannot be partitioned (a routed network's
    /// shared link clocks, say). Media whose per-message behaviour is a
    /// pure function of the envelope, the clock, and the supplied RNG are
    /// safely replicable; stateful ones return `None` and the engine falls
    /// back to a single shard rather than silently diverging.
    fn shard_replica(&self) -> Option<Box<dyn Medium + Send>> {
        None
    }
}

/// A medium decorator: wraps any transport in another (typically
/// adversarial) transport. Carried by [`crate::RunOptions`] so every
/// machine, router and simulator in the workspace can run under injected
/// faults through the one options struct — no `*_faulted` API forks.
pub trait WrapMedium: Send + Sync {
    /// Wrap `inner`, returning the decorated medium.
    fn wrap(&self, inner: Box<dyn Medium + Send>) -> Box<dyn Medium + Send>;

    /// Human-readable description of the decoration (for `Debug` output
    /// and experiment reports).
    fn label(&self) -> String;
}

impl std::fmt::Debug for dyn WrapMedium {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WrapMedium({})", self.label())
    }
}

/// The transport face of pseudo-streaming: a decorator that caps the
/// inner medium's per-destination capacity at the streaming window, so a
/// message-level engine run under [`crate::RunOptions::stream`] admits at
/// most `window` in-flight messages per destination — the bounded working
/// set — while delivery times, duplication and wake hints pass through
/// untouched. The superstep-level engines model the same window by
/// splitting each h-relation into `⌈h/window⌉` synchronization rounds;
/// this wrapper is the equivalent knob for engines whose unit of transport
/// is the individual message.
pub struct StreamMedium {
    inner: Box<dyn Medium + Send>,
    window: u64,
}

impl StreamMedium {
    /// Cap `inner`'s per-destination capacity at `window` (clamped ≥ 1).
    pub fn new(inner: Box<dyn Medium + Send>, window: u64) -> StreamMedium {
        StreamMedium {
            inner,
            window: window.max(1),
        }
    }
}

impl Medium for StreamMedium {
    fn capacity(&self, dst: ProcId, now: Steps) -> u64 {
        self.inner.capacity(dst, now).min(self.window)
    }

    fn delivery_time(&mut self, env: &Envelope, now: Steps, rng: &mut dyn RngCore) -> Steps {
        self.inner.delivery_time(env, now, rng)
    }

    fn duplicate_delivery(
        &mut self,
        env: &Envelope,
        scheduled: Steps,
        now: Steps,
        rng: &mut dyn RngCore,
    ) -> Option<Steps> {
        self.inner.duplicate_delivery(env, scheduled, now, rng)
    }

    fn may_duplicate(&self) -> bool {
        self.inner.may_duplicate()
    }

    fn wake_hint(&mut self, dst: ProcId, now: Steps) -> Option<Steps> {
        self.inner.wake_hint(dst, now)
    }

    fn name(&self) -> &'static str {
        "streamed"
    }

    fn shard_replica(&self) -> Option<Box<dyn Medium + Send>> {
        self.inner
            .shard_replica()
            .map(|m| Box::new(StreamMedium::new(m, self.window)) as Box<dyn Medium + Send>)
    }
}

/// Apply an optional decorator to a medium (identity when `wrap` is
/// `None`). The helper engines use to honour [`crate::RunOptions::fault`].
pub fn wrap_medium(
    wrap: Option<&Arc<dyn WrapMedium>>,
    inner: Box<dyn Medium + Send>,
) -> Box<dyn Medium + Send> {
    match wrap {
        Some(w) => w.wrap(inner),
        None => inner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_model::{MsgId, Payload};

    struct FixedDelay(u64);

    impl Medium for FixedDelay {
        fn capacity(&self, _dst: ProcId, _now: Steps) -> u64 {
            1
        }

        fn delivery_time(&mut self, _env: &Envelope, now: Steps, _rng: &mut dyn RngCore) -> Steps {
            now + Steps(self.0)
        }
    }

    fn env() -> Envelope {
        Envelope {
            id: MsgId(0),
            src: ProcId(0),
            dst: ProcId(1),
            payload: Payload::word(0, 7),
            submitted: Steps::ZERO,
            accepted: Steps::ZERO,
            delivered: Steps::ZERO,
        }
    }

    #[test]
    fn medium_is_object_safe() {
        let mut m: Box<dyn Medium> = Box::new(FixedDelay(4));
        let mut rng = rand_stub();
        assert_eq!(m.delivery_time(&env(), Steps(3), &mut rng), Steps(7));
        assert_eq!(m.capacity(ProcId(1), Steps::ZERO), 1);
        assert_eq!(m.name(), "medium");
        // Defaults: no duplication, no wake-ups, no shard replicas.
        assert!(m.shard_replica().is_none());
        assert!(!m.may_duplicate());
        assert!(m
            .duplicate_delivery(&env(), Steps(7), Steps(3), &mut rng)
            .is_none());
        assert!(m.wake_hint(ProcId(1), Steps(3)).is_none());
    }

    #[test]
    fn checked_delivery_accepts_future_times() {
        let mut m = FixedDelay(1);
        let mut rng = rand_stub();
        assert_eq!(m.delivery_time_checked(&env(), Steps(9), &mut rng), Steps(10));
    }

    /// The satellite contract: a medium returning `delivered ≤ now` is a
    /// time machine and must fail loudly (debug builds).
    #[test]
    #[should_panic(expected = "time-travelled")]
    fn checked_delivery_rejects_time_travel() {
        let mut m = FixedDelay(0); // delivery at `now` — instantaneous
        let mut rng = rand_stub();
        let _ = m.delivery_time_checked(&env(), Steps(5), &mut rng);
    }

    #[test]
    fn stream_medium_caps_capacity_only() {
        struct Wide;
        impl Medium for Wide {
            fn capacity(&self, _dst: ProcId, _now: Steps) -> u64 {
                100
            }
            fn delivery_time(
                &mut self,
                _env: &Envelope,
                now: Steps,
                _rng: &mut dyn RngCore,
            ) -> Steps {
                now + Steps(9)
            }
            fn shard_replica(&self) -> Option<Box<dyn Medium + Send>> {
                Some(Box::new(Wide))
            }
        }
        let mut m = StreamMedium::new(Box::new(Wide), 4);
        assert_eq!(m.capacity(ProcId(0), Steps::ZERO), 4);
        let mut rng = rand_stub();
        assert_eq!(m.delivery_time(&env(), Steps(1), &mut rng), Steps(10));
        assert_eq!(m.name(), "streamed");
        // Replicas keep the cap; a window of 0 clamps to 1.
        let rep = m.shard_replica().expect("inner is replicable");
        assert_eq!(rep.capacity(ProcId(0), Steps::ZERO), 4);
        assert_eq!(
            StreamMedium::new(Box::new(Wide), 0).capacity(ProcId(0), Steps::ZERO),
            1
        );
        // The cap never *raises* a narrow medium's capacity.
        assert_eq!(
            StreamMedium::new(Box::new(FixedDelay(1)), 8).capacity(ProcId(0), Steps::ZERO),
            1
        );
    }

    #[test]
    fn wrap_medium_identity_when_absent() {
        let m = wrap_medium(None, Box::new(FixedDelay(2)));
        assert_eq!(m.name(), "medium");
    }

    #[test]
    fn wrap_medium_applies_decorator() {
        struct Relabel;
        struct Relabeled(Box<dyn Medium + Send>);
        impl Medium for Relabeled {
            fn capacity(&self, dst: ProcId, now: Steps) -> u64 {
                self.0.capacity(dst, now)
            }
            fn delivery_time(
                &mut self,
                env: &Envelope,
                now: Steps,
                rng: &mut dyn RngCore,
            ) -> Steps {
                self.0.delivery_time(env, now, rng)
            }
            fn name(&self) -> &'static str {
                "relabeled"
            }
        }
        impl WrapMedium for Relabel {
            fn wrap(&self, inner: Box<dyn Medium + Send>) -> Box<dyn Medium + Send> {
                Box::new(Relabeled(inner))
            }
            fn label(&self) -> String {
                "relabel".into()
            }
        }
        let wrap: Arc<dyn WrapMedium> = Arc::new(Relabel);
        let mut m = wrap_medium(Some(&wrap), Box::new(FixedDelay(2)));
        assert_eq!(m.name(), "relabeled");
        let mut rng = rand_stub();
        assert_eq!(m.delivery_time(&env(), Steps(1), &mut rng), Steps(3));
        assert_eq!(format!("{:?}", &*wrap), "WrapMedium(relabel)");
    }

    fn rand_stub() -> impl RngCore {
        struct Zero;
        impl RngCore for Zero {
            fn next_u32(&mut self) -> u32 {
                0
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
        }
        Zero
    }
}

//! The run-loop contract.
//!
//! An [`Executor`] is "a machine that runs programs": anything that can be
//! advanced one unit of work at a time, asked whether it has finished, and
//! asked for a uniform [`RunOutcome`]. The LogP machine (unit = one timeline
//! event), the BSP machine (unit = one superstep), and the network router
//! (unit = one synchronous routing step) all implement it, so drivers,
//! budget enforcement, and stacked simulations can treat them uniformly.

use bvl_model::{ModelError, Steps};

/// Uniform progress report shared by every [`Executor`].
///
/// Engines keep their richer, model-specific reports (`LogpReport`,
/// `RunReport`, `RouteOutcome`); `RunOutcome` is the common denominator a
/// generic driver can rely on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunOutcome {
    /// Virtual time reached (makespan so far).
    pub makespan: Steps,
    /// Messages delivered to their destinations so far.
    pub delivered: u64,
    /// Units of work executed (events / supersteps / routing steps).
    pub work: u64,
    /// Whether the run has fully completed.
    pub halted: bool,
}

/// A steppable machine with a uniform completion/report surface.
pub trait Executor {
    /// Advance one unit of work (an event, a superstep, a routing step).
    ///
    /// Returns `Ok(true)` if work was done, `Ok(false)` if the machine has
    /// quiesced (nothing left to execute — which is *not* the same as every
    /// program having halted; see [`Executor::halted`]).
    fn step(&mut self) -> Result<bool, ModelError>;

    /// Whether the run has fully completed.
    fn halted(&self) -> bool;

    /// The uniform report of progress so far (valid at any point).
    fn outcome(&self) -> RunOutcome;
}

/// Drive an executor to quiescence under a step budget.
///
/// This is the one run loop in the workspace: every engine's `run` method
/// delegates here, so budget semantics ([`ModelError::Timeout`] when the
/// budget is exhausted with work remaining) are identical everywhere.
pub fn drive<E: Executor + ?Sized>(exec: &mut E, budget: u64) -> Result<RunOutcome, ModelError> {
    let mut steps: u64 = 0;
    loop {
        if !exec.step()? {
            return Ok(exec.outcome());
        }
        steps += 1;
        if steps > budget {
            return Err(ModelError::Timeout { budget });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_model::Steps;

    struct Countdown {
        left: u64,
        done: u64,
    }

    impl Executor for Countdown {
        fn step(&mut self) -> Result<bool, ModelError> {
            if self.left == 0 {
                return Ok(false);
            }
            self.left -= 1;
            self.done += 1;
            Ok(true)
        }

        fn halted(&self) -> bool {
            self.left == 0
        }

        fn outcome(&self) -> RunOutcome {
            RunOutcome {
                makespan: Steps(self.done),
                delivered: 0,
                work: self.done,
                halted: self.halted(),
            }
        }
    }

    #[test]
    fn drives_to_quiescence() {
        let mut m = Countdown { left: 5, done: 0 };
        let out = drive(&mut m, 100).unwrap();
        assert_eq!(out.makespan, Steps(5));
        assert!(out.halted);
    }

    #[test]
    fn budget_exhaustion_is_timeout() {
        let mut m = Countdown { left: 50, done: 0 };
        let err = drive(&mut m, 10).unwrap_err();
        assert_eq!(err, ModelError::Timeout { budget: 10 });
    }

    #[test]
    fn budget_equal_to_work_succeeds() {
        let mut m = Countdown { left: 10, done: 0 };
        assert!(drive(&mut m, 10).is_ok());
    }
}

//! # bvl-exec — the execution substrate
//!
//! BSP, LogP, and the §3 networks are *interchangeable layers* related by
//! constant-factor simulations; this crate defines the contracts that make
//! the workspace's engines interchangeable in code:
//!
//! * [`Executor`] — the run-loop contract (step / halt / uniform
//!   [`RunOutcome`]), with [`drive`] as the one budget-enforcing loop.
//! * [`RunOptions`] — the one way to parameterize a run (seed, trace,
//!   registry, threads, clock base, budget), replacing positional-argument
//!   growth and forked `*_obs` entry points.
//! * [`Instruments`] — the per-machine instrumentation bundle (trace,
//!   registry, message-id allocator), deduplicated out of every engine.
//! * [`Medium`] — the transport seam between submission and delivery, so a
//!   LogP machine can run over the abstract latency-`L` channel or over a
//!   concrete routed topology; [`WrapMedium`] decorates that seam (the
//!   fault-injection hook, carried by [`RunOptions::fault`]).
//! * [`Phase`] — the shared same-instant event ordering
//!   (deliver < submit < ready).
//! * [`ShardPlan`] / [`Rendezvous`] — the partition and lock-step barrier
//!   underneath the sharded big-`p` engines (DESIGN.md §13).
//! * [`Stacked`] / [`RunStack`] — guest-over-host composition, the
//!   paper's theorems as a combinator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod medium;
mod options;
mod outcome;
mod phase;
mod shard;
mod stacked;

pub use medium::{wrap_medium, Medium, StreamMedium, WrapMedium};
pub use options::{Instruments, RunOptions};
pub use outcome::{drive, Executor, RunOutcome};
pub use phase::Phase;
pub use shard::{Rendezvous, ShardPlan};
pub use stacked::{MediumGuest, RunStack, Stacked};

//! Sharding primitives for the big-`p` engines.
//!
//! A sharded engine partitions the `p` simulated processors into
//! contiguous blocks ([`ShardPlan`]), one per worker thread, and advances
//! all shards through the same sequence of virtual instants in lock-step.
//! Within an instant the workers synchronize at sub-phase boundaries
//! (arrival → notify → ready) with a reusable [`Rendezvous`] barrier, so
//! cross-shard effects published in one sub-phase are visible — and
//! consumed in a canonical, shard-count-invariant order — in the next.
//! The determinism argument lives in DESIGN.md §13; the engines that use
//! these pieces are `bvl-logp` and `bvl-bsp`.

use std::sync::{Condvar, Mutex};

/// A contiguous block partition of `p` processors into `shards` shards.
///
/// Shard `s` owns processors `[s*chunk, min((s+1)*chunk, p))` with
/// `chunk = ⌈p/shards⌉`, so every shard except possibly the last has the
/// same size and ownership is computable from the processor index alone —
/// no lookup tables on the hot path.
///
/// ```
/// use bvl_exec::ShardPlan;
/// let plan = ShardPlan::new(10, 4);
/// assert_eq!(plan.shards(), 4);
/// assert_eq!(plan.range(0), 0..3);
/// assert_eq!(plan.range(3), 9..10);
/// assert_eq!(plan.owner(9), 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    p: usize,
    shards: usize,
    chunk: usize,
}

impl ShardPlan {
    /// Partition `p` processors into at most `shards` blocks. The
    /// effective shard count may be lower than requested: it is clamped to
    /// `[1, p]` and then to the number of non-empty `⌈p/shards⌉`-sized
    /// blocks (an empty shard would deadlock the lock-step barriers).
    pub fn new(p: usize, shards: usize) -> ShardPlan {
        assert!(p >= 1, "ShardPlan requires p >= 1");
        let chunk = p.div_ceil(shards.clamp(1, p));
        ShardPlan {
            p,
            shards: p.div_ceil(chunk),
            chunk,
        }
    }

    /// Total processor count.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Effective shard count (after clamping to `p`).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning processor `i`.
    #[inline]
    pub fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.p);
        i / self.chunk
    }

    /// The processor range owned by shard `s`.
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        debug_assert!(s < self.shards);
        let lo = s * self.chunk;
        let hi = ((s + 1) * self.chunk).min(self.p);
        lo..hi
    }
}

/// A reusable rendezvous barrier for a fixed party of workers.
///
/// Unlike `std::sync::Barrier` this one hands the *last* arriving worker a
/// leader token **while the others are still parked**, lets the leader run
/// a serial section, and only releases the party when the leader calls
/// [`Rendezvous::release`]. The sharded engines use the serial section for
/// the canonical cross-shard merge (trace events, error reduction, next
/// instant election) that must observe every shard's sub-phase output
/// before any shard proceeds.
#[derive(Debug)]
pub struct Rendezvous {
    inner: Mutex<Wait>,
    cv: Condvar,
    parties: usize,
}

#[derive(Debug)]
struct Wait {
    arrived: usize,
    generation: u64,
}

impl Rendezvous {
    /// A barrier for `parties` workers.
    pub fn new(parties: usize) -> Rendezvous {
        assert!(parties >= 1);
        Rendezvous {
            inner: Mutex::new(Wait {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
            parties,
        }
    }

    /// Arrive at the barrier. Returns `true` for exactly one worker per
    /// round — the leader — which must then call [`Rendezvous::release`]
    /// to free the rest; every other worker blocks until that release.
    pub fn arrive(&self) -> bool {
        let mut w = self.inner.lock().unwrap();
        w.arrived += 1;
        if w.arrived == self.parties {
            true
        } else {
            // Waiters park on the generation counter: release() bumps it,
            // so a waiter is free exactly when the round it arrived in has
            // been released (robust against spurious wake-ups).
            let gen = w.generation;
            let _unused = self.cv.wait_while(w, |w| w.generation == gen).unwrap();
            false
        }
    }

    /// Release the workers parked in the current round (leader only).
    pub fn release(&self) {
        let mut w = self.inner.lock().unwrap();
        debug_assert_eq!(w.arrived, self.parties, "release without full arrival");
        w.arrived = 0;
        w.generation += 1;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn plan_partitions_exactly() {
        for p in [1usize, 2, 7, 10, 64, 1000] {
            for shards in [1usize, 2, 3, 4, 7, 64] {
                let plan = ShardPlan::new(p, shards);
                // Ranges tile [0, p) without gaps or overlaps…
                let mut covered = 0;
                for s in 0..plan.shards() {
                    let r = plan.range(s);
                    assert_eq!(r.start, covered, "gap before shard {s} (p={p})");
                    assert!(!r.is_empty(), "empty shard {s} (p={p}, shards={shards})");
                    covered = r.end;
                }
                assert_eq!(covered, p);
                // …and owner() agrees with range().
                for s in 0..plan.shards() {
                    for i in plan.range(s) {
                        assert_eq!(plan.owner(i), s);
                    }
                }
            }
        }
    }

    #[test]
    fn plan_clamps_shards_to_p() {
        let plan = ShardPlan::new(3, 16);
        assert_eq!(plan.shards(), 3);
        assert_eq!(plan.p(), 3);
    }

    #[test]
    fn rendezvous_elects_one_leader_per_round() {
        let parties = 4;
        let rounds = 50;
        let rv = Rendezvous::new(parties);
        let leaders = AtomicUsize::new(0);
        let serial = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..parties {
                scope.spawn(|| {
                    for r in 0..rounds {
                        if rv.arrive() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                            // Serial section: no other worker is running.
                            assert_eq!(serial.load(Ordering::SeqCst), r);
                            serial.store(r + 1, Ordering::SeqCst);
                            rv.release();
                        }
                        // Everyone observes the leader's serial write.
                        assert!(serial.load(Ordering::SeqCst) > r);
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), rounds);
        assert_eq!(serial.load(Ordering::SeqCst), rounds);
    }

    #[test]
    fn rendezvous_single_party_never_blocks() {
        let rv = Rendezvous::new(1);
        for _ in 0..10 {
            assert!(rv.arrive());
            rv.release();
        }
    }
}

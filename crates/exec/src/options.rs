//! Run configuration and the shared instrumentation bundle.
//!
//! [`RunOptions`] is the one way to parameterize a run: every engine and
//! cross-simulation entry point takes `&RunOptions` instead of growing
//! positional `seed`/`registry`/`base` arguments or forked `*_obs`
//! variants. [`Instruments`] is the matching per-machine state — trace,
//! registry handle, message-id allocator — deduplicated out of the three
//! engines that used to each hand-roll it.

use crate::medium::WrapMedium;
use bvl_model::{MsgId, Steps, Trace};
use bvl_obs::{Registry, Tier};
use std::sync::Arc;

/// Options shared by every run entry point in the workspace.
///
/// Construct with the builder methods; `RunOptions::default()` reproduces
/// the historical defaults (seed 0, untraced, disabled registry, one
/// thread, clock at zero, engine-default budget):
///
/// ```
/// use bvl_exec::RunOptions;
/// use bvl_obs::Registry;
///
/// let registry = Registry::enabled(8);
/// let opts = RunOptions::new().seed(1996).traced().registry(&registry);
/// assert_eq!(opts.seed, 1996);
/// assert!(opts.trace && opts.registry.is_enabled());
/// ```
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Master seed for every randomized policy in the run.
    pub seed: u64,
    /// Record a full event trace (off by default; hot paths stay clean).
    pub trace: bool,
    /// Observability registry; `Registry::disabled()` is inert.
    pub registry: Registry,
    /// Observability tier ceiling for this run: the engines record through
    /// `registry.at_tier(obs_tier)`, so a run can ask for less than its
    /// registry was built to record (never more). `Tier::Full` — the
    /// historical behaviour — by default. Observability-only: excluded
    /// from [`RunOptions::canonical`] like the registry itself.
    pub obs_tier: Tier,
    /// Worker threads for engines with a parallel local phase (BSP).
    pub threads: usize,
    /// Shards for engines that partition the simulated machine itself
    /// across worker threads (the big-`p` engines). Like `threads`, shard
    /// count is determinism-invariant by contract: results and traces are
    /// bit-identical at any shard count.
    pub shards: usize,
    /// Virtual-clock offset: spans and derived times are reported relative
    /// to this base (used when a run is one phase of a larger simulation).
    pub clock_base: Steps,
    /// Step/superstep budget before a [`bvl_model::ModelError::Timeout`];
    /// `None` means the engine's own default.
    pub budget: Option<u64>,
    /// Adversarial medium decorator (deterministic fault injection, see
    /// `bvl-fault`). When present, every engine with a transport seam wraps
    /// its medium before running — machines, routers and simulators all
    /// pick faults up from the one options struct, no API forks.
    pub fault: Option<Arc<dyn WrapMedium>>,
    /// Pseudo-streaming window (Buurlage-style bounded-memory supersteps):
    /// when set, engines that charge whole h-relations instead stream each
    /// relation through a working set of at most `window` messages per
    /// processor, paying one extra synchronization `ℓ` per additional
    /// round — cost `w + g·h + ℓ·⌈h/window⌉` per superstep. `None` (the
    /// default) is the classical one-shot h-relation. Result-affecting:
    /// included in [`RunOptions::canonical`].
    pub stream: Option<u64>,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            seed: 0,
            trace: false,
            registry: Registry::disabled(),
            obs_tier: Tier::Full,
            threads: 1,
            shards: 1,
            clock_base: Steps::ZERO,
            budget: None,
            fault: None,
            stream: None,
        }
    }
}

impl RunOptions {
    /// The default options (see type-level docs).
    pub fn new() -> RunOptions {
        RunOptions::default()
    }

    /// Set the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> RunOptions {
        self.seed = seed;
        self
    }

    /// Enable full event tracing.
    #[must_use]
    pub fn traced(mut self) -> RunOptions {
        self.trace = true;
        self
    }

    /// Attach a registry handle (cloned; registries are cheap handles).
    #[must_use]
    pub fn registry(mut self, registry: &Registry) -> RunOptions {
        self.registry = registry.clone();
        self
    }

    /// Cap the run's observability at `tier` (see [`RunOptions::obs_tier`]).
    #[must_use]
    pub fn obs(mut self, tier: Tier) -> RunOptions {
        self.obs_tier = tier;
        self
    }

    /// Set the worker-thread count for parallel local phases.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> RunOptions {
        self.threads = threads.max(1);
        self
    }

    /// Set the shard count for engines that partition processor state
    /// across worker threads.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> RunOptions {
        self.shards = shards.max(1);
        self
    }

    /// Offset the run's virtual clock (span emission base).
    #[must_use]
    pub fn at(mut self, clock_base: Steps) -> RunOptions {
        self.clock_base = clock_base;
        self
    }

    /// Cap the run at `budget` steps/supersteps.
    #[must_use]
    pub fn budget(mut self, budget: u64) -> RunOptions {
        self.budget = Some(budget);
        self
    }

    /// The budget to use given an engine default.
    pub fn budget_or(&self, default: u64) -> u64 {
        self.budget.unwrap_or(default)
    }

    /// Inject a medium decorator: every engine run under these options
    /// wraps its transport in `wrap` (adversarial media, fault plans).
    #[must_use]
    pub fn faults(mut self, wrap: Arc<dyn WrapMedium>) -> RunOptions {
        self.fault = Some(wrap);
        self
    }

    /// Stream h-relations through a bounded working set of `window`
    /// messages per processor (clamped to at least 1); see
    /// [`RunOptions::stream`].
    #[must_use]
    pub fn streamed(mut self, window: u64) -> RunOptions {
        self.stream = Some(window.max(1));
        self
    }

    /// Whether these options carry a fault decorator. Protocols whose
    /// correctness argument *assumes* a well-behaved medium (e.g. the
    /// stall-free schedules of §4.2) use this to downgrade
    /// `forbid_stalling` from an invariant check to a measurement.
    pub fn faulted(&self) -> bool {
        self.fault.is_some()
    }

    /// Canonical one-line serialization of every field that can change a
    /// run's *results*, for content-addressed caching (`bvl-lab`). Two
    /// options values with equal canonical forms are behaviourally
    /// interchangeable; fields that only affect observability (the
    /// registry, whose spans never feed back into the simulation) are
    /// deliberately excluded, and `threads`/`shards` are excluded because
    /// every engine's determinism contract makes results invariant under
    /// both thread count and shard count.
    ///
    /// The format is a stable `k=v` list — append-only by construction
    /// (new fields must be added at the end with a `-` default so that old
    /// canonical strings stay valid cache keys until the code fingerprint
    /// rotates them out).
    pub fn canonical(&self) -> String {
        format!(
            "seed={} trace={} clock_base={} budget={} fault={} stream={}",
            self.seed,
            self.trace,
            self.clock_base.get(),
            self.budget.map_or_else(|| "-".into(), |b| b.to_string()),
            self.fault.as_ref().map_or_else(|| "-".into(), |f| f.label()),
            self.stream.map_or_else(|| "-".into(), |w| w.to_string()),
        )
    }

    /// Options for a sub-phase machine: same seed and fault decorator,
    /// everything else default. Phase drivers (CB passes, sorting rounds,
    /// routing cycles) run many short-lived machines whose registries,
    /// budgets and clock bases are managed by the driver itself — only the
    /// adversary, the seed, the streaming window, the shard count and the
    /// observability tier
    /// propagate down (shards are result-invariant, so propagating them is
    /// pure parallelism; the tier caps whatever registry the driver
    /// attaches, so a run observed at `counters` does not re-widen in its
    /// sub-phases).
    pub fn subphase(&self) -> RunOptions {
        RunOptions {
            seed: self.seed,
            fault: self.fault.clone(),
            shards: self.shards,
            obs_tier: self.obs_tier,
            stream: self.stream,
            ..RunOptions::default()
        }
    }
}

/// The instrumentation bundle every machine carries: event trace,
/// observability registry, and the run-unique message-id allocator.
#[derive(Debug, Default)]
pub struct Instruments {
    /// Event trace (disabled unless requested).
    pub trace: Trace,
    /// Observability registry handle.
    pub registry: Registry,
    next_msg_id: u64,
}

impl Instruments {
    /// Fully inert instruments (disabled trace and registry).
    pub fn disabled() -> Instruments {
        Instruments::new(false)
    }

    /// Instruments with a disabled registry and the trace on or off.
    pub fn new(trace_enabled: bool) -> Instruments {
        Instruments {
            trace: if trace_enabled {
                Trace::enabled()
            } else {
                Trace::disabled()
            },
            registry: Registry::disabled(),
            next_msg_id: 0,
        }
    }

    /// Instruments matching `opts`: trace enabled iff `opts.trace`, the
    /// registry capped at `opts.obs_tier`.
    pub fn from_options(opts: &RunOptions) -> Instruments {
        Instruments {
            trace: if opts.trace {
                Trace::enabled()
            } else {
                Trace::disabled()
            },
            registry: opts.registry.at_tier(opts.obs_tier),
            next_msg_id: 0,
        }
    }

    /// Apply `opts` to existing instruments: attach the registry (capped
    /// at the options' observability tier) and upgrade (never downgrade)
    /// the trace.
    pub fn apply(&mut self, opts: &RunOptions) {
        self.registry = opts.registry.at_tier(opts.obs_tier);
        if opts.trace && !self.trace.is_enabled() {
            self.trace = Trace::enabled();
        }
    }

    /// Allocate the next run-unique message id.
    #[inline]
    pub fn alloc_msg_id(&mut self) -> MsgId {
        let id = MsgId(self.next_msg_id);
        self.next_msg_id += 1;
        id
    }

    /// Reserve `n` consecutive ids at once, returning the first. Engines
    /// that fan a batch out across worker shards use this with per-item
    /// prefix sums so every item gets the id a sequential
    /// [`Instruments::alloc_msg_id`] loop would have handed it.
    #[inline]
    pub fn alloc_msg_id_block(&mut self, n: u64) -> MsgId {
        let id = MsgId(self.next_msg_id);
        self.next_msg_id += n;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_historical_behaviour() {
        let opts = RunOptions::default();
        assert_eq!(opts.seed, 0);
        assert!(!opts.trace);
        assert!(!opts.registry.is_enabled());
        assert_eq!(opts.threads, 1);
        assert_eq!(opts.shards, 1);
        assert_eq!(opts.clock_base, Steps::ZERO);
        assert_eq!(opts.budget_or(123), 123);
    }

    #[test]
    fn builder_composes() {
        let opts = RunOptions::new()
            .seed(7)
            .traced()
            .threads(4)
            .at(Steps(100))
            .budget(50);
        assert_eq!(opts.seed, 7);
        assert!(opts.trace);
        assert_eq!(opts.threads, 4);
        assert_eq!(opts.clock_base, Steps(100));
        assert_eq!(opts.budget_or(123), 50);
    }

    #[test]
    fn threads_clamp_to_one() {
        assert_eq!(RunOptions::new().threads(0).threads, 1);
        assert_eq!(RunOptions::new().shards(0).shards, 1);
    }

    #[test]
    fn fault_decorator_rides_the_options() {
        use crate::medium::{Medium, WrapMedium};
        struct Noop;
        impl WrapMedium for Noop {
            fn wrap(&self, inner: Box<dyn Medium + Send>) -> Box<dyn Medium + Send> {
                inner
            }
            fn label(&self) -> String {
                "noop".into()
            }
        }
        let opts = RunOptions::new()
            .seed(5)
            .traced()
            .shards(4)
            .faults(Arc::new(Noop));
        assert!(opts.faulted());
        let sub = opts.subphase();
        assert_eq!(sub.seed, 5);
        assert!(sub.faulted(), "the adversary propagates to sub-phases");
        assert_eq!(sub.shards, 4, "shards propagate: pure parallelism");
        assert!(!sub.trace, "instrumentation does not");
        assert!(!RunOptions::new().faulted());
        // Debug must not choke on the trait object.
        assert!(format!("{opts:?}").contains("noop"));
    }

    #[test]
    fn canonical_covers_result_affecting_fields_only() {
        assert_eq!(
            RunOptions::new().canonical(),
            "seed=0 trace=false clock_base=0 budget=- fault=- stream=-"
        );
        let opts = RunOptions::new().seed(7).traced().at(Steps(100)).budget(50);
        assert_eq!(
            opts.canonical(),
            "seed=7 trace=true clock_base=100 budget=50 fault=- stream=-"
        );
        // The streaming window changes per-superstep cost, so it must move
        // the cache key.
        assert_eq!(
            opts.clone().streamed(64).canonical(),
            "seed=7 trace=true clock_base=100 budget=50 fault=- stream=64"
        );
        // The registry is observability-only: attaching one must not move
        // the cache key.
        let reg = Registry::enabled(4);
        assert_eq!(opts.clone().registry(&reg).canonical(), opts.canonical());
        // Thread and shard counts are determinism-invariant by contract.
        assert_eq!(opts.clone().threads(8).canonical(), opts.canonical());
        assert_eq!(opts.clone().shards(4).canonical(), opts.canonical());
        // The observability tier is observability-only too: spans never
        // feed back into the simulation, so the tier must not move keys.
        assert_eq!(opts.clone().obs(Tier::Off).canonical(), opts.canonical());
        assert_eq!(
            opts.clone().obs(Tier::Sampled { rate: 8 }).canonical(),
            opts.canonical()
        );
    }

    #[test]
    fn instruments_cap_the_registry_at_the_options_tier() {
        let reg = Registry::enabled(4);
        let opts = RunOptions::new().registry(&reg).obs(Tier::CountersOnly);
        let ins = Instruments::from_options(&opts);
        assert!(ins.registry.is_enabled());
        assert!(!ins.registry.spans_enabled());
        // Default tier is Full: the historical behaviour is unchanged.
        let full = Instruments::from_options(&RunOptions::new().registry(&reg));
        assert!(full.registry.spans_enabled());
        // apply() caps the same way, and the tier rides subphases.
        let mut applied = Instruments::disabled();
        applied.apply(&opts);
        assert!(!applied.registry.spans_enabled());
        assert_eq!(opts.subphase().obs_tier, Tier::CountersOnly);
    }

    #[test]
    fn canonical_includes_the_fault_label() {
        use crate::medium::{Medium, WrapMedium};
        struct Tagged;
        impl WrapMedium for Tagged {
            fn wrap(&self, inner: Box<dyn Medium + Send>) -> Box<dyn Medium + Send> {
                inner
            }
            fn label(&self) -> String {
                "seed=9,jitter=uniform:6".into()
            }
        }
        let opts = RunOptions::new().faults(Arc::new(Tagged));
        assert!(opts
            .canonical()
            .ends_with("fault=seed=9,jitter=uniform:6 stream=-"));
    }

    #[test]
    fn stream_window_clamps_and_rides_subphases() {
        assert_eq!(RunOptions::new().streamed(0).stream, Some(1));
        let opts = RunOptions::new().streamed(8);
        assert_eq!(opts.stream, Some(8));
        assert_eq!(
            opts.subphase().stream,
            Some(8),
            "streaming is result-affecting like the adversary: it propagates"
        );
        assert_eq!(RunOptions::new().subphase().stream, None);
    }

    #[test]
    fn msg_ids_are_sequential() {
        let mut ins = Instruments::disabled();
        assert_eq!(ins.alloc_msg_id(), MsgId(0));
        assert_eq!(ins.alloc_msg_id(), MsgId(1));
    }

    #[test]
    fn from_options_respects_trace_flag() {
        let ins = Instruments::from_options(&RunOptions::new().traced());
        assert!(ins.trace.is_enabled());
        let mut plain = Instruments::from_options(&RunOptions::new());
        assert!(!plain.trace.is_enabled());
        let reg = Registry::enabled(2);
        plain.apply(&RunOptions::new().registry(&reg).traced());
        assert!(plain.registry.is_enabled());
        assert!(plain.trace.is_enabled());
    }
}

//! Composable simulation stacks.
//!
//! The paper's theorems compose: a LogP program runs on BSP (Theorem 1),
//! BSP runs on LogP (Theorem 2), and either abstract machine is realized by
//! a §3 network. [`Stacked`] is that composition made literal — a guest
//! workload paired with a host substrate — and [`RunStack`] is the single
//! entry point that executes the pair under shared [`RunOptions`].
//!
//! Concrete impls live next to their engines (e.g. `bvl_logp` implements
//! `RunStack` for `Stacked<LogpSpec<P>, M: Medium>`, running the guest's
//! LogP semantics over an arbitrary transport medium).

use crate::{Medium, RunOptions};
use bvl_model::ModelError;

/// A guest workload paired with the host substrate it runs on.
#[derive(Clone, Debug)]
pub struct Stacked<G, H> {
    /// The guest: a machine specification plus its programs.
    pub guest: G,
    /// The host: the substrate the guest executes over (a [`crate::Medium`],
    /// a machine parameterization, ...).
    pub host: H,
}

impl<G, H> Stacked<G, H> {
    /// Pair a guest with a host.
    pub fn new(guest: G, host: H) -> Stacked<G, H> {
        Stacked { guest, host }
    }
}

/// Execute a (possibly stacked) specification under shared options.
pub trait RunStack {
    /// The stack's report type (engine-specific; [`crate::RunOutcome`] is
    /// always derivable from it).
    type Report;

    /// Run to completion.
    fn run_stack(self, opts: &RunOptions) -> Result<Self::Report, ModelError>;
}

/// A guest specification that can execute over any boxed [`Medium`].
///
/// Engines implement this for their spec types (a local impl of a
/// `bvl_exec` trait for a local type), and the blanket impl below lifts it
/// to `RunStack` for `Stacked<Guest, Box<dyn Medium + Send>>` — which the
/// orphan rule would otherwise forbid downstream, since `Stacked` and
/// `RunStack` are both foreign there.
pub trait MediumGuest {
    /// The guest engine's report type.
    type Report;

    /// Run the guest over `host` under shared options.
    fn run_over(
        self,
        host: Box<dyn Medium + Send>,
        opts: &RunOptions,
    ) -> Result<Self::Report, ModelError>;
}

impl<G: MediumGuest> RunStack for Stacked<G, Box<dyn Medium + Send>> {
    type Report = G::Report;

    fn run_stack(self, opts: &RunOptions) -> Result<Self::Report, ModelError> {
        self.guest.run_over(self.host, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Guest(u64);
    struct Host(u64);

    impl RunStack for Stacked<Guest, Host> {
        type Report = u64;

        fn run_stack(self, opts: &RunOptions) -> Result<u64, ModelError> {
            Ok(self.guest.0 + self.host.0 + opts.seed)
        }
    }

    #[test]
    fn stack_runs_with_options() {
        let stack = Stacked::new(Guest(1), Host(2));
        assert_eq!(stack.run_stack(&RunOptions::new().seed(4)).unwrap(), 7);
    }
}

//! Differential conformance: clean vs faulted vs cross-simulated runs.
//!
//! A [`Case`] names one simulator, one workload shape `(p, h, seed)` and
//! one [`FaultPlan`]; [`run_case`] executes the differential legs and
//! returns every check violation, each carrying the case's one-line
//! [`Case::repro`] command so a CI failure is reproducible by copy-paste.
//!
//! The legs, common to every simulator:
//!
//! 1. **Delivery conformance** — the off-line router must deliver the exact
//!    demand multiset on the clean medium *and* under the plan (faults
//!    delay, duplicate and throttle but never lose; engine-side
//!    deduplication collapses at-least-once back to exactly-once).
//! 2. **Trace conformance** — a traced machine run must satisfy the §2.2
//!    rules ([`bvl_logp::validate::validate`]) exactly on the clean medium;
//!    under faults, only violations *attributable to the injected fault
//!    classes* are waived (see [`waived`]) and structural well-formedness
//!    ([`bvl_model::validate_wellformed`]) is never waived.
//! 3. **Monotonicity** — injected faults only ever slow a run down.
//!
//! plus one simulator-specific leg: the deterministic router (Theorem 2's
//! Step 4 machinery), the randomized router (Theorem 3, including its
//! retry/backoff behaviour under wedging faults), or the LogP-on-BSP host
//! (Theorem 1 cross-simulation with its slowdown bound).
//!
//! Theorem-bound checks use **explicit** slack constants (documented at
//! their definitions): the paper's bounds are asymptotic, so each check
//! states the constant it holds the implementation to.

use crate::plan::{Fault, FaultPlan};
use bvl_core::slowdown::{stalling_worst_case, theorem1_bound};
use bvl_core::{
    route_deterministic, route_offline, route_randomized, simulate_logp_on_bsp, SortScheme,
    Theorem1Config,
};
use bvl_exec::RunOptions;
use bvl_logp::validate::validate;
use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bvl_model::decompose::koenig_color;
use bvl_model::rngutil::SeedStream;
use bvl_model::{validate_wellformed, HRelation, ProcId, Steps};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Multiplier on Theorem 3's `O(G·h²)` stalling backstop for the clean
/// randomized-routing leg: covers the protocol's `2(L+o)` round framing and
/// per-message overheads the asymptotic bound absorbs.
pub const SLACK_BACKSTOP: u64 = 4;

/// Multiplier on Theorem 1's `1 + g/G + ℓ/L` slowdown for the hosted leg:
/// covers cycle rounding (`C = ⌈L/2⌉`) and barrier quantization.
pub const SLACK_THEOREM1: f64 = 8.0;

/// Budget on faulted-vs-clean slowdown of the off-line delivery leg: a
/// plan in the conformance matrix must keep the faulted run within this
/// factor of the clean run. This is a *harness budget*, not a theorem —
/// deliberately extreme plans (e.g. `degrade=0:1000`) exceed it, which is
/// exactly how the test suite exercises the failure/repro path end-to-end.
pub const SLACK_FAULT_BLOWUP: u64 = 64;

/// The three simulators the harness drives differentially.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sim {
    /// §4.2 deterministic router (`route_deterministic`).
    RouteDet,
    /// §4.3 randomized router (`route_randomized`, Theorem 3).
    RouteRand,
    /// Theorem 1 host (`simulate_logp_on_bsp`).
    LogpOnBsp,
}

impl Sim {
    /// All simulators, for matrix drivers.
    pub const ALL: [Sim; 3] = [Sim::RouteDet, Sim::RouteRand, Sim::LogpOnBsp];

    /// CLI-stable name.
    pub fn as_str(self) -> &'static str {
        match self {
            Sim::RouteDet => "route_det",
            Sim::RouteRand => "route_rand",
            Sim::LogpOnBsp => "logp_on_bsp",
        }
    }
}

impl fmt::Display for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Sim {
    type Err = String;

    fn from_str(s: &str) -> Result<Sim, String> {
        match s {
            "route_det" => Ok(Sim::RouteDet),
            "route_rand" => Ok(Sim::RouteRand),
            "logp_on_bsp" => Ok(Sim::LogpOnBsp),
            other => Err(format!(
                "unknown simulator '{other}' (route_det | route_rand | logp_on_bsp)"
            )),
        }
    }
}

/// One conformance case: simulator × workload × fault plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Case {
    /// Which simulator to drive.
    pub sim: Sim,
    /// Processor count (power of two — `route_det` requires it).
    pub p: usize,
    /// Relation degree `h` for the generated exact h-relation.
    pub h: usize,
    /// Workload seed: drives the relation draw and the machines' policy
    /// streams (the fault plan carries its own seed).
    pub seed: u64,
    /// The injected faults.
    pub plan: FaultPlan,
}

impl Case {
    /// The one-line repro command printed with every failure. Running it
    /// re-executes exactly this case (`exp_faults` parses it back via
    /// [`Case::parse_args`]).
    pub fn repro(&self) -> String {
        format!(
            "cargo run --release -p bvl-bench --bin exp_faults -- \
             --sim {} --p {} --h {} --seed {} --plan '{}'",
            self.sim, self.p, self.h, self.seed, self.plan
        )
    }

    /// Rebuild a case from a printed [`Case::repro`] line.
    pub fn from_repro(line: &str) -> Result<Case, String> {
        let (_, tail) = line
            .split_once(" -- ")
            .ok_or("repro line missing ' -- ' separator")?;
        let args: Vec<String> = tail.split_whitespace().map(str::to_string).collect();
        Case::parse_args(&args)
    }

    /// Parse `--sim S --p N --h N --seed N --plan 'LINE'` argument pairs
    /// (quotes around the plan are optional — plans contain no spaces).
    pub fn parse_args(args: &[String]) -> Result<Case, String> {
        let mut sim = None;
        let mut p = None;
        let mut h = None;
        let mut seed = None;
        let mut plan = None;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let val = it
                .next()
                .ok_or_else(|| format!("{flag}: missing value"))?
                .trim_matches('\'')
                .trim_matches('"');
            match flag.as_str() {
                "--sim" => sim = Some(val.parse::<Sim>()?),
                "--p" => p = Some(val.parse::<usize>().map_err(|e| format!("--p: {e}"))?),
                "--h" => h = Some(val.parse::<usize>().map_err(|e| format!("--h: {e}"))?),
                "--seed" => seed = Some(val.parse::<u64>().map_err(|e| format!("--seed: {e}"))?),
                "--plan" => plan = Some(val.parse::<FaultPlan>()?),
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(Case {
            sim: sim.ok_or("missing --sim")?,
            p: p.ok_or("missing --p")?,
            h: h.ok_or("missing --h")?,
            seed: seed.ok_or("missing --seed")?,
            plan: plan.ok_or("missing --plan")?,
        })
    }
}

/// Outcome of one case: timings plus every check violation (empty =
/// conformant). Each violation line embeds the repro command.
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// The case that ran.
    pub case: Case,
    /// Clean-leg time of the simulator-specific run.
    pub clean_time: Steps,
    /// Faulted-leg time of the simulator-specific run.
    pub faulted_time: Steps,
    /// Machine attempts on the faulted randomized-routing leg (1 for the
    /// other simulators).
    pub attempts: u64,
    /// Checks evaluated.
    pub checks: usize,
    /// Violations, each with the embedded repro line.
    pub failures: Vec<String>,
}

impl CaseReport {
    /// Did every check pass?
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Is `violation` attributable to a fault class present in `plan`?
///
/// The waiver table is the fault model's contract with the §2.2 validator:
///
/// * delay faults (`jitter`, `reorder`, `degrade`) may push deliveries past
///   the clean `L` bound — "more than L" is theirs;
/// * `dup` replays a message id, so the second `Deliver` both lands past
///   `L` and confuses per-id lifecycle accounting ("more than L",
///   "capacity"); ghost copies also occupy in-transit slots the validator
///   cannot see (it counts ids, not copies), so senders may stall below
///   the reconstructed saturation point ("stalled at");
/// * capacity faults (`burst`, `squeeze`, `degrade`) stall senders below
///   the *nominal* `⌈L/G⌉` saturation the validator reconstructs —
///   "stalled at" is theirs.
///
/// Everything else — acceptance before submission, sub-`G` gaps, lost
/// messages, negative in-transit counts — is never waived: no fault in the
/// model can legitimately produce it, so its appearance under injection is
/// an engine bug.
pub fn waived(plan: &FaultPlan, violation: &str) -> bool {
    plan.faults.iter().any(|f| match f {
        Fault::Jitter(_) | Fault::Reorder { .. } => violation.contains("more than L"),
        Fault::Duplicate { .. } => {
            violation.contains("more than L")
                || violation.contains("capacity")
                || violation.contains("stalled at")
        }
        Fault::StallBurst { .. } | Fault::CapacitySqueeze { .. } => {
            violation.contains("stalled at")
        }
        Fault::Degrade { .. } => {
            violation.contains("more than L") || violation.contains("stalled at")
        }
    })
}

/// The capacity-safe scripts `route_offline` runs: König rounds spaced `G`
/// apart, receives to match. Shared by the trace leg (which needs its own
/// machine to own the trace) and the hosted leg (which needs `Script`
/// programs for the BSP guests).
fn offline_scripts(params: LogpParams, rel: &HRelation) -> Vec<Script> {
    let decomp = koenig_color(rel);
    let mut sends: Vec<Vec<(u64, ProcId, bvl_model::Payload)>> = vec![Vec::new(); params.p];
    let mut recv_count = vec![0usize; params.p];
    for (round, idxs) in decomp.rounds().iter().enumerate() {
        for &i in idxs {
            let d = &rel.demands()[i];
            sends[d.src.index()].push((round as u64, d.dst, d.payload.clone()));
            recv_count[d.dst.index()] += 1;
        }
    }
    (0..params.p)
        .map(|i| {
            let mut ops = Vec::new();
            sends[i].sort_by_key(|&(round, dst, _)| (round, dst.0));
            for (round, dst, payload) in sends[i].drain(..) {
                ops.push(Op::WaitUntil(Steps(round * params.g)));
                ops.push(Op::Send { dst, payload });
            }
            ops.extend(std::iter::repeat_n(Op::Recv, recv_count[i]));
            Script::new(ops)
        })
        .collect()
}

/// Exact multiset check with the failure turned into a check name.
fn check_delivery(
    rel: &HRelation,
    received: &[Vec<bvl_model::Envelope>],
    leg: &str,
    fails: &mut Vec<String>,
    case: &Case,
) {
    if let Err(e) = bvl_core::bsp_on_logp::phase::verify_delivery(rel, received) {
        fail(fails, case, leg, &format!("delivered multiset diverged: {e}"));
    }
}

fn fail(fails: &mut Vec<String>, case: &Case, check: &str, detail: &str) {
    fails.push(format!(
        "[{check}] {detail}\n    repro: {}",
        case.repro()
    ));
}

/// Execute one case: all differential legs plus the simulator-specific
/// leg. Infallible by design — engine-level errors (a router refusing the
/// faulted medium, a wedged host) are themselves conformance failures and
/// land in [`CaseReport::failures`] with the repro line.
pub fn run_case(case: &Case) -> CaseReport {
    // L=16, o=1, G=2 → capacity ⌈L/G⌉ = 8: roomy enough that clean legs
    // are stall-free, tight enough that squeezes and bursts bite.
    let params = LogpParams::new(case.p, 16, 1, 2).expect("valid conformance params");
    let mut rng = SeedStream::new(case.seed).derive("conformance-rel", 0);
    let rel = HRelation::random_exact(&mut rng, case.p, case.h);
    let h = rel.degree() as u64;

    let clean = RunOptions::new().seed(case.seed);
    let faulted = RunOptions::new()
        .seed(case.seed)
        .faults(Arc::new(case.plan.clone()));

    let mut fails = Vec::new();
    let mut checks = 0;

    // ---- Leg 1: delivery conformance through the off-line router. ------
    checks += 1;
    let clean_offline = match route_offline(params, &rel, &clean) {
        Ok((t, received)) => {
            check_delivery(&rel, &received, "offline-clean", &mut fails, case);
            Some(t)
        }
        Err(e) => {
            fail(&mut fails, case, "offline-clean", &format!("router failed: {e:?}"));
            None
        }
    };
    checks += 3;
    match route_offline(params, &rel, &faulted) {
        Ok((t, received)) => {
            check_delivery(&rel, &received, "offline-faulted", &mut fails, case);
            if let Some(tc) = clean_offline {
                if t < tc {
                    fail(
                        &mut fails,
                        case,
                        "offline-monotone",
                        &format!("faults sped the router up: {t:?} < clean {tc:?}"),
                    );
                }
                let budget = SLACK_FAULT_BLOWUP * tc.get().max(1);
                if t.get() > budget {
                    fail(
                        &mut fails,
                        case,
                        "offline-blowup",
                        &format!(
                            "faulted delivery took {} vs budget {budget} \
                             ({SLACK_FAULT_BLOWUP}× the clean {})",
                            t.get(),
                            tc.get()
                        ),
                    );
                }
            }
        }
        Err(e) => fail(
            &mut fails,
            case,
            "offline-faulted",
            &format!("router failed under faults: {e:?}"),
        ),
    }

    // ---- Leg 2: trace conformance (clean strict, faulted waived). ------
    /// (§2.2 rule violations, shape violations, per-proc received envelopes).
    type TraceLegOutcome = (Vec<String>, Vec<String>, Vec<Vec<bvl_model::Envelope>>);
    let trace_leg = |opts: &RunOptions| -> Result<TraceLegOutcome, String> {
        let config = LogpConfig {
            trace: true,
            forbid_stalling: false,
            seed: case.seed,
            ..LogpConfig::default()
        };
        let mut m = LogpMachine::with_config(params, config, offline_scripts(params, &rel));
        m.instrument(opts);
        m.run().map_err(|e| format!("{e:?}"))?;
        let rules = validate(m.params(), m.trace());
        let shape = validate_wellformed(m.trace());
        let received = m
            .into_programs()
            .into_iter()
            .map(|s| s.into_received())
            .collect();
        Ok((rules, shape, received))
    };

    checks += 2;
    match trace_leg(&clean.clone().traced()) {
        Ok((rules, shape, _)) => {
            if !rules.is_empty() {
                fail(
                    &mut fails,
                    case,
                    "trace-clean",
                    &format!("§2.2 violations on a clean medium: {rules:?}"),
                );
            }
            if !shape.is_empty() {
                fail(
                    &mut fails,
                    case,
                    "trace-clean-shape",
                    &format!("ill-formed clean trace: {shape:?}"),
                );
            }
        }
        Err(e) => fail(&mut fails, case, "trace-clean", &format!("machine failed: {e}")),
    }

    checks += 3;
    match trace_leg(&faulted.clone().traced()) {
        Ok((rules, shape, received)) => {
            let unwaived: Vec<&String> =
                rules.iter().filter(|v| !waived(&case.plan, v)).collect();
            if !unwaived.is_empty() {
                fail(
                    &mut fails,
                    case,
                    "trace-faulted",
                    &format!("violations not attributable to the plan's faults: {unwaived:?}"),
                );
            }
            if !shape.is_empty() {
                fail(
                    &mut fails,
                    case,
                    "trace-faulted-shape",
                    &format!("structural well-formedness is never waived: {shape:?}"),
                );
            }
            check_delivery(&rel, &received, "trace-faulted-delivery", &mut fails, case);
        }
        Err(e) => fail(
            &mut fails,
            case,
            "trace-faulted",
            &format!("machine failed under faults: {e}"),
        ),
    }

    // ---- Leg 3: the simulator under test, clean vs faulted. ------------
    let mut clean_time = Steps::ZERO;
    let mut faulted_time = Steps::ZERO;
    let mut attempts = 1;
    match case.sim {
        Sim::RouteDet => {
            checks += 3;
            let c = route_deterministic(params, &rel, SortScheme::Auto, &clean);
            let f = route_deterministic(params, &rel, SortScheme::Auto, &faulted);
            match (c, f) {
                (Ok(c), Ok(f)) => {
                    clean_time = c.total;
                    faulted_time = f.total;
                    if c.h != h {
                        fail(
                            &mut fails,
                            case,
                            "det-degree",
                            &format!("router saw h={} for a degree-{h} relation", c.h),
                        );
                    }
                    if f.total < c.total {
                        fail(
                            &mut fails,
                            case,
                            "det-monotone",
                            &format!("faults sped routing up: {:?} < clean {:?}", f.total, c.total),
                        );
                    }
                }
                (c, f) => fail(
                    &mut fails,
                    case,
                    "det-run",
                    &format!("clean: {:?}, faulted: {:?}", c.err(), f.err()),
                ),
            }
        }
        Sim::RouteRand => {
            checks += 4;
            let c = route_randomized(params, &rel, 2.0, &clean);
            let f = route_randomized(params, &rel, 2.0, &faulted);
            match (c, f) {
                (Ok(c), Ok(f)) => {
                    clean_time = c.time;
                    faulted_time = f.time;
                    attempts = f.attempts.max(1);
                    if c.attempts != 1 || c.backoff != Steps::ZERO {
                        fail(
                            &mut fails,
                            case,
                            "rand-clean-retries",
                            &format!(
                                "clean medium needed {} attempts / {:?} backoff",
                                c.attempts, c.backoff
                            ),
                        );
                    }
                    // Theorem 3's backstop: even when the Chernoff event
                    // fails, the Stalling Rule caps routing at O(G·h²).
                    let backstop = SLACK_BACKSTOP * stalling_worst_case(&params, h);
                    if c.time.get() > backstop {
                        fail(
                            &mut fails,
                            case,
                            "rand-backstop",
                            &format!(
                                "clean time {} exceeds {SLACK_BACKSTOP}× the O(Gh²) backstop {}",
                                c.time.get(),
                                backstop
                            ),
                        );
                    }
                    if f.time < c.time {
                        fail(
                            &mut fails,
                            case,
                            "rand-monotone",
                            &format!("faults sped routing up: {:?} < clean {:?}", f.time, c.time),
                        );
                    }
                }
                (c, f) => fail(
                    &mut fails,
                    case,
                    "rand-run",
                    &format!("clean: {:?}, faulted: {:?}", c.err(), f.err()),
                ),
            }
        }
        Sim::LogpOnBsp => {
            checks += 3;
            // A host whose parameters keep Theorem 1's bound small but
            // nontrivial: 1 + g/G + ℓ/L = 1 + 4/2 + 32/16 = 5.
            let bsp = bvl_bsp::BspParams::new(case.p, 4, 32).expect("valid host params");
            match simulate_logp_on_bsp(
                params,
                bsp,
                offline_scripts(params, &rel),
                Theorem1Config::default(),
                &clean,
            ) {
                Ok(rep) => {
                    clean_time = rep.guest_makespan();
                    faulted_time = clean_time;
                    let received: Vec<Vec<bvl_model::Envelope>> = rep
                        .programs
                        .iter()
                        .map(|s| s.clone().into_received())
                        .collect();
                    check_delivery(&rel, &received, "hosted-delivery", &mut fails, case);
                    let bound = SLACK_THEOREM1 * theorem1_bound(bsp.g, bsp.l, params.g, params.l);
                    if rep.slowdown() > bound {
                        fail(
                            &mut fails,
                            case,
                            "hosted-slowdown",
                            &format!(
                                "measured slowdown {:.2} exceeds {SLACK_THEOREM1}× Theorem 1's {:.2}",
                                rep.slowdown(),
                                theorem1_bound(bsp.g, bsp.l, params.g, params.l)
                            ),
                        );
                    }
                }
                Err(e) => fail(&mut fails, case, "hosted-run", &format!("host failed: {e:?}")),
            }
        }
    }

    CaseReport {
        case: case.clone(),
        clean_time,
        faulted_time,
        attempts,
        checks,
        failures: fails,
    }
}

/// The default conformance matrix: the named plans × [`Sim::ALL`].
///
/// Plans cover every fault class alone plus one composition; `tests/
/// conformance.rs` and the `exp_faults --smoke` CI job both run this
/// matrix, so a plan added here is exercised everywhere.
pub fn default_plans() -> Vec<FaultPlan> {
    vec![
        FaultPlan::new(11).jitter_uniform(6),
        FaultPlan::new(12).reorder(30),
        FaultPlan::new(13).duplicate(3),
        FaultPlan::new(14).stall_burst(64, 8),
        FaultPlan::new(15).capacity_squeeze(2),
        FaultPlan::new(16).degrade(8, 2),
        FaultPlan::new(17).jitter_uniform(4).duplicate(5).capacity_squeeze(3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_names_round_trip() {
        for sim in Sim::ALL {
            assert_eq!(sim.as_str().parse::<Sim>().unwrap(), sim);
        }
        assert!("bsp_on_logp_typo".parse::<Sim>().is_err());
    }

    #[test]
    fn repro_line_round_trips() {
        let case = Case {
            sim: Sim::RouteRand,
            p: 8,
            h: 4,
            seed: 3,
            plan: FaultPlan::new(9).jitter_uniform(6).duplicate(4),
        };
        let line = case.repro();
        assert!(line.starts_with("cargo run --release -p bvl-bench --bin exp_faults -- "));
        assert_eq!(Case::from_repro(&line).unwrap(), case);
    }

    #[test]
    fn waiver_table_is_fault_scoped() {
        let jitter = FaultPlan::new(1).jitter_uniform(4);
        assert!(waived(&jitter, "MsgId(3): delivered Steps(40) more than L=16 after accept"));
        assert!(!waived(&jitter, "MsgId(3): stalled at Steps(4) while dst P1 had only 0/8 in transit"));
        let squeeze = FaultPlan::new(1).capacity_squeeze(2);
        assert!(waived(&squeeze, "MsgId(3): stalled at Steps(4) while dst P1 had only 1/8 in transit"));
        assert!(!waived(&squeeze, "MsgId(3): delivered Steps(40) more than L=16 after accept"));
        // Never waived, under any plan: lifecycle and gap violations.
        for plan in default_plans() {
            assert!(!waived(&plan, "MsgId(3): accepted Steps(2) before submitted Steps(5)"));
            assert!(!waived(&plan, "P2: submissions at Steps(4) and Steps(5) closer than G=2"));
            assert!(!waived(&plan, "MsgId(3): accepted but never delivered"));
        }
    }

    #[test]
    fn default_matrix_is_big_enough() {
        // The acceptance floor: ≥ 5 plans against all three simulators.
        assert!(default_plans().len() >= 5);
        assert_eq!(Sim::ALL.len(), 3);
    }
}

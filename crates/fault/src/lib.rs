//! # bvl-fault — adversarial media and differential conformance
//!
//! The paper's theorems assume a well-behaved transport: deliveries within
//! `L`, capacity exactly `⌈L/G⌉`, no duplication. This crate supplies the
//! opposite on purpose — a seeded, serializable [`FaultPlan`] interpreted
//! as a [`bvl_exec::Medium`] decorator — and the [`conformance`] harness
//! that runs every simulator clean *and* faulted and checks what must still
//! hold (exact delivery, trace well-formedness, theorem bounds with
//! explicit slack) versus what a fault class legitimately relaxes.
//!
//! Plans are one-line strings (`seed=42,jitter=uniform:8,dup=16`), so every
//! failure anywhere in the harness prints a single copy-pasteable repro
//! command; `FaultPlan` implements [`bvl_exec::WrapMedium`], so a plan
//! plugs into any run via [`bvl_exec::RunOptions::faults`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod medium;
pub mod plan;

pub use conformance::{run_case, waived, Case, CaseReport, Sim};
pub use medium::FaultMedium;
pub use plan::{Dist, Fault, FaultPlan};

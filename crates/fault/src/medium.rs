//! The adversarial medium: a [`FaultPlan`] interpreted over any inner
//! [`Medium`].
//!
//! [`FaultMedium`] draws its randomness from **keyed** ChaCha streams
//! derived from the plan seed and the identity of the message being
//! faulted — never from the machine's policy RNG, which is forwarded to
//! the inner medium untouched. That split is what makes clean-vs-faulted
//! runs *differential* evidence: both legs see identical policy draws, so
//! every divergence is attributable to the injected faults, not to RNG
//! stream displacement.
//!
//! Keying by message identity (rather than drawing from one sequential
//! stream) also makes the fault decisions independent of *call order*:
//! any shard of a sharded engine computes the same jitter, the same
//! reorder roll and the same duplicate lag for a given message, so a
//! faulted run stays bit-identical at any shard count (DESIGN.md §13).
//! For the same reason the `dup=every` counter is kept **per
//! destination**: each destination is owned by exactly one shard and its
//! acceptances happen in one canonical order, so "every n-th message
//! *to this destination*" is a shard-invariant notion where a global
//! "every n-th acceptance anywhere" is not.
//!
//! [`FaultPlan`] implements [`WrapMedium`], so the whole thing is wired
//! through [`bvl_exec::RunOptions::faults`] — any machine, router or
//! simulator in the workspace runs under a plan with no API change.

use crate::plan::{Dist, Fault, FaultPlan};
use bvl_exec::{Medium, WrapMedium};
use bvl_model::rngutil::SeedStream;
use bvl_model::{Envelope, ProcId, Steps};
use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;

/// A [`Medium`] decorated with the faults of one [`FaultPlan`].
pub struct FaultMedium {
    inner: Box<dyn Medium + Send>,
    plan: FaultPlan,
    /// Root of the plan's private keyed streams — never the machine's
    /// policy stream.
    stream: SeedStream,
    /// Per-destination acceptance counts (drive `dup=every`), grown on
    /// demand. Shard replicas start empty: a destination's count only
    /// ever advances on the shard that owns it.
    accepted: Vec<u64>,
}

impl FaultMedium {
    /// Decorate `inner` with `plan`.
    pub fn new(inner: Box<dyn Medium + Send>, plan: FaultPlan) -> FaultMedium {
        let stream = SeedStream::new(plan.seed);
        FaultMedium {
            inner,
            plan,
            stream,
            accepted: Vec::new(),
        }
    }

    /// The keyed stream for one faulting decision about one message.
    ///
    /// The lane mixes the message id with the decision instant so that
    /// unit-style callers reusing an id across instants still see fresh
    /// draws; within a run the pair is unique per decision, and it is the
    /// same pair on every shard.
    fn msg_rng(&self, domain: &str, env: &Envelope, now: Steps) -> ChaCha8Rng {
        let lane = env
            .id
            .0
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(now.get());
        self.stream.derive(domain, lane)
    }
}

impl Medium for FaultMedium {
    fn capacity(&self, dst: ProcId, now: Steps) -> u64 {
        let mut cap = self.inner.capacity(dst, now);
        for f in &self.plan.faults {
            match *f {
                Fault::StallBurst { period, len } if now.get() % period < len => return 0,
                Fault::CapacitySqueeze { max } => cap = cap.min(max),
                Fault::Degrade { at_step, factor } if now.get() >= at_step => {
                    cap = (cap / factor).max(1);
                }
                _ => {}
            }
        }
        cap
    }

    fn delivery_time(&mut self, env: &Envelope, now: Steps, rng: &mut dyn RngCore) -> Steps {
        let base = self.inner.delivery_time(env, now, rng);
        // Work on the inner delay so Degrade multiplies the real latency,
        // not an already-jittered one plus `now`.
        let mut delay = base.get().saturating_sub(now.get()).max(1);
        let mut draws = self.msg_rng("fault-delay", env, now);
        for i in 0..self.plan.faults.len() {
            match self.plan.faults[i] {
                Fault::Jitter(Dist::Uniform(max)) if max > 0 => {
                    delay += draws.gen_range(0..=max);
                }
                Fault::Jitter(Dist::Fixed(n)) => delay += n,
                // Stretch by up to the base latency: enough for this
                // message to land after traffic submitted later.
                Fault::Reorder { pct }
                    if pct > 0 && draws.gen_range(0..100u64) < u64::from(pct) =>
                {
                    delay += draws.gen_range(1..=delay);
                }
                Fault::Degrade { at_step, factor } if now.get() >= at_step => {
                    delay = delay.saturating_mul(factor);
                }
                _ => {}
            }
        }
        now + Steps(delay)
    }

    fn duplicate_delivery(
        &mut self,
        env: &Envelope,
        scheduled: Steps,
        now: Steps,
        rng: &mut dyn RngCore,
    ) -> Option<Steps> {
        if let Some(t) = self.inner.duplicate_delivery(env, scheduled, now, rng) {
            return Some(t);
        }
        let d = env.dst.index();
        if d >= self.accepted.len() {
            self.accepted.resize(d + 1, 0);
        }
        self.accepted[d] += 1;
        for f in &self.plan.faults {
            if let Fault::Duplicate { every } = *f {
                if self.accepted[d].is_multiple_of(every) {
                    // The ghost copy trails the real one by a small lag so
                    // the two occupy (and release) in-transit slots at
                    // distinct instants.
                    let lag = self.msg_rng("fault-dup", env, now).gen_range(1..=4u64);
                    return Some(scheduled + Steps(lag));
                }
            }
        }
        None
    }

    fn may_duplicate(&self) -> bool {
        self.inner.may_duplicate() || self.plan.has(|f| matches!(f, Fault::Duplicate { .. }))
    }

    fn wake_hint(&mut self, dst: ProcId, now: Steps) -> Option<Steps> {
        for f in &self.plan.faults {
            if let Fault::StallBurst { period, len } = *f {
                let into = now.get() % period;
                if into < len {
                    return Some(now + Steps(len - into));
                }
            }
        }
        self.inner.wake_hint(dst, now)
    }

    fn name(&self) -> &'static str {
        "faulted"
    }

    fn shard_replica(&self) -> Option<Box<dyn Medium + Send>> {
        // Replicable exactly when the inner medium is. All fault state is
        // either keyed by message identity (the streams) or per-destination
        // (the dup counters), so fresh replicas agree with a solo run.
        let inner = self.inner.shard_replica()?;
        Some(Box::new(FaultMedium {
            inner,
            plan: self.plan.clone(),
            stream: self.stream.clone(),
            accepted: Vec::new(),
        }))
    }
}

impl WrapMedium for FaultPlan {
    fn wrap(&self, inner: Box<dyn Medium + Send>) -> Box<dyn Medium + Send> {
        Box::new(FaultMedium::new(inner, self.clone()))
    }

    fn label(&self) -> String {
        self.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_model::{MsgId, Payload};

    /// The pure-LogP stand-in: capacity 4, delivery at `now + 8`.
    struct Base;
    impl Medium for Base {
        fn capacity(&self, _dst: ProcId, _now: Steps) -> u64 {
            4
        }
        fn delivery_time(&mut self, _env: &Envelope, now: Steps, _rng: &mut dyn RngCore) -> Steps {
            now + Steps(8)
        }
        fn name(&self) -> &'static str {
            "base"
        }
        fn shard_replica(&self) -> Option<Box<dyn Medium + Send>> {
            Some(Box::new(Base))
        }
    }

    fn env() -> Envelope {
        env_id(0)
    }

    fn env_id(id: u64) -> Envelope {
        Envelope {
            id: MsgId(id),
            src: ProcId(0),
            dst: ProcId(1),
            payload: Payload::word(0, 1),
            submitted: Steps::ZERO,
            accepted: Steps::ZERO,
            delivered: Steps::ZERO,
        }
    }

    fn zero_rng() -> impl RngCore {
        struct Zero;
        impl RngCore for Zero {
            fn next_u32(&mut self) -> u32 {
                0
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
        }
        Zero
    }

    fn faulted(plan: FaultPlan) -> FaultMedium {
        FaultMedium::new(Box::new(Base), plan)
    }

    #[test]
    fn identity_plan_is_transparent_in_behaviour() {
        let mut m = faulted(FaultPlan::new(1));
        let mut rng = zero_rng();
        assert_eq!(m.delivery_time(&env(), Steps(10), &mut rng), Steps(18));
        assert_eq!(m.capacity(ProcId(1), Steps(10)), 4);
        assert!(!m.may_duplicate());
        assert_eq!(m.name(), "faulted");
    }

    #[test]
    fn fixed_jitter_shifts_delivery() {
        let mut m = faulted(FaultPlan::new(1).jitter_fixed(5));
        let mut rng = zero_rng();
        assert_eq!(m.delivery_time(&env(), Steps(10), &mut rng), Steps(23));
    }

    #[test]
    fn uniform_jitter_stays_in_range_and_is_seed_deterministic() {
        let sample = |seed: u64| -> Vec<u64> {
            let mut m = faulted(FaultPlan::new(seed).jitter_uniform(6));
            let mut rng = zero_rng();
            (0..32)
                .map(|i| m.delivery_time(&env_id(i), Steps(i * 10), &mut rng).get() - i * 10)
                .collect()
        };
        let a = sample(9);
        assert_eq!(a, sample(9), "same plan seed, same jitter sequence");
        assert!(a.iter().all(|&d| (8..=14).contains(&d)), "{a:?}");
        assert_ne!(a, sample(10), "different plan seed, different jitter");
    }

    #[test]
    fn jitter_is_keyed_by_message_not_call_order() {
        // The draws for a message depend only on (id, instant) — replaying
        // the same decisions in any order, or on a fresh replica, yields
        // the same delays. This is the shard-invariance property.
        let plan = FaultPlan::new(9).jitter_uniform(6).reorder(40);
        let mut fwd = faulted(plan.clone());
        let mut rev = faulted(plan);
        let mut rng = zero_rng();
        let forward: Vec<Steps> = (0..16)
            .map(|i| fwd.delivery_time(&env_id(i), Steps(i * 5), &mut rng))
            .collect();
        let backward: Vec<Steps> = (0..16)
            .rev()
            .map(|i| rev.delivery_time(&env_id(i), Steps(i * 5), &mut rng))
            .collect();
        let mut backward = backward;
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn burst_zeroes_capacity_and_hints_window_end() {
        let mut m = faulted(FaultPlan::new(1).stall_burst(50, 10));
        assert_eq!(m.capacity(ProcId(0), Steps(3)), 0);
        assert_eq!(m.wake_hint(ProcId(0), Steps(3)), Some(Steps(10)));
        assert_eq!(m.capacity(ProcId(0), Steps(10)), 4);
        assert_eq!(m.wake_hint(ProcId(0), Steps(10)), None);
        assert_eq!(m.capacity(ProcId(0), Steps(57)), 0);
        assert_eq!(m.wake_hint(ProcId(0), Steps(57)), Some(Steps(60)));
    }

    #[test]
    fn squeeze_clamps_but_never_to_zero() {
        let m = faulted(FaultPlan::new(1).capacity_squeeze(2));
        assert_eq!(m.capacity(ProcId(0), Steps(0)), 2);
        let m = faulted(FaultPlan::new(1).capacity_squeeze(100));
        assert_eq!(m.capacity(ProcId(0), Steps(0)), 4, "only clamps down");
    }

    #[test]
    fn degrade_kicks_in_at_step() {
        let mut m = faulted(FaultPlan::new(1).degrade(100, 3));
        let mut rng = zero_rng();
        assert_eq!(m.delivery_time(&env(), Steps(99), &mut rng), Steps(107));
        assert_eq!(m.delivery_time(&env(), Steps(100), &mut rng), Steps(124));
        assert_eq!(m.capacity(ProcId(0), Steps(99)), 4);
        assert_eq!(m.capacity(ProcId(0), Steps(100)), 1);
    }

    #[test]
    fn duplicate_every_nth_per_destination_with_trailing_lag() {
        let mut m = faulted(FaultPlan::new(1).duplicate(3));
        assert!(m.may_duplicate());
        let mut rng = zero_rng();
        let mut dups = 0;
        for i in 0..9 {
            let t = Steps(i * 10);
            let e = env_id(i);
            let sched = m.delivery_time(&e, t, &mut rng);
            if let Some(extra) = m.duplicate_delivery(&e, sched, t, &mut rng) {
                assert!(extra > sched, "copy trails the original");
                assert!(extra <= sched + Steps(4));
                dups += 1;
            }
        }
        assert_eq!(dups, 3, "exactly every 3rd message to the destination");
        // A different destination has its own counter.
        let mut other = env_id(100);
        other.dst = ProcId(2);
        assert!(m.duplicate_delivery(&other, Steps(8), Steps(0), &mut rng).is_none());
        assert!(m.duplicate_delivery(&other, Steps(8), Steps(0), &mut rng).is_none());
        assert!(m.duplicate_delivery(&other, Steps(8), Steps(0), &mut rng).is_some());
    }

    #[test]
    fn machine_policy_stream_is_untouched() {
        // A counting RNG proves the fault layer never draws from the
        // machine's stream: the count must match the inner medium's usage
        // (zero for `Base`) regardless of the plan.
        struct Counting(u64);
        impl RngCore for Counting {
            fn next_u32(&mut self) -> u32 {
                self.0 += 1;
                0
            }
            fn next_u64(&mut self) -> u64 {
                self.0 += 1;
                0
            }
        }
        let mut rng = Counting(0);
        let mut m = faulted(FaultPlan::new(4).jitter_uniform(9).reorder(50).duplicate(2));
        for i in 0..8 {
            let t = Steps(i * 10);
            let e = env_id(i);
            let sched = m.delivery_time(&e, t, &mut rng);
            let _ = m.duplicate_delivery(&e, sched, t, &mut rng);
        }
        assert_eq!(rng.0, 0, "policy stream drawn {} times by the fault layer", rng.0);
    }

    #[test]
    fn replica_agrees_with_original() {
        let mut m = faulted(FaultPlan::new(6).jitter_uniform(5).duplicate(2));
        let mut r = m.shard_replica().expect("Base is replicable");
        let mut rng = zero_rng();
        for i in 0..6 {
            let t = Steps(i * 7);
            let e = env_id(i);
            assert_eq!(
                m.delivery_time(&e, t, &mut rng),
                r.delivery_time(&e, t, &mut rng)
            );
            let sched = Steps(t.get() + 8);
            assert_eq!(
                m.duplicate_delivery(&e, sched, t, &mut rng),
                r.duplicate_delivery(&e, sched, t, &mut rng)
            );
        }
    }

    #[test]
    fn wrap_medium_label_is_the_plan_line() {
        let plan = FaultPlan::new(5).jitter_uniform(2).capacity_squeeze(3);
        let m = plan.wrap(Box::new(Base));
        assert_eq!(m.name(), "faulted");
        assert_eq!(plan.label(), "seed=5,jitter=uniform:2,squeeze=3");
    }
}

//! The adversarial medium: a [`FaultPlan`] interpreted over any inner
//! [`Medium`].
//!
//! [`FaultMedium`] keeps its **own** ChaCha stream derived from the plan
//! seed and forwards the machine's policy RNG to the inner medium
//! untouched. That split is what makes clean-vs-faulted runs *differential*
//! evidence: both legs see identical policy draws, so every divergence is
//! attributable to the injected faults, not to RNG stream displacement.
//!
//! [`FaultPlan`] implements [`WrapMedium`], so the whole thing is wired
//! through [`bvl_exec::RunOptions::faults`] — any machine, router or
//! simulator in the workspace runs under a plan with no API change.

use crate::plan::{Dist, Fault, FaultPlan};
use bvl_exec::{Medium, WrapMedium};
use bvl_model::rngutil::SeedStream;
use bvl_model::{Envelope, ProcId, Steps};
use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;

/// A [`Medium`] decorated with the faults of one [`FaultPlan`].
pub struct FaultMedium {
    inner: Box<dyn Medium + Send>,
    plan: FaultPlan,
    /// The plan's private stream — never the machine's policy stream.
    rng: ChaCha8Rng,
    /// Messages scheduled so far (drives `dup=every`).
    accepted: u64,
}

impl FaultMedium {
    /// Decorate `inner` with `plan`.
    pub fn new(inner: Box<dyn Medium + Send>, plan: FaultPlan) -> FaultMedium {
        let rng = SeedStream::new(plan.seed).derive("fault-medium", 0);
        FaultMedium {
            inner,
            plan,
            rng,
            accepted: 0,
        }
    }
}

impl Medium for FaultMedium {
    fn capacity(&self, dst: ProcId, now: Steps) -> u64 {
        let mut cap = self.inner.capacity(dst, now);
        for f in &self.plan.faults {
            match *f {
                Fault::StallBurst { period, len } if now.get() % period < len => return 0,
                Fault::CapacitySqueeze { max } => cap = cap.min(max),
                Fault::Degrade { at_step, factor } if now.get() >= at_step => {
                    cap = (cap / factor).max(1);
                }
                _ => {}
            }
        }
        cap
    }

    fn delivery_time(&mut self, env: &Envelope, now: Steps, rng: &mut dyn RngCore) -> Steps {
        let base = self.inner.delivery_time(env, now, rng);
        // Work on the inner delay so Degrade multiplies the real latency,
        // not an already-jittered one plus `now`.
        let mut delay = base.get().saturating_sub(now.get()).max(1);
        for i in 0..self.plan.faults.len() {
            match self.plan.faults[i] {
                Fault::Jitter(Dist::Uniform(max)) if max > 0 => {
                    delay += self.rng.gen_range(0..=max);
                }
                Fault::Jitter(Dist::Fixed(n)) => delay += n,
                // Stretch by up to the base latency: enough for this
                // message to land after traffic submitted later.
                Fault::Reorder { pct }
                    if pct > 0 && self.rng.gen_range(0..100u64) < u64::from(pct) =>
                {
                    delay += self.rng.gen_range(1..=delay);
                }
                Fault::Degrade { at_step, factor } if now.get() >= at_step => {
                    delay = delay.saturating_mul(factor);
                }
                _ => {}
            }
        }
        now + Steps(delay)
    }

    fn duplicate_delivery(
        &mut self,
        env: &Envelope,
        scheduled: Steps,
        now: Steps,
        rng: &mut dyn RngCore,
    ) -> Option<Steps> {
        if let Some(t) = self.inner.duplicate_delivery(env, scheduled, now, rng) {
            return Some(t);
        }
        self.accepted += 1;
        for f in &self.plan.faults {
            if let Fault::Duplicate { every } = *f {
                if self.accepted.is_multiple_of(every) {
                    // The ghost copy trails the real one by a small lag so
                    // the two occupy (and release) in-transit slots at
                    // distinct instants.
                    let lag = self.rng.gen_range(1..=4u64);
                    return Some(scheduled + Steps(lag));
                }
            }
        }
        None
    }

    fn may_duplicate(&self) -> bool {
        self.inner.may_duplicate() || self.plan.has(|f| matches!(f, Fault::Duplicate { .. }))
    }

    fn wake_hint(&mut self, dst: ProcId, now: Steps) -> Option<Steps> {
        for f in &self.plan.faults {
            if let Fault::StallBurst { period, len } = *f {
                let into = now.get() % period;
                if into < len {
                    return Some(now + Steps(len - into));
                }
            }
        }
        self.inner.wake_hint(dst, now)
    }

    fn name(&self) -> &'static str {
        "faulted"
    }
}

impl WrapMedium for FaultPlan {
    fn wrap(&self, inner: Box<dyn Medium + Send>) -> Box<dyn Medium + Send> {
        Box::new(FaultMedium::new(inner, self.clone()))
    }

    fn label(&self) -> String {
        self.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_model::{MsgId, Payload};

    /// The pure-LogP stand-in: capacity 4, delivery at `now + 8`.
    struct Base;
    impl Medium for Base {
        fn capacity(&self, _dst: ProcId, _now: Steps) -> u64 {
            4
        }
        fn delivery_time(&mut self, _env: &Envelope, now: Steps, _rng: &mut dyn RngCore) -> Steps {
            now + Steps(8)
        }
        fn name(&self) -> &'static str {
            "base"
        }
    }

    fn env() -> Envelope {
        Envelope {
            id: MsgId(0),
            src: ProcId(0),
            dst: ProcId(1),
            payload: Payload::word(0, 1),
            submitted: Steps::ZERO,
            accepted: Steps::ZERO,
            delivered: Steps::ZERO,
        }
    }

    fn zero_rng() -> impl RngCore {
        struct Zero;
        impl RngCore for Zero {
            fn next_u32(&mut self) -> u32 {
                0
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
        }
        Zero
    }

    fn faulted(plan: FaultPlan) -> FaultMedium {
        FaultMedium::new(Box::new(Base), plan)
    }

    #[test]
    fn identity_plan_is_transparent_in_behaviour() {
        let mut m = faulted(FaultPlan::new(1));
        let mut rng = zero_rng();
        assert_eq!(m.delivery_time(&env(), Steps(10), &mut rng), Steps(18));
        assert_eq!(m.capacity(ProcId(1), Steps(10)), 4);
        assert!(!m.may_duplicate());
        assert_eq!(m.name(), "faulted");
    }

    #[test]
    fn fixed_jitter_shifts_delivery() {
        let mut m = faulted(FaultPlan::new(1).jitter_fixed(5));
        let mut rng = zero_rng();
        assert_eq!(m.delivery_time(&env(), Steps(10), &mut rng), Steps(23));
    }

    #[test]
    fn uniform_jitter_stays_in_range_and_is_seed_deterministic() {
        let sample = |seed: u64| -> Vec<u64> {
            let mut m = faulted(FaultPlan::new(seed).jitter_uniform(6));
            let mut rng = zero_rng();
            (0..32)
                .map(|i| m.delivery_time(&env(), Steps(i * 10), &mut rng).get() - i * 10)
                .collect()
        };
        let a = sample(9);
        assert_eq!(a, sample(9), "same plan seed, same jitter sequence");
        assert!(a.iter().all(|&d| (8..=14).contains(&d)), "{a:?}");
        assert_ne!(a, sample(10), "different plan seed, different jitter");
    }

    #[test]
    fn burst_zeroes_capacity_and_hints_window_end() {
        let mut m = faulted(FaultPlan::new(1).stall_burst(50, 10));
        assert_eq!(m.capacity(ProcId(0), Steps(3)), 0);
        assert_eq!(m.wake_hint(ProcId(0), Steps(3)), Some(Steps(10)));
        assert_eq!(m.capacity(ProcId(0), Steps(10)), 4);
        assert_eq!(m.wake_hint(ProcId(0), Steps(10)), None);
        assert_eq!(m.capacity(ProcId(0), Steps(57)), 0);
        assert_eq!(m.wake_hint(ProcId(0), Steps(57)), Some(Steps(60)));
    }

    #[test]
    fn squeeze_clamps_but_never_to_zero() {
        let m = faulted(FaultPlan::new(1).capacity_squeeze(2));
        assert_eq!(m.capacity(ProcId(0), Steps(0)), 2);
        let m = faulted(FaultPlan::new(1).capacity_squeeze(100));
        assert_eq!(m.capacity(ProcId(0), Steps(0)), 4, "only clamps down");
    }

    #[test]
    fn degrade_kicks_in_at_step() {
        let mut m = faulted(FaultPlan::new(1).degrade(100, 3));
        let mut rng = zero_rng();
        assert_eq!(m.delivery_time(&env(), Steps(99), &mut rng), Steps(107));
        assert_eq!(m.delivery_time(&env(), Steps(100), &mut rng), Steps(124));
        assert_eq!(m.capacity(ProcId(0), Steps(99)), 4);
        assert_eq!(m.capacity(ProcId(0), Steps(100)), 1);
    }

    #[test]
    fn duplicate_every_nth_with_trailing_lag() {
        let mut m = faulted(FaultPlan::new(1).duplicate(3));
        assert!(m.may_duplicate());
        let mut rng = zero_rng();
        let mut dups = 0;
        for i in 0..9 {
            let t = Steps(i * 10);
            let sched = m.delivery_time(&env(), t, &mut rng);
            if let Some(extra) = m.duplicate_delivery(&env(), sched, t, &mut rng) {
                assert!(extra > sched, "copy trails the original");
                assert!(extra <= sched + Steps(4));
                dups += 1;
            }
        }
        assert_eq!(dups, 3, "exactly every 3rd message duplicated");
    }

    #[test]
    fn machine_policy_stream_is_untouched() {
        // A counting RNG proves the fault layer never draws from the
        // machine's stream: the count must match the inner medium's usage
        // (zero for `Base`) regardless of the plan.
        struct Counting(u64);
        impl RngCore for Counting {
            fn next_u32(&mut self) -> u32 {
                self.0 += 1;
                0
            }
            fn next_u64(&mut self) -> u64 {
                self.0 += 1;
                0
            }
        }
        let mut rng = Counting(0);
        let mut m = faulted(FaultPlan::new(4).jitter_uniform(9).reorder(50).duplicate(2));
        for i in 0..8 {
            let t = Steps(i * 10);
            let sched = m.delivery_time(&env(), t, &mut rng);
            let _ = m.duplicate_delivery(&env(), sched, t, &mut rng);
        }
        assert_eq!(rng.0, 0, "policy stream drawn {} times by the fault layer", rng.0);
    }

    #[test]
    fn wrap_medium_label_is_the_plan_line() {
        let plan = FaultPlan::new(5).jitter_uniform(2).capacity_squeeze(3);
        let m = plan.wrap(Box::new(Base));
        assert_eq!(m.name(), "faulted");
        assert_eq!(plan.label(), "seed=5,jitter=uniform:2,squeeze=3");
    }
}

//! Seeded, serializable fault plans.
//!
//! A [`FaultPlan`] is the *entire* description of an adversarial medium: a
//! seed plus an ordered list of [`Fault`] decorations. It serializes to one
//! line and parses back losslessly, so every conformance failure can print a
//! single copy-pasteable repro command and every CI artifact is a list of
//! plan lines. Example:
//!
//! ```text
//! seed=42,jitter=uniform:8,reorder=25,dup=16,burst=50x10,squeeze=2,degrade=100:3
//! ```
//!
//! The plan is deliberately *loss-free*: faults delay, reorder, duplicate
//! and throttle, but never drop. Exactly-once delivery (after engine-side
//! deduplication) therefore remains an invariant the conformance harness
//! can check unconditionally — what faults may legitimately change is
//! *time*, and the harness bounds that separately.

use std::fmt;
use std::str::FromStr;

/// A delay distribution for [`Fault::Jitter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dist {
    /// Add a uniform extra delay in `[0, max]` steps.
    Uniform(u64),
    /// Add exactly `n` extra steps to every delivery.
    Fixed(u64),
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dist::Uniform(max) => write!(f, "uniform:{max}"),
            Dist::Fixed(n) => write!(f, "fixed:{n}"),
        }
    }
}

/// One fault decoration. Faults compose: a plan may carry several, applied
/// in plan order to every message (delays) or instant (capacities).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Extra per-message delivery delay drawn from the plan's own RNG
    /// stream (the machine's policy stream is never touched).
    Jitter(Dist),
    /// With probability `pct`% a message's delay is stretched by up to its
    /// own base latency — enough to overtake later traffic, so deliveries
    /// arrive out of submission order.
    Reorder {
        /// Probability, in percent (0–100), that a message is delayed past
        /// its successors.
        pct: u8,
    },
    /// Every `every`-th accepted message is delivered *twice*; the second
    /// copy occupies an in-transit slot and is deduplicated by the engine
    /// at the buffer boundary.
    Duplicate {
        /// Duplicate one message out of this many (≥ 1).
        every: u64,
    },
    /// Periodic total outage: capacity is 0 during the first `len` steps of
    /// every `period`-step window. The medium publishes a wake hint at the
    /// window's end so blocked senders stall instead of wedging.
    StallBurst {
        /// Window length in steps (> `len`).
        period: u64,
        /// Outage length at the start of each window (≥ 1).
        len: u64,
    },
    /// Clamp per-destination capacity to at most `max` (≥ 1) — the
    /// Stalling Rule under a meaner network than the parameters promise.
    CapacitySqueeze {
        /// Capacity ceiling (≥ 1, so progress is always possible).
        max: u64,
    },
    /// From step `at_step` on, multiply every delivery delay by `factor`
    /// and divide capacity by it (floor 1): a link that degrades mid-run.
    Degrade {
        /// First step at which the degradation applies.
        at_step: u64,
        /// Slowdown multiplier (≥ 1).
        factor: u64,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Jitter(d) => write!(f, "jitter={d}"),
            Fault::Reorder { pct } => write!(f, "reorder={pct}"),
            Fault::Duplicate { every } => write!(f, "dup={every}"),
            Fault::StallBurst { period, len } => write!(f, "burst={period}x{len}"),
            Fault::CapacitySqueeze { max } => write!(f, "squeeze={max}"),
            Fault::Degrade { at_step, factor } => write!(f, "degrade={at_step}:{factor}"),
        }
    }
}

/// A seeded adversarial medium description: parse ⇄ print round-trips on
/// one line (see the module docs for the grammar).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the plan's private RNG stream (jitter draws, reorder rolls,
    /// duplicate offsets). Independent of the machine's policy seed so a
    /// faulted run stays draw-for-draw comparable with its clean twin.
    pub seed: u64,
    /// The fault decorations, applied in order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults yet (decorating with it is the identity in
    /// behaviour, though the medium still reports itself as faulted).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Add uniform `[0, max]` delivery jitter.
    pub fn jitter_uniform(mut self, max: u64) -> Self {
        self.faults.push(Fault::Jitter(Dist::Uniform(max)));
        self
    }

    /// Add a fixed `n`-step delivery slowdown.
    pub fn jitter_fixed(mut self, n: u64) -> Self {
        self.faults.push(Fault::Jitter(Dist::Fixed(n)));
        self
    }

    /// Reorder `pct`% of messages past their successors.
    pub fn reorder(mut self, pct: u8) -> Self {
        self.faults.push(Fault::Reorder { pct });
        self
    }

    /// Duplicate every `every`-th message.
    pub fn duplicate(mut self, every: u64) -> Self {
        self.faults.push(Fault::Duplicate { every });
        self
    }

    /// Total outage for `len` steps out of every `period`.
    pub fn stall_burst(mut self, period: u64, len: u64) -> Self {
        self.faults.push(Fault::StallBurst { period, len });
        self
    }

    /// Clamp capacity to `max`.
    pub fn capacity_squeeze(mut self, max: u64) -> Self {
        self.faults.push(Fault::CapacitySqueeze { max });
        self
    }

    /// Degrade delays × `factor` (and capacity ÷ `factor`) from `at_step`.
    pub fn degrade(mut self, at_step: u64, factor: u64) -> Self {
        self.faults.push(Fault::Degrade { at_step, factor });
        self
    }

    /// Does the plan carry a fault of the same kind as `probe`?
    pub fn has(&self, probe: fn(&Fault) -> bool) -> bool {
        self.faults.iter().any(probe)
    }

    /// Check the structural constraints the parser enforces (useful for
    /// plans built with the builder methods).
    pub fn validate(&self) -> Result<(), String> {
        for f in &self.faults {
            match *f {
                Fault::Reorder { pct } if pct > 100 => {
                    return Err(format!("reorder={pct}: percentage above 100"));
                }
                Fault::Duplicate { every: 0 } => {
                    return Err("dup=0: must duplicate one in ≥1 messages".into());
                }
                Fault::StallBurst { period, len } if len == 0 || len >= period => {
                    return Err(format!("burst={period}x{len}: need 1 ≤ len < period"));
                }
                Fault::CapacitySqueeze { max: 0 } => {
                    return Err("squeeze=0: capacity floor is 1 (progress must stay possible)".into());
                }
                Fault::Degrade { factor: 0, .. } => {
                    return Err("degrade factor must be ≥ 1".into());
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for fault in &self.faults {
            write!(f, ",{fault}")?;
        }
        Ok(())
    }
}

fn parse_u64(key: &str, s: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|_| format!("{key}: expected an integer, got '{s}'"))
}

impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let mut seed = None;
        let mut faults = Vec::new();
        for item in s.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (key, val) = item
                .split_once('=')
                .ok_or_else(|| format!("'{item}': expected key=value"))?;
            match key {
                "seed" => seed = Some(parse_u64("seed", val)?),
                "jitter" => {
                    let (dist, n) = val
                        .split_once(':')
                        .ok_or_else(|| format!("jitter={val}: expected dist:amount"))?;
                    let n = parse_u64("jitter", n)?;
                    faults.push(Fault::Jitter(match dist {
                        "uniform" => Dist::Uniform(n),
                        "fixed" => Dist::Fixed(n),
                        other => return Err(format!("jitter: unknown distribution '{other}'")),
                    }));
                }
                "reorder" => {
                    let pct = parse_u64("reorder", val)?;
                    if pct > 100 {
                        return Err(format!("reorder={pct}: percentage above 100"));
                    }
                    faults.push(Fault::Reorder { pct: pct as u8 });
                }
                "dup" => {
                    let every = parse_u64("dup", val)?;
                    if every == 0 {
                        return Err("dup=0: must duplicate one in ≥1 messages".into());
                    }
                    faults.push(Fault::Duplicate { every });
                }
                "burst" => {
                    let (period, len) = val
                        .split_once('x')
                        .ok_or_else(|| format!("burst={val}: expected PERIODxLEN"))?;
                    let (period, len) = (parse_u64("burst", period)?, parse_u64("burst", len)?);
                    if len == 0 || len >= period {
                        return Err(format!("burst={period}x{len}: need 1 ≤ len < period"));
                    }
                    faults.push(Fault::StallBurst { period, len });
                }
                "squeeze" => {
                    let max = parse_u64("squeeze", val)?;
                    if max == 0 {
                        return Err(
                            "squeeze=0: capacity floor is 1 (progress must stay possible)".into()
                        );
                    }
                    faults.push(Fault::CapacitySqueeze { max });
                }
                "degrade" => {
                    let (at, factor) = val
                        .split_once(':')
                        .ok_or_else(|| format!("degrade={val}: expected AT:FACTOR"))?;
                    let (at_step, factor) = (parse_u64("degrade", at)?, parse_u64("degrade", factor)?);
                    if factor == 0 {
                        return Err("degrade factor must be ≥ 1".into());
                    }
                    faults.push(Fault::Degrade { at_step, factor });
                }
                other => return Err(format!("unknown fault key '{other}'")),
            }
        }
        Ok(FaultPlan {
            seed: seed.ok_or("plan missing 'seed=N'")?,
            faults,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_round_trip() {
        let plan = FaultPlan::new(42)
            .jitter_uniform(8)
            .reorder(25)
            .duplicate(16)
            .stall_burst(50, 10)
            .capacity_squeeze(2)
            .degrade(100, 3);
        let line = plan.to_string();
        assert_eq!(
            line,
            "seed=42,jitter=uniform:8,reorder=25,dup=16,burst=50x10,squeeze=2,degrade=100:3"
        );
        let parsed: FaultPlan = line.parse().unwrap();
        assert_eq!(parsed, plan);
        assert_eq!(parsed.to_string(), line);
    }

    #[test]
    fn fixed_jitter_round_trips() {
        let plan: FaultPlan = "seed=7,jitter=fixed:3".parse().unwrap();
        assert_eq!(plan.faults, vec![Fault::Jitter(Dist::Fixed(3))]);
        assert_eq!(plan.to_string(), "seed=7,jitter=fixed:3");
    }

    #[test]
    fn seed_is_required() {
        assert!("jitter=uniform:8".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn bad_inputs_rejected() {
        for bad in [
            "seed=1,reorder=200",
            "seed=1,dup=0",
            "seed=1,burst=10x10",
            "seed=1,burst=10x0",
            "seed=1,squeeze=0",
            "seed=1,degrade=5:0",
            "seed=1,wat=3",
            "seed=1,jitter=zipf:4",
            "seed=x",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn builder_validate_mirrors_parser() {
        assert!(FaultPlan::new(1).stall_burst(10, 10).validate().is_err());
        assert!(FaultPlan::new(1).capacity_squeeze(0).validate().is_err());
        assert!(FaultPlan::new(1)
            .jitter_uniform(4)
            .duplicate(2)
            .validate()
            .is_ok());
    }

    #[test]
    fn has_probes_fault_kinds() {
        let plan = FaultPlan::new(1).duplicate(4);
        assert!(plan.has(|f| matches!(f, Fault::Duplicate { .. })));
        assert!(!plan.has(|f| matches!(f, Fault::Jitter(_))));
    }
}

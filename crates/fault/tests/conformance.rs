//! The differential conformance matrix: every default fault plan against
//! every simulator, plus the failure/repro path end-to-end.
//!
//! These are the PR's acceptance tests: ≥ 5 plans × 3 simulators, every
//! failure printing a one-line seeded repro command that reproduces it.

use bvl_fault::conformance::{default_plans, run_case};
use bvl_fault::{Case, FaultPlan, Sim};

fn case(sim: Sim, seed: u64, plan: FaultPlan) -> Case {
    Case {
        sim,
        p: 8,
        h: 4,
        seed,
        plan,
    }
}

/// The full matrix must be conformant: faults delay and throttle, but no
/// simulator loses messages, breaks trace well-formedness, produces
/// non-attributable §2.2 violations, or escapes its theorem bound.
#[test]
fn default_matrix_is_conformant() {
    let plans = default_plans();
    assert!(plans.len() >= 5, "acceptance floor: ≥ 5 fault plans");
    let mut failures = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        for sim in Sim::ALL {
            let rep = run_case(&case(sim, 100 + i as u64, plan.clone()));
            assert!(rep.checks >= 8, "matrix cases run the full check set");
            failures.extend(rep.failures);
        }
    }
    assert!(
        failures.is_empty(),
        "conformance failures:\n{}",
        failures.join("\n")
    );
}

/// Workload diversity: the matrix holds across sizes and degrees, not just
/// the canonical (p=8, h=4) cell.
#[test]
fn matrix_holds_across_workload_shapes() {
    let plan = FaultPlan::new(21).jitter_uniform(5).capacity_squeeze(3);
    for (p, h) in [(4usize, 2usize), (8, 6), (16, 3)] {
        for sim in Sim::ALL {
            let rep = run_case(&Case {
                sim,
                p,
                h,
                seed: 7,
                plan: plan.clone(),
            });
            assert!(
                rep.ok(),
                "p={p} h={h} {sim}:\n{}",
                rep.failures.join("\n")
            );
        }
    }
}

/// Case reports are a pure function of the case line: running the same
/// case twice gives bit-identical timings and failures.
#[test]
fn case_reports_are_deterministic() {
    let c = case(Sim::RouteRand, 42, default_plans()[0].clone());
    let a = run_case(&c);
    let b = run_case(&c);
    assert_eq!(a.clean_time, b.clean_time);
    assert_eq!(a.faulted_time, b.faulted_time);
    assert_eq!(a.attempts, b.attempts);
    assert_eq!(a.failures, b.failures);
}

/// The acceptance criterion end-to-end: an injected failure prints a
/// one-line repro command, and running that command reproduces the exact
/// same failure. The `degrade=0:1000` plan deliberately blows the
/// harness's faulted-slowdown budget (`SLACK_FAULT_BLOWUP`).
#[test]
fn injected_failure_reproduces_from_the_printed_command() {
    let c = case(Sim::RouteRand, 5, FaultPlan::new(6).degrade(0, 1_000));
    let rep = run_case(&c);
    assert!(!rep.ok(), "the blowup plan must trip the budget check");
    assert!(
        rep.failures.iter().any(|f| f.contains("[offline-blowup]")),
        "expected the budget check to fire:\n{}",
        rep.failures.join("\n")
    );

    // Every failure embeds the repro line…
    for f in &rep.failures {
        let line = f
            .lines()
            .find_map(|l| l.trim().strip_prefix("repro: "))
            .unwrap_or_else(|| panic!("failure without a repro line: {f}"));
        // …and the line parses back to this exact case.
        assert_eq!(Case::from_repro(line).unwrap(), c);
    }

    // Re-running from the printed command reproduces the failure verbatim.
    let line = rep.failures[0]
        .lines()
        .find_map(|l| l.trim().strip_prefix("repro: "))
        .unwrap();
    let rerun = run_case(&Case::from_repro(line).unwrap());
    assert_eq!(rerun.failures, rep.failures);
}

/// The faulted randomized-routing leg reports retry accounting when a
/// plan wedges an attempt: a long total outage at the start of the run
/// deadlocks attempt 1, and the protocol's backoff must surface in the
/// report rather than wedging the harness.
#[test]
fn rand_leg_surfaces_retries_under_heavy_bursts() {
    // 7-step outage out of every 8: capacity is almost always 0, so runs
    // crawl but wake hints keep them live — the case must stay conformant.
    let rep = run_case(&case(Sim::RouteRand, 9, FaultPlan::new(3).stall_burst(8, 7)));
    assert!(rep.ok(), "{}", rep.failures.join("\n"));
    assert!(rep.attempts >= 1);
    assert!(rep.faulted_time >= rep.clean_time);
}

//! Semantic validation of execution traces.
//!
//! Rather than maintaining a second (per-time-step) engine, the workspace
//! checks the event-driven engine against the *model definition itself*:
//! given a recorded [`Trace`], [`validate`] re-derives every rule of §2.2
//! and reports violations:
//!
//! 1. acceptance never precedes submission;
//! 2. every message is delivered within `(0, L]` steps of acceptance;
//! 3. consecutive submissions by one processor are ≥ `G` apart, and so are
//!    consecutive acquisitions;
//! 4. at no instant are more than `⌈L/G⌉` messages in transit towards one
//!    destination;
//! 5. the Stalling Rule: a submission waits only while the destination's
//!    capacity is saturated — at every instant of a stall window the
//!    destination has exactly `⌈L/G⌉` messages in transit.
//!
//! Property tests drive random programs through the engine with tracing on
//! and assert `validate(...)` returns no violations under every policy.

use crate::params::LogpParams;
use bvl_model::trace::{Event, Trace};
use bvl_model::{MsgId, Steps};
use std::collections::BTreeMap;

/// Per-message lifecycle assembled from a trace.
#[derive(Clone, Debug, Default)]
struct MsgLife {
    submitted: Option<Steps>,
    accepted: Option<Steps>,
    delivered: Option<Steps>,
    dst: Option<usize>,
    src: Option<usize>,
}

/// Validate a trace against the LogP rules. Returns the list of violations
/// (empty = the execution was admissible).
pub fn validate(params: &LogpParams, trace: &Trace) -> Vec<String> {
    let mut violations = Vec::new();
    let capacity = params.capacity();

    let mut msgs: BTreeMap<MsgId, MsgLife> = BTreeMap::new();
    let mut submits_by_proc: BTreeMap<usize, Vec<Steps>> = BTreeMap::new();
    let mut acquires_by_proc: BTreeMap<usize, Vec<Steps>> = BTreeMap::new();

    for ev in trace.events() {
        match *ev {
            Event::Submit { at, proc, msg, dst } => {
                let life = msgs.entry(msg).or_default();
                life.submitted = Some(at);
                life.dst = Some(dst.index());
                life.src = Some(proc.index());
                submits_by_proc.entry(proc.index()).or_default().push(at);
            }
            Event::Accept { at, msg } => {
                msgs.entry(msg).or_default().accepted = Some(at);
            }
            Event::Deliver { at, msg, .. } => {
                msgs.entry(msg).or_default().delivered = Some(at);
            }
            Event::Acquire { at, proc, .. } => {
                acquires_by_proc.entry(proc.index()).or_default().push(at);
            }
            _ => {}
        }
    }

    // Rules 1 & 2: per-message timing.
    for (id, life) in &msgs {
        let (Some(sub), Some(acc)) = (life.submitted, life.accepted) else {
            violations.push(format!("{id:?}: incomplete lifecycle (no submit/accept)"));
            continue;
        };
        if acc < sub {
            violations.push(format!("{id:?}: accepted {acc:?} before submitted {sub:?}"));
        }
        match life.delivered {
            None => violations.push(format!("{id:?}: accepted but never delivered")),
            Some(del) => {
                if del <= acc {
                    violations.push(format!("{id:?}: delivered {del:?} not after accept {acc:?}"));
                }
                if del > acc + Steps(params.l) {
                    violations.push(format!(
                        "{id:?}: delivered {del:?} more than L={} after accept {acc:?}",
                        params.l
                    ));
                }
            }
        }
    }

    // Rule 3: gaps.
    for (proc, times) in &submits_by_proc {
        let mut ts = times.clone();
        ts.sort();
        for w in ts.windows(2) {
            if w[1] - w[0] < Steps(params.g) {
                violations.push(format!(
                    "P{proc}: submissions at {:?} and {:?} closer than G={}",
                    w[0], w[1], params.g
                ));
            }
        }
    }
    for (proc, times) in &acquires_by_proc {
        let mut ts = times.clone();
        ts.sort();
        for w in ts.windows(2) {
            if w[1] - w[0] < Steps(params.g) {
                violations.push(format!(
                    "P{proc}: acquisitions at {:?} and {:?} closer than G={}",
                    w[0], w[1], params.g
                ));
            }
        }
    }

    // Rules 4 & 5: per-destination in-transit counts.
    // Build, per destination, the ±1 event list: +1 at accept, −1 at deliver.
    let mut per_dst: BTreeMap<usize, Vec<(Steps, i64)>> = BTreeMap::new();
    for life in msgs.values() {
        let (Some(acc), Some(del), Some(dst)) = (life.accepted, life.delivered, life.dst) else {
            continue;
        };
        let e = per_dst.entry(dst).or_default();
        e.push((acc, 1));
        e.push((del, -1));
    }
    // Piecewise-constant count c(t) per destination: during [t, t+1) a
    // message is in transit iff accept <= t < deliver, so at each instant
    // deliveries (−1) apply before acceptances (+1)... both orderings give
    // the same post-instant count; we need the settled count after all
    // events at an instant.
    let mut count_intervals: BTreeMap<usize, Vec<(Steps, Steps, u64)>> = BTreeMap::new();
    for (dst, mut evs) in per_dst {
        evs.sort();
        let mut intervals = Vec::new();
        let mut count: i64 = 0;
        let mut i = 0;
        while i < evs.len() {
            let t = evs[i].0;
            while i < evs.len() && evs[i].0 == t {
                count += evs[i].1;
                i += 1;
            }
            let next = if i < evs.len() { evs[i].0 } else { t + Steps(1) };
            if count < 0 {
                violations.push(format!("dst P{dst}: negative in-transit count at {t:?}"));
            }
            if count as u64 > capacity {
                violations.push(format!(
                    "dst P{dst}: {count} in transit during [{t:?}, {next:?}), capacity {capacity}"
                ));
            }
            intervals.push((t, next, count.max(0) as u64));
        }
        count_intervals.insert(dst, intervals);
    }

    // Rule 5: stall windows only under saturation.
    for (id, life) in &msgs {
        let (Some(sub), Some(acc), Some(dst)) = (life.submitted, life.accepted, life.dst) else {
            continue;
        };
        if acc == sub {
            continue;
        }
        let intervals = count_intervals.get(&dst).cloned().unwrap_or_default();
        // Every instant u in [sub, acc) must see a saturated destination.
        let mut u = sub;
        while u < acc {
            // Find the interval containing u (intervals cover all instants
            // where the count is nonzero; gaps mean count 0).
            let c = intervals
                .iter()
                .find(|&&(s, e, _)| s <= u && u < e)
                .map(|&(_, _, c)| c)
                .unwrap_or(0);
            if c < capacity {
                violations.push(format!(
                    "{id:?}: stalled at {u:?} while dst P{dst} had only {c}/{capacity} in transit"
                ));
                break;
            }
            // Jump to the end of the current interval (counts are constant
            // inside it).
            let next = intervals
                .iter()
                .find(|&&(s, e, _)| s <= u && u < e)
                .map(|&(_, e, _)| e)
                .unwrap_or(acc);
            u = next.max(u + Steps(1));
        }
    }

    violations
}

/// Panic with a readable report if the trace violates the model rules.
pub fn assert_valid(params: &LogpParams, trace: &Trace) {
    let v = validate(params, trace);
    assert!(
        v.is_empty(),
        "LogP trace violates model rules:\n  {}",
        v.join("\n  ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_model::ProcId;

    fn params() -> LogpParams {
        LogpParams::new(4, 8, 1, 4).unwrap() // capacity 2
    }

    fn submit(t: u64, proc: u32, msg: u64, dst: u32) -> Event {
        Event::Submit {
            at: Steps(t),
            proc: ProcId(proc),
            msg: MsgId(msg),
            dst: ProcId(dst),
        }
    }

    fn accept(t: u64, msg: u64) -> Event {
        Event::Accept {
            at: Steps(t),
            msg: MsgId(msg),
        }
    }

    fn deliver(t: u64, msg: u64, dst: u32) -> Event {
        Event::Deliver {
            at: Steps(t),
            msg: MsgId(msg),
            dst: ProcId(dst),
        }
    }

    fn trace_of(events: Vec<Event>) -> Trace {
        let mut t = Trace::enabled();
        for e in events {
            t.record(e);
        }
        t
    }

    #[test]
    fn clean_single_message_passes() {
        let t = trace_of(vec![submit(1, 0, 0, 1), accept(1, 0), deliver(9, 0, 1)]);
        assert!(validate(&params(), &t).is_empty());
    }

    #[test]
    fn late_delivery_flagged() {
        let t = trace_of(vec![submit(1, 0, 0, 1), accept(1, 0), deliver(10, 0, 1)]);
        let v = validate(&params(), &t);
        assert!(v.iter().any(|s| s.contains("more than L")));
    }

    #[test]
    fn same_instant_delivery_flagged() {
        let t = trace_of(vec![submit(1, 0, 0, 1), accept(1, 0), deliver(1, 0, 1)]);
        let v = validate(&params(), &t);
        assert!(v.iter().any(|s| s.contains("not after accept")));
    }

    #[test]
    fn submission_gap_violation_flagged() {
        let t = trace_of(vec![
            submit(1, 0, 0, 1),
            accept(1, 0),
            deliver(5, 0, 1),
            submit(3, 0, 1, 2), // only 2 apart, G = 4
            accept(3, 1),
            deliver(7, 1, 2),
        ]);
        let v = validate(&params(), &t);
        assert!(v.iter().any(|s| s.contains("closer than G")));
    }

    #[test]
    fn capacity_violation_flagged() {
        // Three messages in transit to P1 at once; capacity is 2.
        let t = trace_of(vec![
            submit(1, 0, 0, 1),
            accept(1, 0),
            submit(1, 2, 1, 1),
            accept(1, 1),
            submit(1, 3, 2, 1),
            accept(1, 2),
            deliver(9, 0, 1),
            deliver(9, 1, 1),
            deliver(9, 2, 1),
        ]);
        let v = validate(&params(), &t);
        assert!(v.iter().any(|s| s.contains("capacity")));
    }

    #[test]
    fn unjustified_stall_flagged() {
        // Message 1 stalls from 1 to 5 but nothing is in transit to P1.
        let t = trace_of(vec![submit(1, 0, 1, 1), accept(5, 1), deliver(9, 1, 1)]);
        let v = validate(&params(), &t);
        assert!(v.iter().any(|s| s.contains("stalled at")));
    }

    #[test]
    fn justified_stall_passes() {
        // Capacity 2 saturated during [1, 5): two accepted messages in
        // transit until their deliveries at 5; message 2 stalls 1 → 5.
        let t = trace_of(vec![
            submit(1, 0, 0, 1),
            accept(1, 0),
            submit(1, 2, 1, 1),
            accept(1, 1),
            submit(1, 3, 2, 1),
            accept(5, 2),
            deliver(5, 0, 1),
            deliver(5, 1, 1),
            deliver(9, 2, 1),
        ]);
        assert!(validate(&params(), &t).is_empty());
    }

    #[test]
    fn acceptance_before_submission_flagged() {
        let t = trace_of(vec![submit(5, 0, 0, 1), accept(3, 0), deliver(9, 0, 1)]);
        let v = validate(&params(), &t);
        assert!(v.iter().any(|s| s.contains("before submitted")));
    }

    #[test]
    fn undelivered_message_flagged() {
        let t = trace_of(vec![submit(1, 0, 0, 1), accept(1, 0)]);
        let v = validate(&params(), &t);
        assert!(v.iter().any(|s| s.contains("never delivered")));
    }
}

//! The event-driven LogP engine.
//!
//! Discrete time, integer steps, three event phases per instant:
//!
//! 1. **Deliver** — messages whose delivery time is `t` leave the medium and
//!    enter destination buffers, freeing capacity slots.
//! 2. **Submit** — submissions occurring at `t` enter the medium; the
//!    Stalling Rule then accepts `min{k, s}` pending messages per destination
//!    (`s` = free slots, `k` = pending), in the order chosen by
//!    `AcceptOrder` (see [`crate::policy`]).
//! 3. **Ready** — operational, idle processors decide their next operation.
//!
//! Timing rules (shared with the trace validator in [`crate::validate`]):
//!
//! * A `Send` decided at time `t` occupies the CPU for `o` steps and submits
//!   at `t_sub = max(t + o, prev_sub + G)` — consecutive submissions by the
//!   same processor are at least `G` apart.
//! * The sender stalls from `t_sub` until the medium accepts the message
//!   (immediately, unless the destination's `⌈L/G⌉` in-transit slots are
//!   full), then resumes.
//! * An accepted message is delivered `d ∈ [1, L]` steps later, per the
//!   `DeliveryPolicy` (see [`crate::policy`]).
//! * A `Recv` acquisition completes at `t_acq = max(t_avail + o, prev_acq + G)`
//!   where `t_avail` is when the processor was ready *and* a message was
//!   buffered — consecutive acquisitions are at least `G` apart.

use crate::metrics::{LogpReport, ProcStats};
use crate::params::LogpParams;
use crate::policy::{AcceptOrder, LogpConfig, PolicyMedium};
use crate::process::{LogpProcess, Op, ProcView};
use crate::timeline::Timeline;
use bvl_exec::{drive, Executor, Instruments, Medium, Phase, RunOptions, RunOutcome};
use bvl_model::rngutil::SeedStream;
use bvl_model::stats::Accumulator;
use bvl_model::trace::{Event, Trace};
use bvl_model::{Envelope, ModelError, ProcId, Steps};
use bvl_obs::{Counter, Hist, Span, SpanKind};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

enum EvKind {
    Deliver { env: Envelope },
    Submit { proc: usize, env: Envelope },
    Ready { proc: usize, acquired: Option<Envelope> },
    /// Re-poll the Stalling Rule for one destination after a transient
    /// capacity outage (see [`Medium::wake_hint`]): a time-varying medium
    /// may block acceptance with nothing in transit, so no Deliver event
    /// would otherwise re-run `try_accept`.
    Wake { dst: usize },
}

struct ProcState {
    halted: bool,
    stalling: bool,
    pending_submit: bool,
    waiting_recv: bool,
    stall_since: Steps,
    last_submit: Option<Steps>,
    last_acquire: Option<Steps>,
    buffer: VecDeque<Envelope>,
    stats: ProcStats,
}

impl ProcState {
    fn new() -> ProcState {
        ProcState {
            halted: false,
            stalling: false,
            pending_submit: false,
            waiting_recv: false,
            stall_since: Steps::ZERO,
            last_submit: None,
            last_acquire: None,
            buffer: VecDeque::new(),
            stats: ProcStats {
                halt_time: Steps::MAX,
                ..ProcStats::default()
            },
        }
    }
}

/// A LogP machine holding `p` processes of type `P`.
pub struct LogpMachine<P: LogpProcess> {
    params: LogpParams,
    config: LogpConfig,
    programs: Vec<P>,
    procs: Vec<ProcState>,
    pending: Vec<VecDeque<Envelope>>, // per destination: submitted, unaccepted
    in_transit: Vec<u64>,             // per destination: accepted, undelivered
    timeline: Timeline<EvKind>,
    medium: Box<dyn Medium + Send>,
    now: Steps,
    makespan: Steps,
    delivered: u64,
    duplicates_dropped: u64,
    // Ids already delivered once; allocated only when the medium may
    // duplicate (at-least-once transport de-duplicated at the buffer).
    seen_ids: Option<std::collections::HashSet<u64>>,
    // Per destination: instant of the latest scheduled Wake re-poll, so a
    // burst of blocked submissions enqueues one wake-up, not one each.
    wake_at: Vec<Steps>,
    latency: Accumulator,
    instruments: Instruments,
    rng: ChaCha8Rng,
    events_processed: u64,
    started: bool,
}

impl<P: LogpProcess> LogpMachine<P> {
    /// Build a machine from parameters and one program per processor.
    ///
    /// # Panics
    /// If `programs.len() != params.p`.
    pub fn new(params: LogpParams, programs: Vec<P>) -> LogpMachine<P> {
        Self::with_config(params, LogpConfig::default(), programs)
    }

    /// Build with explicit execution options.
    pub fn with_config(params: LogpParams, config: LogpConfig, programs: Vec<P>) -> LogpMachine<P> {
        assert_eq!(programs.len(), params.p, "need exactly p programs");
        let p = params.p;
        LogpMachine {
            params,
            config,
            programs,
            procs: (0..p).map(|_| ProcState::new()).collect(),
            pending: vec![VecDeque::new(); p],
            in_transit: vec![0; p],
            timeline: Timeline::new(
                config.timeline,
                params.l.max(params.o).max(params.g),
            ),
            medium: Box::new(PolicyMedium::new(params, config.delivery)),
            now: Steps::ZERO,
            makespan: Steps::ZERO,
            delivered: 0,
            duplicates_dropped: 0,
            seen_ids: None,
            wake_at: vec![Steps::ZERO; p],
            latency: Accumulator::new(),
            instruments: Instruments::new(config.trace),
            rng: SeedStream::new(config.seed).derive("logp-machine", 0),
            events_processed: 0,
            started: false,
        }
    }

    /// Apply shared [`RunOptions`]: attach the observability registry
    /// (per-event counters, latency/stall histograms, one
    /// [`SpanKind::Stall`] span per stall window — one branch per site when
    /// disabled), upgrade tracing, apply an explicit event budget, and
    /// wrap the transport in the options' fault decorator (if any) — the
    /// decorator composes over whatever medium is installed, so faults
    /// apply equally to the abstract channel and to a routed topology set
    /// via [`LogpMachine::set_medium`]. The policy seed is fixed at
    /// construction ([`LogpConfig::seed`]).
    pub fn instrument(&mut self, opts: &RunOptions) {
        self.instruments.apply(opts);
        if let Some(budget) = opts.budget {
            self.config.max_events = budget;
        }
        if let Some(wrap) = &opts.fault {
            assert!(!self.started, "faults must be injected before the run");
            let placeholder: Box<dyn Medium + Send> =
                Box::new(PolicyMedium::new(self.params, self.config.delivery));
            let inner = std::mem::replace(&mut self.medium, placeholder);
            self.medium = wrap.wrap(inner);
        }
        if self.medium.may_duplicate() && self.seen_ids.is_none() {
            self.seen_ids = Some(std::collections::HashSet::new());
        }
    }

    /// Replace the transport medium (default: [`PolicyMedium`], the pure
    /// LogP latency-`L` channel). A network-backed medium turns this
    /// machine into a stacked simulation over a concrete topology.
    ///
    /// # Panics
    /// If the run has already started.
    pub fn set_medium(&mut self, medium: Box<dyn Medium + Send>) {
        assert!(!self.started, "set_medium must precede the run");
        self.medium = medium;
        if self.medium.may_duplicate() && self.seen_ids.is_none() {
            self.seen_ids = Some(std::collections::HashSet::new());
        }
    }

    /// The machine parameters.
    pub fn params(&self) -> &LogpParams {
        &self.params
    }

    /// The event trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &Trace {
        &self.instruments.trace
    }

    /// Immutable access to a program (e.g. to read final state).
    pub fn program(&self, i: usize) -> &P {
        &self.programs[i]
    }

    /// Consume the machine, returning the programs.
    pub fn into_programs(self) -> Vec<P> {
        self.programs
    }

    fn push(&mut self, at: Steps, phase: Phase, kind: EvKind) {
        self.timeline.push(at, phase, kind);
    }

    /// Run to quiescence and return the report.
    ///
    /// Single-shot; equivalent to [`bvl_exec::drive`] under the configured
    /// event budget followed by deadlock detection.
    pub fn run(&mut self) -> Result<LogpReport, ModelError> {
        assert!(!self.started, "LogpMachine::run may only be called once");
        drive(self, self.config.max_events)?;

        // Quiesced: detect processors blocked forever.
        let waiting: Vec<ProcId> = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.halted)
            .map(|(i, _)| ProcId::from(i))
            .collect();
        if !waiting.is_empty() {
            return Err(ModelError::Deadlock { waiting });
        }

        // `run` is single-shot (the `started` flag), so the accumulated
        // metrics can be moved into the report instead of cloned.
        let mut report = LogpReport {
            makespan: self.makespan,
            delivered: self.delivered,
            stall_episodes: 0,
            total_stall: Steps::ZERO,
            latency: std::mem::take(&mut self.latency),
            duplicates_dropped: self.duplicates_dropped,
            per_proc: Vec::with_capacity(self.params.p),
        };
        for s in &mut self.procs {
            report.stall_episodes += s.stats.stall_episodes;
            report.total_stall += s.stats.stalled;
            report.per_proc.push(std::mem::take(&mut s.stats));
        }
        Ok(report)
    }

    fn on_deliver(&mut self, mut env: Envelope) -> Result<(), ModelError> {
        let dst = env.dst.index();
        env.delivered = self.now;
        self.in_transit[dst] -= 1;
        // At-least-once transport collapses to exactly-once at the buffer:
        // the second copy of a duplicated message frees its in-transit slot
        // but is dropped before the program can observe it.
        if let Some(seen) = &mut self.seen_ids {
            if !seen.insert(env.id.0) {
                self.duplicates_dropped += 1;
                self.instruments
                    .registry
                    .add(env.dst, Counter::Duplicates, 1);
                return self.try_accept(dst);
            }
        }
        self.delivered += 1;
        self.latency.push(env.latency().get() as f64);
        self.instruments.registry.add(env.dst, Counter::Delivered, 1);
        self.instruments
            .registry
            .observe(Hist::DeliveryLatency, env.latency().get());
        self.instruments.trace.record(Event::Deliver {
            at: self.now,
            msg: env.id,
            dst: env.dst,
        });
        let st = &mut self.procs[dst];
        st.buffer.push_back(env);
        st.stats.max_buffer = st.stats.max_buffer.max(st.buffer.len());
        // A freed slot may admit pending submissions.
        self.try_accept(dst)?;
        // A processor blocked in Recv can now start its acquisition.
        if self.procs[dst].waiting_recv {
            self.start_acquisition(dst);
        }
        Ok(())
    }

    fn on_submit(&mut self, proc: usize, mut env: Envelope) -> Result<(), ModelError> {
        env.submitted = self.now;
        let dst = env.dst.index();
        self.instruments.trace.record(Event::Submit {
            at: self.now,
            proc: ProcId::from(proc),
            msg: env.id,
            dst: env.dst,
        });
        self.procs[proc].stats.sent += 1;
        self.instruments
            .registry
            .add(ProcId::from(proc), Counter::Submitted, 1);
        self.procs[proc].pending_submit = true;
        self.pending[dst].push_back(env);
        self.try_accept(dst)?;
        if self.procs[proc].pending_submit {
            // Not accepted this instant: the sender stalls (§2.2).
            if self.config.forbid_stalling {
                return Err(ModelError::StallDetected {
                    proc: ProcId::from(proc),
                    at: self.now.get(),
                });
            }
            let st = &mut self.procs[proc];
            st.stalling = true;
            st.stall_since = self.now;
            st.stats.stall_episodes += 1;
            self.instruments
                .registry
                .add(ProcId::from(proc), Counter::StallEpisodes, 1);
            self.instruments.trace.record(Event::StallBegin {
                at: self.now,
                proc: ProcId::from(proc),
            });
        }
        Ok(())
    }

    /// The Stalling Rule at the current instant for one destination: accept
    /// `min{k, s}` pending messages in policy order. If acceptance stays
    /// blocked by a transient capacity outage (nothing in transit to free a
    /// slot later), schedule a [`EvKind::Wake`] re-poll at the medium's
    /// hint so the run extends stalls instead of wedging.
    fn try_accept(&mut self, dst: usize) -> Result<(), ModelError> {
        let capacity = self.medium.capacity(ProcId::from(dst), self.now);
        while self.in_transit[dst] < capacity && !self.pending[dst].is_empty() {
            let idx = match self.config.accept_order {
                AcceptOrder::Fifo => 0,
                AcceptOrder::Lifo => self.pending[dst].len() - 1,
                AcceptOrder::Random => self.rng.gen_range(0..self.pending[dst].len()),
            };
            let mut env = self.pending[dst].remove(idx).expect("checked non-empty");
            env.accepted = self.now;
            self.in_transit[dst] += 1;
            self.instruments.trace.record(Event::Accept {
                at: self.now,
                msg: env.id,
            });
            let src = env.src.index();
            let st = &mut self.procs[src];
            st.pending_submit = false;
            if st.stalling {
                st.stalling = false;
                st.stats.stalled += self.now - st.stall_since;
                if self.instruments.registry.is_enabled() {
                    let window = self.now - st.stall_since;
                    self.instruments
                        .registry
                        .add(ProcId::from(src), Counter::StallSteps, window.get());
                    self.instruments.registry.observe(Hist::StallDuration, window.get());
                    self.instruments.registry.span(
                        Span::new(SpanKind::Stall, st.stall_since, self.now)
                            .on(ProcId::from(src)),
                    );
                }
                self.instruments.trace.record(Event::StallEnd {
                    at: self.now,
                    proc: ProcId::from(src),
                });
            }
            // Sender resumes at the acceptance instant.
            self.push(
                self.now,
                Phase::Ready,
                EvKind::Ready {
                    proc: src,
                    acquired: None,
                },
            );
            let deliver_at = self.medium.delivery_time_checked(&env, self.now, &mut self.rng);
            let dup_at =
                self.medium
                    .duplicate_delivery(&env, deliver_at, self.now, &mut self.rng);
            if let Some(at) = dup_at {
                debug_assert!(at > self.now, "duplicate copy scheduled in the past");
                // The extra copy occupies a slot like any accepted message
                // (that pressure is the adversary's point).
                self.in_transit[dst] += 1;
                self.push(at, Phase::Deliver, EvKind::Deliver { env: env.clone() });
            }
            self.push(deliver_at, Phase::Deliver, EvKind::Deliver { env });
        }
        if !self.pending[dst].is_empty() && self.in_transit[dst] == 0 {
            // Blocked with nothing in flight: only a time-varying medium
            // can unblock this — ask it when.
            if let Some(at) = self.medium.wake_hint(ProcId::from(dst), self.now) {
                debug_assert!(at > self.now, "wake hint must be in the future");
                if self.wake_at[dst] <= self.now {
                    self.wake_at[dst] = at;
                    self.push(at, Phase::Deliver, EvKind::Wake { dst });
                }
            }
        }
        Ok(())
    }

    /// Begin the `o`-overhead acquisition of the oldest buffered message,
    /// honouring the acquisition gap.
    fn start_acquisition(&mut self, proc: usize) {
        let st = &mut self.procs[proc];
        debug_assert!(!st.buffer.is_empty());
        let env = st.buffer.pop_front().expect("buffer non-empty");
        let min_by_gap = st
            .last_acquire
            .map(|a| a + Steps(self.params.g))
            .unwrap_or(Steps::ZERO);
        let t_acq = (self.now + Steps(self.params.o)).max(min_by_gap);
        st.last_acquire = Some(t_acq);
        st.waiting_recv = false;
        st.stats.busy += Steps(self.params.o);
        self.push(
            t_acq,
            Phase::Ready,
            EvKind::Ready {
                proc,
                acquired: Some(env),
            },
        );
    }

    /// Ask an operational, idle processor for operations until one takes time.
    fn poll(&mut self, proc: usize) -> Result<(), ModelError> {
        let mut zero_ops = 0u32;
        loop {
            if self.procs[proc].halted {
                return Ok(());
            }
            let view = ProcView {
                me: ProcId::from(proc),
                p: self.params.p,
                now: self.now,
                buffered: self.procs[proc].buffer.len(),
                params: self.params,
            };
            let op = self.programs[proc].next_op(&view);
            match op {
                Op::Halt => {
                    let st = &mut self.procs[proc];
                    st.halted = true;
                    st.stats.halt_time = self.now;
                    return Ok(());
                }
                Op::Compute(0) => {
                    zero_ops += 1;
                    if zero_ops > 10_000 {
                        return Err(ModelError::Internal(format!(
                            "processor {proc} livelocked on zero-duration operations"
                        )));
                    }
                }
                Op::Compute(n) => {
                    self.procs[proc].stats.busy += Steps(n);
                    self.instruments
                        .registry
                        .add(ProcId::from(proc), Counter::LocalOps, n);
                    self.push(
                        self.now + Steps(n),
                        Phase::Ready,
                        EvKind::Ready {
                            proc,
                            acquired: None,
                        },
                    );
                    return Ok(());
                }
                Op::WaitUntil(t) => {
                    if t > self.now {
                        self.push(
                            t,
                            Phase::Ready,
                            EvKind::Ready {
                                proc,
                                acquired: None,
                            },
                        );
                        return Ok(());
                    }
                    zero_ops += 1;
                    if zero_ops > 10_000 {
                        return Err(ModelError::Internal(format!(
                            "processor {proc} livelocked on WaitUntil(past)"
                        )));
                    }
                }
                Op::Send { dst, payload } => {
                    if dst.index() >= self.params.p {
                        return Err(ModelError::BadDestination {
                            dst,
                            p: self.params.p,
                        });
                    }
                    let st = &mut self.procs[proc];
                    let min_by_gap = st
                        .last_submit
                        .map(|s| s + Steps(self.params.g))
                        .unwrap_or(Steps::ZERO);
                    let t_sub = (self.now + Steps(self.params.o)).max(min_by_gap);
                    st.last_submit = Some(t_sub);
                    st.stats.busy += Steps(self.params.o);
                    let env = Envelope {
                        id: self.instruments.alloc_msg_id(),
                        src: ProcId::from(proc),
                        dst,
                        payload,
                        submitted: t_sub,
                        accepted: t_sub,
                        delivered: t_sub,
                    };
                    self.push(t_sub, Phase::Submit, EvKind::Submit { proc, env });
                    return Ok(());
                }
                Op::Recv => {
                    if self.procs[proc].buffer.is_empty() {
                        self.procs[proc].waiting_recv = true;
                    } else {
                        self.start_acquisition(proc);
                    }
                    return Ok(());
                }
            }
        }
    }
}

impl<P: LogpProcess> Executor for LogpMachine<P> {
    /// Process one timeline event (lazily seeding the initial `Ready`
    /// events on the first call).
    fn step(&mut self) -> Result<bool, ModelError> {
        if !self.started {
            self.started = true;
            for i in 0..self.params.p {
                self.push(
                    Steps::ZERO,
                    Phase::Ready,
                    EvKind::Ready {
                        proc: i,
                        acquired: None,
                    },
                );
            }
        }
        let Some((at, _phase, kind)) = self.timeline.pop() else {
            return Ok(false);
        };
        self.events_processed += 1;
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.makespan = self.makespan.max(at);
        match kind {
            EvKind::Deliver { env } => self.on_deliver(env)?,
            EvKind::Submit { proc, env } => self.on_submit(proc, env)?,
            EvKind::Wake { dst } => self.try_accept(dst)?,
            EvKind::Ready { proc, acquired } => {
                if let Some(env) = acquired {
                    self.instruments.trace.record(Event::Acquire {
                        at: self.now,
                        proc: ProcId::from(proc),
                        msg: env.id,
                    });
                    self.procs[proc].stats.acquired += 1;
                    self.instruments
                        .registry
                        .add(ProcId::from(proc), Counter::Acquired, 1);
                    self.programs[proc].on_recv(env);
                }
                self.poll(proc)?;
            }
        }
        Ok(true)
    }

    fn halted(&self) -> bool {
        self.started && self.timeline.is_empty()
    }

    fn outcome(&self) -> RunOutcome {
        RunOutcome {
            makespan: self.makespan,
            delivered: self.delivered,
            work: self.events_processed,
            halted: self.halted(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DeliveryPolicy;
    use crate::process::Script;
    use crate::validate::assert_valid;
    use bvl_model::Payload;

    fn send(dst: u32, w: i64) -> Op {
        Op::Send {
            dst: ProcId(dst),
            payload: Payload::word(0, w),
        }
    }

    /// p=2, L=4, o=1, G=2: one message, checked step by step.
    #[test]
    fn single_message_timing() {
        let params = LogpParams::new(2, 4, 1, 2).unwrap();
        let programs = vec![Script::new([send(1, 42)]), Script::new([Op::Recv])];
        let mut m = LogpMachine::with_config(params, LogpConfig::traced(), programs);
        let report = m.run().unwrap();
        // Send decided at 0, submits at 1, accepted at 1, delivered at 5
        // (AtLatencyBound), acquisition 5 -> 6.
        assert_eq!(report.makespan, Steps(6));
        assert_eq!(report.delivered, 1);
        assert!(report.stall_free());
        assert_eq!(report.latency.mean(), 4.0);
        assert_valid(m.params(), m.trace());
        let received = m.into_programs().pop().unwrap().into_received();
        assert_eq!(received.len(), 1);
        assert_eq!(received[0].payload.expect_word(), 42);
        assert_eq!(received[0].submitted, Steps(1));
        assert_eq!(received[0].accepted, Steps(1));
        assert_eq!(received[0].delivered, Steps(5));
    }

    /// Consecutive submissions must be G apart: t_sub = 1, 3, 5.
    #[test]
    fn submission_gap_enforced() {
        let params = LogpParams::new(4, 4, 1, 2).unwrap();
        let mut programs = vec![Script::new([send(1, 0), send(2, 1), send(3, 2)])];
        programs.extend((0..3).map(|_| Script::idle()));
        let mut m = LogpMachine::with_config(params, LogpConfig::traced(), programs);
        let report = m.run().unwrap();
        let subs: Vec<Steps> = m
            .trace()
            .filter(|e| matches!(e, Event::Submit { .. }))
            .map(|e| e.at())
            .collect();
        assert_eq!(subs, vec![Steps(1), Steps(3), Steps(5)]);
        assert_eq!(report.makespan, Steps(9)); // last delivery at 5 + 4
        assert_valid(m.params(), m.trace());
    }

    /// The §2.2 hot-spot scenario: capacity 2, four senders to one target.
    /// Two senders stall for exactly 4 steps each; the receiver drains at
    /// one acquisition per G as the paper's discussion of stalling predicts.
    #[test]
    fn hot_spot_stalls_and_drains_at_gap_rate() {
        let params = LogpParams::new(5, 4, 1, 2).unwrap();
        assert_eq!(params.capacity(), 2);
        let mut programs = vec![Script::new([Op::Recv, Op::Recv, Op::Recv, Op::Recv])];
        programs.extend((1..5).map(|i| Script::new([send(0, i as i64)])));
        let mut m = LogpMachine::with_config(params, LogpConfig::traced(), programs);
        let report = m.run().unwrap();
        assert_eq!(report.stall_episodes, 2);
        assert_eq!(report.total_stall, Steps(8)); // 2 stalls x (5 - 1)
        assert_eq!(report.makespan, Steps(12));
        let acq: Vec<Steps> = m
            .trace()
            .filter(|e| matches!(e, Event::Acquire { .. }))
            .map(|e| e.at())
            .collect();
        assert_eq!(acq, vec![Steps(6), Steps(8), Steps(10), Steps(12)]);
        assert_valid(m.params(), m.trace());
    }

    #[test]
    fn forbid_stalling_rejects_hot_spot() {
        let params = LogpParams::new(5, 4, 1, 2).unwrap();
        let mut programs = vec![Script::new(vec![Op::Recv; 4])];
        programs.extend((1..5).map(|i| Script::new([send(0, i as i64)])));
        let mut m = LogpMachine::with_config(params, LogpConfig::stall_free(), programs);
        assert!(matches!(m.run(), Err(ModelError::StallDetected { .. })));
    }

    #[test]
    fn deadlock_detected() {
        let params = LogpParams::new(2, 4, 1, 2).unwrap();
        let programs = vec![Script::new([Op::Recv]), Script::idle()];
        let mut m = LogpMachine::new(params, programs);
        match m.run() {
            Err(ModelError::Deadlock { waiting }) => assert_eq!(waiting, vec![ProcId(0)]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn eager_delivery_is_faster_than_latency_bound() {
        let params = LogpParams::new(2, 16, 1, 2).unwrap();
        let build = || vec![Script::new([send(1, 0)]), Script::new([Op::Recv])];
        let mut slow = LogpMachine::new(params, build());
        let mut fast = LogpMachine::with_config(
            params,
            LogpConfig {
                delivery: DeliveryPolicy::Eager,
                ..LogpConfig::default()
            },
            build(),
        );
        let r_slow = slow.run().unwrap();
        let r_fast = fast.run().unwrap();
        assert!(r_fast.makespan < r_slow.makespan);
        assert_eq!(r_fast.latency.mean(), 1.0);
    }

    #[test]
    fn wait_until_advances_clock() {
        let params = LogpParams::new(1, 4, 1, 2).unwrap();
        let mut m = LogpMachine::new(params, vec![Script::new([Op::WaitUntil(Steps(10))])]);
        let report = m.run().unwrap();
        assert_eq!(report.makespan, Steps(10));
    }

    #[test]
    fn compute_zero_livelock_detected() {
        let params = LogpParams::new(1, 4, 1, 2).unwrap();
        let looper = crate::process::FnLogpProcess::new((), |_, _| Op::Compute(0), |_, _| {});
        let mut m = LogpMachine::new(params, vec![looper]);
        assert!(matches!(m.run(), Err(ModelError::Internal(_))));
    }

    #[test]
    fn bad_destination_rejected() {
        let params = LogpParams::new(2, 4, 1, 2).unwrap();
        let programs = vec![Script::new([send(7, 0)]), Script::idle()];
        let mut m = LogpMachine::new(params, programs);
        assert!(matches!(m.run(), Err(ModelError::BadDestination { .. })));
    }

    #[test]
    fn compute_occupies_cpu() {
        let params = LogpParams::new(1, 4, 1, 2).unwrap();
        let mut m = LogpMachine::new(params, vec![Script::new([Op::Compute(25)])]);
        let report = m.run().unwrap();
        assert_eq!(report.makespan, Steps(25));
        assert_eq!(report.per_proc[0].busy, Steps(25));
    }

    /// All policies produce admissible executions on contested traffic.
    #[test]
    fn all_policies_produce_valid_traces() {
        for order in [AcceptOrder::Fifo, AcceptOrder::Lifo, AcceptOrder::Random] {
            for delivery in [
                DeliveryPolicy::AtLatencyBound,
                DeliveryPolicy::Eager,
                DeliveryPolicy::Uniform,
            ] {
                let params = LogpParams::new(6, 6, 1, 2).unwrap();
                let mut programs = vec![Script::new(vec![Op::Recv; 10])];
                programs.extend(
                    (1..6).map(|i| Script::new((0..2).map(|k| send(0, (i * 10 + k) as i64)))),
                );
                let config = LogpConfig {
                    accept_order: order,
                    delivery,
                    trace: true,
                    seed: 7,
                    ..LogpConfig::default()
                };
                let mut m = LogpMachine::with_config(params, config, programs);
                let report = m.run().unwrap();
                assert_eq!(report.delivered, 10, "{order:?}/{delivery:?}");
                assert_valid(m.params(), m.trace());
            }
        }
    }

    /// G > L anomaly (§2.2): a fast periodic sender overruns the receiver's
    /// acquisition rate and the input buffer grows without bound.
    #[test]
    fn g_greater_than_l_grows_buffers() {
        // G = 6 > L = 2; P0 and P1 alternate sends to P2 so that only one
        // message is ever in transit (no stalling), but messages arrive
        // faster than P2 may acquire them (1 per G).
        let params = LogpParams::new_unchecked(3, 2, 1, 6);
        assert_eq!(params.capacity(), 1);
        let n = 20;
        let mk = |start: u64, stride: u64| {
            let mut ops = Vec::new();
            for k in 0..n {
                ops.push(Op::WaitUntil(Steps(start + stride * k)));
                ops.push(Op::Send {
                    dst: ProcId(2),
                    payload: Payload::word(0, k as i64),
                });
            }
            Script::new(ops)
        };
        let programs = vec![
            mk(0, 12),
            mk(6, 12),
            Script::new(vec![Op::Recv; 2 * n as usize]),
        ];
        let mut m = LogpMachine::new(params, programs);
        let report = m.run().unwrap();
        assert!(report.stall_free(), "capacity 1 is never exceeded");
        // Arrival rate 1/6 equals... arrival every 6 steps, acquisition
        // every 6 steps -- tune: with stride 12 per sender, combined
        // arrival period 6 equals G so buffer stays bounded; the anomaly
        // experiment proper (E-ANOM) uses the paper's exact schedule. Here
        // we only assert the machine permits G > L when unchecked.
        assert_eq!(report.delivered, 2 * n);
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use crate::process::Script;
    use bvl_model::Payload;

    #[test]
    fn per_proc_counters_track_traffic() {
        let params = LogpParams::new(3, 8, 1, 2).unwrap();
        let programs = vec![
            Script::new([
                Op::Send {
                    dst: ProcId(1),
                    payload: Payload::word(0, 1),
                },
                Op::Send {
                    dst: ProcId(2),
                    payload: Payload::word(0, 2),
                },
            ]),
            Script::new([Op::Recv]),
            Script::new([Op::Recv]),
        ];
        let mut m = LogpMachine::new(params, programs);
        let rep = m.run().unwrap();
        assert_eq!(rep.per_proc[0].sent, 2);
        assert_eq!(rep.per_proc[0].acquired, 0);
        assert_eq!(rep.per_proc[1].acquired, 1);
        assert_eq!(rep.per_proc[2].acquired, 1);
        // Sender busy: 2 sends x o = 2; receivers: 1 acquire x o each.
        assert_eq!(rep.per_proc[0].busy, Steps(2));
        assert_eq!(rep.per_proc[1].busy, Steps(1));
        // Halt times recorded.
        assert!(rep.per_proc.iter().all(|s| s.halt_time < Steps::MAX));
    }

    #[test]
    fn registry_observes_traffic_and_stalls() {
        use bvl_obs::{Counter, Hist, Registry, SpanKind};
        // The §2.2 hot-spot: capacity 2, four senders to one target; two
        // senders stall for 4 steps each (see `hot_spot_stalls_...` above).
        let params = LogpParams::new(5, 4, 1, 2).unwrap();
        let mut programs = vec![Script::new(vec![Op::Recv; 4])];
        programs.extend((1..5).map(|i| {
            Script::new([Op::Send {
                dst: ProcId(0),
                payload: Payload::word(0, i as i64),
            }])
        }));
        let mut m = LogpMachine::new(params, programs);
        let reg = Registry::enabled(5);
        m.instrument(&bvl_exec::RunOptions::new().registry(&reg));
        let rep = m.run().unwrap();
        assert_eq!(reg.counter(Counter::Submitted), 4);
        assert_eq!(reg.counter(Counter::Delivered), 4);
        assert_eq!(reg.counter(Counter::Acquired), 4);
        assert_eq!(reg.counter(Counter::StallEpisodes), 2);
        assert_eq!(reg.counter(Counter::StallSteps), 8);
        assert_eq!(reg.histogram(Hist::DeliveryLatency).count, 4);
        let stall_spans: Vec<_> = reg
            .spans()
            .into_iter()
            .filter(|s| s.kind == SpanKind::Stall)
            .collect();
        assert_eq!(stall_spans.len(), 2);
        assert_eq!(stall_spans[0].duration(), Steps(4));
        // The registry's view agrees with the report's.
        assert_eq!(rep.total_stall, Steps(8));
        // Processor-time attribution: residual is zero by construction.
        let cost = rep.attribution("hot-spot");
        assert_eq!(cost.residual(), 0);
        assert_eq!(cost.stall, Steps(8));
        assert_eq!(cost.makespan, Steps(5 * rep.makespan.get()));
    }

    #[test]
    fn latency_accumulator_counts_each_delivery() {
        let params = LogpParams::new(4, 8, 1, 2).unwrap();
        let mut programs = vec![Script::new(vec![Op::Recv; 3])];
        programs.extend((1..4).map(|i| {
            Script::new([Op::Send {
                dst: ProcId(0),
                payload: Payload::word(0, i as i64),
            }])
        }));
        let mut m = LogpMachine::new(params, programs);
        let rep = m.run().unwrap();
        assert_eq!(rep.latency.count(), 3);
        // Stall-free and AtLatencyBound: every latency is exactly L.
        assert_eq!(rep.latency.mean(), 8.0);
        assert_eq!(rep.latency.min(), 8.0);
        assert_eq!(rep.latency.max(), 8.0);
    }
}

//! # bvl-logp — a cycle-accurate LogP machine
//!
//! Implements the LogP model exactly as §2.2 of *BSP vs LogP* defines it,
//! including the paper's formalized **Stalling Rule**:
//!
//! > At a given time `t`, let `⌈L/G⌉ − s` be the number of messages in
//! > transit destined for processor `i` that have been accepted but not yet
//! > delivered, and let `k` be the number of submitted messages for
//! > processor `i` yet to be accepted. Then `min{k, s}` of these messages
//! > are accepted from the output registers.
//!
//! The engine is event-driven ([`machine::LogpMachine`]); its faithfulness
//! is checked two independent ways: [`validate::validate`] re-derives every
//! §2.2 constraint from a recorded trace (latency bound, gaps, capacity,
//! justified stalls) under every nondeterminism policy ([`policy`]), and
//! [`reference::run_reference`] — a literal per-time-step stepper — must
//! agree with it exactly on deterministic-policy runs (differential tests).
//!
//! Programs implement [`process::LogpProcess`] (pull-based state machines);
//! [`process::Script`] covers the common case of a fixed operation schedule,
//! which is how the cross-simulation protocols in `bvl-core` drive their
//! communication phases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod machine;
pub mod metrics;
pub mod params;
pub mod policy;
pub mod process;
pub mod reference;
pub mod stack;
pub mod timeline;
pub mod validate;

pub use machine::LogpMachine;
pub use metrics::{LogpReport, ProcStats};
pub use params::LogpParams;
pub use policy::{AcceptOrder, DeliveryPolicy, LogpConfig, PolicyMedium};
pub use process::{FnLogpProcess, LogpProcess, Op, ProcView, Script};
pub use stack::{LogpSpec, StackReport, StackedLogp};
pub use timeline::{Timeline, TimelineKind};

//! The LogP programming interface.

use crate::params::LogpParams;
use bvl_model::{Envelope, Payload, ProcId, Steps};
use std::collections::VecDeque;

/// One operation an operational processor may perform (§2.2: "execute an
/// operation on locally held data, receive a message, submit a message").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Perform `n` local operations (occupies the CPU `n` steps; `0` is a
    /// free re-poll).
    Compute(u64),
    /// Prepare (overhead `o`) and submit a message. The machine enforces the
    /// submission gap and applies the Stalling Rule; the processor stalls
    /// between submission and acceptance.
    Send {
        /// Destination processor.
        dst: ProcId,
        /// Message body.
        payload: Payload,
    },
    /// Acquire one buffered incoming message (overhead `o`, acquisition gap
    /// enforced). Blocks (idle) until a message is buffered; the message is
    /// handed to [`LogpProcess::on_recv`] when the acquisition completes.
    Recv,
    /// Stay idle until the given absolute time (a scheduling convenience for
    /// protocols with timed slots, e.g. the binary-tree CB of §4.1).
    WaitUntil(Steps),
    /// This processor is done.
    Halt,
}

impl Op {
    /// Idle for `n` steps from now — sugar for [`Op::WaitUntil`] relative to
    /// the view's current time.
    pub fn wait(view: &ProcView, n: u64) -> Op {
        Op::WaitUntil(view.now + Steps(n))
    }
}

/// What a processor can observe when deciding its next operation.
#[derive(Clone, Copy, Debug)]
pub struct ProcView {
    /// This processor's id.
    pub me: ProcId,
    /// Machine size.
    pub p: usize,
    /// Current local time (all clocks run at the same speed, §2).
    pub now: Steps,
    /// Number of delivered-but-unacquired messages in this processor's
    /// input buffer.
    pub buffered: usize,
    /// The machine parameters.
    pub params: LogpParams,
}

/// A per-processor LogP program, expressed as a pull-based state machine.
///
/// The engine calls [`next_op`](LogpProcess::next_op) whenever the processor
/// is operational and idle, and [`on_recv`](LogpProcess::on_recv) when an
/// [`Op::Recv`] completes (after the `o`-step acquisition).
pub trait LogpProcess: Send {
    /// Decide the next operation.
    fn next_op(&mut self, view: &ProcView) -> Op;
    /// Called when a message acquisition completes.
    fn on_recv(&mut self, msg: Envelope) {
        let _ = msg;
    }
}

impl LogpProcess for Box<dyn LogpProcess> {
    fn next_op(&mut self, view: &ProcView) -> Op {
        (**self).next_op(view)
    }
    fn on_recv(&mut self, msg: Envelope) {
        (**self).on_recv(msg);
    }
}

/// A scripted process: executes a fixed queue of operations, then halts.
/// Received messages are collected for later inspection. The workhorse of
/// tests and of the phase-by-phase cross-simulation drivers.
#[derive(Clone)]
pub struct Script {
    ops: VecDeque<Op>,
    received: Vec<Envelope>,
}

impl Script {
    /// Build from an operation list (a trailing `Halt` is implied).
    pub fn new(ops: impl IntoIterator<Item = Op>) -> Script {
        Script {
            ops: ops.into_iter().collect(),
            received: Vec::new(),
        }
    }

    /// An immediately-halting process.
    pub fn idle() -> Script {
        Script::new([])
    }

    /// Messages received so far, in acquisition order.
    pub fn received(&self) -> &[Envelope] {
        &self.received
    }

    /// Consume into the received messages.
    pub fn into_received(self) -> Vec<Envelope> {
        self.received
    }
}

impl LogpProcess for Script {
    fn next_op(&mut self, _view: &ProcView) -> Op {
        self.ops.pop_front().unwrap_or(Op::Halt)
    }
    fn on_recv(&mut self, msg: Envelope) {
        self.received.push(msg);
    }
}

/// Boxed `next_op` closure of a [`FnLogpProcess`].
type NextFn<S> = Box<dyn FnMut(&mut S, &ProcView) -> Op + Send>;
/// Boxed `on_recv` closure of a [`FnLogpProcess`].
type RecvFn<S> = Box<dyn FnMut(&mut S, Envelope) + Send>;

/// A process built from a state value and a closure — the SPMD convenience
/// mirror of `bvl_bsp::FnProcess`.
pub struct FnLogpProcess<S> {
    state: S,
    next: NextFn<S>,
    recv: RecvFn<S>,
}

impl<S: Send> FnLogpProcess<S> {
    /// Build from `next_op` and `on_recv` closures.
    pub fn new(
        state: S,
        next: impl FnMut(&mut S, &ProcView) -> Op + Send + 'static,
        recv: impl FnMut(&mut S, Envelope) + Send + 'static,
    ) -> FnLogpProcess<S> {
        FnLogpProcess {
            state,
            next: Box::new(next),
            recv: Box::new(recv),
        }
    }

    /// The process state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Consume into the state.
    pub fn into_state(self) -> S {
        self.state
    }
}

impl<S: Send> LogpProcess for FnLogpProcess<S> {
    fn next_op(&mut self, view: &ProcView) -> Op {
        (self.next)(&mut self.state, view)
    }
    fn on_recv(&mut self, msg: Envelope) {
        (self.recv)(&mut self.state, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_view() -> ProcView {
        ProcView {
            me: ProcId(0),
            p: 2,
            now: Steps(5),
            buffered: 0,
            params: LogpParams::new(2, 4, 1, 2).unwrap(),
        }
    }

    #[test]
    fn script_plays_ops_then_halts() {
        let mut s = Script::new([Op::Compute(3), Op::Recv]);
        let v = dummy_view();
        assert_eq!(s.next_op(&v), Op::Compute(3));
        assert_eq!(s.next_op(&v), Op::Recv);
        assert_eq!(s.next_op(&v), Op::Halt);
        assert_eq!(s.next_op(&v), Op::Halt);
    }

    #[test]
    fn script_collects_received() {
        let mut s = Script::idle();
        s.on_recv(Envelope::new(ProcId(1), ProcId(0), Payload::word(0, 7)));
        assert_eq!(s.received().len(), 1);
        assert_eq!(s.into_received()[0].payload.expect_word(), 7);
    }

    #[test]
    fn wait_is_relative_to_now() {
        let v = dummy_view();
        assert_eq!(Op::wait(&v, 10), Op::WaitUntil(Steps(15)));
    }

    #[test]
    fn fn_process_delegates() {
        let mut p = FnLogpProcess::new(
            0u32,
            |s, _v| {
                *s += 1;
                Op::Halt
            },
            |s, _m| *s += 100,
        );
        let v = dummy_view();
        assert_eq!(p.next_op(&v), Op::Halt);
        p.on_recv(Envelope::new(ProcId(1), ProcId(0), Payload::tagged(0)));
        assert_eq!(*p.state(), 101);
    }
}

//! Nondeterminism policies.
//!
//! §2.2 identifies two sources of nondeterminism in LogP: (i) the delay
//! between acceptance and delivery (anything up to `L`), and (ii) the order
//! in which pending submissions are accepted under congestion (the Stalling
//! Rule fixes *how many* are accepted per step, "while the order ... is left
//! completely unspecified. ... we assume that any order is possible").
//!
//! The engine makes both axes pluggable so that program correctness — "the
//! required input-output map under all admissible executions" — can be
//! tested against several adversaries.

use crate::params::LogpParams;
use crate::timeline::TimelineKind;
use bvl_exec::Medium;
use bvl_model::{Envelope, ProcId, Steps};
use rand::{Rng, RngCore};

/// When an accepted message is delivered, relative to its acceptance time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryPolicy {
    /// Always exactly `L` after acceptance — the latest admissible instant
    /// and the schedule the cross-simulation analyses assume.
    AtLatencyBound,
    /// As early as possible (one step after acceptance).
    Eager,
    /// Uniformly random in `[1, L]` after acceptance.
    Uniform,
}

impl DeliveryPolicy {
    /// Pick a delivery time for a message accepted at `accepted`.
    pub fn delivery_time<R: RngCore + ?Sized>(self, accepted: Steps, l: u64, rng: &mut R) -> Steps {
        let delay = match self {
            DeliveryPolicy::AtLatencyBound => l,
            DeliveryPolicy::Eager => 1,
            DeliveryPolicy::Uniform => rng.gen_range(1..=l.max(1)),
        };
        accepted + Steps(delay)
    }
}

/// The pure-LogP [`Medium`]: the abstract latency-`L` channel with uniform
/// per-destination capacity `⌈L/G⌉` and a pluggable [`DeliveryPolicy`].
/// This is the default medium of every `LogpMachine`; swapping it for a
/// routed-network medium is what turns the machine into a stacked
/// simulation.
#[derive(Clone, Copy, Debug)]
pub struct PolicyMedium {
    delivery: DeliveryPolicy,
    l: u64,
    capacity: u64,
}

impl PolicyMedium {
    /// The medium matching `params` and a delivery policy.
    pub fn new(params: LogpParams, delivery: DeliveryPolicy) -> PolicyMedium {
        PolicyMedium {
            delivery,
            l: params.l,
            capacity: params.capacity(),
        }
    }
}

impl Medium for PolicyMedium {
    fn capacity(&self, _dst: ProcId, _now: Steps) -> u64 {
        self.capacity
    }

    fn delivery_time(&mut self, _env: &Envelope, now: Steps, rng: &mut dyn RngCore) -> Steps {
        self.delivery.delivery_time(now, self.l, rng)
    }

    fn name(&self) -> &'static str {
        "logp"
    }

    fn shard_replica(&self) -> Option<Box<dyn Medium + Send>> {
        // Stateless apart from `Copy` parameters: every shard can carry its
        // own copy and the per-destination behaviour is unchanged.
        Some(Box::new(*self))
    }
}

/// The order in which pending (submitted, unaccepted) messages for a
/// congested destination are accepted as capacity frees up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcceptOrder {
    /// Oldest submission first (ties by sender id).
    Fifo,
    /// Newest submission first — a simple adversary.
    Lifo,
    /// Uniformly random among pending messages.
    Random,
}

/// Execution options for a LogP machine run.
#[derive(Clone, Copy, Debug)]
pub struct LogpConfig {
    /// Delivery-delay policy.
    pub delivery: DeliveryPolicy,
    /// Acceptance-order policy under congestion.
    pub accept_order: AcceptOrder,
    /// Fail with `ModelError::StallDetected` on the first stall — used to
    /// *verify* that a program is stall-free rather than merely hope so.
    pub forbid_stalling: bool,
    /// Record machine events into the trace.
    pub trace: bool,
    /// Safety valve: maximum number of engine events before the run is
    /// declared divergent.
    pub max_events: u64,
    /// Seed for the policy RNG (delivery delays, random acceptance order).
    pub seed: u64,
    /// Event-timeline implementation. `Bucket` (the default) and
    /// `BinaryHeap` produce bit-identical traces; the heap is kept for
    /// differential tests and benchmarks.
    pub timeline: TimelineKind,
    /// Worker shards the simulated machine is partitioned across (see
    /// DESIGN.md §13). Results and traces are bit-identical at any shard
    /// count; 1 (the default) runs the whole machine on the calling thread.
    pub shards: usize,
}

impl Default for LogpConfig {
    fn default() -> Self {
        LogpConfig {
            delivery: DeliveryPolicy::AtLatencyBound,
            accept_order: AcceptOrder::Fifo,
            forbid_stalling: false,
            trace: false,
            max_events: 200_000_000,
            seed: 0,
            timeline: TimelineKind::default(),
            shards: 1,
        }
    }
}

impl LogpConfig {
    /// Default config with tracing on — what most tests want.
    pub fn traced() -> LogpConfig {
        LogpConfig {
            trace: true,
            ..LogpConfig::default()
        }
    }

    /// Default config that rejects any stalling execution.
    pub fn stall_free() -> LogpConfig {
        LogpConfig {
            forbid_stalling: true,
            ..LogpConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_model::rngutil::SeedStream;

    #[test]
    fn delivery_times_respect_bounds() {
        let mut rng = SeedStream::new(3).derive("t", 0);
        for _ in 0..100 {
            let d = DeliveryPolicy::Uniform.delivery_time(Steps(10), 6, &mut rng);
            assert!(d > Steps(10) && d <= Steps(16));
        }
        assert_eq!(
            DeliveryPolicy::AtLatencyBound.delivery_time(Steps(10), 6, &mut rng),
            Steps(16)
        );
        assert_eq!(
            DeliveryPolicy::Eager.delivery_time(Steps(10), 6, &mut rng),
            Steps(11)
        );
    }

    #[test]
    fn config_presets() {
        assert!(LogpConfig::traced().trace);
        assert!(LogpConfig::stall_free().forbid_stalling);
        assert!(!LogpConfig::default().trace);
    }
}

//! LogP machine parameters.

use bvl_model::{ModelError, Steps};

/// The LogP parameter quadruple `(p, L, o, G)` of §2.2.
///
/// * `o` — overhead: CPU time to prepare a message for submission, and to
///   acquire a buffered incoming message.
/// * `G` — gap: at least `G` steps must elapse between consecutive
///   submissions, and between consecutive acquisitions, by the same
///   processor (`1/G` is the per-processor injection/reception rate).
/// * `L` — latency bound: a message is delivered at most `L` steps after its
///   acceptance by the medium.
/// * capacity constraint: at most `⌈L/G⌉` messages may be in transit towards
///   any single destination.
///
/// The paper argues for `max{2, o} ≤ G ≤ L` (§2.2); [`LogpParams::new`]
/// enforces it. The anomaly experiments (E-ANOM) deliberately violate it via
/// [`LogpParams::new_unchecked`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogpParams {
    /// Number of processors.
    pub p: usize,
    /// Latency bound `L`.
    pub l: u64,
    /// Overhead `o`.
    pub o: u64,
    /// Gap `G`.
    pub g: u64,
}

impl LogpParams {
    /// Validated constructor enforcing `p ≥ 1`, `L ≥ 1` and the paper's
    /// constraint `max{2, o} ≤ G ≤ L`.
    pub fn new(p: usize, l: u64, o: u64, g: u64) -> Result<LogpParams, ModelError> {
        if p == 0 {
            return Err(ModelError::InvalidParams("p must be >= 1".into()));
        }
        if l == 0 {
            return Err(ModelError::InvalidParams("L must be >= 1".into()));
        }
        if g < 2.max(o) {
            return Err(ModelError::InvalidParams(format!(
                "G = {g} violates G >= max{{2, o}} = {} (paper §2.2)",
                2.max(o)
            )));
        }
        if g > l {
            return Err(ModelError::InvalidParams(format!(
                "G = {g} violates G <= L = {l} (paper §2.2: bounded buffers)"
            )));
        }
        Ok(LogpParams { p, l, o, g })
    }

    /// Unvalidated constructor for the §2.2 anomaly studies (`G = 1`,
    /// `G > L`). Production code should use [`LogpParams::new`].
    pub fn new_unchecked(p: usize, l: u64, o: u64, g: u64) -> LogpParams {
        assert!(p >= 1 && l >= 1 && g >= 1, "p, L, G must be positive");
        LogpParams { p, l, o, g }
    }

    /// The capacity constraint `⌈L/G⌉`: the maximum number of messages that
    /// may simultaneously be in transit towards one destination.
    pub fn capacity(&self) -> u64 {
        self.l.div_ceil(self.g)
    }

    /// `L` as [`Steps`].
    pub fn latency(&self) -> Steps {
        Steps(self.l)
    }

    /// Time to route an h-relation with `h ≤ ⌈L/G⌉` by the simple-minded
    /// schedule of §4.2: `2o + G(h−1) + L`.
    pub fn small_relation_time(&self, h: u64) -> Steps {
        if h == 0 {
            return Steps::ZERO;
        }
        Steps(2 * self.o + self.g * (h - 1) + self.l)
    }

    /// The paper's CB running-time bound (§4.1):
    /// `3(L + o) · log p / log(1 + ⌈L/G⌉)`.
    pub fn cb_bound(&self) -> f64 {
        if self.p <= 1 {
            return 0.0;
        }
        let lp = (self.p as f64).ln();
        let denom = (1.0 + self.capacity() as f64).ln();
        3.0 * (self.l + self.o) as f64 * lp / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params_and_capacity() {
        let p = LogpParams::new(8, 16, 2, 4).unwrap();
        assert_eq!(p.capacity(), 4);
        let p = LogpParams::new(8, 17, 2, 4).unwrap();
        assert_eq!(p.capacity(), 5);
    }

    #[test]
    fn constraint_g_at_least_two() {
        assert!(LogpParams::new(4, 8, 0, 1).is_err());
        assert!(LogpParams::new(4, 8, 0, 2).is_ok());
    }

    #[test]
    fn constraint_g_at_least_o() {
        assert!(LogpParams::new(4, 8, 5, 4).is_err());
        assert!(LogpParams::new(4, 8, 4, 4).is_ok());
    }

    #[test]
    fn constraint_g_at_most_l() {
        assert!(LogpParams::new(4, 3, 1, 4).is_err());
        assert!(LogpParams::new(4, 4, 1, 4).is_ok());
    }

    #[test]
    fn unchecked_allows_anomalies() {
        let p = LogpParams::new_unchecked(4, 8, 1, 1); // G = 1
        assert_eq!(p.capacity(), 8);
        let p = LogpParams::new_unchecked(4, 2, 1, 5); // G > L
        assert_eq!(p.capacity(), 1);
    }

    #[test]
    fn small_relation_time_formula() {
        let p = LogpParams::new(4, 8, 1, 2).unwrap();
        assert_eq!(p.small_relation_time(4), Steps(2 + 2 * 3 + 8));
        assert_eq!(p.small_relation_time(0), Steps::ZERO);
    }

    #[test]
    fn cb_bound_monotone_in_p() {
        let a = LogpParams::new(8, 16, 2, 4).unwrap();
        let b = LogpParams::new(64, 16, 2, 4).unwrap();
        assert!(b.cb_bound() > a.cb_bound());
    }
}

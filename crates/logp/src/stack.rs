//! The LogP side of the composable simulation stack.
//!
//! [`LogpSpec`] names a guest LogP machine — parameters, policies, one
//! program per processor — without running it. Pairing the spec with any
//! [`Medium`] via [`Stacked`] and calling [`bvl_exec::RunStack::run_stack`] executes
//! the guest over that transport: `Stacked<LogpSpec<P>, PolicyMedium>` is
//! the abstract latency-`L` machine, while `Stacked<LogpSpec<P>,
//! NetMedium<T>>` (see `bvl_net`) grounds the *same* guest on a concrete
//! Table 1 topology whose `g`/`L` are measured rather than assumed.

use crate::machine::LogpMachine;
use crate::metrics::LogpReport;
use crate::params::LogpParams;
use crate::policy::LogpConfig;
use crate::process::LogpProcess;
use bvl_exec::{Medium, MediumGuest, RunOptions, Stacked};
use bvl_model::ModelError;

/// A guest LogP machine specification: everything needed to build the
/// machine except the transport it runs over.
#[derive(Clone, Debug)]
pub struct LogpSpec<P: LogpProcess> {
    /// The `(p, L, o, G)` quadruple the guest believes it runs on.
    pub params: LogpParams,
    /// Engine policies (delivery, acceptance order, stalling, budget).
    pub config: LogpConfig,
    /// One program per processor.
    pub programs: Vec<P>,
}

impl<P: LogpProcess> LogpSpec<P> {
    /// A spec with default [`LogpConfig`].
    pub fn new(params: LogpParams, programs: Vec<P>) -> LogpSpec<P> {
        LogpSpec {
            params,
            config: LogpConfig::default(),
            programs,
        }
    }

    /// A spec with explicit engine policies.
    pub fn with_config(params: LogpParams, config: LogpConfig, programs: Vec<P>) -> LogpSpec<P> {
        LogpSpec {
            params,
            config,
            programs,
        }
    }

    /// Pair this guest with a transport medium, ready for
    /// [`bvl_exec::RunStack::run_stack`]. The host is boxed so one
    /// [`MediumGuest`] impl covers every medium.
    pub fn over<M: Medium + Send + 'static>(self, medium: M) -> StackedLogp<P> {
        Stacked::new(self, Box::new(medium))
    }
}

/// A LogP guest over an arbitrary boxed transport.
pub type StackedLogp<P> = Stacked<LogpSpec<P>, Box<dyn Medium + Send>>;

/// Report of a stacked LogP run: the engine report plus the final programs
/// (for output-equivalence checks against a native run).
#[derive(Debug)]
pub struct StackReport<P> {
    /// The guest engine's report (makespan, stalls, latency, per-proc).
    pub report: LogpReport,
    /// The programs after the run.
    pub programs: Vec<P>,
}

impl<P: LogpProcess> MediumGuest for LogpSpec<P> {
    type Report = StackReport<P>;

    /// Run the guest over the host medium under shared options.
    ///
    /// One seed governs the whole stack: `opts.seed` overrides the spec's
    /// policy seed, so a stacked run is replayable from the [`RunOptions`]
    /// alone.
    fn run_over(
        self,
        host: Box<dyn Medium + Send>,
        opts: &RunOptions,
    ) -> Result<StackReport<P>, ModelError> {
        let mut config = self.config;
        config.seed = opts.seed;
        let mut machine = LogpMachine::with_config(self.params, config, self.programs);
        machine.set_medium(host);
        machine.instrument(opts);
        let report = machine.run()?;
        Ok(StackReport {
            report,
            programs: machine.into_programs(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DeliveryPolicy, PolicyMedium};
    use crate::process::{Op, Script};
    use bvl_exec::RunStack;
    use bvl_model::{Payload, ProcId};

    fn ring(p: usize, rounds: usize) -> Vec<Script> {
        (0..p)
            .map(|i| {
                let mut ops = Vec::new();
                for r in 0..rounds {
                    ops.push(Op::Send {
                        dst: ProcId(((i + 1) % p) as u32),
                        payload: Payload::word(r as u32, i as i64),
                    });
                    ops.push(Op::Recv);
                }
                Script::new(ops)
            })
            .collect()
    }

    #[test]
    fn policy_medium_stack_matches_plain_machine() {
        let params = LogpParams::new(8, 16, 1, 2).unwrap();
        let mut plain = LogpMachine::with_config(params, LogpConfig::default(), ring(8, 4));
        let want = plain.run().unwrap().makespan;

        let stack = LogpSpec::new(params, ring(8, 4))
            .over(PolicyMedium::new(params, DeliveryPolicy::AtLatencyBound));
        let got = stack.run_stack(&RunOptions::new()).unwrap();
        assert_eq!(got.report.makespan, want);
        assert_eq!(got.programs.len(), 8);
    }

    #[test]
    fn seed_comes_from_the_options() {
        let params = LogpParams::new(4, 8, 1, 2).unwrap();
        let run = |seed| {
            LogpSpec::new(params, ring(4, 2))
                .over(PolicyMedium::new(params, DeliveryPolicy::AtLatencyBound))
                .run_stack(&RunOptions::new().seed(seed))
            .unwrap()
            .report
            .makespan
        };
        assert_eq!(run(3), run(3), "replayable from the options alone");
    }

    #[test]
    fn budget_from_options_bounds_the_run() {
        let params = LogpParams::new(4, 8, 1, 2).unwrap();
        // Two processors waiting on each other forever: the budget must
        // convert divergence into a Timeout instead of spinning.
        let scripts = vec![
            Script::new(vec![Op::Recv]),
            Script::new(vec![Op::Recv]),
            Script::new(Vec::new()),
            Script::new(Vec::new()),
        ];
        let err = match LogpSpec::new(params, scripts)
            .over(PolicyMedium::new(params, DeliveryPolicy::AtLatencyBound))
            .run_stack(&RunOptions::new().budget(16))
        {
            Ok(_) => panic!("deadlocked stack must not complete"),
            Err(e) => e,
        };
        match err {
            ModelError::Timeout { .. } | ModelError::Deadlock { .. } => {}
            other => panic!("expected bounded failure, got {other:?}"),
        }
    }
}

//! The engine's event timeline: a bucketed calendar queue.
//!
//! The LogP engine pops events in `(time, phase, seq)` order. A binary heap
//! gives that order in `O(log n)` per operation, but the engine's pushes are
//! extremely structured: almost every event lands within `max(L, G, o)`
//! steps of the current instant (deliveries at most `L` ahead, submissions
//! and acquisitions at most `max(o, G)` ahead, thanks to the gap rules). A
//! calendar queue exploits this: a ring of time slots covering a power-of-two
//! window `[cursor, cursor + H)`, each slot holding one FIFO per phase.
//! Pushes into the window and pops from it are `O(1)`.
//!
//! Events beyond the window — `WaitUntil` far in the future, long `Compute`
//! bursts — go to a small overflow heap ordered by `(time, phase, seq)`.
//! Whenever the cursor advances, overflow events whose time has entered the
//! window are drained into their slots; because the heap yields them in
//! `(time, phase, seq)` order and each `(slot, phase)` FIFO preserves
//! insertion order, the pop sequence is **identical** to the heap's total
//! order, event for event. `tests/determinism.rs` asserts this trace
//! equivalence on a stalling-heavy workload.
//!
//! Invariants:
//!
//! * `len == ring_len + overflow.len()`.
//! * Every ring event's time is in `[cursor, cursor + H)`; every overflow
//!   event's time is `>= cursor + H`. The drain on cursor advance restores
//!   the second half before any push can target the newly covered times,
//!   so a `(slot, phase)` FIFO is always filled in ascending `seq` order.
//! * Pops never skip an instant: the cursor only advances past a slot that
//!   is empty, and within the cursor slot the lowest non-empty phase wins —
//!   so a phase-1 event pushed *at the current instant* while a phase-2
//!   event is being processed is still popped first, exactly as a heap
//!   keyed `(time, phase, seq)` would.

use bvl_exec::Phase;
use bvl_model::Steps;
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Number of event phases per instant (see [`Phase`]).
pub const PHASES: usize = Phase::COUNT;

/// Which timeline implementation the engine uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TimelineKind {
    /// The bucketed calendar queue — `O(1)` push/pop for in-window events.
    #[default]
    Bucket,
    /// The classic `BinaryHeap` timeline — kept as the reference
    /// implementation for differential tests and benchmarks.
    BinaryHeap,
}

/// An event ordered by `(at, phase, seq)`; the payload does not participate
/// in the ordering.
struct Keyed<T> {
    at: u64,
    phase: u8,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Keyed<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.phase, self.seq) == (other.at, other.phase, other.seq)
    }
}
impl<T> Eq for Keyed<T> {}
impl<T> Ord for Keyed<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.phase, self.seq).cmp(&(other.at, other.phase, other.seq))
    }
}
impl<T> PartialOrd for Keyed<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Don't allocate rings beyond this many slots; rarer far-ahead events are
/// cheap enough through the overflow heap.
const MAX_SLOTS: u64 = 1 << 16;

struct Ring<T> {
    /// `slots[t & mask]` holds the per-phase FIFOs for instant `t`.
    slots: Vec<[VecDeque<T>; PHASES]>,
    mask: u64,
    /// Base of the covered window; also the scan position for pops.
    cursor: u64,
    /// Events currently stored in slots (the rest are in `overflow`).
    ring_len: usize,
    /// Lower bound on the earliest occupied in-window instant (`u64::MAX`
    /// when the ring is empty). Pushes tighten it; [`Ring::next_time`]
    /// scans forward from it and parks it on what it finds, so repeated
    /// elections cost amortized `O(1)` instead of a window scan each.
    earliest: Cell<u64>,
    overflow: BinaryHeap<Reverse<Keyed<T>>>,
}

impl<T> Ring<T> {
    fn new(span_hint: u64) -> Ring<T> {
        // +2: the furthest structured push is `span_hint` ahead of `now`,
        // and the window must strictly contain it even mid-instant.
        let slots = (span_hint + 2).next_power_of_two().clamp(8, MAX_SLOTS);
        Ring {
            slots: (0..slots)
                .map(|_| std::array::from_fn(|_| VecDeque::new()))
                .collect(),
            mask: slots - 1,
            cursor: 0,
            ring_len: 0,
            earliest: Cell::new(u64::MAX),
            overflow: BinaryHeap::new(),
        }
    }

    #[inline]
    fn horizon(&self) -> u64 {
        self.mask + 1
    }

    #[inline]
    fn push(&mut self, at: u64, phase: u8, seq: u64, payload: T) {
        debug_assert!(at >= self.cursor, "push into the past");
        if at - self.cursor < self.horizon() {
            self.slots[(at & self.mask) as usize][phase as usize].push_back(payload);
            self.ring_len += 1;
            self.earliest.set(self.earliest.get().min(at));
        } else {
            self.overflow.push(Reverse(Keyed {
                at,
                phase,
                seq,
                payload,
            }));
        }
    }

    /// Move overflow events whose time has entered the window into slots.
    /// Heap order is `(at, phase, seq)`, so each FIFO stays seq-sorted.
    fn drain_overflow(&mut self) {
        let end = self.cursor + self.horizon();
        while let Some(Reverse(top)) = self.overflow.peek() {
            if top.at >= end {
                break;
            }
            let Reverse(ev) = self.overflow.pop().expect("peeked");
            self.slots[(ev.at & self.mask) as usize][ev.phase as usize].push_back(ev.payload);
            self.ring_len += 1;
            self.earliest.set(self.earliest.get().min(ev.at));
        }
    }

    fn pop(&mut self) -> Option<(Steps, Phase, T)> {
        loop {
            if self.ring_len == 0 {
                // Jump straight to the earliest far-future event.
                let at = self.overflow.peek()?.0.at;
                self.cursor = at;
                self.drain_overflow();
                debug_assert!(self.ring_len > 0);
            }
            let slot = &mut self.slots[(self.cursor & self.mask) as usize];
            for (phase, q) in slot.iter_mut().enumerate() {
                if let Some(payload) = q.pop_front() {
                    self.ring_len -= 1;
                    return Some((Steps(self.cursor), Phase::from_u8(phase as u8), payload));
                }
            }
            self.cursor += 1;
            self.drain_overflow();
        }
    }

    /// Earliest queued instant, without advancing the cursor (the cursor
    /// must stay put so same-instant pushes remain legal — see
    /// [`Timeline::next_time`]).
    fn next_time(&self) -> Option<u64> {
        if self.ring_len > 0 {
            let end = self.cursor + self.horizon();
            // `earliest` is a lower bound (pushes tighten it, pops never
            // invalidate a lower bound), so starting the scan there and
            // parking it on the hit keeps repeated peeks near-free.
            let mut t = self.earliest.get().max(self.cursor);
            while t < end {
                if self.slots[(t & self.mask) as usize]
                    .iter()
                    .any(|q| !q.is_empty())
                {
                    self.earliest.set(t);
                    return Some(t);
                }
                t += 1;
            }
            unreachable!("ring_len > 0 but no event at or after `earliest`");
        }
        self.earliest.set(u64::MAX);
        self.overflow.peek().map(|r| r.0.at)
    }

    fn advance_to(&mut self, at: u64) {
        debug_assert!(at >= self.cursor, "advance into the past");
        debug_assert!(
            self.next_time().is_none_or(|t| t >= at),
            "advance past a queued event"
        );
        self.cursor = at;
        self.drain_overflow();
    }

    fn pop_at(&mut self, at: u64, phase: u8) -> Option<T> {
        debug_assert_eq!(self.cursor, at, "pop_at before advance_to");
        let slot = &mut self.slots[(at & self.mask) as usize];
        let payload = slot[phase as usize].pop_front()?;
        self.ring_len -= 1;
        Some(payload)
    }
}

/// A priority queue of engine events, popped in `(time, phase, seq)` order
/// where `seq` is the push sequence number.
pub struct Timeline<T> {
    imp: Imp<T>,
    seq: u64,
    len: usize,
}

enum Imp<T> {
    Bucket(Ring<T>),
    Heap(BinaryHeap<Reverse<Keyed<T>>>),
}

impl<T> Timeline<T> {
    /// Create a timeline. `span_hint` is how far ahead of the current
    /// instant structured pushes can land (`max(L, G, o)` for the LogP
    /// engine); it sizes the bucket ring and is irrelevant for the heap.
    pub fn new(kind: TimelineKind, span_hint: u64) -> Timeline<T> {
        Timeline {
            imp: match kind {
                TimelineKind::Bucket => Imp::Bucket(Ring::new(span_hint)),
                TimelineKind::BinaryHeap => Imp::Heap(BinaryHeap::new()),
            },
            seq: 0,
            len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue `payload` at instant `at`, phase `phase`.
    #[inline]
    pub fn push(&mut self, at: Steps, phase: Phase, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        match &mut self.imp {
            Imp::Bucket(ring) => ring.push(at.get(), phase.as_u8(), seq, payload),
            Imp::Heap(heap) => heap.push(Reverse(Keyed {
                at: at.get(),
                phase: phase.as_u8(),
                seq,
                payload,
            })),
        }
    }

    /// Remove and return the earliest event.
    #[inline]
    pub fn pop(&mut self) -> Option<(Steps, Phase, T)> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        match &mut self.imp {
            Imp::Bucket(ring) => ring.pop(),
            Imp::Heap(heap) => heap
                .pop()
                .map(|Reverse(ev)| (Steps(ev.at), Phase::from_u8(ev.phase), ev.payload)),
        }
    }

    /// The earliest queued instant, **without** consuming anything or
    /// advancing the bucket cursor — so pushes at the returned instant
    /// remain legal afterwards. The sharded engine uses this to elect the
    /// next lock-step instant across shards.
    pub fn next_time(&self) -> Option<Steps> {
        if self.len == 0 {
            return None;
        }
        match &self.imp {
            Imp::Bucket(ring) => ring.next_time().map(Steps),
            Imp::Heap(heap) => heap.peek().map(|r| Steps(r.0.at)),
        }
    }

    /// Advance the clock to `at`, which must not skip past any queued
    /// event (callers advance to [`Timeline::next_time`] or earlier).
    /// A no-op for the heap; for the bucket ring it moves the cursor and
    /// drains newly covered overflow events into their slots.
    pub fn advance_to(&mut self, at: Steps) {
        if let Imp::Bucket(ring) = &mut self.imp {
            ring.advance_to(at.get());
        }
    }

    /// Remove and return the earliest event at exactly instant `at` with
    /// exactly phase `phase`, or `None` if there is none. Requires a prior
    /// [`Timeline::advance_to`]`(at)` (bucket cursor parked at `at`); events
    /// pushed at `(at, phase)` between calls are picked up in `seq` order,
    /// exactly like [`Timeline::pop`] would.
    ///
    /// For the heap the check is against the *top* — so callers must drain
    /// phases in ascending order within an instant and never leave a
    /// lower-phase event queued at `at` when popping a higher phase (the
    /// sharded engine's sub-phase discipline guarantees this; the bucket
    /// ring pops per-phase queues directly and has no such sensitivity,
    /// which is exactly why both impls agree under that discipline).
    pub fn pop_at(&mut self, at: Steps, phase: Phase) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let popped = match &mut self.imp {
            Imp::Bucket(ring) => ring.pop_at(at.get(), phase.as_u8()),
            Imp::Heap(heap) => {
                let top = heap.peek()?;
                if top.0.at == at.get() && top.0.phase == phase.as_u8() {
                    heap.pop().map(|Reverse(ev)| ev.payload)
                } else {
                    None
                }
            }
        };
        popped.inspect(|_| {
            self.len -= 1;
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(t: &mut Timeline<T>) -> Vec<(u64, Phase, T)> {
        let mut out = Vec::new();
        while let Some((at, ph, v)) = t.pop() {
            out.push((at.get(), ph, v));
        }
        out
    }

    /// Feed both implementations an identical interleaved push/pop schedule
    /// and require identical pop sequences.
    fn equivalence_on(schedule: &[(u64, Phase)], span_hint: u64) {
        let mut bucket = Timeline::new(TimelineKind::Bucket, span_hint);
        let mut heap = Timeline::new(TimelineKind::BinaryHeap, span_hint);
        let mut popped = Vec::new();
        for (i, &(at, ph)) in schedule.iter().enumerate() {
            bucket.push(Steps(at), ph, i);
            heap.push(Steps(at), ph, i);
            if i % 3 == 2 {
                popped.push((bucket.pop(), heap.pop()));
            }
        }
        for (b, h) in popped {
            assert_eq!(b, h);
        }
        assert_eq!(drain(&mut bucket), drain(&mut heap));
    }

    #[test]
    fn matches_heap_on_clustered_times() {
        let sched: Vec<(u64, Phase)> = (0..200)
            .map(|i: u64| ((i * 7919) % 40, Phase::from_u8((i % 3) as u8)))
            .collect();
        // Interleaved pops force monotone re-push times for this harness,
        // so sort by time first to keep pushes legal.
        let mut sched = sched;
        sched.sort();
        equivalence_on(&sched, 64);
    }

    #[test]
    fn far_future_events_go_through_overflow() {
        let mut t = Timeline::new(TimelineKind::Bucket, 4);
        t.push(Steps(1_000_000), Phase::Ready, "far");
        t.push(Steps(3), Phase::Deliver, "near");
        t.push(Steps(2_000_000), Phase::Deliver, "farther");
        assert_eq!(t.len(), 3);
        assert_eq!(t.pop(), Some((Steps(3), Phase::Deliver, "near")));
        assert_eq!(t.pop(), Some((Steps(1_000_000), Phase::Ready, "far")));
        assert_eq!(t.pop(), Some((Steps(2_000_000), Phase::Deliver, "farther")));
        assert_eq!(t.pop(), None);
    }

    #[test]
    fn same_instant_lower_phase_wins_even_if_pushed_later() {
        for kind in [TimelineKind::Bucket, TimelineKind::BinaryHeap] {
            let mut t = Timeline::new(kind, 8);
            t.push(Steps(5), Phase::Ready, "ready");
            t.push(Steps(5), Phase::Submit, "submit");
            t.push(Steps(5), Phase::Deliver, "deliver");
            assert_eq!(t.pop(), Some((Steps(5), Phase::Deliver, "deliver")));
            assert_eq!(t.pop(), Some((Steps(5), Phase::Submit, "submit")));
            assert_eq!(t.pop(), Some((Steps(5), Phase::Ready, "ready")));
        }
    }

    #[test]
    fn fifo_within_phase() {
        for kind in [TimelineKind::Bucket, TimelineKind::BinaryHeap] {
            let mut t = Timeline::new(kind, 8);
            for i in 0..10 {
                t.push(Steps(1), Phase::Submit, i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| t.pop().map(|(_, _, v)| v)).collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn overflow_drains_in_order_as_window_advances() {
        // Horizon is small (hint 2 -> 8 slots); events at stride 20 all go
        // through the overflow heap yet must still come out sorted.
        let mut t = Timeline::new(TimelineKind::Bucket, 2);
        for i in (0..50u64).rev() {
            t.push(Steps(i * 20), Phase::from_u8((i % 3) as u8), i);
        }
        let mut last = (0, Phase::Deliver);
        let mut n = 0;
        while let Some((at, ph, _)) = t.pop() {
            assert!((at.get(), ph) >= last);
            last = (at.get(), ph);
            n += 1;
        }
        assert_eq!(n, 50);
    }

    #[test]
    fn push_at_cursor_instant_during_processing() {
        // Pop an event at t=10, then push more work at t=10: it must be
        // popped before anything later, in phase-then-FIFO order.
        let mut t = Timeline::new(TimelineKind::Bucket, 8);
        t.push(Steps(10), Phase::Ready, "first");
        t.push(Steps(11), Phase::Deliver, "later");
        assert_eq!(t.pop(), Some((Steps(10), Phase::Ready, "first")));
        t.push(Steps(10), Phase::Submit, "same-instant-submit");
        t.push(Steps(10), Phase::Ready, "same-instant-ready");
        assert_eq!(t.pop(), Some((Steps(10), Phase::Submit, "same-instant-submit")));
        assert_eq!(t.pop(), Some((Steps(10), Phase::Ready, "same-instant-ready")));
        assert_eq!(t.pop(), Some((Steps(11), Phase::Deliver, "later")));
    }

    #[test]
    fn next_time_is_non_mutating_and_agrees_across_impls() {
        for kind in [TimelineKind::Bucket, TimelineKind::BinaryHeap] {
            let mut t = Timeline::new(kind, 4);
            assert_eq!(t.next_time(), None);
            t.push(Steps(7), Phase::Ready, "r");
            t.push(Steps(500), Phase::Deliver, "overflow");
            assert_eq!(t.next_time(), Some(Steps(7)));
            assert_eq!(t.next_time(), Some(Steps(7)), "peek twice is safe");
            // The cursor did not advance: a push at an earlier instant than
            // the peeked time must still be legal.
            t.push(Steps(5), Phase::Submit, "earlier");
            assert_eq!(t.next_time(), Some(Steps(5)));
            assert_eq!(t.pop(), Some((Steps(5), Phase::Submit, "earlier")));
            assert_eq!(t.next_time(), Some(Steps(7)));
        }
    }

    #[test]
    fn pop_at_filters_by_instant_and_phase() {
        for kind in [TimelineKind::Bucket, TimelineKind::BinaryHeap] {
            let mut t = Timeline::new(kind, 8);
            t.push(Steps(3), Phase::Deliver, "d");
            t.push(Steps(3), Phase::Submit, "s");
            t.push(Steps(3), Phase::Ready, "r");
            t.push(Steps(4), Phase::Deliver, "next-instant");
            t.advance_to(Steps(3));
            // Exact-phase pops drain the instant one sub-phase at a time.
            assert_eq!(t.pop_at(Steps(3), Phase::Deliver), Some("d"));
            assert_eq!(t.pop_at(Steps(3), Phase::Deliver), None);
            assert_eq!(t.pop_at(Steps(3), Phase::Submit), Some("s"));
            // Same-instant push during processing is picked up.
            t.push(Steps(3), Phase::Ready, "r2");
            assert_eq!(t.pop_at(Steps(3), Phase::Ready), Some("r"));
            assert_eq!(t.pop_at(Steps(3), Phase::Ready), Some("r2"));
            // The instant is exhausted; t=4 is untouched.
            assert_eq!(t.pop_at(Steps(3), Phase::Ready), None);
            assert_eq!(t.len(), 1);
            t.advance_to(Steps(4));
            assert_eq!(t.pop_at(Steps(4), Phase::Deliver), Some("next-instant"));
            assert!(t.is_empty());
        }
    }

    #[test]
    fn advance_to_drains_overflow_for_pop_at() {
        // Tiny window (hint 2 -> 8 slots): an event 100 ahead sits in the
        // overflow heap until advance_to covers its instant.
        let mut t = Timeline::new(TimelineKind::Bucket, 2);
        t.push(Steps(100), Phase::Submit, "far");
        assert_eq!(t.next_time(), Some(Steps(100)));
        t.advance_to(Steps(100));
        assert_eq!(t.pop_at(Steps(100), Phase::Submit), Some("far"));
        assert!(t.is_empty());
        assert_eq!(t.pop_at(Steps(100), Phase::Submit), None);
    }

    #[test]
    fn empty_ring_jumps_to_overflow_min() {
        let mut t = Timeline::new(TimelineKind::Bucket, 2);
        t.push(Steps(0), Phase::Ready, 0);
        assert!(t.pop().is_some());
        // Ring empty; next event far beyond the window.
        t.push(Steps(999_999), Phase::Submit, 1);
        t.push(Steps(999_999), Phase::Deliver, 2);
        assert_eq!(t.pop(), Some((Steps(999_999), Phase::Deliver, 2)));
        assert_eq!(t.pop(), Some((Steps(999_999), Phase::Submit, 1)));
        assert!(t.is_empty());
    }
}

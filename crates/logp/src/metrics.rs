//! Run reports and per-processor statistics.

use bvl_model::stats::Accumulator;
use bvl_model::Steps;
use bvl_obs::CostReport;

/// Per-processor execution statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// CPU time spent on local operations and message overheads.
    pub busy: Steps,
    /// Total time spent stalling (submission → acceptance windows).
    pub stalled: Steps,
    /// Number of distinct stall episodes.
    pub stall_episodes: u64,
    /// Time at which the processor halted (`Steps::MAX` if it never did).
    pub halt_time: Steps,
    /// Peak occupancy of the input buffer (delivered, unacquired messages) —
    /// the quantity the §2.2 `G ≤ L` argument is about.
    pub max_buffer: usize,
    /// Messages this processor submitted.
    pub sent: u64,
    /// Messages this processor acquired.
    pub acquired: u64,
}

/// Outcome of a completed LogP run.
#[derive(Clone, Debug)]
pub struct LogpReport {
    /// Time at which the machine quiesced (last event processed).
    pub makespan: Steps,
    /// Total messages delivered to input buffers.
    pub delivered: u64,
    /// Total stall episodes across all processors.
    pub stall_episodes: u64,
    /// Total stalled time across all processors.
    pub total_stall: Steps,
    /// End-to-end message latency (submission → delivery) summary.
    pub latency: Accumulator,
    /// Duplicate deliveries dropped at input buffers (non-zero only under
    /// an adversarial medium that replays messages).
    pub duplicates_dropped: u64,
    /// Per-processor statistics.
    pub per_proc: Vec<ProcStats>,
}

impl LogpReport {
    /// True iff no processor ever stalled — the execution was stall-free.
    pub fn stall_free(&self) -> bool {
        self.stall_episodes == 0
    }

    /// Peak input-buffer occupancy across all processors.
    pub fn max_buffer(&self) -> usize {
        self.per_proc.iter().map(|s| s.max_buffer).max().unwrap_or(0)
    }

    /// Attribute the run over *processor-time*: a `p`-processor run of
    /// makespan `T` has `p·T` processor-steps, each of which was busy
    /// (`work`), stalled (`stall`), or idle (`other` — waiting on the
    /// medium or on peers). The residual is zero by construction; the
    /// interesting signal is the split itself, e.g. stall fraction under a
    /// hot-spot workload.
    pub fn attribution(&self, label: &str) -> CostReport {
        let p = self.per_proc.len() as u64;
        let busy: Steps = self.per_proc.iter().map(|s| s.busy).sum();
        let stalled: Steps = self.per_proc.iter().map(|s| s.stalled).sum();
        let total = Steps(p * self.makespan.get());
        CostReport {
            label: label.to_string(),
            makespan: total,
            work: busy,
            comm: Steps::ZERO,
            sync: Steps::ZERO,
            stall: stalled,
            other: total.saturating_sub(busy + stalled),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_free_reflects_episodes() {
        let r = LogpReport {
            makespan: Steps(10),
            delivered: 1,
            stall_episodes: 0,
            total_stall: Steps::ZERO,
            latency: Accumulator::new(),
            duplicates_dropped: 0,
            per_proc: vec![ProcStats::default()],
        };
        assert!(r.stall_free());
    }

    #[test]
    fn max_buffer_over_procs() {
        let a = ProcStats {
            max_buffer: 3,
            ..ProcStats::default()
        };
        let b = ProcStats {
            max_buffer: 7,
            ..ProcStats::default()
        };
        let r = LogpReport {
            makespan: Steps(1),
            delivered: 0,
            stall_episodes: 0,
            total_stall: Steps::ZERO,
            latency: Accumulator::new(),
            duplicates_dropped: 0,
            per_proc: vec![a, b],
        };
        assert_eq!(r.max_buffer(), 7);
    }
}

//! A literal per-time-step reference engine.
//!
//! The production engine ([`crate::machine::LogpMachine`]) is event-driven
//! for speed. This module re-implements the §2.2 semantics the slowest,
//! most obviously-correct way possible — one `t += 1` loop with the
//! deliver → accept → act phases spelled out — and serves as a differential
//! oracle: on stall-free executions the two engines must agree *exactly*
//! (makespan, per-processor halt times, per-message timestamps); under
//! stalling, where the Stalling Rule leaves the acceptance order
//! unspecified and the engines may pick different admissible schedules,
//! both must still deliver the same message multiset and produce traces the
//! validator accepts.
//!
//! Supported policies: FIFO acceptance, `AtLatencyBound`/`Eager` delivery
//! (the deterministic subset — randomized policies would require replaying
//! the production engine's RNG call order, which would defeat the point of
//! an independent implementation).

use crate::metrics::{LogpReport, ProcStats};
use crate::params::LogpParams;
use crate::policy::{DeliveryPolicy, LogpConfig};
use crate::process::{LogpProcess, Op, ProcView};
use bvl_model::stats::Accumulator;
use bvl_model::{Envelope, ModelError, MsgId, ProcId, Steps};
use std::collections::{BTreeMap, VecDeque};

enum State {
    /// Ready to decide an operation.
    Idle,
    /// Occupied through the given instant; the effect fires then.
    Busy(Steps, Effect),
    /// Blocked on an empty input buffer.
    WaitingRecv,
    /// Submitted, awaiting acceptance.
    Stalling,
    Halted,
}

enum Effect {
    None,
    Submit(Envelope),
    Acquire(Envelope),
}

struct Proc<P> {
    program: P,
    state: State,
    last_submit: Option<Steps>,
    last_acquire: Option<Steps>,
    buffer: VecDeque<Envelope>,
    stats: ProcStats,
    stall_since: Steps,
}

/// Run the programs under the stepper. Only deterministic policies are
/// supported (see module docs).
pub fn run_reference<P: LogpProcess>(
    params: LogpParams,
    config: LogpConfig,
    programs: Vec<P>,
) -> Result<LogpReport, ModelError> {
    assert_eq!(programs.len(), params.p);
    assert!(
        matches!(config.delivery, DeliveryPolicy::AtLatencyBound | DeliveryPolicy::Eager),
        "reference engine supports deterministic delivery policies only"
    );
    let p = params.p;
    let (l, o, g) = (params.l, params.o, params.g);
    let capacity = params.capacity();

    let mut procs: Vec<Proc<P>> = programs
        .into_iter()
        .map(|program| Proc {
            program,
            state: State::Idle,
            last_submit: None,
            last_acquire: None,
            buffer: VecDeque::new(),
            stats: ProcStats {
                halt_time: Steps::MAX,
                ..ProcStats::default()
            },
        stall_since: Steps::ZERO,
        })
        .collect();
    let mut pending: Vec<VecDeque<Envelope>> = vec![VecDeque::new(); p];
    let mut in_transit = vec![0u64; p];
    let mut deliveries: BTreeMap<Steps, Vec<Envelope>> = BTreeMap::new();
    let mut next_msg = 0u64;
    let mut delivered = 0u64;
    let mut latency = Accumulator::new();
    let mut makespan = Steps::ZERO;

    let mut t = Steps::ZERO;
    let mut steps = 0u64;
    loop {
        steps += 1;
        if steps > config.max_events {
            return Err(ModelError::Timeout {
                budget: config.max_events,
            });
        }

        // Phase 1: deliveries due now.
        if let Some(batch) = deliveries.remove(&t) {
            for mut env in batch {
                env.delivered = t;
                let dst = env.dst.index();
                in_transit[dst] -= 1;
                delivered += 1;
                latency.push(env.latency().get() as f64);
                makespan = makespan.max(t);
                procs[dst].buffer.push_back(env);
                let occ = procs[dst].buffer.len();
                procs[dst].stats.max_buffer = procs[dst].stats.max_buffer.max(occ);
            }
        }

        // Phases 1.5–3 iterate to a fixed point within the instant: with
        // o = 0 a send decided at t submits at t, whose acceptance can in
        // turn free the sender to decide another zero-latency operation.
        let mut instant_guard = 0;
        loop {
        instant_guard += 1;
        if instant_guard > 10_000 {
            return Err(ModelError::Internal("instant livelock".into()));
        }
        let mut fired = false;
        // Phase 1.5: effects of operations completing now (in processor
        // order — submissions enter the pending queues here).
        for proc in procs.iter_mut() {
            let due = matches!(&proc.state, State::Busy(until, _) if *until == t);
            if !due {
                continue;
            }
            fired = true;
            let State::Busy(_, effect) = std::mem::replace(&mut proc.state, State::Idle)
            else {
                unreachable!()
            };
            match effect {
                Effect::None => {}
                Effect::Acquire(env) => {
                    proc.stats.acquired += 1;
                    makespan = makespan.max(t);
                    proc.program.on_recv(env);
                }
                Effect::Submit(mut env) => {
                    env.submitted = t;
                    proc.stats.sent += 1;
                    pending[env.dst.index()].push_back(env);
                    proc.state = State::Stalling; // resolved below if a slot is free
                    proc.stall_since = t;
                }
            }
        }

        // Phase 2: the Stalling Rule, FIFO per destination.
        for dst in 0..p {
            while in_transit[dst] < capacity && !pending[dst].is_empty() {
                let mut env = pending[dst].pop_front().expect("non-empty");
                env.accepted = t;
                in_transit[dst] += 1;
                let delay = match config.delivery {
                    DeliveryPolicy::AtLatencyBound => l,
                    _ => 1,
                };
                let src = env.src.index();
                deliveries.entry(t + Steps(delay)).or_default().push(env);
                // The sender becomes operational this instant.
                if matches!(procs[src].state, State::Stalling) {
                    let stalled_for = t - procs[src].stall_since;
                    if stalled_for > Steps::ZERO {
                        procs[src].stats.stalled += stalled_for;
                        procs[src].stats.stall_episodes += 1;
                        if config.forbid_stalling {
                            return Err(ModelError::StallDetected {
                                proc: ProcId::from(src),
                                at: procs[src].stall_since.get(),
                            });
                        }
                    }
                    procs[src].state = State::Idle;
                }
            }
        }

        // Phase 3: operational, idle processors act (possibly several
        // zero-duration decisions per step).
        let mut acted = false;
        for (i, proc) in procs.iter_mut().enumerate() {
            // Wake a blocked receiver if something is buffered.
            if matches!(proc.state, State::WaitingRecv) && !proc.buffer.is_empty() {
                proc.state = State::Idle;
                start_acquire(proc, t, o, g);
                acted = true;
                continue;
            }
            if matches!(proc.state, State::Idle) {
                acted = true;
            }
            let mut guard = 0;
            while matches!(proc.state, State::Idle) {
                guard += 1;
                if guard > 10_000 {
                    return Err(ModelError::Internal(format!(
                        "processor {i} livelocked on zero-duration operations"
                    )));
                }
                let view = ProcView {
                    me: ProcId::from(i),
                    p,
                    now: t,
                    buffered: proc.buffer.len(),
                    params,
                };
                match proc.program.next_op(&view) {
                    Op::Halt => {
                        proc.state = State::Halted;
                        proc.stats.halt_time = t;
                        makespan = makespan.max(t);
                    }
                    Op::Compute(0) => {}
                    Op::Compute(n) => {
                        proc.stats.busy += Steps(n);
                        proc.state = State::Busy(t + Steps(n), Effect::None);
                    }
                    Op::WaitUntil(until) => {
                        if until > t {
                            proc.state = State::Busy(until, Effect::None);
                        }
                    }
                    Op::Recv => {
                        if proc.buffer.is_empty() {
                            proc.state = State::WaitingRecv;
                        } else {
                            start_acquire(proc, t, o, g);
                        }
                    }
                    Op::Send { dst, payload } => {
                        if dst.index() >= p {
                            return Err(ModelError::BadDestination { dst, p });
                        }
                        let min_gap = proc
                            .last_submit
                            .map(|s| s + Steps(g))
                            .unwrap_or(Steps::ZERO);
                        let t_sub = (t + Steps(o)).max(min_gap);
                        proc.last_submit = Some(t_sub);
                        proc.stats.busy += Steps(o);
                        let env = Envelope {
                            id: MsgId(next_msg),
                            src: ProcId::from(i),
                            dst,
                            payload,
                            submitted: t_sub,
                            accepted: t_sub,
                            delivered: t_sub,
                        };
                        next_msg += 1;
                        proc.state = State::Busy(t_sub, Effect::Submit(env));
                    }
                }
            }
        }

        if !fired && !acted {
            break;
        }
        } // intra-instant fixed point

        // Termination / next instant.
        let all_halted = procs.iter().all(|pr| matches!(pr.state, State::Halted));
        if all_halted && deliveries.is_empty() {
            break;
        }
        let any_progressable = procs.iter().any(|pr| {
            matches!(pr.state, State::Busy(..) | State::Stalling)
        }) || !deliveries.is_empty();
        if !any_progressable {
            let waiting: Vec<ProcId> = procs
                .iter()
                .enumerate()
                .filter(|(_, pr)| !matches!(pr.state, State::Halted))
                .map(|(i, _)| ProcId::from(i))
                .collect();
            return Err(ModelError::Deadlock { waiting });
        }
        // Jump to the next interesting instant (deliveries or busy-until).
        let mut next = Steps::MAX;
        if let Some((&d, _)) = deliveries.iter().next() {
            next = next.min(d);
        }
        for pr in &procs {
            if let State::Busy(until, _) = pr.state {
                next = next.min(until);
            }
        }
        debug_assert!(next > t && next != Steps::MAX);
        t = next;
    }

    let mut report = LogpReport {
        makespan,
        delivered,
        stall_episodes: 0,
        total_stall: Steps::ZERO,
        latency,
        duplicates_dropped: 0,
        per_proc: Vec::with_capacity(p),
    };
    for pr in procs {
        report.stall_episodes += pr.stats.stall_episodes;
        report.total_stall += pr.stats.stalled;
        report.per_proc.push(pr.stats);
    }
    Ok(report)
}

fn start_acquire<P: LogpProcess>(proc_: &mut Proc<P>, t: Steps, o: u64, g: u64) {
    let env = proc_.buffer.pop_front().expect("buffer non-empty");
    let min_gap = proc_
        .last_acquire
        .map(|a| a + Steps(g))
        .unwrap_or(Steps::ZERO);
    let t_acq = (t + Steps(o)).max(min_gap);
    proc_.last_acquire = Some(t_acq);
    proc_.stats.busy += Steps(o);
    proc_.state = State::Busy(t_acq, Effect::Acquire(env));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::LogpMachine;
    use crate::process::Script;
    use bvl_model::Payload;

    fn send(dst: u32, w: i64) -> Op {
        Op::Send {
            dst: ProcId(dst),
            payload: Payload::word(0, w),
        }
    }

    fn both(params: LogpParams, build: impl Fn() -> Vec<Script>) -> (LogpReport, LogpReport) {
        let config = LogpConfig::default();
        let mut ev = LogpMachine::with_config(params, config, build());
        let ev_rep = ev.run().unwrap();
        let ref_rep = run_reference(params, config, build()).unwrap();
        (ev_rep, ref_rep)
    }

    #[test]
    fn agrees_on_single_message() {
        let params = LogpParams::new(2, 4, 1, 2).unwrap();
        let (a, b) = both(params, || {
            vec![Script::new([send(1, 42)]), Script::new([Op::Recv])]
        });
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.latency.mean(), b.latency.mean());
    }

    #[test]
    fn agrees_on_ring_workload() {
        let params = LogpParams::new(8, 8, 1, 2).unwrap();
        let build = || -> Vec<Script> {
            (0..8)
                .map(|i| {
                    let mut ops = Vec::new();
                    for r in 0..4 {
                        ops.push(send(((i + 1) % 8) as u32, (i * 10 + r) as i64));
                        ops.push(Op::Recv);
                    }
                    Script::new(ops)
                })
                .collect()
        };
        let (a, b) = both(params, build);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.delivered, b.delivered);
        for (x, y) in a.per_proc.iter().zip(&b.per_proc) {
            assert_eq!(x.halt_time, y.halt_time);
            assert_eq!(x.sent, y.sent);
            assert_eq!(x.acquired, y.acquired);
        }
    }

    #[test]
    fn agrees_on_hot_spot_under_fifo() {
        // The canonical stalling scenario from the machine tests: both
        // engines resolve FIFO acceptance identically here because all
        // submissions happen at one instant in processor order.
        let params = LogpParams::new(5, 4, 1, 2).unwrap();
        let build = || -> Vec<Script> {
            let mut v = vec![Script::new(vec![Op::Recv; 4])];
            v.extend((1..5).map(|i| Script::new([send(0, i as i64)])));
            v
        };
        let (a, b) = both(params, build);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.stall_episodes, b.stall_episodes);
        assert_eq!(a.total_stall, b.total_stall);
    }

    #[test]
    fn agrees_under_eager_delivery() {
        let params = LogpParams::new(4, 8, 2, 3).unwrap();
        let config = LogpConfig {
            delivery: DeliveryPolicy::Eager,
            ..LogpConfig::default()
        };
        let build = || -> Vec<Script> {
            (0..4)
                .map(|i| {
                    Script::new([
                        Op::Compute(3),
                        send(((i + 1) % 4) as u32, i as i64),
                        Op::Recv,
                    ])
                })
                .collect()
        };
        let mut ev = LogpMachine::with_config(params, config, build());
        let a = ev.run().unwrap();
        let b = run_reference(params, config, build()).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.latency.mean(), b.latency.mean());
    }

    #[test]
    fn detects_deadlock_like_the_event_engine() {
        let params = LogpParams::new(2, 4, 1, 2).unwrap();
        let config = LogpConfig::default();
        let programs = vec![Script::new([Op::Recv]), Script::idle()];
        let err = run_reference(params, config, programs);
        assert!(matches!(err, Err(ModelError::Deadlock { .. })));
    }
}

//! Shared topology vocabulary for scenario documents.
//!
//! [`Net`] names every Table 1 instance the experiments build, with a
//! stable text token (`hypercube:6`, `mesh-of-trees:16`) so scenario files
//! can reference topologies by name. The `labexp` grids and the `.scn`
//! lowering both construct through this one enum, so a measured-medium
//! scenario (`exp_stack` style) and a Table 1 sweep agree on what
//! `hypercube:5` means.

use std::fmt;
use std::str::FromStr;

use bvl_net::table1::Family;
use bvl_net::{
    measure_parameters, Array, Butterfly, Ccc, Hypercube, MeasuredParams, MeshOfTrees, PortMode,
    RouterConfig, ShuffleExchange, Topology,
};

/// A concrete Table 1 network instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Net {
    /// 2-d array (mesh), `side × side`.
    Array2d(usize),
    /// 3-d array, `side³`.
    Array3d(usize),
    /// Boolean hypercube of dimension `k`.
    Hypercube(u32),
    /// Butterfly of dimension `k`.
    Butterfly(u32),
    /// Cube-connected cycles of dimension `k`.
    Ccc(u32),
    /// Shuffle-exchange of dimension `k`.
    ShuffleExchange(u32),
    /// Mesh of trees over a `side × side` grid.
    MeshOfTrees(usize),
}

impl Net {
    /// Instantiate the topology.
    pub fn build(self) -> Box<dyn Topology> {
        match self {
            Net::Array2d(side) => Box::new(Array::mesh2d(side)),
            Net::Array3d(side) => Box::new(Array::new(&[side, side, side])),
            Net::Hypercube(k) => Box::new(Hypercube::new(k)),
            Net::Butterfly(k) => Box::new(Butterfly::new(k)),
            Net::Ccc(k) => Box::new(Ccc::new(k)),
            Net::ShuffleExchange(k) => Box::new(ShuffleExchange::new(k)),
            Net::MeshOfTrees(side) => Box::new(MeshOfTrees::new(side)),
        }
    }

    /// Human tag as printed in cell params (`hypercube(6)`).
    pub fn tag(self) -> String {
        match self {
            Net::Array2d(s) => format!("array2d({s})"),
            Net::Array3d(s) => format!("array3d({s})"),
            Net::Hypercube(k) => format!("hypercube({k})"),
            Net::Butterfly(k) => format!("butterfly({k})"),
            Net::Ccc(k) => format!("ccc({k})"),
            Net::ShuffleExchange(k) => format!("shuffle-exchange({k})"),
            Net::MeshOfTrees(s) => format!("mesh-of-trees({s})"),
        }
    }

    /// Upper bound on any node's in-degree. Used by the bounds audit: a
    /// random h-relation needs at least `⌈h / indeg⌉` synchronous steps to
    /// drain a node's inbound demand, so *over*-estimating the in-degree
    /// only weakens (never falsifies) the derived lower bound.
    pub fn max_indegree(self) -> u64 {
        match self {
            Net::Array2d(_) => 4,
            Net::Array3d(_) => 6,
            Net::Hypercube(k) => k.max(1) as u64,
            Net::Butterfly(_) => 4,
            Net::Ccc(_) => 3,
            Net::ShuffleExchange(_) => 3,
            Net::MeshOfTrees(_) => 6,
        }
    }
}

/// Scenario-file token form: `kind:size`, e.g. `hypercube:6`.
impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Net::Array2d(s) => write!(f, "array2d:{s}"),
            Net::Array3d(s) => write!(f, "array3d:{s}"),
            Net::Hypercube(k) => write!(f, "hypercube:{k}"),
            Net::Butterfly(k) => write!(f, "butterfly:{k}"),
            Net::Ccc(k) => write!(f, "ccc:{k}"),
            Net::ShuffleExchange(k) => write!(f, "shuffle-exchange:{k}"),
            Net::MeshOfTrees(s) => write!(f, "mesh-of-trees:{s}"),
        }
    }
}

impl FromStr for Net {
    type Err = String;

    fn from_str(s: &str) -> Result<Net, String> {
        let (kind, size) = s
            .split_once(':')
            .ok_or_else(|| format!("net '{s}' is not of the form kind:size"))?;
        let n: usize = size
            .parse()
            .map_err(|_| format!("net '{s}': '{size}' is not a number"))?;
        if n == 0 {
            return Err(format!("net '{s}': size must be positive"));
        }
        let k = n as u32;
        match kind {
            "array2d" => Ok(Net::Array2d(n)),
            "array3d" => Ok(Net::Array3d(n)),
            "hypercube" => Ok(Net::Hypercube(k)),
            "butterfly" => Ok(Net::Butterfly(k)),
            "ccc" => Ok(Net::Ccc(k)),
            "shuffle-exchange" => Ok(Net::ShuffleExchange(k)),
            "mesh-of-trees" => Ok(Net::MeshOfTrees(n)),
            other => Err(format!(
                "unknown net kind '{other}' (array2d | array3d | hypercube | butterfly | ccc | shuffle-exchange | mesh-of-trees)"
            )),
        }
    }
}

/// Scenario-file token for a Table 1 analytic family (`array:2`,
/// `hypercube-multi`, `mesh-of-trees`).
pub fn family_token(family: Family) -> String {
    match family {
        Family::ArrayD(d) => format!("array:{d}"),
        Family::HypercubeMulti => "hypercube-multi".into(),
        Family::HypercubeSingle => "hypercube-single".into(),
        Family::Butterfly => "butterfly".into(),
        Family::Ccc => "ccc".into(),
        Family::ShuffleExchange => "shuffle-exchange".into(),
        Family::MeshOfTrees => "mesh-of-trees".into(),
    }
}

/// Parse a [`family_token`] back into a [`Family`].
pub fn parse_family(s: &str) -> Result<Family, String> {
    if let Some(d) = s.strip_prefix("array:") {
        let d: u32 = d
            .parse()
            .map_err(|_| format!("family '{s}': '{d}' is not a number"))?;
        if d == 0 {
            return Err(format!("family '{s}': dimension must be positive"));
        }
        return Ok(Family::ArrayD(d));
    }
    match s {
        "hypercube-multi" => Ok(Family::HypercubeMulti),
        "hypercube-single" => Ok(Family::HypercubeSingle),
        "butterfly" => Ok(Family::Butterfly),
        "ccc" => Ok(Family::Ccc),
        "shuffle-exchange" => Ok(Family::ShuffleExchange),
        "mesh-of-trees" => Ok(Family::MeshOfTrees),
        other => Err(format!(
            "unknown family '{other}' (array:D | hypercube-multi | hypercube-single | butterfly | ccc | shuffle-exchange | mesh-of-trees)"
        )),
    }
}

/// The h-relation ladder every Table 1 measurement runs.
pub const HS: [usize; 5] = [1, 2, 4, 8, 16];

/// Route the h-relation ladder on `net` and fit `T(h) = γ̂·h + δ̂`.
pub fn measure(net: Net, mode: PortMode, seed: u64) -> MeasuredParams {
    let config = RouterConfig {
        mode,
        ..RouterConfig::default()
    };
    measure_parameters(&*net.build(), &HS, 3, seed, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_tokens_round_trip() {
        let all = [
            Net::Array2d(16),
            Net::Array3d(7),
            Net::Hypercube(8),
            Net::Butterfly(5),
            Net::Ccc(5),
            Net::ShuffleExchange(8),
            Net::MeshOfTrees(16),
        ];
        for net in all {
            let tok = net.to_string();
            assert_eq!(tok.parse::<Net>().unwrap(), net, "token {tok}");
        }
    }

    #[test]
    fn family_tokens_round_trip() {
        let all = [
            Family::ArrayD(2),
            Family::ArrayD(3),
            Family::HypercubeMulti,
            Family::HypercubeSingle,
            Family::Butterfly,
            Family::Ccc,
            Family::ShuffleExchange,
            Family::MeshOfTrees,
        ];
        for fam in all {
            let tok = family_token(fam);
            assert_eq!(parse_family(&tok).unwrap(), fam, "token {tok}");
        }
    }

    #[test]
    fn bad_tokens_are_rejected() {
        assert!("hypercube".parse::<Net>().is_err());
        assert!("hypercube:x".parse::<Net>().is_err());
        assert!("torus:4".parse::<Net>().is_err());
        assert!("array2d:0".parse::<Net>().is_err());
        assert!(parse_family("array:0").is_err());
        assert!(parse_family("ring").is_err());
    }
}

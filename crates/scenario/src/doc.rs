//! The scenario document model and its line-oriented serializer.
//!
//! A [`ScenarioDoc`] is the typed form of a `.scn` file: a named list of
//! grids, each grid a list of cells, each cell a typed [`Work`] item plus
//! the content-address fields ([`CellDoc::params`], [`CellDoc::plan`],
//! force/smoke markers) that [`crate::compile()`] lowers into
//! `bvl_lab::CellSpec`s.
//!
//! The text form is a flat statement language — `scenario`, `grid`, `cell`
//! statements of `key=value` attributes — separated by newlines *or* `;`,
//! so every document also has a one-line [`ScenarioDoc::repro`] encoding
//! (same convention as `FaultPlan` and conformance-case repro lines).
//! [`crate::parse::parse`] inverts [`ScenarioDoc::to_text`] exactly:
//! `parse(doc.to_text()) == doc` is proptested over random documents.

use std::fmt::Write as _;

use bvl_fault::conformance::Sim;
use bvl_fault::FaultPlan;
use bvl_logp::LogpParams;
use bvl_net::table1::Family;
use bvl_net::PortMode;

use crate::topo::{family_token, Net};

/// A full scenario document: one experiment name, one or more grids.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioDoc {
    /// Scenario name (the `scenario NAME` header; documentation only —
    /// grids carry their own experiment names for the store).
    pub name: String,
    /// The grids, in declaration order.
    pub grids: Vec<GridDoc>,
}

/// When a grid participates, if not in both smoke and full runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OnlyIn {
    /// The grid exists only in smoke runs.
    Smoke,
    /// The grid exists only in full runs.
    Full,
}

/// One grid: experiment name, master seed, `RunOptions` knobs, cells.
#[derive(Clone, Debug, PartialEq)]
pub struct GridDoc {
    /// Experiment name — the store's grouping key.
    pub exp: String,
    /// Master seed every cell's RNG stream derives from.
    pub master: u64,
    /// Default cell domain; individual cells may override. A cell with no
    /// domain in a grid with no default is a compile error.
    pub domain: Option<String>,
    /// Smoke/full participation (both when `None`).
    pub only: Option<OnlyIn>,
    /// `RunOptions::seed` override (default 0).
    pub seed: Option<u64>,
    /// `RunOptions::traced()`.
    pub trace: bool,
    /// `RunOptions::at(clock_base)`.
    pub clock_base: Option<u64>,
    /// `RunOptions::budget`.
    pub budget: Option<u64>,
    /// Grid-wide fault decorator (`RunOptions::faults`).
    pub fault: Option<FaultPlan>,
    /// The cells, in declaration order — the declaration position *is* the
    /// cell's RNG-lane index, so smoke filtering never renumbers anything.
    pub cells: Vec<CellDoc>,
}

impl GridDoc {
    /// A grid with default options and no cells.
    pub fn new(exp: impl Into<String>, master: u64) -> GridDoc {
        GridDoc {
            exp: exp.into(),
            master,
            domain: None,
            only: None,
            seed: None,
            trace: false,
            clock_base: None,
            budget: None,
            fault: None,
            cells: Vec::new(),
        }
    }

    /// Set the default cell domain.
    #[must_use]
    pub fn domain(mut self, domain: impl Into<String>) -> GridDoc {
        self.domain = Some(domain.into());
        self
    }

    /// Restrict the grid to smoke or full runs.
    #[must_use]
    pub fn only(mut self, only: OnlyIn) -> GridDoc {
        self.only = Some(only);
        self
    }

    /// Append a cell.
    #[must_use]
    pub fn cell(mut self, cell: CellDoc) -> GridDoc {
        self.cells.push(cell);
        self
    }
}

/// One cell: the typed work plus its content-address fields.
#[derive(Clone, Debug, PartialEq)]
pub struct CellDoc {
    /// What the cell computes.
    pub work: Work,
    /// Human-readable cell parameters; part of the content address and
    /// must match the legacy grid byte for byte for keys to survive.
    pub params: String,
    /// Per-cell domain override.
    pub domain: Option<String>,
    /// Per-cell fault plan (conformance cells); lowered to
    /// `CellSpec::plan`, part of the content address.
    pub plan: Option<FaultPlan>,
    /// Always run live, never cache (cells that feed a captured registry).
    pub force: bool,
    /// Include this cell in smoke runs.
    pub smoke: bool,
}

impl CellDoc {
    /// A plain cacheable cell.
    pub fn new(work: Work, params: impl Into<String>) -> CellDoc {
        CellDoc {
            work,
            params: params.into(),
            domain: None,
            plan: None,
            force: false,
            smoke: false,
        }
    }

    /// Override the grid's default domain.
    #[must_use]
    pub fn domain(mut self, domain: impl Into<String>) -> CellDoc {
        self.domain = Some(domain.into());
        self
    }

    /// Attach a per-cell fault plan.
    #[must_use]
    pub fn plan(mut self, plan: FaultPlan) -> CellDoc {
        self.plan = Some(plan);
        self
    }

    /// Mark the cell always-live.
    #[must_use]
    pub fn forced(mut self) -> CellDoc {
        self.force = true;
        self
    }

    /// Include the cell in smoke runs.
    #[must_use]
    pub fn smoke(mut self) -> CellDoc {
        self.smoke = true;
        self
    }
}

/// How a Table 1 measurement cell reports its fit.
#[derive(Clone, Debug, PartialEq)]
pub enum View {
    /// Measured-vs-predicted against an analytic [`Family`] (Table 1 main).
    Main {
        /// The analytic family whose γ/δ predictions the row compares to.
        family: Family,
    },
    /// γ̂/δ̂ vs the family's analytic values, custom row label (E-SCALE).
    Scaling {
        /// The analytic family.
        family: Family,
        /// Row label as printed.
        label: String,
    },
    /// Observation 1 check: predicted `(G*, L*)` from measured `(g*, ℓ*)`.
    Obs1 {
        /// Row label as printed.
        label: String,
    },
    /// Fit summary plus the raw per-h samples (the k=6 deep-dive).
    K6 {
        /// Label for the summary row.
        label: String,
    },
}

/// Workload for a Theorem 1 hosting cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostWl {
    /// Ring neighbor exchange, `rounds` rounds.
    Ring {
        /// Number of rounds.
        rounds: u64,
    },
    /// Total exchange: every processor sends to every other.
    AllToAll,
}

/// Sorting scheme for a deterministic-routing cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// Batcher sorting network.
    Network,
    /// Columnsort.
    Columnsort,
}

/// BSP-on-LogP simulation strategy (Theorem 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Offline-routed supersteps.
    Offline,
    /// Randomized routing with integer slack factor.
    Randomized {
        /// Slack multiplier (lowered to `f64`).
        slack: u64,
    },
    /// Deterministic (sorting-network) routing.
    Deterministic,
}

/// Workload for a Theorem 2 strategy cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SuperWl {
    /// The 5-superstep `(me·5 + k·7) mod p` fan used by E-THM2.
    Mod7Fan,
}

/// What one cell computes. Each variant corresponds to one `cell KIND ...`
/// statement and one shared row-builder in `bvl_bench`.
#[derive(Clone, Debug, PartialEq)]
pub enum Work {
    /// Measure γ̂/δ̂ on a Table 1 network (E-TABLE1 / E-SCALE).
    Measure {
        /// The network instance.
        net: Net,
        /// Router port mode.
        mode: PortMode,
        /// Measurement seed.
        seed: u64,
        /// Reporting view.
        view: View,
    },
    /// Theorem 1: LogP guest hosted on a BSP machine (E-THM1).
    Host {
        /// Guest LogP parameters.
        logp: LogpParams,
        /// Host bandwidth degradation factor (`g_bsp = G·fg`).
        fg: u64,
        /// Host latency degradation factor (`ℓ_bsp = L·fl`).
        fl: u64,
        /// The guest workload.
        wl: HostWl,
    },
    /// Theorem 2 deterministic h-relation routing cell (E-THM2).
    Route {
        /// LogP parameters.
        logp: LogpParams,
        /// Relation degree.
        h: usize,
        /// Sorting scheme.
        scheme: Scheme,
        /// Routing-run seed override.
        seed: u64,
    },
    /// Theorem 2 big-h cell: both sorting schemes on one shared relation.
    RouteBig {
        /// LogP parameters.
        logp: LogpParams,
        /// Relation degree.
        h: usize,
        /// Routing-run seed override.
        seed: u64,
    },
    /// Theorem 2 full BSP-on-LogP superstep simulation.
    Superstep {
        /// LogP parameters.
        logp: LogpParams,
        /// Simulation strategy.
        strategy: Strategy,
        /// The BSP workload.
        wl: SuperWl,
    },
    /// Differential fault-conformance case (E-FAULT). The fault plan rides
    /// on [`CellDoc::plan`], as in the legacy grid.
    Conformance {
        /// Which simulator to drive.
        sim: Sim,
        /// Processor count.
        p: usize,
        /// Relation degree.
        h: usize,
        /// Workload seed.
        seed: u64,
    },
    /// E-STACK tower: measure a network, ground a LogP guest on it, host
    /// the same guest via Theorem 1, compare all three.
    Stack {
        /// The network instance to measure and ground on.
        net: Net,
        /// Ring workload rounds.
        rounds: u64,
        /// Measurement + run seed.
        seed: u64,
    },
    /// Sample-sort study cell (E-SORT): native BSP leg plus the Theorem 2
    /// cross-simulation leg, with the 1-optimality ratio per cell.
    Sort {
        /// Processors (`p = 2^k ≥ 2`).
        p: usize,
        /// Total keys.
        n: u64,
        /// BSP gap `g` (LogP `G` on the cross-simulation leg).
        g: u64,
        /// BSP periodicity `ℓ` (LogP `L`).
        l: u64,
        /// Key-generation master seed (per-processor `SeedStream` lanes).
        seed: u64,
    },
    /// Pseudo-streaming study cell (E-STREAM): the sort workload run
    /// classically and through a bounded working set of `window` messages
    /// per processor per synchronization round.
    Stream {
        /// Processors (`p = 2^k ≥ 2`).
        p: usize,
        /// Total keys.
        n: u64,
        /// Streaming window (messages per processor per round).
        window: u64,
        /// BSP gap `g`.
        g: u64,
        /// BSP periodicity `ℓ`.
        l: u64,
        /// Key-generation master seed.
        seed: u64,
    },
    /// BSF master-worker cell (E-BSF): event-wise simulated farm vs the
    /// model's closed-form prediction, speedup and scalability boundary.
    Bsf {
        /// Worker count (master not counted).
        workers: usize,
        /// Work units per iteration.
        units: u64,
        /// Transfer time `t_t`.
        tt: u64,
        /// Compute time `t_w` per unit.
        tw: u64,
        /// Per-iteration setup `t_s`.
        ts: u64,
        /// Iterations.
        iters: u64,
    },
}

fn mode_token(mode: PortMode) -> &'static str {
    match mode {
        PortMode::Multi => "multi",
        PortMode::Single => "single",
    }
}

fn logp_token(params: LogpParams) -> String {
    format!("{}:{}:{}:{}", params.p, params.l, params.o, params.g)
}

/// Quote a string value for the text form (`params`, `label`).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Work {
    /// The `cell KIND attr...` fragment for this work item.
    fn statement_fragment(&self) -> String {
        match self {
            Work::Measure {
                net,
                mode,
                seed,
                view,
            } => {
                let mut s = format!("measure net={net} mode={} seed={seed}", mode_token(*mode));
                match view {
                    View::Main { family } => {
                        let _ = write!(s, " view=main family={}", family_token(*family));
                    }
                    View::Scaling { family, label } => {
                        let _ = write!(
                            s,
                            " view=scaling family={} label={}",
                            family_token(*family),
                            quote(label)
                        );
                    }
                    View::Obs1 { label } => {
                        let _ = write!(s, " view=obs1 label={}", quote(label));
                    }
                    View::K6 { label } => {
                        let _ = write!(s, " view=k6 label={}", quote(label));
                    }
                }
                s
            }
            Work::Host { logp, fg, fl, wl } => {
                let wl = match wl {
                    HostWl::Ring { rounds } => format!("ring:{rounds}"),
                    HostWl::AllToAll => "alltoall".into(),
                };
                format!("host logp={} fg={fg} fl={fl} wl={wl}", logp_token(*logp))
            }
            Work::Route {
                logp,
                h,
                scheme,
                seed,
            } => {
                let scheme = match scheme {
                    Scheme::Network => "network",
                    Scheme::Columnsort => "columnsort",
                };
                format!(
                    "route logp={} h={h} scheme={scheme} seed={seed}",
                    logp_token(*logp)
                )
            }
            Work::RouteBig { logp, h, seed } => {
                format!("route-big logp={} h={h} seed={seed}", logp_token(*logp))
            }
            Work::Superstep { logp, strategy, wl } => {
                let strategy = match strategy {
                    Strategy::Offline => "offline".to_string(),
                    Strategy::Randomized { slack } => format!("randomized:{slack}"),
                    Strategy::Deterministic => "deterministic".to_string(),
                };
                let wl = match wl {
                    SuperWl::Mod7Fan => "mod7fan",
                };
                format!(
                    "superstep logp={} strategy={strategy} wl={wl}",
                    logp_token(*logp)
                )
            }
            Work::Conformance { sim, p, h, seed } => {
                format!("conformance sim={sim} p={p} h={h} seed={seed}")
            }
            Work::Stack { net, rounds, seed } => {
                format!("stack net={net} rounds={rounds} seed={seed}")
            }
            Work::Sort { p, n, g, l, seed } => {
                format!("sort p={p} n={n} g={g} l={l} seed={seed}")
            }
            Work::Stream {
                p,
                n,
                window,
                g,
                l,
                seed,
            } => {
                format!("stream p={p} n={n} window={window} g={g} l={l} seed={seed}")
            }
            Work::Bsf {
                workers,
                units,
                tt,
                tw,
                ts,
                iters,
            } => {
                format!("bsf workers={workers} units={units} tt={tt} tw={tw} ts={ts} iters={iters}")
            }
        }
    }
}

impl ScenarioDoc {
    /// A document with no grids.
    pub fn new(name: impl Into<String>) -> ScenarioDoc {
        ScenarioDoc {
            name: name.into(),
            grids: Vec::new(),
        }
    }

    /// Append a grid.
    #[must_use]
    pub fn grid(mut self, grid: GridDoc) -> ScenarioDoc {
        self.grids.push(grid);
        self
    }

    /// The document as a flat statement list (no separators).
    pub fn statements(&self) -> Vec<String> {
        let mut out = vec![format!("scenario {}", self.name)];
        for grid in &self.grids {
            let mut s = format!("grid exp={} master={}", grid.exp, grid.master);
            if let Some(domain) = &grid.domain {
                let _ = write!(s, " domain={domain}");
            }
            match grid.only {
                Some(OnlyIn::Smoke) => s.push_str(" only=smoke"),
                Some(OnlyIn::Full) => s.push_str(" only=full"),
                None => {}
            }
            if let Some(seed) = grid.seed {
                let _ = write!(s, " seed={seed}");
            }
            if grid.trace {
                s.push_str(" trace");
            }
            if let Some(base) = grid.clock_base {
                let _ = write!(s, " clock_base={base}");
            }
            if let Some(budget) = grid.budget {
                let _ = write!(s, " budget={budget}");
            }
            if let Some(fault) = &grid.fault {
                let _ = write!(s, " fault={fault}");
            }
            out.push(s);
            for cell in &grid.cells {
                let mut s = format!("cell {}", cell.work.statement_fragment());
                if let Some(domain) = &cell.domain {
                    let _ = write!(s, " domain={domain}");
                }
                if let Some(plan) = &cell.plan {
                    let _ = write!(s, " plan={plan}");
                }
                let _ = write!(s, " params={}", quote(&cell.params));
                if cell.force {
                    s.push_str(" force");
                }
                if cell.smoke {
                    s.push_str(" smoke");
                }
                out.push(s);
            }
        }
        out
    }

    /// Multi-line text form (the `.scn` file body).
    pub fn to_text(&self) -> String {
        let mut text = self.statements().join("\n");
        text.push('\n');
        text
    }

    /// One-line round-trip encoding (`;`-separated statements), in the
    /// same spirit as `FaultPlan` and conformance-case repro lines.
    pub fn repro(&self) -> String {
        self.statements().join("; ")
    }
}

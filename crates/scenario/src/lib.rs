//! # bvl-scenario — the declarative scenario plane
//!
//! Every experiment in this repo is a *parameterized comparison*: a grid of
//! (workload × machine params × routing × topology) cells driven through
//! [`bvl_lab::run_grid`]. Until this crate, those grids were hand-written
//! Rust in `bvl_bench::labexp`, so a new scenario required a rebuild and
//! could not be submitted to the lab service as data.
//!
//! This crate makes scenarios data:
//!
//! * [`doc`] — the [`ScenarioDoc`] document model: grids of typed cells
//!   ([`Work`]) with per-grid `RunOptions` knobs ([`bvl_fault::FaultPlan`] included),
//!   a line-oriented serializer ([`ScenarioDoc::to_text`]) and a one-line
//!   round-trip encoding ([`ScenarioDoc::repro`]).
//! * [`parse()`] — a hand-written std-only parser with byte-offset error
//!   messages; `parse(doc.to_text()) == doc` (proptested).
//! * [`topo`] — the shared topology vocabulary ([`Net`], [`measure`])
//!   previously duplicated in `labexp`, with stable text tokens.
//! * [`compile()`] — the lowering pass: a document becomes the exact
//!   [`bvl_lab::GridSpec`]/[`bvl_lab::CellSpec`]/`RunOptions` stacks the
//!   scheduler consumes today, so store keys — and therefore warm-cache
//!   hits — survive the refactor bit for bit.
//! * [`bounds`] — the Bilardi–Scquizzato–Silvestri-style lower-bound
//!   audit: proven communication lower bounds per cell kind, checked over
//!   every completed grid. A measured cost below a proven bound is not a
//!   fast run, it is a simulator bug, and fails the run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod compile;
pub mod doc;
pub mod parse;
pub mod topo;

pub use bounds::{audit_conformance_row, audit_grid, Violation};
pub use compile::{compile, grid_digest, CompileError, CompiledGrid, CompiledScenario};
pub use doc::{
    CellDoc, GridDoc, HostWl, OnlyIn, Scheme, ScenarioDoc, Strategy, SuperWl, View, Work,
};
pub use parse::{parse, ParseError};
pub use topo::{family_token, measure, parse_family, Net, HS};

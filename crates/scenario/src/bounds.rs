//! Communication lower-bound audit (Bilardi–Scquizzato–Silvestri style).
//!
//! The BSS line of work proves *lower* bounds on BSP/LogP communication
//! time: any schedule that moves an h-relation through a medium with gap
//! `G` and latency `L` pays at least `(h−1)·G + L`; a guest simulated on a
//! host can never beat the guest's own stall-free makespan; an adversarial
//! medium that only delays (jitter, reorder, duplication, capacity
//! squeeze, degradation) can never make a run *faster* than its clean leg.
//!
//! These are theorems about the models, not observations about the code —
//! so a **measured cost below a proven bound is a simulator bug**, not a
//! fast run. [`audit_grid`] re-derives the applicable bound for every cell
//! kind from its [`Work`] description and checks the completed rows
//! against it; the lab fails the run on any violation.
//!
//! What is audited per cell kind (measured value must be ≥ bound; equality
//! is legal — several bounds are tight on the shipped grids):
//!
//! | kind          | bound |
//! |---------------|-------|
//! | `host`        | ring: native ≥ rounds·(L+2o); all-to-all: native ≥ (p−2)·G+L+2o; hosted ≥ native |
//! | `route`       | cycle time and total ≥ (h−1)·G + L |
//! | `route-big`   | total ≥ (h−1)·G + L (both schemes) |
//! | `superstep`   | simulated total ≥ native stall-free total |
//! | `conformance` | faulted ≥ clean; clean ≥ 1; routers: clean ≥ (h−1)·G+L |
//! | `stack`       | t_abstract ≥ rounds·(L̂+2o); t_hosted ≥ t_abstract; t_grounded ≥ rounds |
//! | `measure`     | k6 view: per-sample T ≥ ⌈h / indeg⌉; fit-only views not audited |
//! | `sort`        | cost ≥ ideal = 3b + p(p−1) + g·(p(p−1)+p+b) + 4ℓ, b=⌈n/p⌉; ratio ≥ 1; xsim ≥ native |
//! | `stream`      | native ≥ sort ideal; streamed ≥ native; rounds ≥ supersteps |
//! | `bsf`         | simulated ≥ iters·(t_s+2t_t+⌈units/p⌉·t_w) and ≥ iters·(t_s+(p+1)·t_t); predicted ≥ simulated; speedup ≤ p |
//!
//! The fit-summary views (`main`/`scaling`/`obs1`) report least-squares
//! coefficients, for which no per-row bound is provable — they are
//! deliberately not audited.

use std::fmt;

use bvl_lab::GridSpec;

use crate::doc::{HostWl, View, Work};

/// Tolerance for comparisons against bounds printed through `f64`
/// formatting: a value this far below a bound is a violation.
const EPS: f64 = 1e-6;

/// One audited bound that a completed cell's rows fail to meet.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Cell domain.
    pub domain: String,
    /// Cell index within the domain.
    pub index: usize,
    /// Human-readable description of the violated bound.
    pub what: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.domain, self.index, self.what)
    }
}

/// Column accessor that reports shape problems as violations instead of
/// panicking: an audited column that fails to parse means the row format
/// drifted under the auditor, which is itself a finding.
struct RowLens<'a> {
    row: &'a [String],
    out: &'a mut Vec<Violation>,
    domain: &'a str,
    index: usize,
}

impl RowLens<'_> {
    fn flag(&mut self, what: String) {
        self.out.push(Violation {
            domain: self.domain.to_string(),
            index: self.index,
            what,
        });
    }

    fn num(&mut self, col: usize, name: &str) -> Option<f64> {
        match self.row.get(col).map(|s| s.parse::<f64>()) {
            Some(Ok(v)) => Some(v),
            Some(Err(_)) => {
                let s = &self.row[col];
                self.flag(format!("column {col} ({name}) is not numeric: '{s}'"));
                None
            }
            None => {
                self.flag(format!(
                    "row has {} columns, audited column {col} ({name}) missing",
                    self.row.len()
                ));
                None
            }
        }
    }

    /// Check `measured ≥ bound` (with [`EPS`] slack for formatted floats).
    fn at_least(&mut self, col: usize, name: &str, bound: f64, law: &str) {
        if let Some(v) = self.num(col, name) {
            if v < bound - EPS {
                self.flag(format!(
                    "{name} = {v} beats the proven lower bound {bound} ({law})"
                ));
            }
        }
    }
}

/// The conformance-row invariants, shared with the committed-baseline gate
/// (`lab audit --bench BENCH_faults.json`): delay-only fault plans can
/// never speed a run up, nothing finishes in zero steps, and the routers'
/// clean legs route a real h-relation so they pay `(h−1)·G + L` (the
/// conformance harness fixes `G = 2`, `L = 16`). Theorem 1 hosting has no
/// latency bound here: its clean makespan is a guest-time quantity that
/// can legitimately undercut the host's `L`.
pub fn audit_conformance_row(
    sim: &str,
    h: usize,
    clean: u64,
    faulted: u64,
) -> Vec<String> {
    let mut out = Vec::new();
    if clean == 0 {
        out.push(format!("{sim}: clean run of 0 steps"));
    }
    if faulted < clean {
        out.push(format!(
            "{sim}: faulted leg ({faulted}) beats clean leg ({clean}) — delay-only faults cannot speed a run up"
        ));
    }
    if matches!(sim, "route_det" | "route_rand") && h >= 1 {
        let bound = (h as u64 - 1) * 2 + 16;
        if clean < bound {
            out.push(format!(
                "{sim}: clean h-relation time {clean} beats (h-1)·G + L = {bound}"
            ));
        }
    }
    out
}

/// The bucket-balanced ideal cost of the 4-superstep sample-sort schedule
/// (`bvl_workloads::ideal_sort_cost`, re-derived here so the auditor stays
/// self-contained): with `b = ⌈n/p⌉` balanced blocks,
/// `3b + p(p−1) + g·(p(p−1) + p + b) + 4ℓ`. Every measured term dominates
/// its balanced counterpart, so measured cost below this is a simulator bug.
fn ideal_sort_bound(p: usize, n: u64, g: u64, l: u64) -> f64 {
    let p = p as u64;
    let b = n.div_ceil(p);
    let samples = p * (p - 1);
    (3 * b + samples + g * (samples + p + b) + 4 * l) as f64
}

fn audit_cell(work: &Work, domain: &str, index: usize, rows: &[Vec<String>], out: &mut Vec<Violation>) {
    match work {
        Work::Measure { net, view, .. } => {
            if let View::K6 { .. } = view {
                // rows[0] is the fit summary; rows[1..] are (h, T) samples.
                let indeg = net.max_indegree();
                for row in rows.iter().skip(1) {
                    let mut lens = RowLens { row, out, domain, index };
                    if let Some(h) = lens.num(0, "h") {
                        let bound = (h / indeg as f64).ceil();
                        lens.at_least(1, "T(h)", bound, "a node drains at most indeg messages per step");
                    }
                }
            }
        }
        Work::Host { logp, wl, .. } => {
            let native_bound = match wl {
                HostWl::Ring { rounds } => (rounds * (logp.l + 2 * logp.o)) as f64,
                HostWl::AllToAll => {
                    ((logp.p as u64).saturating_sub(2) * logp.g + logp.l + 2 * logp.o) as f64
                }
            };
            for row in rows {
                let mut lens = RowLens { row, out, domain, index };
                let law = match wl {
                    HostWl::Ring { .. } => "each ring round pays L + 2o",
                    HostWl::AllToAll => "p-1 gap-limited sends pay (p-2)·G + L + 2o",
                };
                lens.at_least(3, "native makespan", native_bound, law);
                if let Some(native) = lens.num(3, "native makespan") {
                    lens.at_least(
                        4,
                        "hosted makespan",
                        native,
                        "a host simulation cannot beat the guest's stall-free makespan",
                    );
                }
            }
        }
        Work::Route { logp, h, .. } => {
            let bound = ((*h as u64).max(1) - 1) as f64 * logp.g as f64 + logp.l as f64;
            for row in rows {
                let mut lens = RowLens { row, out, domain, index };
                lens.at_least(5, "t_cycles", bound, "an h-relation pays (h-1)·G + L");
                lens.at_least(6, "total", bound, "an h-relation pays (h-1)·G + L");
            }
        }
        Work::RouteBig { logp, h, .. } => {
            let bound = ((*h as u64).max(1) - 1) as f64 * logp.g as f64 + logp.l as f64;
            for row in rows {
                let mut lens = RowLens { row, out, domain, index };
                lens.at_least(4, "total", bound, "an h-relation pays (h-1)·G + L");
            }
        }
        Work::Superstep { .. } => {
            for row in rows {
                let mut lens = RowLens { row, out, domain, index };
                if let Some(native) = lens.num(6, "native total") {
                    lens.at_least(
                        5,
                        "simulated total",
                        native,
                        "a BSP-on-LogP simulation cannot beat the native BSP cost",
                    );
                }
            }
        }
        Work::Conformance { sim, h, .. } => {
            // rows[0] is the table row; rows[1] is the checks/repro meta
            // row the warm-cache replay needs — only the former is a
            // measurement.
            if let Some(row) = rows.first() {
                let mut lens = RowLens { row, out, domain, index };
                let clean = lens.num(4, "clean");
                let faulted = lens.num(5, "faulted");
                if let (Some(clean), Some(faulted)) = (clean, faulted) {
                    for what in
                        audit_conformance_row(sim.as_str(), *h, clean as u64, faulted as u64)
                    {
                        lens.flag(what);
                    }
                }
            }
        }
        Work::Sort { p, n, g, l, .. } => {
            let bound = ideal_sort_bound(*p, *n, *g, *l);
            for row in rows {
                let mut lens = RowLens { row, out, domain, index };
                // Columns: [p, n, cost(2), ideal, ratio(4), work, comm, sync,
                //           xsim(8), native(9), slowdown, envelope, sorted]
                lens.at_least(
                    2,
                    "cost",
                    bound,
                    "every measured superstep term dominates its bucket-balanced ideal",
                );
                lens.at_least(4, "ratio", 1.0, "measured cost over the balanced ideal is at least 1");
                if let Some(native) = lens.num(9, "native total") {
                    lens.at_least(
                        8,
                        "xsim total",
                        native,
                        "a BSP-on-LogP simulation cannot beat the native BSP cost",
                    );
                }
            }
        }
        Work::Stream { p, n, g, l, .. } => {
            let bound = ideal_sort_bound(*p, *n, *g, *l);
            for row in rows {
                let mut lens = RowLens { row, out, domain, index };
                // Columns: [p, n, window, native(3), streamed(4), rounds(5),
                //           supersteps(6), overhead, sorted]
                lens.at_least(
                    3,
                    "native cost",
                    bound,
                    "every measured superstep term dominates its bucket-balanced ideal",
                );
                if let Some(native) = lens.num(3, "native cost") {
                    lens.at_least(
                        4,
                        "streamed cost",
                        native,
                        "streaming only adds synchronization rounds, it cannot save cost",
                    );
                }
                if let Some(supersteps) = lens.num(6, "supersteps") {
                    lens.at_least(
                        5,
                        "rounds",
                        supersteps,
                        "every superstep pays at least one synchronization round",
                    );
                }
            }
        }
        Work::Bsf {
            workers,
            units,
            tt,
            tw,
            ts,
            iters,
        } => {
            let p = *workers as u64;
            // The two provable per-iteration floors: the last-landing chunk
            // must still be computed and collected, and the master's serial
            // send/collect loop alone takes (p+1) transfers on the critical
            // path to the final collect.
            let per_iter = (ts + 2 * tt + units.div_ceil(p) * tw).max(ts + (p + 1) * tt);
            let bound = (*iters * per_iter) as f64;
            for row in rows {
                let mut lens = RowLens { row, out, domain, index };
                // Columns: [workers, units, simulated(2), predicted(3),
                //           ratio, speedup(5), p*]
                lens.at_least(
                    2,
                    "simulated",
                    bound,
                    "the critical chunk and the serial master loop floor every iteration",
                );
                if let Some(simulated) = lens.num(2, "simulated") {
                    lens.at_least(
                        3,
                        "predicted",
                        simulated,
                        "the closed form gives away send/compute overlap, never claims it",
                    );
                }
                if let Some(speedup) = lens.num(5, "speedup") {
                    if speedup > *workers as f64 + EPS {
                        lens.flag(format!(
                            "speedup = {speedup} exceeds the worker count {workers} — superlinear farms are impossible in the model"
                        ));
                    }
                }
            }
        }
        Work::Stack { rounds, .. } => {
            for row in rows {
                let mut lens = RowLens { row, out, domain, index };
                // Columns: [.., G(5), L(6), t_abstract(7), t_grounded(8), .., t_hosted(10), ..]
                if let Some(l_hat) = lens.num(6, "L") {
                    let bound = *rounds as f64 * (l_hat + 2.0);
                    lens.at_least(7, "t_abstract", bound, "each ring round pays L + 2o");
                }
                if let Some(abst) = lens.num(7, "t_abstract") {
                    lens.at_least(
                        10,
                        "t_hosted",
                        abst,
                        "Theorem 1 hosting cannot beat the abstract guest",
                    );
                }
                lens.at_least(
                    8,
                    "t_grounded",
                    *rounds as f64,
                    "each ring round advances the grounded clock",
                );
            }
        }
    }
}

/// Audit one completed grid: `work[i]` describes `spec.cells[i]`, whose
/// completed rows are `rows[i]`. Returns every violated bound.
pub fn audit_grid(spec: &GridSpec, work: &[Work], rows: &[Vec<Vec<String>>]) -> Vec<Violation> {
    let mut out = Vec::new();
    for ((cell, work), rows) in spec.cells.iter().zip(work).zip(rows) {
        audit_cell(work, &cell.domain, cell.index, rows, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::Scheme;
    use crate::topo::Net;
    use bvl_lab::CellSpec;
    use bvl_logp::LogpParams;

    fn grid_for(work: Work, rows: Vec<Vec<String>>) -> Vec<Violation> {
        let spec = GridSpec::new("t", 1).cell(CellSpec::new("d", 0, "p"));
        audit_grid(&spec, &[work], &[rows])
    }

    fn s(cols: &[&str]) -> Vec<String> {
        cols.iter().map(|c| c.to_string()).collect()
    }

    #[test]
    fn route_bound_is_tight_but_strict() {
        let logp = LogpParams::new(16, 16, 1, 2).unwrap();
        let work = Work::Route {
            logp,
            h: 1,
            scheme: Scheme::Network,
            seed: 7,
        };
        // (h-1)·G + L = 16: the committed h=1 cell measures exactly 20/20.
        let ok = s(&["16", "1", "0", "0", "0", "16", "16", "16.00", "1.00", "1.00"]);
        assert!(grid_for(work.clone(), vec![ok]).is_empty(), "equality is legal");
        let broken = s(&["16", "1", "0", "0", "0", "15", "16", "16.00", "1.00", "1.00"]);
        let v = grid_for(work, vec![broken]);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("t_cycles"), "{}", v[0]);
        assert!(v[0].to_string().starts_with("d[0]:"), "{}", v[0]);
    }

    #[test]
    fn host_hosted_below_native_is_flagged() {
        let logp = LogpParams::new(16, 16, 1, 4).unwrap();
        let work = Work::Host {
            logp,
            fg: 1,
            fl: 1,
            wl: HostWl::Ring { rounds: 8 },
        };
        // rounds·(L+2o) = 8·18 = 144 (the committed ring cell is exactly this).
        let ok = s(&["ring x8", "16", "1x/1x", "144", "200", "1.39", "3.0", "0.46"]);
        assert!(grid_for(work.clone(), vec![ok]).is_empty());
        let fast_native = s(&["ring x8", "16", "1x/1x", "143", "200", "1.40", "3.0", "0.47"]);
        assert_eq!(grid_for(work.clone(), vec![fast_native]).len(), 1);
        let hosted_beats = s(&["ring x8", "16", "1x/1x", "144", "143", "0.99", "3.0", "0.33"]);
        let v = grid_for(work, vec![hosted_beats]);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("hosted"), "{}", v[0]);
    }

    #[test]
    fn conformance_rows_enforce_monotone_faults() {
        assert!(audit_conformance_row("route_det", 4, 22, 22).is_empty());
        assert!(!audit_conformance_row("route_det", 4, 21, 30).is_empty(), "below (h-1)G+L");
        assert!(!audit_conformance_row("logp_on_bsp", 4, 15, 14).is_empty(), "faulted < clean");
        assert!(audit_conformance_row("logp_on_bsp", 4, 15, 15).is_empty(), "no latency bound for thm1 host");
        assert!(!audit_conformance_row("route_rand", 4, 0, 0).is_empty(), "zero steps");
    }

    #[test]
    fn k6_samples_respect_indegree_drain() {
        let work = Work::Measure {
            net: Net::Hypercube(6),
            mode: bvl_net::PortMode::Multi,
            seed: 11,
            view: View::K6 { label: "hypercube_k6".into() },
        };
        let fit = s(&["hypercube_k6", "64", "1.00", "6.00", "0.99"]);
        let ok = s(&["16", "12.5"]); // ⌈16/6⌉ = 3 ≤ 12.5
        assert!(grid_for(work.clone(), vec![fit.clone(), ok]).is_empty());
        let broken = s(&["16", "2"]);
        let v = grid_for(work, vec![fit, broken]);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("T(h)"), "{}", v[0]);
    }

    #[test]
    fn sort_rows_respect_the_balanced_ideal() {
        let work = Work::Sort {
            p: 8,
            n: 512,
            g: 2,
            l: 16,
            seed: 0,
        };
        // b = 64, samples = 56: ideal = 192 + 56 + 2·(56+8+64) + 64 = 568.
        assert_eq!(ideal_sort_bound(8, 512, 2, 16), 568.0);
        let ok = s(&[
            "8", "512", "580", "568", "1.02", "200", "300", "80", "2400", "580", "4.14", "9280.00",
            "yes",
        ]);
        assert!(grid_for(work.clone(), vec![ok]).is_empty());
        let below_ideal = s(&[
            "8", "512", "567", "568", "1.00", "200", "287", "80", "2400", "567", "4.23", "9280.00",
            "yes",
        ]);
        let v = grid_for(work.clone(), vec![below_ideal]);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("cost"), "{}", v[0]);
        let xsim_beats_native = s(&[
            "8", "512", "580", "568", "1.02", "200", "300", "80", "579", "580", "1.00", "9280.00",
            "yes",
        ]);
        let v = grid_for(work, vec![xsim_beats_native]);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("xsim"), "{}", v[0]);
    }

    #[test]
    fn stream_rows_cannot_save_cost_by_streaming() {
        let work = Work::Stream {
            p: 8,
            n: 512,
            window: 8,
            g: 2,
            l: 16,
            seed: 0,
        };
        let ok = s(&["8", "512", "8", "580", "740", "14", "4", "1.28", "yes"]);
        assert!(grid_for(work.clone(), vec![ok]).is_empty());
        let streamed_faster = s(&["8", "512", "8", "580", "579", "14", "4", "1.00", "yes"]);
        let v = grid_for(work.clone(), vec![streamed_faster]);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("streamed"), "{}", v[0]);
        let rounds_below = s(&["8", "512", "8", "580", "740", "3", "4", "1.28", "yes"]);
        let v = grid_for(work, vec![rounds_below]);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("rounds"), "{}", v[0]);
    }

    #[test]
    fn bsf_rows_respect_the_iteration_floor() {
        let work = Work::Bsf {
            workers: 4,
            units: 100,
            tt: 2,
            tw: 8,
            ts: 5,
            iters: 3,
        };
        // per-iter floor: max(5 + 4 + 25·8, 5 + 5·2) = 209 → ×3 = 627.
        let ok = s(&["4", "100", "627", "651", "1.04", "3.87", "10.00"]);
        assert!(grid_for(work.clone(), vec![ok]).is_empty());
        let too_fast = s(&["4", "100", "626", "651", "1.04", "3.87", "10.00"]);
        let v = grid_for(work.clone(), vec![too_fast]);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("simulated"), "{}", v[0]);
        let superlinear = s(&["4", "100", "627", "651", "1.04", "4.01", "10.00"]);
        let v = grid_for(work, vec![superlinear]);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("superlinear"), "{}", v[0]);
    }

    #[test]
    fn malformed_audited_columns_are_findings() {
        let logp = LogpParams::new(8, 16, 1, 2).unwrap();
        let work = Work::RouteBig { logp, h: 98, seed: 9 };
        let bad = s(&["98", "Network", "9"]); // audited column 4 missing
        let v = grid_for(work, vec![bad]);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("missing"), "{}", v[0]);
    }
}

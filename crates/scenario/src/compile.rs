//! Lowering: [`ScenarioDoc`] → the `bvl_lab` grid vocabulary.
//!
//! `compile` turns a document into [`bvl_lab::GridSpec`]/[`bvl_lab::CellSpec`]
//! stacks plus the per-cell [`Work`] items a runner dispatches on. The
//! lowering is key-preserving by construction: domain, index, params, plan
//! and the canonical `RunOptions` string land in the `CellSpec` exactly as
//! the legacy code-defined grids built them, so content addresses — and
//! therefore warm-cache hits — survive the refactor.
//!
//! **Smoke semantics.** A grid with `only=full` is dropped from smoke
//! compiles (and vice versa). Within a kept grid, a smoke compile keeps a
//! cell iff it is marked `smoke` (all cells, for an `only=smoke` grid).
//! Either way a cell's RNG-lane index is its position in the *full*
//! declared list, so filtered grids keep their streams — the same rule the
//! legacy `grids(smoke)` builders implemented with `retain`.

use std::fmt;
use std::sync::Arc;

use bvl_exec::RunOptions;
use bvl_lab::{CellSpec, CodeFingerprint, GridSpec};
use bvl_model::Steps;

use crate::doc::{OnlyIn, ScenarioDoc, Work};

/// A lowering error (bad document structure, not bad syntax).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError(pub String);

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario compile error: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

/// One lowered grid: the scheduler spec plus the work item behind each cell
/// (`work[i]` drives `spec.cells[i]`).
#[derive(Clone, Debug)]
pub struct CompiledGrid {
    /// The grid as `bvl_lab::run_grid` consumes it.
    pub spec: GridSpec,
    /// The typed work per cell, in `spec.cells` order.
    pub work: Vec<Work>,
}

/// A fully lowered scenario.
#[derive(Clone, Debug)]
pub struct CompiledScenario {
    /// Scenario name from the document header.
    pub name: String,
    /// The kept grids, in declaration order.
    pub grids: Vec<CompiledGrid>,
}

impl CompiledScenario {
    /// Total cell count across grids.
    pub fn cells(&self) -> usize {
        self.grids.iter().map(|g| g.spec.cells.len()).sum()
    }
}

/// Lower `doc` for a smoke or full run.
pub fn compile(doc: &ScenarioDoc, smoke: bool) -> Result<CompiledScenario, CompileError> {
    let mut grids = Vec::new();
    for grid in &doc.grids {
        match (grid.only, smoke) {
            (Some(OnlyIn::Full), true) | (Some(OnlyIn::Smoke), false) => continue,
            _ => {}
        }

        let mut opts = RunOptions::new();
        if let Some(seed) = grid.seed {
            opts = opts.seed(seed);
        }
        if grid.trace {
            opts = opts.traced();
        }
        if let Some(base) = grid.clock_base {
            opts = opts.at(Steps(base));
        }
        if let Some(budget) = grid.budget {
            opts = opts.budget(budget);
        }
        if let Some(plan) = &grid.fault {
            opts = opts.faults(Arc::new(plan.clone()));
        }

        let mut spec = GridSpec::new(grid.exp.clone(), grid.master);
        spec.opts = opts;
        let mut work = Vec::new();
        for (index, cell) in grid.cells.iter().enumerate() {
            if smoke && !(cell.smoke || grid.only == Some(OnlyIn::Smoke)) {
                continue;
            }
            if smoke && cell.force {
                return Err(CompileError(format!(
                    "grid '{}' cell {index}: forced cells cannot run in smoke \
                     (forced means live + registry-captured; smoke grids must be cacheable)",
                    grid.exp
                )));
            }
            let domain = cell
                .domain
                .as_deref()
                .or(grid.domain.as_deref())
                .ok_or_else(|| {
                    CompileError(format!(
                        "grid '{}' cell {index}: no domain (set grid domain= or cell domain=)",
                        grid.exp
                    ))
                })?;
            let mut cs = CellSpec::new(domain, index, cell.params.clone());
            if let Some(plan) = &cell.plan {
                cs = cs.plan(plan.to_string());
            }
            if cell.force {
                cs = cs.forced();
            }
            spec = spec.cell(cs);
            work.push(cell.work.clone());
        }
        if spec.cells.is_empty() {
            continue;
        }
        grids.push(CompiledGrid { spec, work });
    }
    Ok(CompiledScenario {
        name: doc.name.clone(),
        grids,
    })
}

/// A content digest of a lowered grid: experiment, master seed and every
/// cell's store key (which already folds in domain, index, params, plan and
/// the canonical options) plus its force flag. Two grids with equal digests
/// request byte-identical work from the scheduler — `lab validate` diffs
/// this against the legacy code-defined grid.
pub fn grid_digest(spec: &GridSpec) -> String {
    let code = CodeFingerprint::current();
    let master = spec.master.to_string();
    let mut owned: Vec<(String, String)> = vec![
        ("exp".into(), spec.exp.clone()),
        ("master".into(), master),
        ("opts".into(), spec.opts.canonical()),
    ];
    for cell in &spec.cells {
        owned.push((
            format!("cell{}", cell.index),
            format!("{} force={}", spec.key_of(&code, cell), cell.force),
        ));
    }
    let pairs: Vec<(&str, &str)> = owned
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    bvl_lab::Digest::of(&pairs).hex()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::{CellDoc, GridDoc, View};
    use crate::topo::Net;
    use bvl_net::table1::Family;
    use bvl_net::PortMode;

    fn cell(i: u64, smoke: bool, force: bool) -> CellDoc {
        let mut c = CellDoc::new(
            Work::Measure {
                net: Net::Hypercube(3),
                mode: PortMode::Multi,
                seed: i,
                view: View::Main {
                    family: Family::HypercubeMulti,
                },
            },
            format!("cell {i}"),
        );
        if smoke {
            c = c.smoke();
        }
        if force {
            c = c.forced();
        }
        c
    }

    #[test]
    fn smoke_filter_preserves_full_list_indices() {
        let doc = ScenarioDoc::new("s").grid(
            GridDoc::new("e", 1)
                .domain("d")
                .cell(cell(0, false, false))
                .cell(cell(1, true, false))
                .cell(cell(2, false, false))
                .cell(cell(3, true, false)),
        );
        let full = compile(&doc, false).unwrap();
        assert_eq!(full.grids[0].spec.cells.len(), 4);
        let smoke = compile(&doc, true).unwrap();
        let idx: Vec<usize> = smoke.grids[0].spec.cells.iter().map(|c| c.index).collect();
        assert_eq!(idx, vec![1, 3], "smoke keeps the declared RNG lanes");
    }

    #[test]
    fn only_gates_whole_grids_and_empty_grids_drop() {
        let doc = ScenarioDoc::new("s")
            .grid(
                GridDoc::new("full-only", 1)
                    .domain("d")
                    .only(OnlyIn::Full)
                    .cell(cell(0, false, false)),
            )
            .grid(
                GridDoc::new("smoke-only", 2)
                    .domain("d")
                    .only(OnlyIn::Smoke)
                    .cell(cell(0, false, false)),
            )
            .grid(GridDoc::new("never-smoke", 3).domain("d").cell(cell(0, false, false)));
        let full = compile(&doc, false).unwrap();
        assert_eq!(
            full.grids.iter().map(|g| g.spec.exp.as_str()).collect::<Vec<_>>(),
            ["full-only", "never-smoke"]
        );
        let smoke = compile(&doc, true).unwrap();
        assert_eq!(
            smoke.grids.iter().map(|g| g.spec.exp.as_str()).collect::<Vec<_>>(),
            ["smoke-only"],
            "only=smoke keeps all cells; unmarked grids with no smoke cells drop"
        );
        assert_eq!(smoke.grids[0].spec.cells.len(), 1);
    }

    #[test]
    fn forced_cells_are_rejected_in_smoke() {
        let doc = ScenarioDoc::new("s").grid(
            GridDoc::new("e", 1)
                .domain("d")
                .cell(cell(0, true, true)),
        );
        assert!(compile(&doc, false).is_ok());
        assert!(compile(&doc, true).is_err());
    }

    #[test]
    fn missing_domain_is_an_error() {
        let doc = ScenarioDoc::new("s").grid(GridDoc::new("e", 1).cell(cell(0, false, false)));
        let e = compile(&doc, false).unwrap_err();
        assert!(e.to_string().contains("no domain"), "{e}");
    }

    #[test]
    fn grid_digest_reflects_every_key_field() {
        let base = || {
            GridDoc::new("e", 1)
                .domain("d")
                .cell(cell(0, false, false))
        };
        let digest = |doc: &ScenarioDoc| {
            grid_digest(&compile(doc, false).unwrap().grids[0].spec)
        };
        let d0 = digest(&ScenarioDoc::new("s").grid(base()));
        assert_eq!(d0, digest(&ScenarioDoc::new("other-name").grid(base())));

        let mut renamed = base();
        renamed.exp = "e2".into();
        assert_ne!(d0, digest(&ScenarioDoc::new("s").grid(renamed)));

        let mut reseeded = base();
        reseeded.seed = Some(9);
        assert_ne!(d0, digest(&ScenarioDoc::new("s").grid(reseeded)));

        let mut reparam = base();
        reparam.cells[0].params = "cell X".into();
        assert_ne!(d0, digest(&ScenarioDoc::new("s").grid(reparam)));
    }
}

//! Hand-written parser for the scenario text form.
//!
//! The grammar is a flat statement language:
//!
//! ```text
//! document   := statement (sep statement)*
//! sep        := '\n' | ';'
//! statement  := 'scenario' NAME | 'grid' attr* | 'cell' KIND attr*
//! attr       := WORD | WORD '=' (BARE | QUOTED)
//! ```
//!
//! `#` starts a comment to end of line. Bare values run to the next
//! whitespace or separator and may contain `=`/`,`/`:` (fault-plan
//! one-liners embed verbatim); the split is at the *first* `=` of the
//! attribute. Quoted values use `"` with `\\`, `\"`, `\n`, `\t` escapes.
//!
//! Every error carries the byte offset (and derived line number) of the
//! offending token, in the same spirit as `bvl_obs::jsonio`.

use std::fmt;
use std::str::FromStr;

use bvl_fault::conformance::Sim;
use bvl_fault::FaultPlan;
use bvl_logp::LogpParams;

use crate::doc::{
    CellDoc, GridDoc, HostWl, OnlyIn, Scheme, ScenarioDoc, Strategy, SuperWl, View, Work,
};
use crate::topo::{parse_family, Net};

/// A scenario parse error, anchored to a byte offset in the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending token in the source text.
    pub offset: usize,
    /// 1-based line number derived from the offset.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario parse error at byte {} (line {}): {}",
            self.offset, self.line, self.msg
        )
    }
}

impl std::error::Error for ParseError {}

fn err(src: &str, offset: usize, msg: impl Into<String>) -> ParseError {
    let line = src[..offset.min(src.len())]
        .bytes()
        .filter(|&b| b == b'\n')
        .count()
        + 1;
    ParseError {
        offset,
        line,
        msg: msg.into(),
    }
}

/// One `key[=value]` attribute with its source offset.
#[derive(Clone, Debug)]
struct Token {
    offset: usize,
    key: String,
    value: Option<String>,
}

/// One statement: its leading offset and its tokens.
#[derive(Clone, Debug)]
struct Statement {
    offset: usize,
    tokens: Vec<Token>,
}

/// Split the source into statements of tokens.
fn tokenize(src: &str) -> Result<Vec<Statement>, ParseError> {
    let bytes = src.as_bytes();
    let mut statements = Vec::new();
    let mut current: Option<Statement> = None;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\n' | b';' => {
                if let Some(stmt) = current.take() {
                    statements.push(stmt);
                }
                i += 1;
            }
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b if b.is_ascii_whitespace() => i += 1,
            b'"' => {
                return Err(err(src, i, "unexpected '\"' (values are key=\"...\")"));
            }
            _ => {
                let start = i;
                // Key: up to '=', whitespace, separator or comment.
                while i < bytes.len()
                    && !matches!(bytes[i], b'=' | b';' | b'#' | b'"')
                    && !bytes[i].is_ascii_whitespace()
                {
                    i += 1;
                }
                let key = src[start..i].to_string();
                let value = if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                    if i < bytes.len() && bytes[i] == b'"' {
                        // Quoted value.
                        i += 1;
                        let mut out = String::new();
                        loop {
                            if i >= bytes.len() || bytes[i] == b'\n' {
                                return Err(err(src, start, "unterminated quoted value"));
                            }
                            match bytes[i] {
                                b'"' => {
                                    i += 1;
                                    break;
                                }
                                b'\\' => {
                                    i += 1;
                                    match bytes.get(i) {
                                        Some(b'\\') => out.push('\\'),
                                        Some(b'"') => out.push('"'),
                                        Some(b'n') => out.push('\n'),
                                        Some(b't') => out.push('\t'),
                                        other => {
                                            return Err(err(
                                                src,
                                                i,
                                                format!(
                                                    "bad escape '\\{}'",
                                                    other.map(|&b| b as char).unwrap_or(' ')
                                                ),
                                            ))
                                        }
                                    }
                                    i += 1;
                                }
                                _ => {
                                    // Multi-byte UTF-8 advances byte-wise;
                                    // re-slice to keep chars intact.
                                    let rest = &src[i..];
                                    let c = rest.chars().next().unwrap();
                                    out.push(c);
                                    i += c.len_utf8();
                                }
                            }
                        }
                        Some(out)
                    } else {
                        // Bare value: runs to whitespace/separator/comment.
                        let vstart = i;
                        while i < bytes.len()
                            && !matches!(bytes[i], b';' | b'#' | b'"')
                            && !bytes[i].is_ascii_whitespace()
                        {
                            i += 1;
                        }
                        if vstart == i {
                            return Err(err(src, start, format!("'{key}=' has an empty value")));
                        }
                        Some(src[vstart..i].to_string())
                    }
                } else {
                    None
                };
                let token = Token {
                    offset: start,
                    key,
                    value,
                };
                match current.as_mut() {
                    Some(stmt) => stmt.tokens.push(token),
                    None => {
                        current = Some(Statement {
                            offset: start,
                            tokens: vec![token],
                        })
                    }
                }
            }
        }
    }
    if let Some(stmt) = current.take() {
        statements.push(stmt);
    }
    Ok(statements)
}

/// Attribute cursor over a statement's tail; rejects leftovers on finish.
struct Attrs<'a> {
    src: &'a str,
    stmt_offset: usize,
    items: Vec<Option<Token>>,
}

impl<'a> Attrs<'a> {
    fn new(src: &'a str, stmt_offset: usize, tokens: &[Token]) -> Attrs<'a> {
        Attrs {
            src,
            stmt_offset,
            items: tokens.iter().cloned().map(Some).collect(),
        }
    }

    /// Take `key=value`, if present.
    fn take(&mut self, key: &str) -> Result<Option<(usize, String)>, ParseError> {
        for slot in &mut self.items {
            if slot.as_ref().is_some_and(|t| t.key == key) {
                let t = slot.take().unwrap();
                return match t.value {
                    Some(v) => Ok(Some((t.offset, v))),
                    None => Err(err(self.src, t.offset, format!("'{key}' needs a value"))),
                };
            }
        }
        Ok(None)
    }

    /// Take a required `key=value`.
    fn require(&mut self, key: &str) -> Result<(usize, String), ParseError> {
        self.take(key)?
            .ok_or_else(|| err(self.src, self.stmt_offset, format!("missing '{key}='")))
    }

    /// Take a bare flag, if present.
    fn take_flag(&mut self, key: &str) -> Result<bool, ParseError> {
        for slot in &mut self.items {
            if slot.as_ref().is_some_and(|t| t.key == key) {
                let t = slot.take().unwrap();
                if t.value.is_some() {
                    return Err(err(self.src, t.offset, format!("'{key}' takes no value")));
                }
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Error out on any attribute nobody consumed.
    fn finish(self) -> Result<(), ParseError> {
        match self.items.into_iter().flatten().next() {
            Some(slot) => Err(err(
                self.src,
                slot.offset,
                format!("unknown attribute '{}'", slot.key),
            )),
            None => Ok(()),
        }
    }
}

fn parse_with<T: FromStr>(
    src: &str,
    offset: usize,
    key: &str,
    value: &str,
    expect: &str,
) -> Result<T, ParseError> {
    value
        .parse::<T>()
        .map_err(|_| err(src, offset, format!("'{key}={value}' is not {expect}")))
}

fn parse_tok<T>(src: &str, offset: usize, what: &str, res: Result<T, String>) -> Result<T, ParseError> {
    res.map_err(|e| err(src, offset, format!("bad {what}: {e}")))
}

fn take_u64(src: &str, attrs: &mut Attrs<'_>, key: &str) -> Result<Option<u64>, ParseError> {
    match attrs.take(key)? {
        Some((off, v)) => Ok(Some(parse_with(src, off, key, &v, "a number")?)),
        None => Ok(None),
    }
}

fn require_u64(src: &str, attrs: &mut Attrs<'_>, key: &str) -> Result<u64, ParseError> {
    let (off, v) = attrs.require(key)?;
    parse_with(src, off, key, &v, "a number")
}

fn require_usize(src: &str, attrs: &mut Attrs<'_>, key: &str) -> Result<usize, ParseError> {
    let (off, v) = attrs.require(key)?;
    parse_with(src, off, key, &v, "a number")
}

fn require_logp(src: &str, attrs: &mut Attrs<'_>) -> Result<LogpParams, ParseError> {
    let (off, v) = attrs.require("logp")?;
    let parts: Vec<&str> = v.split(':').collect();
    if parts.len() != 4 {
        return Err(err(src, off, format!("'logp={v}' is not of the form P:L:O:G")));
    }
    let num = |s: &str| -> Result<u64, ParseError> {
        s.parse()
            .map_err(|_| err(src, off, format!("'logp={v}': '{s}' is not a number")))
    };
    let p = num(parts[0])? as usize;
    let (l, o, g) = (num(parts[1])?, num(parts[2])?, num(parts[3])?);
    LogpParams::new(p, l, o, g).map_err(|e| err(src, off, format!("'logp={v}': {e}")))
}

fn require_plan(src: &str, attrs: &mut Attrs<'_>, key: &str) -> Result<Option<FaultPlan>, ParseError> {
    match attrs.take(key)? {
        Some((off, v)) => Ok(Some(parse_tok(src, off, "fault plan", v.parse())?)),
        None => Ok(None),
    }
}

fn parse_cell(src: &str, stmt: &Statement) -> Result<CellDoc, ParseError> {
    let kind = stmt.tokens.get(1).ok_or_else(|| {
        err(src, stmt.offset, "cell statement needs a kind (measure | host | route | route-big | superstep | conformance | stack | sort | stream | bsf)")
    })?;
    if kind.value.is_some() {
        return Err(err(src, kind.offset, "cell kind takes no value"));
    }
    let mut attrs = Attrs::new(src, stmt.offset, &stmt.tokens[2..]);

    let work = match kind.key.as_str() {
        "measure" => {
            let (noff, nv) = attrs.require("net")?;
            let net: Net = parse_tok(src, noff, "net", nv.parse())?;
            let (moff, mv) = attrs.require("mode")?;
            let mode = match mv.as_str() {
                "multi" => bvl_net::PortMode::Multi,
                "single" => bvl_net::PortMode::Single,
                other => {
                    return Err(err(src, moff, format!("'mode={other}' is not multi | single")))
                }
            };
            let seed = require_u64(src, &mut attrs, "seed")?;
            let (voff, vv) = attrs.require("view")?;
            let view = match vv.as_str() {
                "main" => {
                    let (foff, fv) = attrs.require("family")?;
                    View::Main {
                        family: parse_tok(src, foff, "family", parse_family(&fv))?,
                    }
                }
                "scaling" => {
                    let (foff, fv) = attrs.require("family")?;
                    let (_, label) = attrs.require("label")?;
                    View::Scaling {
                        family: parse_tok(src, foff, "family", parse_family(&fv))?,
                        label,
                    }
                }
                "obs1" => View::Obs1 {
                    label: attrs.require("label")?.1,
                },
                "k6" => View::K6 {
                    label: attrs.require("label")?.1,
                },
                other => {
                    return Err(err(
                        src,
                        voff,
                        format!("'view={other}' is not main | scaling | obs1 | k6"),
                    ))
                }
            };
            Work::Measure {
                net,
                mode,
                seed,
                view,
            }
        }
        "host" => {
            let logp = require_logp(src, &mut attrs)?;
            let fg = require_u64(src, &mut attrs, "fg")?;
            let fl = require_u64(src, &mut attrs, "fl")?;
            let (woff, wv) = attrs.require("wl")?;
            let wl = if let Some(rounds) = wv.strip_prefix("ring:") {
                HostWl::Ring {
                    rounds: parse_with(src, woff, "wl", rounds, "a round count")?,
                }
            } else if wv == "alltoall" {
                HostWl::AllToAll
            } else {
                return Err(err(
                    src,
                    woff,
                    format!("'wl={wv}' is not ring:ROUNDS | alltoall"),
                ));
            };
            Work::Host { logp, fg, fl, wl }
        }
        "route" => {
            let logp = require_logp(src, &mut attrs)?;
            let h = require_usize(src, &mut attrs, "h")?;
            let (soff, sv) = attrs.require("scheme")?;
            let scheme = match sv.as_str() {
                "network" => Scheme::Network,
                "columnsort" => Scheme::Columnsort,
                other => {
                    return Err(err(
                        src,
                        soff,
                        format!("'scheme={other}' is not network | columnsort"),
                    ))
                }
            };
            let seed = require_u64(src, &mut attrs, "seed")?;
            Work::Route {
                logp,
                h,
                scheme,
                seed,
            }
        }
        "route-big" => {
            let logp = require_logp(src, &mut attrs)?;
            let h = require_usize(src, &mut attrs, "h")?;
            let seed = require_u64(src, &mut attrs, "seed")?;
            Work::RouteBig { logp, h, seed }
        }
        "superstep" => {
            let logp = require_logp(src, &mut attrs)?;
            let (soff, sv) = attrs.require("strategy")?;
            let strategy = if sv == "offline" {
                Strategy::Offline
            } else if sv == "deterministic" {
                Strategy::Deterministic
            } else if let Some(slack) = sv.strip_prefix("randomized:") {
                Strategy::Randomized {
                    slack: parse_with(src, soff, "strategy", slack, "a slack factor")?,
                }
            } else {
                return Err(err(
                    src,
                    soff,
                    format!("'strategy={sv}' is not offline | randomized:SLACK | deterministic"),
                ));
            };
            let (woff, wv) = attrs.require("wl")?;
            let wl = match wv.as_str() {
                "mod7fan" => SuperWl::Mod7Fan,
                other => return Err(err(src, woff, format!("'wl={other}' is not mod7fan"))),
            };
            Work::Superstep { logp, strategy, wl }
        }
        "conformance" => {
            let (soff, sv) = attrs.require("sim")?;
            let sim: Sim = parse_tok(src, soff, "sim", sv.parse())?;
            let p = require_usize(src, &mut attrs, "p")?;
            let h = require_usize(src, &mut attrs, "h")?;
            let seed = require_u64(src, &mut attrs, "seed")?;
            Work::Conformance { sim, p, h, seed }
        }
        "stack" => {
            let (noff, nv) = attrs.require("net")?;
            let net: Net = parse_tok(src, noff, "net", nv.parse())?;
            let rounds = require_u64(src, &mut attrs, "rounds")?;
            let seed = require_u64(src, &mut attrs, "seed")?;
            Work::Stack { net, rounds, seed }
        }
        "sort" => {
            let p = require_usize(src, &mut attrs, "p")?;
            let n = require_u64(src, &mut attrs, "n")?;
            let g = require_u64(src, &mut attrs, "g")?;
            let l = require_u64(src, &mut attrs, "l")?;
            let seed = require_u64(src, &mut attrs, "seed")?;
            Work::Sort { p, n, g, l, seed }
        }
        "stream" => {
            let p = require_usize(src, &mut attrs, "p")?;
            let n = require_u64(src, &mut attrs, "n")?;
            let window = require_u64(src, &mut attrs, "window")?;
            let g = require_u64(src, &mut attrs, "g")?;
            let l = require_u64(src, &mut attrs, "l")?;
            let seed = require_u64(src, &mut attrs, "seed")?;
            Work::Stream {
                p,
                n,
                window,
                g,
                l,
                seed,
            }
        }
        "bsf" => {
            let workers = require_usize(src, &mut attrs, "workers")?;
            let units = require_u64(src, &mut attrs, "units")?;
            let tt = require_u64(src, &mut attrs, "tt")?;
            let tw = require_u64(src, &mut attrs, "tw")?;
            let ts = require_u64(src, &mut attrs, "ts")?;
            let iters = require_u64(src, &mut attrs, "iters")?;
            Work::Bsf {
                workers,
                units,
                tt,
                tw,
                ts,
                iters,
            }
        }
        other => {
            return Err(err(
                src,
                kind.offset,
                format!("unknown cell kind '{other}' (measure | host | route | route-big | superstep | conformance | stack | sort | stream | bsf)"),
            ))
        }
    };

    let domain = attrs.take("domain")?.map(|(_, v)| v);
    let plan = require_plan(src, &mut attrs, "plan")?;
    let (_, params) = attrs.require("params")?;
    let force = attrs.take_flag("force")?;
    let smoke = attrs.take_flag("smoke")?;
    attrs.finish()?;

    Ok(CellDoc {
        work,
        params,
        domain,
        plan,
        force,
        smoke,
    })
}

fn parse_grid(src: &str, stmt: &Statement) -> Result<GridDoc, ParseError> {
    let mut attrs = Attrs::new(src, stmt.offset, &stmt.tokens[1..]);
    let (_, exp) = attrs.require("exp")?;
    let master = require_u64(src, &mut attrs, "master")?;
    let domain = attrs.take("domain")?.map(|(_, v)| v);
    let only = match attrs.take("only")? {
        Some((off, v)) => Some(match v.as_str() {
            "smoke" => OnlyIn::Smoke,
            "full" => OnlyIn::Full,
            other => return Err(err(src, off, format!("'only={other}' is not smoke | full"))),
        }),
        None => None,
    };
    let seed = take_u64(src, &mut attrs, "seed")?;
    let trace = attrs.take_flag("trace")?;
    let clock_base = take_u64(src, &mut attrs, "clock_base")?;
    let budget = take_u64(src, &mut attrs, "budget")?;
    let fault = require_plan(src, &mut attrs, "fault")?;
    attrs.finish()?;

    Ok(GridDoc {
        exp,
        master,
        domain,
        only,
        seed,
        trace,
        clock_base,
        budget,
        fault,
        cells: Vec::new(),
    })
}

/// Parse a scenario document. Inverts [`ScenarioDoc::to_text`] and
/// [`ScenarioDoc::repro`] exactly.
pub fn parse(src: &str) -> Result<ScenarioDoc, ParseError> {
    let statements = tokenize(src)?;
    let mut stmts = statements.iter();

    let header = stmts
        .next()
        .ok_or_else(|| err(src, 0, "empty document (expected 'scenario NAME')"))?;
    if header.tokens[0].key != "scenario" || header.tokens[0].value.is_some() {
        return Err(err(
            src,
            header.offset,
            "document must start with 'scenario NAME'",
        ));
    }
    if header.tokens.len() != 2 || header.tokens[1].value.is_some() {
        return Err(err(
            src,
            header.offset,
            "'scenario' takes exactly one name",
        ));
    }
    let name = header.tokens[1].key.clone();

    let mut doc = ScenarioDoc::new(name);
    for stmt in stmts {
        match stmt.tokens[0].key.as_str() {
            "grid" => doc.grids.push(parse_grid(src, stmt)?),
            "cell" => match doc.grids.last_mut() {
                Some(grid) => grid.cells.push(parse_cell(src, stmt)?),
                None => {
                    return Err(err(
                        src,
                        stmt.offset,
                        "'cell' before any 'grid' statement",
                    ))
                }
            },
            "scenario" => {
                return Err(err(src, stmt.offset, "duplicate 'scenario' statement"))
            }
            other => {
                return Err(err(
                    src,
                    stmt.offset,
                    format!("unknown statement '{other}' (grid | cell)"),
                ))
            }
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(doc: &ScenarioDoc) {
        assert_eq!(&parse(&doc.to_text()).unwrap(), doc, "to_text round-trip");
        assert_eq!(&parse(&doc.repro()).unwrap(), doc, "repro round-trip");
    }

    #[test]
    fn minimal_document_round_trips() {
        let doc = ScenarioDoc::new("demo").grid(
            GridDoc::new("table1", 42).domain("table1").cell(
                CellDoc::new(
                    Work::Measure {
                        net: Net::Hypercube(6),
                        mode: bvl_net::PortMode::Multi,
                        seed: 11,
                        view: View::K6 {
                            label: "hypercube_k6".into(),
                        },
                    },
                    "hypercube(6) multi",
                )
                .smoke(),
            ),
        );
        roundtrip(&doc);
    }

    #[test]
    fn fault_plans_embed_as_bare_values() {
        let plan: FaultPlan = "seed=17,jitter=uniform:4,dup=5,squeeze=3".parse().unwrap();
        let doc = ScenarioDoc::new("faulty").grid(
            GridDoc::new("faults", 100)
                .domain("faults-smoke")
                .cell(
                    CellDoc::new(
                        Work::Conformance {
                            sim: Sim::RouteDet,
                            p: 8,
                            h: 4,
                            seed: 100,
                        },
                        "sim=route_det p=8 h=4 seed=100",
                    )
                    .plan(plan.clone()),
                ),
        );
        roundtrip(&doc);
        let parsed = parse(&doc.to_text()).unwrap();
        assert_eq!(parsed.grids[0].cells[0].plan, Some(plan));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = "# header comment\nscenario s # trailing\n\n  # indented\ngrid exp=e master=1 domain=d\n";
        let doc = parse(src).unwrap();
        assert_eq!(doc.name, "s");
        assert_eq!(doc.grids.len(), 1);
    }

    #[test]
    fn quoted_escapes_round_trip() {
        let doc = ScenarioDoc::new("esc").grid(
            GridDoc::new("e", 1).domain("d").cell(CellDoc::new(
                Work::Stack {
                    net: Net::Hypercube(5),
                    rounds: 8,
                    seed: 1996,
                },
                "quote \" slash \\ nl \n tab \t end",
            )),
        );
        roundtrip(&doc);
    }

    #[test]
    fn errors_carry_byte_offsets() {
        // Offset of the bad token, not of the statement.
        let src = "scenario s\ngrid exp=e master=nope\n";
        let e = parse(src).unwrap_err();
        assert_eq!(e.offset, src.find("master=").unwrap());
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("byte"), "{e}");

        let src = "scenario s\ngrid exp=e master=1 domain=d\ncell measure net=torus:4 mode=multi seed=1 view=obs1 label=\"x\" params=\"p\"\n";
        let e = parse(src).unwrap_err();
        assert_eq!(e.offset, src.find("net=torus").unwrap());
        assert_eq!(e.line, 3);

        let src = "scenario s\ngrid exp=e master=1 bogus=1\n";
        let e = parse(src).unwrap_err();
        assert_eq!(e.offset, src.find("bogus").unwrap());

        let src = "scenario s\ngrid exp=e master=1\ncell stack net=hypercube:5 rounds=8 seed=1 params=\"unterminated\n";
        let e = parse(src).unwrap_err();
        assert_eq!(e.offset, src.find("params=").unwrap());
    }

    #[test]
    fn structural_errors_are_rejected() {
        assert!(parse("").is_err());
        assert!(parse("grid exp=e master=1").is_err());
        assert!(parse("scenario a; scenario b").is_err());
        assert!(parse("scenario s; cell stack net=hypercube:5 rounds=8 seed=1 params=\"x\"").is_err());
        assert!(parse("scenario s; grid exp=e master=1; cell dance params=\"x\"").is_err());
        // G > L violates the paper constraint, rejected at parse time.
        assert!(
            parse("scenario s; grid exp=e master=1 domain=d; cell route logp=8:4:1:9 h=1 scheme=network seed=7 params=\"x\"")
                .is_err()
        );
    }
}

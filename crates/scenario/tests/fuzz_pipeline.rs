//! End-to-end pipeline fuzz (ISSUE 9): arbitrary byte soup and near-miss
//! mutations of the shipped `scenarios/*.scn` documents, pushed through
//! parse → compile → `run_grid` smoke → bounds audit. The contract under
//! fuzz is *total*ity, not acceptance:
//!
//! * no input panics any stage;
//! * every parse rejection carries a byte offset inside the source;
//! * whatever parses must compile or fail cleanly; whatever compiles must
//!   run under a synthetic cell body and audit without panicking, and the
//!   audit verdict is a pure function of the rows (same call, same
//!   violations — the gate can never flap).
//!
//! ≥256 cases per property (the shipped-document mutator runs 6 shipped
//! sources × mutations per case).

use bvl_lab::run_grid;
use bvl_obs::Registry;
use bvl_scenario::{audit_grid, compile, grid_digest, parse};
use proptest::prelude::*;
use proptest::test_runner::{ProptestConfig, TestRng};

const SHIPPED: [&str; 6] = [
    include_str!("../../../scenarios/table1.scn"),
    include_str!("../../../scenarios/thm1.scn"),
    include_str!("../../../scenarios/thm2.scn"),
    include_str!("../../../scenarios/faults.scn"),
    include_str!("../../../scenarios/stack.scn"),
    include_str!("../../../scenarios/scaling.scn"),
];

fn pick(rng: &mut TestRng, n: u64) -> u64 {
    rng.next_u64() % n
}

/// Raw byte soup rendered as a string: ASCII printables, structural
/// characters the tokenizer cares about, control bytes, and multi-byte
/// UTF-8 — everything short of invalid UTF-8 (the parser takes `&str`).
fn soup() -> impl Strategy<Value = String> {
    const ALPHABET: &[char] = &[
        'a', 'z', 'A', '0', '9', ' ', '\t', '\n', '\r', '"', '\\', '=', '#', ';', ':', ',', '(',
        ')', '{', '}', '[', ']', '.', '-', '+', '\u{0}', '\u{7f}', 'γ', '🧪',
    ];
    Just(()).prop_perturb(|_, mut rng| {
        let len = pick(&mut rng, 200) as usize;
        (0..len)
            .map(|_| ALPHABET[pick(&mut rng, ALPHABET.len() as u64) as usize])
            .collect()
    })
}

/// A near-miss mutant of a shipped document: deletions, duplications,
/// character substitutions, truncations, and cross-document splices. The
/// result is *almost* a real scenario — the hardest class of input for a
/// hand-rolled parser.
fn mutant() -> impl Strategy<Value = String> {
    Just(()).prop_perturb(|_, mut rng| {
        let base = SHIPPED[pick(&mut rng, SHIPPED.len() as u64) as usize];
        let mut text: Vec<char> = base.chars().collect();
        for _ in 0..=pick(&mut rng, 4) {
            match pick(&mut rng, 5) {
                0 if !text.is_empty() => {
                    // Delete a char.
                    let at = pick(&mut rng, text.len() as u64) as usize;
                    text.remove(at);
                }
                1 if !text.is_empty() => {
                    // Duplicate a char.
                    let at = pick(&mut rng, text.len() as u64) as usize;
                    let c = text[at];
                    text.insert(at, c);
                }
                2 if !text.is_empty() => {
                    // Substitute with a structural char.
                    const SUBS: &[char] = &['"', '=', '#', '\n', ';', 'x', '0', ' '];
                    let at = pick(&mut rng, text.len() as u64) as usize;
                    text[at] = SUBS[pick(&mut rng, SUBS.len() as u64) as usize];
                }
                3 if !text.is_empty() => {
                    // Truncate.
                    let at = pick(&mut rng, text.len() as u64) as usize;
                    text.truncate(at);
                }
                _ => {
                    // Splice a random window of another shipped document.
                    let other = SHIPPED[pick(&mut rng, SHIPPED.len() as u64) as usize];
                    let chars: Vec<char> = other.chars().collect();
                    let from = pick(&mut rng, chars.len() as u64) as usize;
                    let len = pick(&mut rng, 40) as usize;
                    let at = pick(&mut rng, text.len() as u64 + 1) as usize;
                    for (k, &c) in chars[from..(from + len).min(chars.len())].iter().enumerate() {
                        text.insert(at + k, c);
                    }
                }
            }
        }
        text.into_iter().collect()
    })
}

/// The whole pipeline on one input. Each stage may reject; none may
/// panic, and the audit verdict must be reproducible.
fn drive(text: &str) {
    let doc = match parse(text) {
        Err(e) => {
            assert!(e.offset <= text.len(), "offset {} past {}", e.offset, text.len());
            assert!(e.line >= 1, "line numbers are 1-based");
            return;
        }
        Ok(doc) => doc,
    };
    // Whatever parsed must serialize and re-parse to itself — mutants
    // that survive the parser join the round-trip contract.
    let reparsed = parse(&doc.to_text()).expect("serialized form re-parses");
    assert_eq!(reparsed, doc, "round-trip moved the document");
    let compiled = match compile(&doc, true) {
        Err(_) => return,
        Ok(c) => c,
    };
    for grid in &compiled.grids {
        // Digesting is total on compiled grids.
        let _ = grid_digest(&grid.spec);
        // Run the grid uncached with a synthetic body: the scheduler and
        // seed derivation must accept any compiled spec.
        let rep = run_grid(&grid.spec, None, &Registry::disabled(), |cell, job| {
            vec![vec![cell.domain.clone(), job.index.to_string(), "0".into()]]
        })
        .expect("uncached run of a compiled grid");
        assert_eq!(rep.rows.len(), grid.spec.cells.len());
        // The audit gate is pure: same rows, same verdict, and synthetic
        // rows (wrong arity for every bound) must not panic it.
        let first = audit_grid(&grid.spec, &grid.work, &rep.rows);
        let second = audit_grid(&grid.spec, &grid.work, &rep.rows);
        assert_eq!(first, second, "audit verdict flapped");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Unstructured byte soup: the pipeline is total on garbage.
    #[test]
    fn byte_soup_never_panics_the_pipeline(text in soup()) {
        drive(&text);
    }

    /// Near-miss mutants of the six shipped documents: the pipeline is
    /// total on almost-valid input, and anything that still parses keeps
    /// every downstream invariant.
    #[test]
    fn shipped_document_mutants_never_panic_the_pipeline(text in mutant()) {
        drive(&text);
    }
}

/// The unmutated shipped documents pass the whole pipeline — the fuzz
/// harness itself would catch a stage that rejects legitimate input.
#[test]
fn shipped_documents_drive_cleanly() {
    for text in SHIPPED {
        let doc = parse(text).expect("shipped scenario parses");
        let compiled = compile(&doc, true).expect("shipped scenario compiles");
        assert!(!compiled.grids.is_empty(), "{}: no grids", compiled.name);
        drive(text);
    }
}

//! Property tests for the scenario text form: `parse(doc.to_text()) == doc`
//! and `parse(doc.repro()) == doc` over random documents — random grids,
//! random typed work, random quoted strings, random embedded `FaultPlan`
//! one-liners — plus offset-carrying rejection checks for malformed input.

use bvl_fault::conformance::Sim;
use bvl_fault::FaultPlan;
use bvl_logp::LogpParams;
use bvl_net::table1::Family;
use bvl_net::PortMode;
use bvl_scenario::{
    parse, CellDoc, GridDoc, HostWl, OnlyIn, ScenarioDoc, Scheme, Strategy as SimStrategy,
    SuperWl, View, Work,
};
use bvl_scenario::Net;
use proptest::prelude::*;
use proptest::strategy::Strategy;
use proptest::test_runner::{ProptestConfig, TestRng};

fn pick(rng: &mut TestRng, n: u64) -> u64 {
    rng.next_u64() % n
}

/// A bare-token identifier: safe outside quotes.
fn ident() -> impl Strategy<Value = String> {
    Just(()).prop_perturb(|_, mut rng| {
        let len = 1 + pick(&mut rng, 8) as usize;
        (0..len)
            .map(|_| (b'a' + pick(&mut rng, 26) as u8) as char)
            .collect()
    })
}

/// An arbitrary quoted string: exercises every escape and every character
/// the tokenizer treats specially outside quotes.
fn text() -> impl Strategy<Value = String> {
    const ALPHABET: &[char] = &[
        'a', 'Z', '0', ' ', '"', '\\', '\n', '\t', '=', '#', ';', ':', ',', '(', ')', 'γ',
    ];
    Just(()).prop_perturb(|_, mut rng| {
        let len = pick(&mut rng, 16) as usize;
        (0..len)
            .map(|_| ALPHABET[pick(&mut rng, ALPHABET.len() as u64) as usize])
            .collect()
    })
}

fn net() -> impl Strategy<Value = Net> {
    Just(()).prop_perturb(|_, mut rng| {
        let size = 1 + pick(&mut rng, 16) as usize;
        let k = 1 + pick(&mut rng, 8) as u32;
        match pick(&mut rng, 7) {
            0 => Net::Array2d(size),
            1 => Net::Array3d(size),
            2 => Net::Hypercube(k),
            3 => Net::Butterfly(k),
            4 => Net::Ccc(k),
            5 => Net::ShuffleExchange(k),
            _ => Net::MeshOfTrees(size),
        }
    })
}

fn family() -> impl Strategy<Value = Family> {
    Just(()).prop_perturb(|_, mut rng| match pick(&mut rng, 7) {
        0 => Family::ArrayD(1 + pick(&mut rng, 4) as u32),
        1 => Family::HypercubeMulti,
        2 => Family::HypercubeSingle,
        3 => Family::Butterfly,
        4 => Family::Ccc,
        5 => Family::ShuffleExchange,
        _ => Family::MeshOfTrees,
    })
}

/// Valid LogP parameters: `max{2, o} ≤ G ≤ L` (enforced at parse time, so
/// the generator must respect it too).
fn logp() -> impl Strategy<Value = LogpParams> {
    Just(()).prop_perturb(|_, mut rng| {
        let o = pick(&mut rng, 4);
        let g_min = 2.max(o);
        let g = g_min + pick(&mut rng, 7);
        let l = g + pick(&mut rng, 60);
        let p = 1 + pick(&mut rng, 64) as usize;
        LogpParams::new(p, l, o, g).expect("generator respects the constraint")
    })
}

fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    Just(()).prop_perturb(|_, mut rng| {
        let mut plan = FaultPlan::new(pick(&mut rng, 1000));
        if pick(&mut rng, 2) == 0 {
            plan = match pick(&mut rng, 2) {
                0 => plan.jitter_uniform(1 + pick(&mut rng, 64)),
                _ => plan.jitter_fixed(1 + pick(&mut rng, 64)),
            };
        }
        if pick(&mut rng, 2) == 0 {
            plan = plan.reorder((1 + pick(&mut rng, 100)) as u8);
        }
        if pick(&mut rng, 2) == 0 {
            plan = plan.duplicate(1 + pick(&mut rng, 64));
        }
        if pick(&mut rng, 2) == 0 {
            let period = 2 + pick(&mut rng, 126);
            plan = plan.stall_burst(period, 1 + pick(&mut rng, period - 1));
        }
        if pick(&mut rng, 2) == 0 {
            plan = plan.capacity_squeeze(1 + pick(&mut rng, 8));
        }
        if pick(&mut rng, 2) == 0 {
            plan = plan.degrade(pick(&mut rng, 128), 1 + pick(&mut rng, 8));
        }
        plan.validate().expect("generator respects plan constraints");
        plan
    })
}

fn view() -> impl Strategy<Value = View> {
    (family(), text(), 0u64..4).prop_map(|(family, label, k)| match k {
        0 => View::Main { family },
        1 => View::Scaling { family, label },
        2 => View::Obs1 { label },
        _ => View::K6 { label },
    })
}

fn work() -> impl Strategy<Value = Work> {
    let measure = (net(), proptest::bool::ANY, 0u64..1000, view()).prop_map(
        |(net, multi, seed, view)| Work::Measure {
            net,
            mode: if multi { PortMode::Multi } else { PortMode::Single },
            seed,
            view,
        },
    );
    let host = (logp(), 1u64..5, 1u64..5, 0u64..10, proptest::bool::ANY).prop_map(
        |(logp, fg, fl, rounds, ring)| Work::Host {
            logp,
            fg,
            fl,
            wl: if ring {
                HostWl::Ring { rounds }
            } else {
                HostWl::AllToAll
            },
        },
    );
    let route = (logp(), 1usize..64, proptest::bool::ANY, 0u64..1000).prop_map(
        |(logp, h, network, seed)| Work::Route {
            logp,
            h,
            scheme: if network {
                Scheme::Network
            } else {
                Scheme::Columnsort
            },
            seed,
        },
    );
    let route_big =
        (logp(), 1usize..512, 0u64..1000).prop_map(|(logp, h, seed)| Work::RouteBig {
            logp,
            h,
            seed,
        });
    let superstep = (logp(), 0u64..3, 1u64..9).prop_map(|(logp, k, slack)| Work::Superstep {
        logp,
        strategy: match k {
            0 => SimStrategy::Offline,
            1 => SimStrategy::Randomized { slack },
            _ => SimStrategy::Deterministic,
        },
        wl: SuperWl::Mod7Fan,
    });
    let conformance =
        (0u64..3, 1usize..64, 1usize..16, 0u64..1000).prop_map(|(k, p, h, seed)| {
            Work::Conformance {
                sim: match k {
                    0 => Sim::RouteDet,
                    1 => Sim::RouteRand,
                    _ => Sim::LogpOnBsp,
                },
                p,
                h,
                seed,
            }
        });
    let stack = (net(), 1u64..16, 0u64..10000).prop_map(|(net, rounds, seed)| Work::Stack {
        net,
        rounds,
        seed,
    });
    let sort = (1u32..5, 16u64..4096, 2u64..5, 16u64..64, 0u64..1000).prop_map(
        |(logp, n, g, l, seed)| Work::Sort {
            p: 1usize << logp,
            n,
            g,
            l,
            seed,
        },
    );
    let stream = (1u32..5, 16u64..4096, 1u64..64, 2u64..5, 16u64..64, 0u64..1000).prop_map(
        |(logp, n, window, g, l, seed)| Work::Stream {
            p: 1usize << logp,
            n,
            window,
            g,
            l,
            seed,
        },
    );
    let bsf = (1usize..32, 1u64..1000, 1u64..8, 1u64..8, 0u64..8, 1u64..8).prop_map(
        |(workers, units, tt, tw, ts, iters)| Work::Bsf {
            workers,
            units,
            tt,
            tw,
            ts,
            iters,
        },
    );
    prop_oneof![measure, host, route, route_big, superstep, conformance, stack, sort, stream, bsf]
}

fn option_of<S: Strategy + 'static>(inner: S) -> impl Strategy<Value = Option<S::Value>> {
    (proptest::bool::ANY, inner).prop_map(|(some, v)| if some { Some(v) } else { None })
}

fn cell() -> impl Strategy<Value = CellDoc> {
    (
        work(),
        text(),
        option_of(ident()),
        option_of(fault_plan()),
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(work, params, domain, plan, force, smoke)| CellDoc {
            work,
            params,
            domain,
            plan,
            force,
            smoke,
        })
}

fn grid() -> impl Strategy<Value = GridDoc> {
    (
        (
            ident(),
            0u64..10000,
            option_of(ident()),
            (0u64..3).prop_map(|k| match k {
                0 => None,
                1 => Some(OnlyIn::Smoke),
                _ => Some(OnlyIn::Full),
            }),
        ),
        (
            option_of(0u64..10000),
            proptest::bool::ANY,
            option_of(0u64..1000),
            option_of(1u64..100000),
            option_of(fault_plan()),
        ),
        proptest::collection::vec(cell(), 0..4),
    )
        .prop_map(
            |((exp, master, domain, only), (seed, trace, clock_base, budget, fault), cells)| {
                GridDoc {
                    exp,
                    master,
                    domain,
                    only,
                    seed,
                    trace,
                    clock_base,
                    budget,
                    fault,
                    cells,
                }
            },
        )
}

fn doc() -> impl Strategy<Value = ScenarioDoc> {
    (ident(), proptest::collection::vec(grid(), 0..4))
        .prop_map(|(name, grids)| ScenarioDoc { name, grids })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The serializer and parser are exact inverses, in both the
    /// multi-line `.scn` form and the one-line repro form.
    #[test]
    fn parse_inverts_serialization(doc in doc()) {
        let text = doc.to_text();
        let parsed = parse(&text);
        prop_assert_eq!(parsed.as_ref().ok(), Some(&doc), "to_text: {}", text);
        let line = doc.repro();
        let reparsed = parse(&line);
        prop_assert_eq!(reparsed.as_ref().ok(), Some(&doc), "repro: {}", line);
    }

    /// Truncating a document mid-statement never panics, and a parse
    /// failure always points inside the source.
    #[test]
    fn truncation_fails_cleanly(doc in doc(), frac in 1u64..100) {
        let text = doc.to_text();
        let cut = (text.len() as u64 * frac / 100) as usize;
        // Snap to a char boundary.
        let mut cut = cut.min(text.len());
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        match parse(&text[..cut]) {
            Ok(_) => {}
            Err(e) => prop_assert!(e.offset <= cut, "offset {} past cut {cut}", e.offset),
        }
    }
}

#[test]
fn rejection_errors_point_at_the_byte() {
    // A representative malformed-input matrix; every error must carry the
    // byte offset of the offending token and render it in the message.
    let cases: &[(&str, &str)] = &[
        ("scenario s\ngrid exp=e master=x\n", "master=x"),
        ("scenario s\ngrid exp=e\n", "grid exp=e"),
        (
            "scenario s\ngrid exp=e master=1 domain=d\ncell route logp=8:16:1:99 h=1 scheme=network seed=7 params=\"x\"",
            "logp=8:16:1:99",
        ),
        (
            "scenario s\ngrid exp=e master=1 domain=d\ncell conformance sim=bogus p=8 h=4 seed=1 params=\"x\"",
            "sim=bogus",
        ),
        (
            "scenario s\ngrid exp=e master=1 domain=d fault=seed=1,burst=4x9\n",
            "fault=seed=1,burst=4x9",
        ),
        (
            "scenario s\ngrid exp=e master=1 domain=d\ncell stack net=hypercube:5 rounds=8 seed=1 params=\"x\" sneaky=1",
            "sneaky=1",
        ),
    ];
    for (src, token) in cases {
        let e = parse(src).unwrap_err();
        let expect = src.find(token).unwrap();
        assert_eq!(
            e.offset, expect,
            "for {token:?} got error at {} ({e}), want {expect}",
            e.offset
        );
        assert!(e.to_string().contains(&format!("byte {}", e.offset)), "{e}");
    }
}

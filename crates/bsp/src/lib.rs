//! # bvl-bsp — a superstep-accurate BSP machine
//!
//! Implements the Bulk-Synchronous Parallel model exactly as defined in §2.1
//! of *BSP vs LogP*: a `p`-processor virtual machine that executes a sequence
//! of supersteps, each made of a local computation phase, a global
//! communication phase, and a barrier synchronization, with superstep cost
//!
//! ```text
//! T_superstep = w + g·h + ℓ
//! ```
//!
//! where `w` is the maximum local work at any processor, `h` the maximum
//! number of messages sent *or* received by any processor, and `g`, `ℓ` the
//! machine's bandwidth and latency/synchronization parameters.
//!
//! Faithfulness notes:
//!
//! * Messages sent in superstep `t` are available at destinations only at the
//!   start of superstep `t + 1`.
//! * "The previous contents of the input pools, if any, are discarded" — by
//!   default, unread inbox messages are dropped at the communication phase,
//!   exactly as the paper prescribes. [`params::BspConfig::retain_unread`]
//!   opts out for programs written against friendlier runtimes.
//! * The same program yields the same results for every `(g, ℓ)`; the
//!   parameters only enter the cost ledger, never the semantics. This is the
//!   portability property §2.1 highlights, and tests assert it.
//!
//! Programs implement [`process::BspProcess`]; [`machine::BspMachine`] runs
//! them sequentially, and [`parallel`] provides a multithreaded driver that
//! produces bit-identical schedules (supersteps are data-parallel — the
//! barrier is the only synchronization, mirroring the model itself).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod machine;
pub mod parallel;
pub mod params;
pub mod process;
pub mod report;
pub mod spmd;

pub use cost::{CostLedger, SuperstepRecord};
pub use machine::{BspMachine, RunReport};
pub use params::{BspConfig, BspParams};
pub use report::{BspProcStats, BspReport, SuperstepProfile};
pub use process::{BspProcess, Status, SuperstepCtx};
pub use spmd::FnProcess;

//! BSP machine parameters.

use bvl_model::{ModelError, Steps};

/// The BSP parameter triple `(p, g, ℓ)` of §2.1.
///
/// * `1/g` is the available per-processor bandwidth: for large message sets
///   the medium delivers `p` messages every `g` time units.
/// * `ℓ` upper-bounds barrier synchronization time, and `g + ℓ` upper-bounds
///   the routing time of any partial permutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BspParams {
    /// Number of processors.
    pub p: usize,
    /// Bandwidth parameter `g` (time per message per processor at saturation).
    pub g: u64,
    /// Latency / synchronization parameter `ℓ`.
    pub l: u64,
}

impl BspParams {
    /// Validated constructor: `p ≥ 1`, `g ≥ 1`, `ℓ ≥ 1`.
    ///
    /// The model itself does not constrain `g` and `ℓ` beyond positivity
    /// (contrast with LogP's `max{2,o} ≤ G ≤ L`); correctness of BSP programs
    /// is parameter-independent.
    pub fn new(p: usize, g: u64, l: u64) -> Result<BspParams, ModelError> {
        if p == 0 {
            return Err(ModelError::InvalidParams("p must be >= 1".into()));
        }
        if g == 0 {
            return Err(ModelError::InvalidParams("g must be >= 1".into()));
        }
        if l == 0 {
            return Err(ModelError::InvalidParams("l must be >= 1".into()));
        }
        Ok(BspParams { p, g, l })
    }

    /// Cost of one superstep: `w + g·h + ℓ`.
    pub fn superstep_cost(&self, w: u64, h: u64) -> Steps {
        Steps(w + self.g * h + self.l)
    }
}

/// Execution options orthogonal to the model parameters.
#[derive(Clone, Copy, Debug, Default)]
pub struct BspConfig {
    /// Keep unread inbox messages across supersteps instead of discarding
    /// them at the communication phase. `false` is the paper-faithful
    /// behaviour ("the previous contents of the input pools, if any, are
    /// discarded").
    pub retain_unread: bool,
    /// Record machine events into the trace.
    pub trace: bool,
    /// Collect the full per-superstep, per-processor profile in
    /// [`crate::report::BspReport`] (grows with `p × supersteps`; the
    /// whole-run per-processor aggregates are always collected).
    pub profile: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params() {
        let p = BspParams::new(8, 4, 32).unwrap();
        assert_eq!(p.superstep_cost(10, 3), Steps(10 + 12 + 32));
    }

    #[test]
    fn zero_superstep_still_pays_barrier() {
        let p = BspParams::new(2, 1, 7).unwrap();
        assert_eq!(p.superstep_cost(0, 0), Steps(7));
    }

    #[test]
    fn rejects_degenerate() {
        assert!(BspParams::new(0, 1, 1).is_err());
        assert!(BspParams::new(1, 0, 1).is_err());
        assert!(BspParams::new(1, 1, 0).is_err());
    }
}

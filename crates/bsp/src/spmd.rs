//! SPMD convenience wrappers.

use crate::process::{BspProcess, Status, SuperstepCtx};

/// Boxed superstep closure of a [`FnProcess`].
type StepFn<S> = Box<dyn FnMut(&mut S, &mut SuperstepCtx<'_>) -> Status + Send>;

/// A [`BspProcess`] built from a state value and a superstep closure — the
/// idiomatic way to write SPMD programs without naming a struct per kernel.
///
/// ```
/// use bvl_bsp::{BspMachine, BspParams, FnProcess, Status};
/// use bvl_model::{Payload, ProcId};
///
/// let params = BspParams::new(4, 1, 8).unwrap();
/// let procs: Vec<_> = (0..4)
///     .map(|_| FnProcess::new(0i64, |sum, ctx| {
///         if ctx.superstep_index() == 0 {
///             let right = ProcId(((ctx.me().0 + 1) % 4) as u32);
///             ctx.send(right, Payload::word(0, ctx.me().0 as i64));
///             Status::Continue
///         } else {
///             *sum = ctx.recv().unwrap().payload.expect_word();
///             Status::Halt
///         }
///     }))
///     .collect();
/// let mut machine = BspMachine::new(params, procs);
/// machine.run(8).unwrap();
/// assert_eq!(*machine.process(0).state(), 3); // left neighbour's id
/// ```
pub struct FnProcess<S> {
    state: S,
    f: StepFn<S>,
}

impl<S: Send> FnProcess<S> {
    /// Wrap a state value and a superstep function.
    pub fn new(
        state: S,
        f: impl FnMut(&mut S, &mut SuperstepCtx<'_>) -> Status + Send + 'static,
    ) -> FnProcess<S> {
        FnProcess {
            state,
            f: Box::new(f),
        }
    }

    /// The process state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Consume into the state.
    pub fn into_state(self) -> S {
        self.state
    }
}

impl<S: Send> BspProcess for FnProcess<S> {
    fn superstep(&mut self, ctx: &mut SuperstepCtx<'_>) -> Status {
        (self.f)(&mut self.state, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::BspMachine;
    use crate::params::BspParams;

    #[test]
    fn fn_process_roundtrip() {
        let params = BspParams::new(2, 1, 1).unwrap();
        let procs: Vec<FnProcess<u32>> = (0..2)
            .map(|_| {
                FnProcess::new(0u32, |s, _ctx| {
                    *s += 1;
                    if *s == 3 {
                        Status::Halt
                    } else {
                        Status::Continue
                    }
                })
            })
            .collect();
        let mut m = BspMachine::new(params, procs);
        let report = m.run(10).unwrap();
        assert_eq!(report.supersteps, 3);
        assert_eq!(m.into_processes().pop().unwrap().into_state(), 3);
    }
}

//! The sequential superstep engine.

use crate::cost::{CostLedger, SuperstepRecord};
use crate::params::{BspConfig, BspParams};
use crate::process::BspProcess;
use crate::report::{BspReport, SuperstepProfile};
use bvl_exec::{drive, Executor, Instruments, RunOptions, RunOutcome, ShardPlan};
use bvl_model::trace::{Event, Trace};
use bvl_model::{Envelope, ModelError, MsgId, Payload, ProcId, Steps};
use bvl_obs::{Counter, CounterBlock, Hist, Span, SpanKind};

/// Outcome of a completed run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Number of supersteps executed.
    pub supersteps: u64,
    /// Total model cost `Σ (w + g·h + ℓ)`.
    pub cost: Steps,
    /// Per-superstep records.
    pub records: Vec<SuperstepRecord>,
    /// Per-processor (and optionally per-superstep) statistics.
    pub stats: BspReport,
}

/// A BSP machine holding `p` processes of type `P`.
///
/// The machine is generic over the process type so callers can recover final
/// process state without downcasting; heterogeneous programs use
/// `P = Box<dyn BspProcess>`.
pub struct BspMachine<P: BspProcess> {
    params: BspParams,
    config: BspConfig,
    procs: Vec<P>,
    inboxes: Vec<Vec<Envelope>>,
    // Recycled across supersteps: refilled by the local phase, drained by
    // the communication phase, allocation reused.
    outboxes: Vec<Vec<(ProcId, Payload)>>,
    halted: Vec<bool>,
    ledger: CostLedger,
    stats: BspReport,
    instruments: Instruments,
    // Driver-local counter staging (Some iff the registry records
    // counters); settled by `Registry::absorb_counters` when the run ends.
    // Per-processor traffic counters are not staged at all: they are
    // derived from `stats.per_proc` at the barrier, with `settled` marking
    // the totals already folded in so repeated runs never double-count.
    counters: Option<CounterBlock>,
    settled: Vec<(u64, u64, u64)>, // (local_ops, sent, received)
    superstep: u64,
    threads: usize,
    shards: usize,
    stream: Option<u64>,
}

impl<P: BspProcess> BspMachine<P> {
    /// Build a machine from parameters and one process per processor.
    ///
    /// # Panics
    /// If `procs.len() != params.p`.
    pub fn new(params: BspParams, procs: Vec<P>) -> BspMachine<P> {
        Self::with_config(params, BspConfig::default(), procs)
    }

    /// Build with explicit execution options.
    pub fn with_config(params: BspParams, config: BspConfig, procs: Vec<P>) -> BspMachine<P> {
        assert_eq!(procs.len(), params.p, "need exactly p processes");
        let p = params.p;
        BspMachine {
            params,
            config,
            procs,
            inboxes: vec![Vec::new(); p],
            outboxes: vec![Vec::new(); p],
            halted: vec![false; p],
            ledger: CostLedger::new(),
            stats: BspReport::new(p),
            instruments: Instruments::new(config.trace),
            counters: None,
            settled: Vec::new(),
            superstep: 0,
            threads: 1,
            shards: 1,
            stream: None,
        }
    }

    /// Run local computation phases on `n` OS threads (default 1). Results
    /// and costs are identical for every `n`; see [`crate::parallel`].
    pub fn set_threads(&mut self, n: usize) {
        self.threads = n.max(1);
    }

    /// Fan the communication phase out over `n` destination-partitioned
    /// worker shards (default 1). Message ids come from prefix sums over
    /// the outboxes and per-inbox push order is preserved, so results and
    /// traces are bit-identical for every `n` (DESIGN.md §13).
    pub fn set_shards(&mut self, n: usize) {
        self.shards = n.max(1);
    }

    /// The machine parameters.
    pub fn params(&self) -> &BspParams {
        &self.params
    }

    /// The cost ledger accumulated so far.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// The event trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &Trace {
        &self.instruments.trace
    }

    /// Apply shared [`RunOptions`]: attach the observability registry
    /// (per-processor counters, barrier-wait histograms, phase spans on
    /// the ledger clock — one branch per superstep when disabled), upgrade
    /// tracing, and set the local-phase worker-thread count.
    pub fn instrument(&mut self, opts: &RunOptions) {
        self.instruments.apply(opts);
        // Counters stage in a plain local block on the driver thread and
        // settle into the shared registry at the end-of-run barrier.
        self.counters = self.instruments.registry.counter_block();
        // The settle watermark only exists alongside an active block; at
        // lower tiers instrumentation must leave the machine's allocation
        // pattern untouched.
        self.settled = if self.counters.is_some() {
            vec![(0, 0, 0); self.params.p]
        } else {
            Vec::new()
        };
        self.threads = opts.threads.max(1);
        self.shards = self.shards.max(opts.shards);
        // Pseudo-streaming: charge each h-relation in ⌈h/window⌉ rounds.
        self.stream = opts.stream;
    }

    /// Per-processor statistics accumulated so far.
    pub fn stats(&self) -> &BspReport {
        &self.stats
    }

    /// Immutable access to a process (e.g. to read final state).
    pub fn process(&self, i: usize) -> &P {
        &self.procs[i]
    }

    /// Consume the machine, returning the processes.
    pub fn into_processes(self) -> Vec<P> {
        self.procs
    }

    /// True when every process has halted.
    pub fn all_halted(&self) -> bool {
        self.halted.iter().all(|&h| h)
    }

    /// Pre-load a message into a processor's input pool for superstep 0
    /// (test/bootstrap convenience; does not enter the cost ledger).
    pub fn preload(&mut self, dst: ProcId, payload: Payload) {
        let env = Envelope::new(dst, dst, payload);
        self.inboxes[dst.index()].push(env);
    }

    /// Execute one superstep. Returns its record, or `None` if the machine
    /// had already fully halted.
    pub fn step(&mut self) -> Option<SuperstepRecord> {
        if self.all_halted() {
            return None;
        }
        let p = self.params.p;
        let mut w_max = 0u64;
        let mut w_of = vec![0u64; p];
        let mut sent = vec![0u64; p];
        let mut recvd = vec![0u64; p];
        let t0 = self.ledger.total();

        // Local computation phase (sequential or multithreaded; identical
        // outcomes either way). Unread pool contents of non-retaining
        // machines are discarded inside the phase, per §2.1.
        let outcomes = crate::parallel::local_phase(
            &mut self.procs,
            &mut self.inboxes,
            &mut self.outboxes,
            &self.halted,
            self.superstep,
            self.config.retain_unread,
            self.threads,
        );
        for (i, outcome) in outcomes.into_iter().enumerate() {
            w_max = w_max.max(outcome.w);
            w_of[i] = outcome.w;
            sent[i] = self.outboxes[i].len() as u64;
            if outcome.halt {
                self.halted[i] = true;
            }
        }

        // Communication phase: deterministic delivery order (sender id, then
        // submission order at the sender). With shards > 1 the destinations
        // are partitioned across worker threads; prefix-summed message ids
        // and the preserved per-inbox push order keep the outcome
        // bit-identical to the sequential drain.
        if self.shards > 1 && p >= 2 {
            self.comm_phase_sharded(&mut recvd);
        } else {
            for i in 0..p {
                for (dst, payload) in self.outboxes[i].drain(..) {
                    recvd[dst.index()] += 1;
                    let id = self.instruments.alloc_msg_id();
                    let now = self.ledger.total();
                    let env = Envelope {
                        id,
                        src: ProcId::from(i),
                        dst,
                        payload,
                        submitted: now,
                        accepted: now,
                        delivered: now,
                    };
                    self.instruments.trace.record(Event::Submit {
                        at: now,
                        proc: ProcId::from(i),
                        msg: id,
                        dst,
                    });
                    self.inboxes[dst.index()].push(env);
                }
            }
        }

        let h = sent
            .iter()
            .zip(recvd.iter())
            .map(|(&s, &r)| s.max(r))
            .max()
            .unwrap_or(0);
        let rec = match self.stream {
            Some(window) => self.ledger.charge_streamed(&self.params, w_max, h, window),
            None => self.ledger.charge(&self.params, w_max, h),
        };
        self.instruments.trace.record(Event::Superstep {
            index: rec.index,
            w: rec.w,
            h: rec.h,
            cost: rec.cost,
        });
        for i in 0..p {
            let st = &mut self.stats.per_proc[i];
            st.local_ops += w_of[i];
            st.sent += sent[i];
            st.received += recvd[i];
            st.barrier_wait += Steps(w_max - w_of[i]);
        }
        // Histograms need the individual observations (unlike the traffic
        // counters, which the barrier flush derives from the stats totals),
        // so stage the superstep's barrier waits as one batch while the
        // values are hot.
        if let Some(cb) = &mut self.counters {
            cb.observe_many(Hist::BarrierWait, w_of.iter().map(|&w| w_max - w));
        }
        if self.config.profile {
            self.stats.profile.push(SuperstepProfile {
                index: rec.index,
                w: w_of.clone(),
                sent: sent.clone(),
                received: recvd.clone(),
            });
        }
        if self.instruments.registry.is_enabled() {
            self.observe_superstep(&rec, t0, w_max, &w_of);
        }
        self.superstep += 1;
        Some(rec)
    }

    /// The destination-partitioned communication phase. Each worker shard
    /// owns a contiguous block of inboxes, scans every outbox in (sender,
    /// submission) order and keeps only messages bound for its block, so
    /// each inbox receives exactly the sequence the sequential drain would
    /// have pushed. Message ids are precomputed from prefix sums over the
    /// outbox lengths — the id the sequential `alloc_msg_id` loop would
    /// have allocated — and Submit events are traced in one sender-order
    /// pass, so the trace, the ids and the inbox contents are all
    /// bit-identical at any shard count.
    fn comm_phase_sharded(&mut self, recvd: &mut [u64]) {
        let p = self.params.p;
        let plan = ShardPlan::new(p, self.shards);
        let now = self.ledger.total();
        let mut bases = Vec::with_capacity(p);
        let mut total = 0u64;
        for ob in &self.outboxes {
            bases.push(total);
            total += ob.len() as u64;
        }
        let first = self.instruments.alloc_msg_id_block(total).0;
        if self.instruments.trace.is_enabled() {
            for (i, ob) in self.outboxes.iter().enumerate() {
                for (j, &(dst, _)) in ob.iter().enumerate() {
                    self.instruments.trace.record(Event::Submit {
                        at: now,
                        proc: ProcId::from(i),
                        msg: MsgId(first + bases[i] + j as u64),
                        dst,
                    });
                }
            }
        }
        let outboxes = &self.outboxes;
        let bases = &bases;
        let mut inbox_blocks: Vec<&mut [Vec<Envelope>]> = Vec::with_capacity(plan.shards());
        let mut recvd_blocks: Vec<&mut [u64]> = Vec::with_capacity(plan.shards());
        let mut inbox_rest: &mut [Vec<Envelope>] = &mut self.inboxes;
        let mut recvd_rest: &mut [u64] = recvd;
        for s in 0..plan.shards() {
            let len = plan.range(s).len();
            let (ib, it) = inbox_rest.split_at_mut(len);
            let (rb, rt) = recvd_rest.split_at_mut(len);
            inbox_blocks.push(ib);
            recvd_blocks.push(rb);
            inbox_rest = it;
            recvd_rest = rt;
        }
        std::thread::scope(|scope| {
            for (s, (inboxes, recvd)) in
                inbox_blocks.into_iter().zip(recvd_blocks).enumerate()
            {
                let range = plan.range(s);
                scope.spawn(move || {
                    for (i, ob) in outboxes.iter().enumerate() {
                        for (j, (dst, payload)) in ob.iter().enumerate() {
                            let d = dst.index();
                            if range.contains(&d) {
                                recvd[d - range.start] += 1;
                                inboxes[d - range.start].push(Envelope {
                                    id: MsgId(first + bases[i] + j as u64),
                                    src: ProcId::from(i),
                                    dst: *dst,
                                    payload: payload.clone(),
                                    submitted: now,
                                    accepted: now,
                                    delivered: now,
                                });
                            }
                        }
                    }
                });
            }
        });
        for ob in &mut self.outboxes {
            ob.clear();
        }
    }

    /// Feed the registry for one completed superstep (only called when the
    /// registry is enabled). Counters stage in the driver-local block;
    /// spans are placed on the ledger clock — local work at `[t0, t0+w_i]`,
    /// barrier wait up to `t0+w_max`, routing for `g·h` after the slowest
    /// worker, the whole superstep over its cost — and are not even
    /// constructed below the `Sampled` tier.
    fn observe_superstep(&mut self, rec: &SuperstepRecord, t0: Steps, w_max: u64, w_of: &[u64]) {
        let registry = &self.instruments.registry;
        let spans_on = registry.spans_enabled();
        // Per-processor traffic counters are *not* staged here: the stats
        // loop in `superstep` already accumulated the same totals (and the
        // BarrierWait observations), and the barrier flush derives the
        // counter adds from them.
        if let Some(cb) = &mut self.counters {
            cb.observe(Hist::SuperstepCost, rec.cost.get());
        }
        // Phase-granular sampling: this engine emits every span of a
        // superstep at its barrier, so one admission decision (keyed on the
        // superstep index — shard- and thread-invariant) covers the whole
        // burst, and a rejected superstep never constructs a span at all.
        if spans_on && registry.admits_phase(rec.index) {
            for (i, &w_i) in w_of.iter().enumerate() {
                let proc = ProcId::from(i);
                registry.span_admitted(Span::new(SpanKind::LocalWork, t0, t0 + Steps(w_i)).on(proc));
                if w_i < w_max {
                    registry.span_admitted(
                        Span::new(SpanKind::BarrierWait, t0 + Steps(w_i), t0 + Steps(w_max))
                            .on(proc),
                    );
                }
            }
            let comm_start = t0 + Steps(w_max);
            if rec.h > 0 {
                registry.span_admitted(
                    Span::new(
                        SpanKind::Routing,
                        comm_start,
                        comm_start + Steps(self.params.g * rec.h),
                    )
                    .at_index(rec.index),
                );
            }
            registry
                .span_admitted(Span::new(SpanKind::Superstep, t0, t0 + rec.cost).at_index(rec.index));
            // The superstep boundary is this engine's phase barrier:
            // serialize the spans staged in the registry ring in one batch
            // here, so the per-processor loop above never touches the sink
            // lock.
            registry.flush_spans();
        }
    }

    /// Run until every process halts, or fail with [`ModelError::Timeout`]
    /// after `max_supersteps`. Equivalent to [`bvl_exec::drive`] with a
    /// superstep budget, followed by assembling the [`RunReport`].
    pub fn run(&mut self, max_supersteps: u64) -> Result<RunReport, ModelError> {
        let driven = drive(self, max_supersteps);
        // End-of-run barrier: settle the staged counters whether the run
        // completed or timed out — a partial run still has real totals.
        // Traffic counters come straight from the per-processor stats; the
        // `settled` watermark keeps a second `run` call from re-adding them.
        if let Some(cb) = &mut self.counters {
            for (i, st) in self.stats.per_proc.iter().enumerate() {
                let proc = ProcId::from(i);
                let done = &mut self.settled[i];
                cb.add(proc, Counter::LocalOps, st.local_ops - done.0);
                cb.add(proc, Counter::Submitted, st.sent - done.1);
                cb.add(proc, Counter::Delivered, st.received - done.2);
                *done = (st.local_ops, st.sent, st.received);
            }
            self.instruments.registry.absorb_counters(cb);
        }
        driven?;
        Ok(RunReport {
            supersteps: self.ledger.supersteps(),
            cost: self.ledger.total(),
            records: self.ledger.records().to_vec(),
            stats: self.stats.clone(),
        })
    }
}

impl<P: BspProcess> Executor for BspMachine<P> {
    /// Execute one superstep; `Ok(false)` once every process has halted.
    fn step(&mut self) -> Result<bool, ModelError> {
        Ok(BspMachine::step(self).is_some())
    }

    fn halted(&self) -> bool {
        self.all_halted()
    }

    fn outcome(&self) -> RunOutcome {
        RunOutcome {
            makespan: self.ledger.total(),
            delivered: self.stats.per_proc.iter().map(|s| s.received).sum(),
            work: self.ledger.supersteps(),
            halted: self.all_halted(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Status;
    use crate::spmd::FnProcess;

    /// Each processor sends its id to processor 0; processor 0 sums what it
    /// receives in the next superstep.
    fn gather_machine(p: usize, g: u64, l: u64) -> BspMachine<FnProcess<i64>> {
        let params = BspParams::new(p, g, l).unwrap();
        let procs: Vec<FnProcess<i64>> = (0..p)
            .map(|_| {
                FnProcess::new(0i64, move |state, ctx| match ctx.superstep_index() {
                    0 => {
                        ctx.send(ProcId(0), Payload::word(0, ctx.me().0 as i64));
                        Status::Continue
                    }
                    1 => {
                        if ctx.me().0 == 0 {
                            while let Some(m) = ctx.recv() {
                                *state += m.payload.expect_word();
                            }
                        }
                        Status::Halt
                    }
                    _ => unreachable!(),
                })
            })
            .collect();
        BspMachine::new(params, procs)
    }

    #[test]
    fn gather_sums_all_ids() {
        let mut m = gather_machine(8, 2, 16);
        let report = m.run(10).unwrap();
        assert_eq!(report.supersteps, 2);
        assert_eq!(*m.process(0).state(), (0..8).sum::<i64>());
        // Superstep 0: w = 1 send per proc, h = max(1 sent, 8 received) = 8.
        assert_eq!(report.records[0].h, 8);
        assert_eq!(report.records[0].w, 1);
        // Superstep 1: no communication, and extracting messages from the
        // input pool is not charged as local work (h already priced it).
        assert_eq!(report.records[1].h, 0);
        assert_eq!(report.records[1].w, 0);
        assert_eq!(report.cost, Steps((1 + 2 * 8 + 16) + 16));
    }

    #[test]
    fn streaming_adds_rounds_but_not_results() {
        // Same gather, streamed through a window of 3: superstep 0's
        // h-relation (h = 8) routes in ⌈8/3⌉ = 3 rounds → 2 extra ℓ.
        let mut m = gather_machine(8, 2, 16);
        m.instrument(&RunOptions::new().streamed(3));
        let report = m.run(10).unwrap();
        assert_eq!(*m.process(0).state(), (0..8).sum::<i64>());
        assert_eq!(report.records[0].h, 8, "the relation itself is unchanged");
        assert_eq!(report.cost, Steps((1 + 2 * 8 + 3 * 16) + 16));
        assert_eq!(m.ledger().sync_rounds(), 4);
        // A window ≥ h reproduces the classical cost exactly.
        let mut wide = gather_machine(8, 2, 16);
        wide.instrument(&RunOptions::new().streamed(64));
        assert_eq!(wide.run(10).unwrap().cost, Steps((1 + 2 * 8 + 16) + 16));
    }

    #[test]
    fn parameters_do_not_affect_results() {
        let mut a = gather_machine(8, 1, 1);
        let mut b = gather_machine(8, 50, 1000);
        a.run(10).unwrap();
        b.run(10).unwrap();
        assert_eq!(a.process(0).state(), b.process(0).state());
    }

    #[test]
    fn messages_arrive_next_superstep_not_same() {
        let params = BspParams::new(2, 1, 1).unwrap();
        let procs: Vec<FnProcess<Vec<usize>>> = (0..2)
            .map(|_| {
                FnProcess::new(Vec::new(), move |seen, ctx| {
                    seen.push(ctx.inbox_len());
                    if ctx.superstep_index() == 0 && ctx.me().0 == 1 {
                        ctx.send(ProcId(0), Payload::tagged(0));
                    }
                    if ctx.superstep_index() >= 1 {
                        Status::Halt
                    } else {
                        Status::Continue
                    }
                })
            })
            .collect();
        let mut m = BspMachine::new(params, procs);
        m.run(10).unwrap();
        // P0 sees nothing in superstep 0, one message in superstep 1.
        assert_eq!(m.process(0).state(), &vec![0, 1]);
    }

    #[test]
    fn unread_messages_are_discarded_by_default() {
        let params = BspParams::new(2, 1, 1).unwrap();
        let procs: Vec<FnProcess<usize>> = (0..2)
            .map(|_| {
                FnProcess::new(0usize, move |got, ctx| {
                    if ctx.me().0 == 1 && ctx.superstep_index() == 0 {
                        ctx.send(ProcId(0), Payload::tagged(0));
                    }
                    if ctx.superstep_index() == 2 {
                        *got = ctx.inbox_len();
                        return Status::Halt;
                    }
                    // Superstep 1: P0 deliberately does not read its inbox.
                    Status::Continue
                })
            })
            .collect();
        let mut m = BspMachine::new(params, procs);
        m.run(10).unwrap();
        assert_eq!(*m.process(0).state(), 0, "pool must be discarded");
    }

    #[test]
    fn retain_unread_keeps_messages() {
        let params = BspParams::new(2, 1, 1).unwrap();
        let config = BspConfig {
            retain_unread: true,
            ..BspConfig::default()
        };
        let procs: Vec<FnProcess<usize>> = (0..2)
            .map(|_| {
                FnProcess::new(0usize, move |got, ctx| {
                    if ctx.me().0 == 1 && ctx.superstep_index() == 0 {
                        ctx.send(ProcId(0), Payload::tagged(0));
                    }
                    if ctx.superstep_index() == 2 {
                        *got = ctx.inbox_len();
                        return Status::Halt;
                    }
                    Status::Continue
                })
            })
            .collect();
        let mut m = BspMachine::with_config(params, config, procs);
        m.run(10).unwrap();
        assert_eq!(*m.process(0).state(), 1);
    }

    #[test]
    fn timeout_on_nonhalting_program() {
        let params = BspParams::new(2, 1, 1).unwrap();
        let procs: Vec<FnProcess<()>> =
            (0..2).map(|_| FnProcess::new((), |_, _| Status::Continue)).collect();
        let mut m = BspMachine::new(params, procs);
        assert!(matches!(m.run(5), Err(ModelError::Timeout { budget: 5 })));
    }

    #[test]
    fn step_after_halt_returns_none() {
        let params = BspParams::new(1, 1, 1).unwrap();
        let mut m = BspMachine::new(params, vec![FnProcess::new((), |_, _| Status::Halt)]);
        assert!(m.step().is_some());
        assert!(m.step().is_none());
        assert!(m.all_halted());
    }

    #[test]
    fn sharded_comm_phase_is_bit_identical() {
        // Dense, uneven traffic: every processor sends to several others,
        // with message ids and delivery order observable through the trace.
        let build = |shards: usize| {
            let params = BspParams::new(12, 2, 8).unwrap();
            let config = BspConfig {
                trace: true,
                ..BspConfig::default()
            };
            let procs: Vec<FnProcess<i64>> = (0..12)
                .map(|_| {
                    FnProcess::new(0i64, move |acc, ctx| {
                        let p = ctx.p();
                        let me = ctx.me().index();
                        if ctx.superstep_index() > 0 {
                            while let Some(m) = ctx.recv() {
                                *acc = acc.wrapping_mul(131) + m.payload.expect_word()
                                    + m.id.0 as i64;
                            }
                        }
                        if ctx.superstep_index() < 4 {
                            for q in 0..(me % 4) {
                                let dst = ProcId::from((me * 5 + q * 3 + 1) % p);
                                ctx.send(dst, Payload::word(0, (me * 100 + q) as i64));
                            }
                            Status::Continue
                        } else {
                            Status::Halt
                        }
                    })
                })
                .collect();
            let mut m = BspMachine::with_config(params, config, procs);
            m.set_shards(shards);
            m
        };
        let mut solo = build(1);
        let rep1 = solo.run(10).unwrap();
        for shards in [2, 4, 5] {
            let mut m = build(shards);
            let rep = m.run(10).unwrap();
            assert_eq!(rep.cost, rep1.cost);
            assert_eq!(
                format!("{:?}", m.trace().events()),
                format!("{:?}", solo.trace().events()),
                "trace diverged at {shards} shards"
            );
            for i in 0..12 {
                assert_eq!(m.process(i).state(), solo.process(i).state());
            }
        }
    }

    #[test]
    fn delivery_order_is_by_sender_then_submission() {
        let params = BspParams::new(4, 1, 1).unwrap();
        let procs: Vec<FnProcess<Vec<i64>>> = (0..4)
            .map(|_| {
                FnProcess::new(Vec::new(), move |order, ctx| match ctx.superstep_index() {
                    0 => {
                        if ctx.me().0 != 0 {
                            // Two messages each, to exercise within-sender order.
                            ctx.send(ProcId(0), Payload::word(0, (ctx.me().0 * 10) as i64));
                            ctx.send(ProcId(0), Payload::word(0, (ctx.me().0 * 10 + 1) as i64));
                        }
                        Status::Continue
                    }
                    _ => {
                        if ctx.me().0 == 0 {
                            while let Some(m) = ctx.recv() {
                                order.push(m.payload.expect_word());
                            }
                        }
                        Status::Halt
                    }
                })
            })
            .collect();
        let mut m = BspMachine::new(params, procs);
        m.run(10).unwrap();
        assert_eq!(m.process(0).state(), &vec![10, 11, 20, 21, 30, 31]);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::params::BspConfig;
    use crate::process::Status;
    use crate::spmd::FnProcess;
    use bvl_model::trace::Event;

    #[test]
    fn traced_machine_records_submits_and_supersteps() {
        let params = BspParams::new(2, 1, 4).unwrap();
        let config = BspConfig {
            trace: true,
            ..BspConfig::default()
        };
        let procs: Vec<FnProcess<()>> = (0..2)
            .map(|_| {
                FnProcess::new((), |_, ctx| {
                    if ctx.superstep_index() == 0 {
                        let other = ProcId(1 - ctx.me().0);
                        ctx.send(other, Payload::tagged(0));
                        Status::Continue
                    } else {
                        Status::Halt
                    }
                })
            })
            .collect();
        let mut m = BspMachine::with_config(params, config, procs);
        m.run(4).unwrap();
        let submits = m.trace().filter(|e| matches!(e, Event::Submit { .. })).count();
        let steps = m.trace().filter(|e| matches!(e, Event::Superstep { .. })).count();
        assert_eq!(submits, 2);
        assert_eq!(steps, 2);
    }

    #[test]
    fn untraced_machine_records_nothing() {
        let params = BspParams::new(1, 1, 1).unwrap();
        let mut m = BspMachine::new(params, vec![FnProcess::new((), |_, _| Status::Halt)]);
        m.run(2).unwrap();
        assert!(m.trace().events().is_empty());
    }

    #[test]
    fn preload_feeds_superstep_zero() {
        let params = BspParams::new(1, 1, 1).unwrap();
        let procs = vec![FnProcess::new(0i64, |got, ctx| {
            *got = ctx.recv().map(|m| m.payload.expect_word()).unwrap_or(-1);
            Status::Halt
        })];
        let mut m = BspMachine::new(params, procs);
        m.preload(ProcId(0), Payload::word(0, 77));
        m.run(2).unwrap();
        assert_eq!(*m.process(0).state(), 77);
    }

    #[test]
    fn stats_and_registry_track_supersteps() {
        use bvl_obs::{Counter, Hist, Registry, SpanKind};
        let params = BspParams::new(4, 2, 8).unwrap();
        let config = BspConfig {
            profile: true,
            ..BspConfig::default()
        };
        // P1..P3 each send one message to P0 and charge their id as work.
        let procs: Vec<FnProcess<()>> = (0..4)
            .map(|_| {
                FnProcess::new((), move |_, ctx| {
                    if ctx.superstep_index() == 0 {
                        ctx.charge(ctx.me().0 as u64);
                        if ctx.me().0 != 0 {
                            ctx.send(ProcId(0), Payload::tagged(0));
                        }
                        Status::Continue
                    } else {
                        Status::Halt
                    }
                })
            })
            .collect();
        let mut m = BspMachine::with_config(params, config, procs);
        let reg = Registry::enabled(4);
        m.instrument(&RunOptions::new().registry(&reg));
        let report = m.run(4).unwrap();

        // Superstep 0: a send charges one local op, so w = [0,2,3,4]
        // (charge(id) + 1 for the send) → w_max 4; sent = [0,1,1,1]; h = 3.
        let st = &report.stats.per_proc;
        assert_eq!(st[3].local_ops, 4);
        assert_eq!(st[0].barrier_wait, Steps(4), "P0 waits out w_max");
        assert_eq!(st[0].received, 3);
        assert_eq!(st[2].sent, 1);
        assert_eq!(report.stats.total_sent(), 3);
        assert_eq!(report.stats.busiest(), Some(ProcId(3)));
        assert_eq!(report.stats.profile.len(), 2);
        assert_eq!(report.stats.profile[0].h(), 3);

        // Registry saw the same totals, and spans landed on the ledger clock.
        assert_eq!(reg.counter(Counter::LocalOps), 9);
        assert_eq!(reg.counter(Counter::Submitted), 3);
        assert_eq!(reg.counter(Counter::Delivered), 3);
        assert_eq!(reg.histogram(Hist::SuperstepCost).count, 2);
        let spans = reg.spans();
        let supersteps: Vec<_> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Superstep)
            .collect();
        assert_eq!(supersteps.len(), 2);
        assert_eq!(supersteps[0].start, Steps::ZERO);
        assert_eq!(supersteps[0].end, Steps(4 + 2 * 3 + 8));
        assert_eq!(supersteps[1].start, supersteps[0].end);
        assert!(spans.iter().any(|s| s.kind == SpanKind::BarrierWait));
        assert!(spans.iter().any(|s| s.kind == SpanKind::Routing));
    }

    #[test]
    fn attribution_residual_is_zero() {
        // Same shape as `gather_machine` in the sibling module: every
        // processor sends its id to P0, which sums in superstep 1.
        let params = BspParams::new(8, 2, 16).unwrap();
        let procs: Vec<FnProcess<()>> = (0..8)
            .map(|_| {
                FnProcess::new((), move |_, ctx| {
                    if ctx.superstep_index() == 0 {
                        ctx.send(ProcId(0), Payload::word(0, ctx.me().0 as i64));
                        Status::Continue
                    } else {
                        Status::Halt
                    }
                })
            })
            .collect();
        let mut m = BspMachine::new(params, procs);
        m.run(10).unwrap();
        let rep = m.ledger().attribution(m.params(), "gather");
        assert_eq!(rep.makespan, m.ledger().total());
        assert_eq!(rep.residual(), 0);
        assert_eq!(rep.work, Steps(1));
        assert_eq!(rep.comm, Steps(2 * 8));
        assert_eq!(rep.sync, Steps(2 * 16));
    }

    #[test]
    fn ledger_accessible_mid_run() {
        let params = BspParams::new(2, 3, 5).unwrap();
        let procs: Vec<FnProcess<()>> = (0..2)
            .map(|_| {
                FnProcess::new((), |_, ctx| {
                    ctx.charge(2);
                    if ctx.superstep_index() >= 2 {
                        Status::Halt
                    } else {
                        Status::Continue
                    }
                })
            })
            .collect();
        let mut m = BspMachine::new(params, procs);
        m.step();
        assert_eq!(m.ledger().supersteps(), 1);
        assert_eq!(m.ledger().total(), Steps(2 + 5));
        assert!(!m.all_halted());
        m.run(10).unwrap();
        assert_eq!(m.ledger().supersteps(), 3);
    }
}

//! Per-processor and per-superstep run statistics.
//!
//! Symmetric to `bvl_logp`'s `LogpReport`: where the LogP engine reports
//! busy/stall/buffer occupancy per processor, the BSP engine reports local
//! operations, messages sent/received, and barrier wait — the time a
//! processor idles at the end-of-superstep barrier while the slowest peer
//! (`w_max`) finishes. Aggregates are always collected (they cost one
//! `p`-sized pass per superstep); the full per-superstep profile is opt-in
//! via `BspConfig::profile` because it grows with `p × supersteps`.

use bvl_model::{ProcId, Steps};

/// Whole-run totals for one processor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BspProcStats {
    /// Local operations executed across all supersteps.
    pub local_ops: u64,
    /// Messages this processor sent.
    pub sent: u64,
    /// Messages delivered to this processor.
    pub received: u64,
    /// Total time spent waiting at barriers (`Σ (w_max - w_i)` over
    /// supersteps; a halted processor waits out the whole `w_max`).
    pub barrier_wait: Steps,
}

/// One superstep's per-processor profile (opt-in via `BspConfig::profile`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SuperstepProfile {
    /// Superstep index.
    pub index: u64,
    /// Local work per processor.
    pub w: Vec<u64>,
    /// Messages sent per processor.
    pub sent: Vec<u64>,
    /// Messages received per processor.
    pub received: Vec<u64>,
}

impl SuperstepProfile {
    /// The superstep's `h`: max over processors of messages sent or received.
    pub fn h(&self) -> u64 {
        self.sent
            .iter()
            .zip(self.received.iter())
            .map(|(&s, &r)| s.max(r))
            .max()
            .unwrap_or(0)
    }
}

/// Per-processor (and optionally per-superstep) statistics of a BSP run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BspReport {
    /// Whole-run totals, indexed by processor.
    pub per_proc: Vec<BspProcStats>,
    /// Per-superstep profiles; empty unless `BspConfig::profile` was set.
    pub profile: Vec<SuperstepProfile>,
}

impl BspReport {
    /// An empty report sized for `p` processors.
    pub fn new(p: usize) -> BspReport {
        BspReport {
            per_proc: vec![BspProcStats::default(); p],
            profile: Vec::new(),
        }
    }

    /// Total barrier wait summed over all processors.
    pub fn total_barrier_wait(&self) -> Steps {
        self.per_proc.iter().map(|s| s.barrier_wait).sum()
    }

    /// Total messages sent (equals total received).
    pub fn total_sent(&self) -> u64 {
        self.per_proc.iter().map(|s| s.sent).sum()
    }

    /// The processor with the largest whole-run local-operation count.
    pub fn busiest(&self) -> Option<ProcId> {
        self.per_proc
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.local_ops)
            .map(|(i, _)| ProcId::from(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_and_busiest() {
        let mut r = BspReport::new(3);
        r.per_proc[0].local_ops = 5;
        r.per_proc[0].sent = 2;
        r.per_proc[1].local_ops = 9;
        r.per_proc[1].barrier_wait = Steps(4);
        r.per_proc[2].sent = 1;
        r.per_proc[2].barrier_wait = Steps(6);
        assert_eq!(r.total_barrier_wait(), Steps(10));
        assert_eq!(r.total_sent(), 3);
        assert_eq!(r.busiest(), Some(ProcId(1)));
    }

    #[test]
    fn profile_degree() {
        let prof = SuperstepProfile {
            index: 0,
            w: vec![1, 2],
            sent: vec![3, 0],
            received: vec![1, 2],
        };
        assert_eq!(prof.h(), 3);
    }
}

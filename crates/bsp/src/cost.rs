//! Cost accounting: the `w + g·h + ℓ` ledger.

use crate::params::BspParams;
use bvl_model::Steps;
use bvl_obs::CostReport;

/// The cost-relevant summary of one executed superstep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuperstepRecord {
    /// Superstep index.
    pub index: u64,
    /// Maximum local work at any processor (`w`).
    pub w: u64,
    /// Degree of the routed relation (`h` = max messages sent or received by
    /// any processor).
    pub h: u64,
    /// `w + g·h + ℓ`.
    pub cost: Steps,
}

/// Accumulated cost over a run.
#[derive(Clone, Debug, Default)]
pub struct CostLedger {
    records: Vec<SuperstepRecord>,
    total: Steps,
    extra_rounds: u64,
}

impl CostLedger {
    /// Empty ledger.
    pub fn new() -> CostLedger {
        CostLedger::default()
    }

    /// Append the record for a completed superstep.
    pub fn charge(&mut self, params: &BspParams, w: u64, h: u64) -> SuperstepRecord {
        let cost = params.superstep_cost(w, h);
        self.push(w, h, cost)
    }

    /// Append the record for a completed superstep whose h-relation was
    /// streamed through a working set of at most `window` messages per
    /// processor (Buurlage-style pseudo-streaming): the relation routes in
    /// `⌈h/window⌉` rounds, each closed by its own synchronization, so the
    /// superstep costs `w + g·h + ℓ·max(1, ⌈h/window⌉)`. The extra rounds
    /// accumulate into [`CostLedger::sync_rounds`] so the attribution
    /// stays zero-residual.
    pub fn charge_streamed(
        &mut self,
        params: &BspParams,
        w: u64,
        h: u64,
        window: u64,
    ) -> SuperstepRecord {
        let rounds = h.div_ceil(window.max(1)).max(1);
        let cost = params.superstep_cost(w, h) + Steps(params.l * (rounds - 1));
        self.extra_rounds += rounds - 1;
        self.push(w, h, cost)
    }

    fn push(&mut self, w: u64, h: u64, cost: Steps) -> SuperstepRecord {
        let rec = SuperstepRecord {
            index: self.records.len() as u64,
            w,
            h,
            cost,
        };
        self.records.push(rec);
        self.total += cost;
        rec
    }

    /// Total cost so far (sum over superstep costs, per §2.1).
    pub fn total(&self) -> Steps {
        self.total
    }

    /// Number of supersteps charged.
    pub fn supersteps(&self) -> u64 {
        self.records.len() as u64
    }

    /// Number of synchronization rounds paid for: one per superstep plus
    /// the extra streaming rounds from [`CostLedger::charge_streamed`].
    /// Equal to [`CostLedger::supersteps`] for classical (non-streamed)
    /// runs.
    pub fn sync_rounds(&self) -> u64 {
        self.records.len() as u64 + self.extra_rounds
    }

    /// Per-superstep records.
    pub fn records(&self) -> &[SuperstepRecord] {
        &self.records
    }

    /// Sum of `w` terms — the pure computation part of the total.
    pub fn total_work(&self) -> u64 {
        self.records.iter().map(|r| r.w).sum()
    }

    /// Sum of `h` terms — total per-superstep relation degrees.
    pub fn total_h(&self) -> u64 {
        self.records.iter().map(|r| r.h).sum()
    }

    /// Attribute the ledger total onto the native BSP cost terms:
    /// `work = Σ w`, `comm = Σ g·h`, `sync = sync_rounds · ℓ` (one round
    /// per superstep, plus any extra streaming rounds). The ledger charges
    /// exactly `w + g·h + ℓ` per synchronization round, so the residual of
    /// the returned report is exactly zero — this is the ground truth the
    /// cross-simulation attributions are compared against.
    pub fn attribution(&self, params: &BspParams, label: &str) -> CostReport {
        CostReport {
            label: label.to_string(),
            makespan: self.total(),
            work: Steps(self.total_work()),
            comm: Steps(params.g * self.total_h()),
            sync: Steps(params.l * self.sync_rounds()),
            stall: Steps::ZERO,
            other: Steps::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates() {
        let p = BspParams::new(4, 2, 10).unwrap();
        let mut led = CostLedger::new();
        let r0 = led.charge(&p, 5, 3);
        assert_eq!(r0.cost, Steps(5 + 6 + 10));
        led.charge(&p, 0, 0);
        assert_eq!(led.supersteps(), 2);
        assert_eq!(led.total(), Steps(21 + 10));
        assert_eq!(led.total_work(), 5);
        assert_eq!(led.total_h(), 3);
        assert_eq!(led.records()[1].index, 1);
        assert_eq!(led.sync_rounds(), 2, "no streaming: one round per superstep");
    }

    #[test]
    fn streamed_charge_pays_one_l_per_round() {
        let p = BspParams::new(4, 2, 10).unwrap();
        let mut led = CostLedger::new();
        // h=7 through window 3 → ⌈7/3⌉ = 3 rounds → 2 extra ℓ.
        let rec = led.charge_streamed(&p, 5, 7, 3);
        assert_eq!(rec.cost, Steps(5 + 2 * 7 + 3 * 10));
        assert_eq!(led.sync_rounds(), 3);
        assert_eq!(led.supersteps(), 1);
        // h=0 still pays exactly one ℓ (a pure-compute superstep).
        let rec0 = led.charge_streamed(&p, 4, 0, 3);
        assert_eq!(rec0.cost, Steps(4 + 10));
        assert_eq!(led.sync_rounds(), 4);
        // Window ≥ h collapses to the classical charge.
        let mut classic = CostLedger::new();
        let a = classic.charge(&p, 5, 7);
        let mut wide = CostLedger::new();
        let b = wide.charge_streamed(&p, 5, 7, 100);
        assert_eq!(a.cost, b.cost);
        // Attribution stays zero-residual under streaming.
        let rep = led.attribution(&p, "streamed");
        assert_eq!(
            rep.makespan,
            rep.work + rep.comm + rep.sync,
            "work + comm + sync must account for the full streamed total"
        );
    }
}

//! Cost accounting: the `w + g·h + ℓ` ledger.

use crate::params::BspParams;
use bvl_model::Steps;
use bvl_obs::CostReport;

/// The cost-relevant summary of one executed superstep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuperstepRecord {
    /// Superstep index.
    pub index: u64,
    /// Maximum local work at any processor (`w`).
    pub w: u64,
    /// Degree of the routed relation (`h` = max messages sent or received by
    /// any processor).
    pub h: u64,
    /// `w + g·h + ℓ`.
    pub cost: Steps,
}

/// Accumulated cost over a run.
#[derive(Clone, Debug, Default)]
pub struct CostLedger {
    records: Vec<SuperstepRecord>,
    total: Steps,
}

impl CostLedger {
    /// Empty ledger.
    pub fn new() -> CostLedger {
        CostLedger::default()
    }

    /// Append the record for a completed superstep.
    pub fn charge(&mut self, params: &BspParams, w: u64, h: u64) -> SuperstepRecord {
        let cost = params.superstep_cost(w, h);
        let rec = SuperstepRecord {
            index: self.records.len() as u64,
            w,
            h,
            cost,
        };
        self.records.push(rec);
        self.total += cost;
        rec
    }

    /// Total cost so far (sum over superstep costs, per §2.1).
    pub fn total(&self) -> Steps {
        self.total
    }

    /// Number of supersteps charged.
    pub fn supersteps(&self) -> u64 {
        self.records.len() as u64
    }

    /// Per-superstep records.
    pub fn records(&self) -> &[SuperstepRecord] {
        &self.records
    }

    /// Sum of `w` terms — the pure computation part of the total.
    pub fn total_work(&self) -> u64 {
        self.records.iter().map(|r| r.w).sum()
    }

    /// Sum of `h` terms — total per-superstep relation degrees.
    pub fn total_h(&self) -> u64 {
        self.records.iter().map(|r| r.h).sum()
    }

    /// Attribute the ledger total onto the native BSP cost terms:
    /// `work = Σ w`, `comm = Σ g·h`, `sync = supersteps · ℓ`. The ledger
    /// charges exactly `w + g·h + ℓ` per superstep, so the residual of the
    /// returned report is exactly zero — this is the ground truth the
    /// cross-simulation attributions are compared against.
    pub fn attribution(&self, params: &BspParams, label: &str) -> CostReport {
        CostReport {
            label: label.to_string(),
            makespan: self.total(),
            work: Steps(self.total_work()),
            comm: Steps(params.g * self.total_h()),
            sync: Steps(params.l * self.supersteps()),
            stall: Steps::ZERO,
            other: Steps::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates() {
        let p = BspParams::new(4, 2, 10).unwrap();
        let mut led = CostLedger::new();
        let r0 = led.charge(&p, 5, 3);
        assert_eq!(r0.cost, Steps(5 + 6 + 10));
        led.charge(&p, 0, 0);
        assert_eq!(led.supersteps(), 2);
        assert_eq!(led.total(), Steps(21 + 10));
        assert_eq!(led.total_work(), 5);
        assert_eq!(led.total_h(), 3);
        assert_eq!(led.records()[1].index, 1);
    }
}

//! The BSP programming interface.

use bvl_model::{Envelope, Payload, ProcId};

/// What a process wants after finishing a superstep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Participate in further supersteps.
    Continue,
    /// Done: this process executes no further supersteps. The machine stops
    /// once every process has halted.
    Halt,
}

/// A per-processor BSP program.
///
/// `superstep` is called once per superstep with a [`SuperstepCtx`] exposing
/// the messages delivered at the start of this superstep and collecting the
/// messages to be routed during its communication phase. Local work is
/// accounted via [`SuperstepCtx::charge`]; sends implicitly charge one unit
/// each (preparing a message is a local operation).
pub trait BspProcess: Send {
    /// Execute the local computation phase of one superstep.
    fn superstep(&mut self, ctx: &mut SuperstepCtx<'_>) -> Status;
}

impl BspProcess for Box<dyn BspProcess> {
    fn superstep(&mut self, ctx: &mut SuperstepCtx<'_>) -> Status {
        (**self).superstep(ctx)
    }
}

/// The view a process has of the machine during its local computation phase.
///
/// The context takes the input pool out of `inbox` and hands envelopes to
/// the program **by move** — no per-message clone. [`SuperstepCtx::finish`]
/// puts the unread remainder back into `inbox` (the caller decides whether
/// to keep or discard it, per the machine's pool semantics).
#[derive(Debug)]
pub struct SuperstepCtx<'a> {
    me: ProcId,
    p: usize,
    superstep: u64,
    slot: &'a mut Vec<Envelope>,
    pool: std::vec::IntoIter<Envelope>,
    read: usize,
    outbox: Vec<(ProcId, Payload)>,
    work: u64,
}

impl<'a> SuperstepCtx<'a> {
    /// Build a context for one local computation phase. Public so that
    /// external host simulators (e.g. the BSP-on-LogP runner in `bvl-core`)
    /// can drive `BspProcess` implementations outside [`crate::BspMachine`].
    pub fn new(
        me: ProcId,
        p: usize,
        superstep: u64,
        inbox: &'a mut Vec<Envelope>,
    ) -> SuperstepCtx<'a> {
        Self::with_outbox(me, p, superstep, inbox, Vec::new())
    }

    /// Like [`SuperstepCtx::new`], but sends accumulate into a recycled
    /// (empty, possibly pre-allocated) buffer — the engine's steady state
    /// allocates no outbox storage after warm-up.
    pub fn with_outbox(
        me: ProcId,
        p: usize,
        superstep: u64,
        inbox: &'a mut Vec<Envelope>,
        outbox: Vec<(ProcId, Payload)>,
    ) -> SuperstepCtx<'a> {
        debug_assert!(outbox.is_empty(), "recycled outbox must be empty");
        let pool = std::mem::take(inbox).into_iter();
        SuperstepCtx {
            me,
            p,
            superstep,
            slot: inbox,
            pool,
            read: 0,
            outbox,
            work: 0,
        }
    }

    /// This processor's id.
    pub fn me(&self) -> ProcId {
        self.me
    }

    /// Machine size `p`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Zero-based index of the current superstep.
    pub fn superstep_index(&self) -> u64 {
        self.superstep
    }

    /// Number of messages still unread in the input pool.
    pub fn inbox_len(&self) -> usize {
        self.pool.len()
    }

    /// Extract the next message from the input pool (messages arrive sorted
    /// by sender id, then by submission order at the sender — a fixed,
    /// deterministic order).
    pub fn recv(&mut self) -> Option<Envelope> {
        let e = self.pool.next();
        if e.is_some() {
            self.read += 1;
        }
        e
    }

    /// Extract all remaining messages from the input pool.
    pub fn recv_all(&mut self) -> Vec<Envelope> {
        self.read += self.pool.len();
        self.pool.by_ref().collect()
    }

    /// Insert a message into the output pool; it is routed during this
    /// superstep's communication phase and becomes available to `dst` at the
    /// start of the next superstep. Charges one local operation.
    ///
    /// # Panics
    /// If `dst` is outside `0..p`.
    pub fn send(&mut self, dst: ProcId, payload: Payload) {
        assert!(
            dst.index() < self.p,
            "send to {dst:?} on a p={} machine",
            self.p
        );
        self.work += 1;
        self.outbox.push((dst, payload));
    }

    /// Account `w` units of local computation.
    pub fn charge(&mut self, w: u64) {
        self.work += w;
    }

    /// Tear down into `(work, outbox, number of messages read)`, restoring
    /// the unread remainder of the input pool into the `inbox` the context
    /// was built over. Public for the same external drivers as
    /// [`SuperstepCtx::new`].
    pub fn finish(self) -> (u64, Vec<(ProcId, Payload)>, usize) {
        *self.slot = self.pool.collect();
        (self.work, self.outbox, self.read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_send_and_charge_accumulate_work() {
        let mut inbox = Vec::new();
        let mut ctx = SuperstepCtx::new(ProcId(0), 4, 0, &mut inbox);
        ctx.charge(5);
        ctx.send(ProcId(1), Payload::word(0, 9));
        ctx.send(ProcId(2), Payload::word(0, 9));
        let (w, out, read) = ctx.finish();
        assert_eq!(w, 7);
        assert_eq!(out.len(), 2);
        assert_eq!(read, 0);
    }

    #[test]
    fn ctx_recv_in_order() {
        let mut inbox = vec![
            Envelope::new(ProcId(1), ProcId(0), Payload::word(0, 10)),
            Envelope::new(ProcId(2), ProcId(0), Payload::word(0, 20)),
        ];
        let mut ctx = SuperstepCtx::new(ProcId(0), 4, 1, &mut inbox);
        assert_eq!(ctx.inbox_len(), 2);
        assert_eq!(ctx.recv().unwrap().payload.expect_word(), 10);
        assert_eq!(ctx.inbox_len(), 1);
        let rest = ctx.recv_all();
        assert_eq!(rest.len(), 1);
        assert!(ctx.recv().is_none());
    }

    #[test]
    #[should_panic(expected = "send to")]
    fn ctx_rejects_bad_destination() {
        let mut inbox = Vec::new();
        let mut ctx = SuperstepCtx::new(ProcId(0), 2, 0, &mut inbox);
        ctx.send(ProcId(2), Payload::tagged(0));
    }
}

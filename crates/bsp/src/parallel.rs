//! Multithreaded execution of the local computation phase.
//!
//! A BSP superstep's local phase is embarrassingly parallel — the barrier is
//! the *only* synchronization point in the model, so the engine can farm the
//! `p` process bodies out to OS threads and still produce a schedule
//! bit-identical to the sequential one: message delivery order is fixed by
//! `(sender id, submission order)` regardless of which thread ran the sender.
//!
//! Enable with [`crate::BspMachine::set_threads`]. Thread parallelism pays
//! off when process bodies do real work (e.g. the local sorting phases of
//! the cross-simulation protocols); for micro-supersteps the sequential path
//! is faster, which is why `1` is the default.

use crate::process::{BspProcess, Status, SuperstepCtx};
use bvl_model::{Envelope, Payload, ProcId};

/// Result of one process's local phase. Sent messages are left in the
/// processor's recycled outbox buffer rather than carried here.
pub(crate) struct LocalOutcome {
    pub w: u64,
    pub halt: bool,
}

impl LocalOutcome {
    fn idle() -> LocalOutcome {
        LocalOutcome { w: 0, halt: true }
    }
}

/// Run the local phase of one process against its inbox, honouring the
/// `retain_unread` pool semantics. The process's sends accumulate into
/// `outbox` (passed empty, returned filled) so its allocation is reused
/// across supersteps.
fn run_one<P: BspProcess>(
    proc: &mut P,
    inbox: &mut Vec<Envelope>,
    outbox: &mut Vec<(ProcId, Payload)>,
    superstep: u64,
    p: usize,
    me: usize,
    retain_unread: bool,
) -> LocalOutcome {
    let buf = std::mem::take(outbox);
    let mut ctx = SuperstepCtx::with_outbox(ProcId::from(me), p, superstep, inbox, buf);
    let status = proc.superstep(&mut ctx);
    let (w, sent, _read) = ctx.finish();
    *outbox = sent;
    if !retain_unread {
        inbox.clear();
    }
    LocalOutcome {
        w,
        halt: status == Status::Halt,
    }
}

/// Execute the local phase for all non-halted processes, sequentially or on
/// `threads` OS threads. Outcomes are indexed by processor id either way;
/// processor `i`'s sends land in `outboxes[i]`.
pub(crate) fn local_phase<P: BspProcess>(
    procs: &mut [P],
    inboxes: &mut [Vec<Envelope>],
    outboxes: &mut [Vec<(ProcId, Payload)>],
    halted: &[bool],
    superstep: u64,
    retain_unread: bool,
    threads: usize,
) -> Vec<LocalOutcome> {
    let p = procs.len();
    if threads <= 1 || p < 2 {
        return (0..p)
            .map(|i| {
                if halted[i] {
                    LocalOutcome::idle()
                } else {
                    run_one(
                        &mut procs[i],
                        &mut inboxes[i],
                        &mut outboxes[i],
                        superstep,
                        p,
                        i,
                        retain_unread,
                    )
                }
            })
            .collect();
    }

    let chunk = p.div_ceil(threads.min(p));
    let mut results: Vec<Vec<LocalOutcome>> = Vec::with_capacity(p.div_ceil(chunk));
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (ci, (((pc, ic), oc), hc)) in procs
            .chunks_mut(chunk)
            .zip(inboxes.chunks_mut(chunk))
            .zip(outboxes.chunks_mut(chunk))
            .zip(halted.chunks(chunk))
            .enumerate()
        {
            let base = ci * chunk;
            handles.push(s.spawn(move || {
                pc.iter_mut()
                    .zip(ic.iter_mut())
                    .zip(oc.iter_mut())
                    .zip(hc.iter())
                    .enumerate()
                    .map(|(k, (((proc, inbox), outbox), &is_halted))| {
                        if is_halted {
                            LocalOutcome::idle()
                        } else {
                            run_one(proc, inbox, outbox, superstep, p, base + k, retain_unread)
                        }
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            results.push(h.join().expect("BSP worker thread panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::BspMachine;
    use crate::params::BspParams;
    use crate::spmd::FnProcess;

    fn shift_ring(p: usize) -> Vec<FnProcess<i64>> {
        (0..p)
            .map(|_| {
                FnProcess::new(-1i64, move |got, ctx| {
                    let p = ctx.p();
                    if ctx.superstep_index() < 4 {
                        let right = ProcId(((ctx.me().0 as usize + 1) % p) as u32);
                        ctx.send(right, Payload::word(0, ctx.me().0 as i64));
                        if ctx.superstep_index() > 0 {
                            *got = ctx.recv().unwrap().payload.expect_word();
                        }
                        Status::Continue
                    } else {
                        *got = ctx.recv().unwrap().payload.expect_word();
                        Status::Halt
                    }
                })
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let params = BspParams::new(16, 2, 8).unwrap();
        let mut seq = BspMachine::new(params, shift_ring(16));
        let rep_seq = seq.run(10).unwrap();

        let mut par = BspMachine::new(params, shift_ring(16));
        par.set_threads(4);
        let rep_par = par.run(10).unwrap();

        assert_eq!(rep_seq.cost, rep_par.cost);
        assert_eq!(rep_seq.supersteps, rep_par.supersteps);
        for i in 0..16 {
            assert_eq!(seq.process(i).state(), par.process(i).state());
        }
    }

    #[test]
    fn more_threads_than_processors() {
        let params = BspParams::new(3, 1, 1).unwrap();
        let mut m = BspMachine::new(params, shift_ring(3));
        m.set_threads(64);
        m.run(10).unwrap();
        assert_eq!(*m.process(0).state(), 2);
    }
}

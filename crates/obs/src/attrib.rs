//! Cost attribution: mapping a measured run onto the paper's cost terms.
//!
//! Theorem 2 decomposes a BSP-on-LogP superstep as
//! `T = w + T_synch + T_rout(h)` against the native `w + g·h + ℓ`; Theorem 1
//! decomposes LogP-on-BSP slowdown into `1 + g/G + ℓ/L` terms. A
//! [`CostReport`] is the measured counterpart: the engines account every
//! simulated step to **work** (`w`), **comm** (the `G·h`/`g·h` bandwidth
//! term), **sync** (the `L·S(L,G,p,h)`/`ℓ` synchronization term), **stall**
//! (Stalling Rule windows), or **other** (explicitly attributed idle), and
//! the difference between the run's makespan and the sum of the parts is the
//! *residual* — near zero when the accounting explains the run.

use crate::span::{Span, SpanKind};
use bvl_model::Steps;
use core::fmt;

/// A run's measured time, decomposed onto paper-level cost terms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostReport {
    /// What was measured (e.g. `"thm2 p=16 h=8 det"`).
    pub label: String,
    /// The run's end-to-end makespan.
    pub makespan: Steps,
    /// Local computation — the `w` term.
    pub work: Steps,
    /// Bandwidth — the `G·h` (LogP) or `g·h` (BSP) term.
    pub comm: Steps,
    /// Synchronization — the `L·S(L,G,p,h)` (Theorem 2) or `ℓ` (BSP) term.
    pub sync: Steps,
    /// Time spent in Stalling Rule windows.
    pub stall: Steps,
    /// Explicitly attributed remainder (idle tails, padding rounds).
    pub other: Steps,
}

impl CostReport {
    /// Sum of all attributed components.
    pub fn attributed(&self) -> Steps {
        self.work + self.comm + self.sync + self.stall + self.other
    }

    /// `makespan - attributed`, signed: positive means unexplained time,
    /// negative means double counting.
    pub fn residual(&self) -> i64 {
        let m = self.makespan.get();
        let a = self.attributed().get();
        if m >= a {
            i64::try_from(m - a).unwrap_or(i64::MAX)
        } else {
            -i64::try_from(a - m).unwrap_or(i64::MAX)
        }
    }

    /// `|residual| / makespan`, or 0.0 for an empty run.
    pub fn residual_frac(&self) -> f64 {
        if self.makespan == Steps::ZERO {
            0.0
        } else {
            self.residual().unsigned_abs() as f64 / self.makespan.get() as f64
        }
    }

    /// `(name, steps, fraction-of-makespan)` rows for the non-zero
    /// components, in fixed order.
    pub fn components(&self) -> Vec<(&'static str, Steps, f64)> {
        let denom = self.makespan.get().max(1) as f64;
        [
            ("work", self.work),
            ("comm", self.comm),
            ("sync", self.sync),
            ("stall", self.stall),
            ("other", self.other),
        ]
        .into_iter()
        .filter(|&(_, v)| v > Steps::ZERO)
        .map(|(n, v)| (n, v, v.get() as f64 / denom))
        .collect()
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cost-attribution [{}]: makespan {}",
            self.label, self.makespan
        )?;
        for (name, v, frac) in self.components() {
            writeln!(f, "  {name:<6} {v:>12}  ({:5.1}%)", frac * 100.0)?;
        }
        write!(
            f,
            "  residual {:+} ({:.3}% of makespan)",
            self.residual(),
            self.residual_frac() * 100.0
        )
    }
}

/// Total duration per span kind, in [`SpanKind::ALL`] order, skipping kinds
/// with no spans. Useful for summaries; note that kinds overlap by design
/// (`Superstep` brackets everything, `Routing` brackets the sort/cycle
/// spans), so these totals are *per-kind*, not a partition of the run.
pub fn span_totals(spans: &[Span]) -> Vec<(SpanKind, Steps)> {
    SpanKind::ALL
        .into_iter()
        .filter_map(|k| {
            let total: Steps = spans
                .iter()
                .filter(|s| s.kind == k)
                .map(|s| s.duration())
                .sum();
            (total > Steps::ZERO || spans.iter().any(|s| s.kind == k)).then_some((k, total))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CostReport {
        CostReport {
            label: "test".into(),
            makespan: Steps(100),
            work: Steps(40),
            comm: Steps(30),
            sync: Steps(20),
            stall: Steps(5),
            other: Steps(0),
        }
    }

    #[test]
    fn residual_is_signed() {
        let r = report();
        assert_eq!(r.attributed(), Steps(95));
        assert_eq!(r.residual(), 5);
        assert!((r.residual_frac() - 0.05).abs() < 1e-12);
        let mut over = report();
        over.other = Steps(10);
        assert_eq!(over.residual(), -5);
    }

    #[test]
    fn components_skip_zero_terms() {
        let r = report();
        let names: Vec<_> = r.components().iter().map(|c| c.0).collect();
        assert_eq!(names, vec!["work", "comm", "sync", "stall"]);
    }

    #[test]
    fn display_mentions_residual() {
        let text = report().to_string();
        assert!(text.contains("residual +5"));
        assert!(text.contains("work"));
    }

    #[test]
    fn span_totals_sum_durations() {
        let spans = vec![
            Span::new(SpanKind::CbCombine, Steps(0), Steps(4)),
            Span::new(SpanKind::CbCombine, Steps(10), Steps(12)),
            Span::new(SpanKind::Stall, Steps(2), Steps(2)),
        ];
        let totals = span_totals(&spans);
        assert_eq!(totals, vec![(SpanKind::CbCombine, Steps(6)), (SpanKind::Stall, Steps::ZERO)]);
    }
}

//! Structured spans: named, timestamped phases of a simulated run.
//!
//! A [`Span`] is a half-open interval `[start, end)` of model time tagged
//! with a [`SpanKind`] drawn from a closed taxonomy that mirrors the paper's
//! cost decomposition: local work (`w`), CB combine/broadcast (the two
//! halves of `T_synch`), sort rounds and routing cycles (`T_rout`), barrier
//! waits, and stall windows. Keeping the taxonomy closed — an enum, not free
//! strings — lets the cost-attribution report fold spans onto Theorem 1/2
//! terms without string matching, and keeps recording allocation-free.

use bvl_model::{ProcId, Steps};

/// The closed span taxonomy.
///
/// Each variant maps onto a term of the paper's cost accounting; the
/// mapping used by cost attribution is documented per variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Pure local computation (the `w` term of a superstep).
    LocalWork,
    /// Combine half of a CB barrier: leaf values travel up the tree
    /// (contributes to `T_synch`, Proposition 1).
    CbCombine,
    /// Broadcast half of a CB barrier: the combined value travels back
    /// down (the other half of `T_synch`).
    CbBroadcast,
    /// One round of the AKS/odd-even sorting network used by the
    /// deterministic router (part of `T_rout`, Theorem 2).
    SortRound,
    /// One of Columnsort's eight passes (four local sorts interleaved with
    /// four fixed permutations; part of `T_rout` for large `h`).
    ColumnsortRound,
    /// The pipelined `h` delivery cycles of the deterministic router
    /// (the `Gh`-dominated tail of `T_rout`).
    RouteCycles,
    /// One batch of the randomized router (Theorem 3 machinery).
    RouteBatch,
    /// An entire routing phase as seen by the superstep driver
    /// (`T_rout(h)` in one piece, when finer spans are unavailable).
    Routing,
    /// Time a BSP processor idles at the barrier waiting for the slowest
    /// peer (`w_max - w_i`).
    BarrierWait,
    /// A LogP stall window (Stalling Rule engaged).
    Stall,
    /// A whole superstep, bracketing all of the above.
    Superstep,
}

impl SpanKind {
    /// Every variant, for iteration in reports and exporters.
    pub const ALL: [SpanKind; 11] = [
        SpanKind::LocalWork,
        SpanKind::CbCombine,
        SpanKind::CbBroadcast,
        SpanKind::SortRound,
        SpanKind::ColumnsortRound,
        SpanKind::RouteCycles,
        SpanKind::RouteBatch,
        SpanKind::Routing,
        SpanKind::BarrierWait,
        SpanKind::Stall,
        SpanKind::Superstep,
    ];

    /// Stable snake_case label used in both export formats.
    pub const fn as_str(self) -> &'static str {
        match self {
            SpanKind::LocalWork => "local_work",
            SpanKind::CbCombine => "cb_combine",
            SpanKind::CbBroadcast => "cb_broadcast",
            SpanKind::SortRound => "sort_round",
            SpanKind::ColumnsortRound => "columnsort_round",
            SpanKind::RouteCycles => "route_cycles",
            SpanKind::RouteBatch => "route_batch",
            SpanKind::Routing => "routing",
            SpanKind::BarrierWait => "barrier_wait",
            SpanKind::Stall => "stall",
            SpanKind::Superstep => "superstep",
        }
    }

    /// Parse a label produced by [`SpanKind::as_str`].
    pub fn from_str_label(s: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

/// One recorded phase: `[start, end)` in model steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Which phase of the cost decomposition this interval belongs to.
    pub kind: SpanKind,
    /// Start of the interval (inclusive), on the run's global clock.
    pub start: Steps,
    /// End of the interval (exclusive).
    pub end: Steps,
    /// The processor the phase ran on, if it is per-processor
    /// (`None` for machine-wide phases such as a whole superstep).
    pub proc: Option<ProcId>,
    /// Phase ordinal — superstep index, sort-round number, batch number —
    /// when the phase is one of a sequence.
    pub index: Option<u64>,
}

impl Span {
    /// A machine-wide span with no processor or ordinal.
    pub fn new(kind: SpanKind, start: Steps, end: Steps) -> Span {
        Span {
            kind,
            start,
            end,
            proc: None,
            index: None,
        }
    }

    /// Attach a processor id.
    pub fn on(mut self, proc: ProcId) -> Span {
        self.proc = Some(proc);
        self
    }

    /// Attach a sequence ordinal.
    pub fn at_index(mut self, index: u64) -> Span {
        self.index = Some(index);
        self
    }

    /// The span's length in steps (`end - start`, clamped at zero).
    pub fn duration(&self) -> Steps {
        self.end.saturating_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for k in SpanKind::ALL {
            assert_eq!(SpanKind::from_str_label(k.as_str()), Some(k));
        }
        assert_eq!(SpanKind::from_str_label("nonsense"), None);
    }

    #[test]
    fn builder_and_duration() {
        let s = Span::new(SpanKind::CbCombine, Steps(3), Steps(9))
            .on(ProcId(2))
            .at_index(4);
        assert_eq!(s.duration(), Steps(6));
        assert_eq!(s.proc, Some(ProcId(2)));
        assert_eq!(s.index, Some(4));
        assert_eq!(Span::new(SpanKind::Stall, Steps(5), Steps(5)).duration(), Steps::ZERO);
    }
}

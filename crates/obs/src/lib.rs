//! Observability for the BSP-vs-LogP engines.
//!
//! The paper's results are *decompositions of time* — Theorem 1 splits
//! LogP-on-BSP slowdown into `1 + g/G + ℓ/L`, Theorem 2 splits a superstep
//! into `w + T_synch + T_rout(h)` — so a flat makespan is not evidence, only
//! a number. This crate turns runs into auditable evidence:
//!
//! * [`Registry`] — a cloneable handle the engines feed with per-processor
//!   counters, fixed-bucket latency histograms, and structured [`Span`]s
//!   drawn from a closed [`SpanKind`] taxonomy (CB combine/broadcast,
//!   sort rounds, routing cycles, barrier waits, stalls). Disabled, every
//!   recording call is a single branch. Recording depth is a run-time
//!   [`Tier`] (`Off`/`CountersOnly`/`Sampled`/`Full`); spans stage in
//!   lock-free SPSC [`SpanRing`]s and serialize in batches at phase
//!   barriers, so tracing stays on at production cost.
//! * [`CostReport`] — a run's makespan attributed onto the paper's cost
//!   terms (`work`, `comm`, `sync`, `stall`) with a signed residual that is
//!   near zero when the accounting explains the run.
//! * [`export`] — Chrome/Perfetto `trace_event` JSON and a compact JSONL
//!   format for `bvl_model::Trace` + spans, selected by file extension, plus
//!   a dependency-free JSONL parser for validation tooling.
//! * [`cli`] — the shared `--trace-out <path>` flag.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrib;
pub mod cli;
pub mod export;
pub mod registry;
pub mod ring;
pub mod span;
pub mod tier;

pub use attrib::{span_totals, CostReport};
pub use registry::{
    Counter, CounterBlock, Hist, HistSnapshot, Registry, DEFAULT_RING_CAPACITY, HIST_BUCKETS,
};
pub use ring::SpanRing;
pub use span::{Span, SpanKind};
pub use tier::{Sampler, Tier};

//! Trace export: Chrome/Perfetto `trace_event` JSON and a compact JSONL.
//!
//! Two formats, chosen by file extension in [`write_trace_file`]:
//!
//! * `.jsonl` — one flat JSON object per line, either
//!   `{"type":"span","kind":…,"start":…,"end":…}` or
//!   `{"type":"event","ev":…,"at":…}`. This is the machine-readable format:
//!   [`parse_jsonl`] reads it back without any external JSON dependency, and
//!   the `trace_check` binary validates it against the model's trace
//!   well-formedness rules.
//! * anything else (conventionally `.json`) — the Chrome `trace_event`
//!   array format that Perfetto (<https://ui.perfetto.dev>) and
//!   `chrome://tracing` open directly. One simulated step is exported as
//!   one microsecond; spans become `ph:"X"` complete events on track
//!   `tid = proc + 1` (track 0 is the machine-wide track), machine events
//!   become `ph:"i"` instants.
//!
//! All JSON is hand-written: the build environment has no serde, and the
//! emitted vocabulary is closed (fixed labels, unsigned integers), so
//! formatting and parsing stay trivial and dependency-free.

use crate::span::{Span, SpanKind};
use crate::tier::Tier;
use bvl_model::{Event, MsgId, ProcId, Steps, Trace};
use std::io;
use std::path::Path;

/// Recording metadata attached to an exported trace: the [`Tier`] the
/// capture ran at and how many spans the rings dropped. Emitted as the
/// first JSONL line (`{"type":"obs","tier":…,"spans_dropped":…}`) so
/// validators know whether the span log is the full picture or a sampled,
/// possibly truncated one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsMeta {
    /// The tier the capture registry recorded at.
    pub tier: Tier,
    /// Spans dropped by full rings during the run (saturating).
    pub spans_dropped: u64,
}

/// Track id for a span/event: processor `p` maps to `p + 1`, machine-wide
/// entries to 0.
fn tid_of(proc: Option<ProcId>) -> u64 {
    proc.map_or(0, |p| u64::from(p.0) + 1)
}

fn event_fields(ev: &Event) -> (&'static str, Vec<(&'static str, u64)>) {
    match *ev {
        Event::Submit { at, proc, msg, dst } => (
            "submit",
            vec![("at", at.get()), ("proc", proc.0.into()), ("msg", msg.0), ("dst", dst.0.into())],
        ),
        Event::Accept { at, msg } => ("accept", vec![("at", at.get()), ("msg", msg.0)]),
        Event::Deliver { at, msg, dst } => (
            "deliver",
            vec![("at", at.get()), ("msg", msg.0), ("dst", dst.0.into())],
        ),
        Event::Acquire { at, proc, msg } => (
            "acquire",
            vec![("at", at.get()), ("proc", proc.0.into()), ("msg", msg.0)],
        ),
        Event::StallBegin { at, proc } => {
            ("stall_begin", vec![("at", at.get()), ("proc", proc.0.into())])
        }
        Event::StallEnd { at, proc } => {
            ("stall_end", vec![("at", at.get()), ("proc", proc.0.into())])
        }
        Event::Superstep { index, w, h, cost } => (
            "superstep",
            vec![("index", index), ("w", w), ("h", h), ("cost", cost.get())],
        ),
    }
}

/// Render a trace plus spans in the compact JSONL format.
pub fn jsonl(trace: &Trace, spans: &[Span]) -> String {
    jsonl_with_meta(trace, spans, None)
}

/// [`jsonl`] with an optional leading `{"type":"obs",…}` metadata line.
pub fn jsonl_with_meta(trace: &Trace, spans: &[Span], meta: Option<&ObsMeta>) -> String {
    let mut out = String::new();
    if let Some(m) = meta {
        out.push_str(&format!(
            "{{\"type\":\"obs\",\"tier\":\"{}\",\"spans_dropped\":{}}}\n",
            m.tier.label(),
            m.spans_dropped
        ));
    }
    for s in spans {
        out.push_str(&format!(
            "{{\"type\":\"span\",\"kind\":\"{}\",\"start\":{},\"end\":{}",
            s.kind.as_str(),
            s.start,
            s.end
        ));
        if let Some(p) = s.proc {
            out.push_str(&format!(",\"proc\":{p}"));
        }
        if let Some(i) = s.index {
            out.push_str(&format!(",\"index\":{i}"));
        }
        out.push_str("}\n");
    }
    for ev in trace.events() {
        let (name, fields) = event_fields(ev);
        out.push_str(&format!("{{\"type\":\"event\",\"ev\":\"{name}\""));
        for (k, v) in fields {
            out.push_str(&format!(",\"{k}\":{v}"));
        }
        out.push_str("}\n");
    }
    out
}

/// Render a trace plus spans as Chrome `trace_event` JSON.
pub fn chrome_trace_json(trace: &Trace, spans: &[Span]) -> String {
    let mut entries: Vec<String> = Vec::with_capacity(spans.len() + trace.events().len() + 8);
    // Name the tracks so Perfetto shows "machine" / "P0" / "P1" / ….
    let mut max_tid = 0u64;
    for s in spans {
        max_tid = max_tid.max(tid_of(s.proc));
    }
    for ev in trace.events() {
        let (_, fields) = event_fields(ev);
        for (k, v) in fields {
            if k == "proc" {
                max_tid = max_tid.max(v + 1);
            }
        }
    }
    for tid in 0..=max_tid {
        let label = if tid == 0 {
            "machine".to_string()
        } else {
            format!("P{}", tid - 1)
        };
        entries.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{label}\"}}}}"
        ));
    }
    for s in spans {
        let mut args = String::new();
        if let Some(i) = s.index {
            args = format!(",\"args\":{{\"index\":{i}}}");
        }
        entries.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":0,\"tid\":{}{args}}}",
            s.kind.as_str(),
            s.start,
            s.duration(),
            tid_of(s.proc)
        ));
    }
    for ev in trace.events() {
        let (name, fields) = event_fields(ev);
        let at = ev.at().get();
        let tid = fields
            .iter()
            .find(|&&(k, _)| k == "proc" || k == "dst")
            .map_or(0, |&(_, v)| v + 1);
        let args: Vec<String> = fields
            .iter()
            .filter(|&&(k, _)| k != "at")
            .map(|&(k, v)| format!("\"{k}\":{v}"))
            .collect();
        entries.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":{at},\
             \"pid\":0,\"tid\":{tid},\"s\":\"t\",\"args\":{{{}}}}}",
            args.join(",")
        ));
    }
    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
        entries.join(",\n")
    )
}

/// Write `trace` + `spans` to `path`: `.jsonl` selects the compact line
/// format, anything else the Chrome `trace_event` JSON.
pub fn write_trace_file(path: &Path, trace: &Trace, spans: &[Span]) -> io::Result<()> {
    write_trace_file_with_meta(path, trace, spans, None)
}

/// [`write_trace_file`] carrying recording metadata. The JSONL format
/// leads with the `{"type":"obs",…}` line; the Chrome format has no
/// validator, so the metadata is omitted there.
pub fn write_trace_file_with_meta(
    path: &Path,
    trace: &Trace,
    spans: &[Span],
    meta: Option<&ObsMeta>,
) -> io::Result<()> {
    let text = if path.extension().is_some_and(|e| e == "jsonl") {
        jsonl_with_meta(trace, spans, meta)
    } else {
        chrome_trace_json(trace, spans)
    };
    std::fs::write(path, text)
}

/// A scalar in the closed JSONL vocabulary.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Scalar {
    Str(String),
    Num(u64),
}

/// Parse one flat JSONL object: `{"key":value,…}` with unescaped string or
/// unsigned-integer values — exactly the subset [`jsonl`] emits.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let line = line.trim();
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not an object: {line}"))?;
    let mut fields = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let key_body = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected key at: {rest}"))?;
        let kend = key_body.find('"').ok_or("unterminated key")?;
        let key = &key_body[..kend];
        rest = key_body[kend + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("expected ':' after key {key}"))?
            .trim_start();
        let value;
        if let Some(body) = rest.strip_prefix('"') {
            let vend = body.find('"').ok_or("unterminated string value")?;
            value = Scalar::Str(body[..vend].to_string());
            rest = &body[vend + 1..];
        } else {
            let vend = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            if vend == 0 {
                return Err(format!("expected value at: {rest}"));
            }
            value = Scalar::Num(
                rest[..vend]
                    .parse::<u64>()
                    .map_err(|e| format!("bad number: {e}"))?,
            );
            rest = &rest[vend..];
        }
        fields.push((key.to_string(), value));
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("expected ',' at: {rest}"));
        }
    }
    Ok(fields)
}

fn get_num(fields: &[(String, Scalar)], key: &str) -> Result<u64, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Scalar::Num(n) => Some(*n),
            Scalar::Str(_) => None,
        })
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn get_opt_num(fields: &[(String, Scalar)], key: &str) -> Option<u64> {
    fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
        Scalar::Num(n) => Some(*n),
        Scalar::Str(_) => None,
    })
}

fn get_str<'a>(fields: &'a [(String, Scalar)], key: &str) -> Result<&'a str, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Scalar::Str(s) => Some(s.as_str()),
            Scalar::Num(_) => None,
        })
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn proc_of(n: u64) -> Result<ProcId, String> {
    u32::try_from(n).map(ProcId).map_err(|_| format!("proc id {n} exceeds u32"))
}

/// Parse text produced by [`jsonl`] back into events and spans, dropping
/// any recording metadata. See [`parse_jsonl_full`].
pub fn parse_jsonl(text: &str) -> Result<(Vec<Event>, Vec<Span>), String> {
    parse_jsonl_full(text).map(|(events, spans, _)| (events, spans))
}

/// What [`parse_jsonl_full`] recovers from a JSONL trace: the machine
/// events (in file order), the spans, and the recording metadata when the
/// file carries an `{"type":"obs",…}` line.
pub type ParsedTrace = (Vec<Event>, Vec<Span>, Option<ObsMeta>);

/// Parse text produced by [`jsonl_with_meta`] back into events, spans, and
/// the recording metadata (when the file carries an `{"type":"obs",…}`
/// line).
///
/// Errors carry the 1-based line number of the offending line.
pub fn parse_jsonl_full(text: &str) -> Result<ParsedTrace, String> {
    let mut events = Vec::new();
    let mut spans = Vec::new();
    let mut meta = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let res = (|| -> Result<(), String> {
            let fields = parse_flat_object(line)?;
            match get_str(&fields, "type")? {
                "span" => {
                    let kind = get_str(&fields, "kind")?;
                    let kind = SpanKind::from_str_label(kind)
                        .ok_or_else(|| format!("unknown span kind '{kind}'"))?;
                    spans.push(Span {
                        kind,
                        start: Steps(get_num(&fields, "start")?),
                        end: Steps(get_num(&fields, "end")?),
                        proc: get_opt_num(&fields, "proc").map(proc_of).transpose()?,
                        index: get_opt_num(&fields, "index"),
                    });
                }
                "event" => {
                    let at = || get_num(&fields, "at").map(Steps);
                    let msg = || get_num(&fields, "msg").map(MsgId);
                    let proc = || get_num(&fields, "proc").and_then(proc_of);
                    let dst = || get_num(&fields, "dst").and_then(proc_of);
                    let ev = match get_str(&fields, "ev")? {
                        "submit" => Event::Submit {
                            at: at()?,
                            proc: proc()?,
                            msg: msg()?,
                            dst: dst()?,
                        },
                        "accept" => Event::Accept { at: at()?, msg: msg()? },
                        "deliver" => Event::Deliver {
                            at: at()?,
                            msg: msg()?,
                            dst: dst()?,
                        },
                        "acquire" => Event::Acquire {
                            at: at()?,
                            proc: proc()?,
                            msg: msg()?,
                        },
                        "stall_begin" => Event::StallBegin { at: at()?, proc: proc()? },
                        "stall_end" => Event::StallEnd { at: at()?, proc: proc()? },
                        "superstep" => Event::Superstep {
                            index: get_num(&fields, "index")?,
                            w: get_num(&fields, "w")?,
                            h: get_num(&fields, "h")?,
                            cost: Steps(get_num(&fields, "cost")?),
                        },
                        other => return Err(format!("unknown event kind '{other}'")),
                    };
                    events.push(ev);
                }
                "obs" => {
                    let label = get_str(&fields, "tier")?;
                    meta = Some(ObsMeta {
                        tier: Tier::parse(label)
                            .ok_or_else(|| format!("unknown tier '{label}'"))?,
                        spans_dropped: get_num(&fields, "spans_dropped")?,
                    });
                }
                other => return Err(format!("unknown record type '{other}'")),
            }
            Ok(())
        })();
        res.map_err(|e| format!("line {}: {e}", lineno + 1))?;
    }
    Ok((events, spans, meta))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Trace, Vec<Span>) {
        let mut t = Trace::enabled();
        t.record(Event::Submit {
            at: Steps(2),
            proc: ProcId(0),
            msg: MsgId(0),
            dst: ProcId(1),
        });
        t.record(Event::Accept { at: Steps(2), msg: MsgId(0) });
        t.record(Event::Deliver {
            at: Steps(7),
            msg: MsgId(0),
            dst: ProcId(1),
        });
        t.record(Event::Acquire {
            at: Steps(9),
            proc: ProcId(1),
            msg: MsgId(0),
        });
        t.record(Event::StallBegin { at: Steps(4), proc: ProcId(2) });
        t.record(Event::StallEnd { at: Steps(6), proc: ProcId(2) });
        t.record(Event::Superstep {
            index: 0,
            w: 4,
            h: 1,
            cost: Steps(12),
        });
        let spans = vec![
            Span::new(SpanKind::CbCombine, Steps(0), Steps(5)).at_index(0),
            Span::new(SpanKind::Stall, Steps(4), Steps(6)).on(ProcId(2)),
        ];
        (t, spans)
    }

    #[test]
    fn jsonl_roundtrips() {
        let (trace, spans) = sample();
        let text = jsonl(&trace, &spans);
        let (events, parsed_spans) = parse_jsonl(&text).expect("parse");
        assert_eq!(events, trace.events());
        assert_eq!(parsed_spans, spans);
    }

    #[test]
    fn jsonl_meta_roundtrips() {
        let (trace, spans) = sample();
        let meta = ObsMeta {
            tier: Tier::Sampled { rate: 8 },
            spans_dropped: 3,
        };
        let text = jsonl_with_meta(&trace, &spans, Some(&meta));
        assert!(text.starts_with(
            "{\"type\":\"obs\",\"tier\":\"sampled:8\",\"spans_dropped\":3}\n"
        ));
        let (events, parsed_spans, parsed_meta) = parse_jsonl_full(&text).expect("parse");
        assert_eq!(events, trace.events());
        assert_eq!(parsed_spans, spans);
        assert_eq!(parsed_meta, Some(meta));
        // Meta-free text parses with no metadata; the plain parser drops it.
        let (_, _, none) = parse_jsonl_full(&jsonl(&trace, &spans)).expect("parse");
        assert_eq!(none, None);
        assert!(parse_jsonl(&text).is_ok());
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = parse_jsonl("{\"type\":\"span\"}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = parse_jsonl("{\"type\":\"event\",\"ev\":\"submit\",\"at\":1}\n").unwrap_err();
        assert!(err.contains("missing numeric field"), "{err}");
    }

    #[test]
    fn chrome_json_is_balanced_and_named() {
        let (trace, spans) = sample();
        let text = chrome_trace_json(&trace, &spans);
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"name\":\"cb_combine\""));
        assert!(text.contains("\"name\":\"P2\""));
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "unbalanced braces"
        );
    }

    #[test]
    fn write_selects_format_by_extension() {
        let (trace, spans) = sample();
        let dir = std::env::temp_dir();
        let jl = dir.join("bvl_obs_test_trace.jsonl");
        let cj = dir.join("bvl_obs_test_trace.json");
        write_trace_file(&jl, &trace, &spans).unwrap();
        write_trace_file(&cj, &trace, &spans).unwrap();
        let jl_text = std::fs::read_to_string(&jl).unwrap();
        let cj_text = std::fs::read_to_string(&cj).unwrap();
        assert!(jl_text.starts_with("{\"type\":\"span\""));
        assert!(cj_text.starts_with("{\"traceEvents\""));
        let _ = std::fs::remove_file(jl);
        let _ = std::fs::remove_file(cj);
    }
}

//! The shared `--trace-out <path>`, `--shards <n>` and `--obs-tier <t>`
//! flags.
//!
//! Every `exp_*` binary accepts `--trace-out <path>` (or
//! `--trace-out=<path>`) and, when present, writes the flagged cell's trace
//! there via [`crate::export::write_trace_file`]; `--shards <n>` (or
//! `--shards=<n>`) selects the engine shard count the same way; and
//! `--obs-tier <off|counters|sampled[:rate]|full>` selects the recording
//! [`Tier`]. Parsing lives here so the binaries stay one-liner thin and
//! agree on the syntax.

use crate::tier::Tier;
use std::path::PathBuf;

/// Extract `--trace-out <path>` / `--trace-out=<path>` from an argument
/// stream. Returns `None` when the flag is absent; a flag with no value is
/// treated as absent rather than an error (the binaries have no other
/// flags, so there is nothing to confuse it with).
pub fn trace_out_from<I: IntoIterator<Item = String>>(args: I) -> Option<PathBuf> {
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--trace-out" {
            return it.next().map(PathBuf::from);
        }
        if let Some(v) = arg.strip_prefix("--trace-out=") {
            if !v.is_empty() {
                return Some(PathBuf::from(v));
            }
        }
    }
    None
}

/// [`trace_out_from`] applied to this process's arguments.
pub fn trace_out() -> Option<PathBuf> {
    trace_out_from(std::env::args().skip(1))
}

/// Extract `--shards <n>` / `--shards=<n>` from an argument stream.
/// Returns 1 (run unsharded) when the flag is absent, valueless, zero, or
/// not an integer — sharding is an opt-in accelerator, never an error.
pub fn shards_from<I: IntoIterator<Item = String>>(args: I) -> usize {
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let v = if arg == "--shards" {
            it.next()
        } else {
            arg.strip_prefix("--shards=").map(str::to_string)
        };
        if let Some(v) = v {
            if let Ok(n) = v.parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    1
}

/// [`shards_from`] applied to this process's arguments.
pub fn shards() -> usize {
    shards_from(std::env::args().skip(1))
}

/// Extract `--obs-tier <t>` / `--obs-tier=<t>` from an argument stream,
/// where `<t>` is `off`, `counters`, `sampled`, `sampled:<rate>` or
/// `full`. Returns [`Tier::Full`] (the historical behaviour) when the
/// flag is absent, valueless, or unparseable — the tier is an
/// observability dial, never an error.
pub fn obs_tier_from<I: IntoIterator<Item = String>>(args: I) -> Tier {
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let v = if arg == "--obs-tier" {
            it.next()
        } else {
            arg.strip_prefix("--obs-tier=").map(str::to_string)
        };
        if let Some(v) = v {
            if let Some(t) = Tier::parse(&v) {
                return t;
            }
        }
    }
    Tier::Full
}

/// [`obs_tier_from`] applied to this process's arguments.
pub fn obs_tier() -> Tier {
    obs_tier_from(std::env::args().skip(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Option<PathBuf> {
        trace_out_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_both_spellings() {
        assert_eq!(parse(&["--trace-out", "t.json"]), Some(PathBuf::from("t.json")));
        assert_eq!(parse(&["--trace-out=t.jsonl"]), Some(PathBuf::from("t.jsonl")));
        assert_eq!(parse(&["x", "--trace-out", "a", "b"]), Some(PathBuf::from("a")));
    }

    #[test]
    fn absent_or_valueless_is_none() {
        assert_eq!(parse(&[]), None);
        assert_eq!(parse(&["--other"]), None);
        assert_eq!(parse(&["--trace-out"]), None);
        assert_eq!(parse(&["--trace-out="]), None);
    }

    fn parse_shards(args: &[&str]) -> usize {
        shards_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn shards_parses_both_spellings() {
        assert_eq!(parse_shards(&["--shards", "4"]), 4);
        assert_eq!(parse_shards(&["--shards=8"]), 8);
        assert_eq!(parse_shards(&["x", "--shards", "2", "y"]), 2);
    }

    #[test]
    fn shards_defaults_to_one() {
        assert_eq!(parse_shards(&[]), 1);
        assert_eq!(parse_shards(&["--shards"]), 1);
        assert_eq!(parse_shards(&["--shards=0"]), 1);
        assert_eq!(parse_shards(&["--shards=lots"]), 1);
    }

    fn parse_tier(args: &[&str]) -> Tier {
        obs_tier_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn obs_tier_parses_both_spellings_and_all_tiers() {
        assert_eq!(parse_tier(&["--obs-tier", "off"]), Tier::Off);
        assert_eq!(parse_tier(&["--obs-tier=counters"]), Tier::CountersOnly);
        assert_eq!(parse_tier(&["--obs-tier", "sampled:16"]), Tier::Sampled { rate: 16 });
        assert_eq!(parse_tier(&["x", "--obs-tier=sampled", "y"]), Tier::Sampled { rate: 8 });
        assert_eq!(parse_tier(&["--obs-tier", "full"]), Tier::Full);
    }

    #[test]
    fn obs_tier_defaults_to_full() {
        assert_eq!(parse_tier(&[]), Tier::Full);
        assert_eq!(parse_tier(&["--obs-tier"]), Tier::Full);
        assert_eq!(parse_tier(&["--obs-tier=everything"]), Tier::Full);
    }
}

//! Execution tiers: how much the observability plane records.
//!
//! A [`Tier`] is a run-time dial between "pay nothing" and "record
//! everything". The registry enforces it at every recording call, so the
//! engines carry one handle and never branch on the tier themselves:
//!
//! * [`Tier::Off`] — nothing is recorded; every call is one branch.
//! * [`Tier::CountersOnly`] — per-processor counters and histograms
//!   record, spans are dropped before construction.
//! * [`Tier::Sampled`] — counters plus a deterministic subset of spans,
//!   roughly one in `rate`.
//! * [`Tier::Full`] — everything (the historical behaviour).
//!
//! Sampling is *content-keyed*, not stateful: whether a span is kept
//! depends only on the span itself and a [`Sampler`] key derived from the
//! run's per-`(domain, index)` `SeedStream` lane. Two runs of the same
//! workload — at any shard or thread count, in any emission order —
//! therefore keep exactly the same subset, which is what makes a sampled
//! trace diffable across shard counts.

use crate::span::Span;

/// How much the observability plane records; see the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Tier {
    /// Record nothing.
    Off,
    /// Counters and histograms only; spans are dropped.
    CountersOnly,
    /// Counters plus a deterministic ~`1/rate` subset of spans.
    Sampled {
        /// Keep roughly one span in `rate` (`rate <= 1` keeps all).
        rate: u32,
    },
    /// Record everything.
    #[default]
    Full,
}

impl Tier {
    /// Ordering rank: `Off < CountersOnly < Sampled < Full`.
    pub const fn rank(self) -> u8 {
        match self {
            Tier::Off => 0,
            Tier::CountersOnly => 1,
            Tier::Sampled { .. } => 2,
            Tier::Full => 3,
        }
    }

    /// Whether counters and histograms record at this tier.
    pub const fn counters_on(self) -> bool {
        self.rank() >= 1
    }

    /// Whether any spans record at this tier.
    pub const fn spans_on(self) -> bool {
        self.rank() >= 2
    }

    /// The lower of two tiers (a handle can restrict, never widen, what
    /// its registry was built to record). When both sides are `Sampled`,
    /// the sparser rate (larger `rate`) wins.
    pub fn min(self, other: Tier) -> Tier {
        match (self, other) {
            (Tier::Sampled { rate: a }, Tier::Sampled { rate: b }) => {
                Tier::Sampled { rate: a.max(b) }
            }
            (a, b) => {
                if a.rank() <= b.rank() {
                    a
                } else {
                    b
                }
            }
        }
    }

    /// Stable label: `off`, `counters`, `sampled:<rate>`, `full`.
    pub fn label(self) -> String {
        match self {
            Tier::Off => "off".into(),
            Tier::CountersOnly => "counters".into(),
            Tier::Sampled { rate } => format!("sampled:{rate}"),
            Tier::Full => "full".into(),
        }
    }

    /// Parse a label produced by [`Tier::label`]; `sampled` without a rate
    /// means the default rate of 8.
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "off" => Some(Tier::Off),
            "counters" | "counters-only" => Some(Tier::CountersOnly),
            "sampled" => Some(Tier::Sampled { rate: 8 }),
            "full" => Some(Tier::Full),
            _ => {
                let rate = s.strip_prefix("sampled:")?.parse::<u32>().ok()?;
                Some(Tier::Sampled { rate: rate.max(1) })
            }
        }
    }
}

/// The deterministic span sampler: a pure function of `(key, span)`.
///
/// The key comes from the run's `SeedStream` lane (see
/// `bvl_model::rngutil::SeedStream::lane_key`), so distinct cells sample
/// distinct subsets while one cell samples the same subset everywhere.
#[derive(Clone, Copy, Debug)]
pub struct Sampler {
    rate: u32,
    key: u64,
}

impl Sampler {
    /// Sampler for a tier: keep-all below `Sampled`, keyed at `Sampled`.
    pub fn new(tier: Tier, key: u64) -> Sampler {
        let rate = match tier {
            Tier::Sampled { rate } => rate.max(1),
            _ => 1,
        };
        Sampler { rate, key }
    }

    /// The sampling key (0 when keep-all).
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Nominal kept fraction (`1/rate`).
    pub fn fraction(&self) -> f64 {
        1.0 / f64::from(self.rate)
    }

    /// Whether `span` is in the kept subset. Depends only on the span's
    /// content and the key — never on emission order, thread, or shard.
    #[inline]
    pub fn admits(&self, span: &Span) -> bool {
        if self.rate <= 1 {
            return true;
        }
        self.keeps(self.mix(span))
    }

    /// Whether spans anchored to phase `index` are in the kept subset.
    ///
    /// Engines that emit spans in per-phase bursts (the BSP machine emits
    /// every superstep's spans at its barrier) sample at phase granularity:
    /// one decision — a pure function of `(key, index)`, so still
    /// bit-identical at any shard or thread count — covers the whole
    /// burst, and rejected phases never even construct their spans. A
    /// sampled BSP trace therefore keeps complete supersteps, roughly one
    /// in `rate`.
    #[inline]
    pub fn admits_phase(&self, index: u64) -> bool {
        if self.rate <= 1 {
            return true;
        }
        self.keeps(splitmix(self.key ^ index.wrapping_mul(0x100_0000_01b3)))
    }

    /// Map a mixed hash onto the keep decision without a `u64` division:
    /// `(h * rate) >> 64` is uniform over `0..rate`, and 0 keeps.
    #[inline]
    fn keeps(&self, h: u64) -> bool {
        (u128::from(h) * u128::from(self.rate)) >> 64 == 0
    }

    #[inline]
    fn mix(&self, span: &Span) -> u64 {
        // SplitMix64 finalizer over an FNV-style fold of the span fields;
        // cheap, stateless, and well-distributed enough for rate-sampling.
        let mut h = self.key ^ 0xcbf2_9ce4_8422_2325;
        let fold = |h: u64, v: u64| (h ^ v).wrapping_mul(0x100_0000_01b3);
        h = fold(h, span.kind as u64);
        h = fold(h, span.start.get());
        h = fold(h, span.end.get());
        h = fold(h, span.proc.map_or(u64::MAX, |p| u64::from(p.0)));
        h = fold(h, span.index.unwrap_or(u64::MAX ^ 1));
        splitmix(h)
    }
}

#[inline]
fn splitmix(h: u64) -> u64 {
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;
    use bvl_model::{ProcId, Steps};

    #[test]
    fn labels_roundtrip() {
        for t in [
            Tier::Off,
            Tier::CountersOnly,
            Tier::Sampled { rate: 16 },
            Tier::Full,
        ] {
            assert_eq!(Tier::parse(&t.label()), Some(t));
        }
        assert_eq!(Tier::parse("sampled"), Some(Tier::Sampled { rate: 8 }));
        assert_eq!(Tier::parse("counters-only"), Some(Tier::CountersOnly));
        assert_eq!(Tier::parse("sampled:0"), Some(Tier::Sampled { rate: 1 }));
        assert_eq!(Tier::parse("everything"), None);
    }

    #[test]
    fn ranks_order_and_min_caps() {
        assert!(Tier::Off.rank() < Tier::CountersOnly.rank());
        assert!(Tier::CountersOnly.rank() < Tier::Sampled { rate: 4 }.rank());
        assert!(Tier::Sampled { rate: 4 }.rank() < Tier::Full.rank());
        assert_eq!(Tier::Full.min(Tier::CountersOnly), Tier::CountersOnly);
        assert_eq!(Tier::Off.min(Tier::Full), Tier::Off);
        assert_eq!(
            Tier::Sampled { rate: 4 }.min(Tier::Sampled { rate: 16 }),
            Tier::Sampled { rate: 16 }
        );
        assert!(!Tier::CountersOnly.spans_on() && Tier::CountersOnly.counters_on());
        assert!(Tier::Sampled { rate: 2 }.spans_on());
        assert!(!Tier::Off.counters_on());
    }

    #[test]
    fn sampler_is_content_keyed_and_rate_shaped() {
        let s = Sampler::new(Tier::Sampled { rate: 4 }, 0xDEAD_BEEF);
        let span = |i: u64| {
            Span::new(SpanKind::Stall, Steps(i), Steps(i + 3))
                .on(ProcId((i % 7) as u32))
                .at_index(i)
        };
        // Pure function of content: same span, same verdict, every time.
        for i in 0..64 {
            assert_eq!(s.admits(&span(i)), s.admits(&span(i)));
        }
        // Rate-shaped: over many distinct spans, roughly 1/4 admitted.
        let kept = (0..4096).filter(|&i| s.admits(&span(i))).count();
        assert!((700..=1350).contains(&kept), "kept {kept} of 4096 at rate 4");
        // Different keys keep different subsets.
        let s2 = Sampler::new(Tier::Sampled { rate: 4 }, 0x1234_5678);
        let differs = (0..256).any(|i| s.admits(&span(i)) != s2.admits(&span(i)));
        assert!(differs);
        // Keep-all tiers admit everything.
        let full = Sampler::new(Tier::Full, 9);
        assert!((0..256).all(|i| full.admits(&span(i))));
    }
}
